//! Offline stand-in for `serde`.
//!
//! The workspace annotates its data types with `#[derive(Serialize,
//! Deserialize)]` so a real serialization backend can be dropped in later,
//! but no code path serializes anything yet and the build environment cannot
//! reach crates.io. This facade keeps the annotations compiling: the derive
//! macros (re-exported from the stub `serde_derive`) expand to nothing, and
//! the traits are blanket-implemented for every type so `T: Serialize`
//! bounds hold everywhere.
//!
//! Replacing this with the real serde is a one-line change per manifest.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
