//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, and nothing in this
//! workspace actually serializes data yet — `#[derive(Serialize,
//! Deserialize)]` is only used as forward-looking annotation. These derives
//! therefore expand to nothing; the `serde` facade crate provides blanket
//! impls so trait bounds written against `Serialize`/`Deserialize` still
//! hold.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
