//! Offline stand-in for the `rand` crate.
//!
//! The build environment cannot reach crates.io, and the workspace only
//! needs seeded, deterministic pseudo-randomness for synthetic data and
//! query generation. This crate supplies exactly that surface:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen_range` / `gen_bool` / `gen`.
//!
//! The generator is splitmix64 — statistically fine for workload synthesis,
//! not cryptographic. Sequences are stable across runs and platforms, which
//! the deterministic LUBM generator relies on.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64` in the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32` in the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Draws a value uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as i128 - low as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types producible by [`Rng::gen`].
pub trait Standard {
    /// Draws a value from the full domain of the type.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 bits of mantissa is plenty for workload-synthesis coin flips.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Draws a value from the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Identical seeds yield
    /// identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators, mirroring `rand::rngs`.

    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
        }
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.gen_bool(1.0)).count(), 100);
    }
}
