//! `any::<T>()` support, mirroring `proptest::arbitrary`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::marker::PhantomData;
use rand::{Rng, RngCore};

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Samples a value from the type's full domain.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`, as in `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.gen_bool(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u64_covers_wide_range() {
        let mut rng = TestRng::for_test("arbitrary_unit");
        let strategy = any::<u64>();
        let mut high = false;
        for _ in 0..100 {
            if strategy.generate(&mut rng) > u64::MAX / 2 {
                high = true;
            }
        }
        assert!(high, "100 draws never exceeded half of u64::MAX");
    }
}
