//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate re-implements
//! the slice of proptest's API that the workspace's property suites use:
//!
//! * the [`Strategy`] trait with `prop_map`, integer-range strategies, tuple
//!   strategies (arities 2–10), regex-literal string strategies of the form
//!   `"[class]{m,n}"`, [`collection::vec`], [`strategy::Union`] behind
//!   [`prop_oneof!`], and [`arbitrary`]'s `any::<T>()`;
//! * the [`proptest!`] macro, which expands each `fn name(arg in strategy)`
//!   item into a `#[test]` that samples and runs `cases` inputs;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assume!`;
//! * [`test_runner::Config`] (re-exported in the prelude as
//!   `ProptestConfig`) with `with_cases`, honouring the `PROPTEST_CASES`
//!   environment variable as a hard cap so CI can bound suite runtime.
//!
//! Differences from real proptest: sampling is derived from a fixed seed (so
//! failures are perfectly reproducible and CI is deterministic), and there
//! is **no shrinking** — a failing case panics with the sampled inputs left
//! to the assertion message.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::any;

/// The glob import every proptest suite starts with.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Expands a block of `fn name(arg in strategy, ...) { body }` items into
/// `#[test]` functions that sample and check `cases` random inputs each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { config = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; matches the individual test items.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (config = ($config:expr);
     $($(#[$meta:meta])*
       fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
     )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let cases = config.resolved_cases();
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut rejected = 0u32;
                let mut ran = 0u32;
                while ran < cases {
                    if rejected > cases.saturating_mul(20).max(1000) {
                        panic!(
                            "proptest {}: too many prop_assume rejections ({rejected})",
                            stringify!($name)
                        );
                    }
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => ran += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => rejected += 1,
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Rejects the current case (it is re-drawn) when `condition` is false.
#[macro_export]
macro_rules! prop_assume {
    ($condition:expr $(, $($fmt:tt)*)?) => {
        if !($condition) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
