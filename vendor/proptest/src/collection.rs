//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::ops::Range;
use rand::Rng;

/// Strategy for `Vec`s whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(
        size.start < size.end,
        "collection::vec given an empty size range"
    );
    VecStrategy { element, size }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_and_elements_are_in_range() {
        let mut rng = TestRng::for_test("collection_unit");
        let strategy = vec(0u32..6, 2..9);
        for _ in 0..200 {
            let v = strategy.generate(&mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 6));
        }
    }
}
