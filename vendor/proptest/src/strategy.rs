//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;

/// A source of random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// simply samples a value from the test RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps every sampled value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Samples a value from `self`, then from the strategy `f` derives from
    /// it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Re-draws until `f` accepts the value (bounded; panics if the filter
    /// rejects everything).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy so heterogeneous strategies of one value
    /// type can share a container (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let value = self.source.generate(rng);
            if (self.f)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter rejected 10000 consecutive values: {}",
            self.whence
        );
    }
}

/// Weighted choice among boxed strategies; the expansion of
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { arms, total_weight }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut draw = rng.gen_range(0..self.total_weight);
        for (weight, strategy) in &self.arms {
            if draw < u64::from(*weight) {
                return strategy.generate(rng);
            }
            draw -= u64::from(*weight);
        }
        unreachable!("draw below total weight always lands in an arm")
    }
}

/// Weighted choice: `prop_oneof![3 => a, 1 => b]`, or uniform with the
/// weights omitted. Arms may be heterogeneous strategy types producing the
/// same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                if start == end {
                    start
                } else {
                    rng.gen_range(start..end.saturating_add(1))
                }
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_maps_sample_in_bounds() {
        let mut rng = TestRng::for_test("strategy_unit");
        for _ in 0..500 {
            let v = (0u32..6).generate(&mut rng);
            assert!(v < 6);
            let (a, b) = (0u32..4, 10usize..12).generate(&mut rng);
            assert!(a < 4 && (10..12).contains(&b));
            let doubled = (1u32..5).prop_map(|x| x * 2).generate(&mut rng);
            assert!([2, 4, 6, 8].contains(&doubled));
        }
    }

    #[test]
    fn union_respects_zero_weight_exclusion() {
        let mut rng = TestRng::for_test("union_unit");
        let union = prop_oneof![5 => 0u32..1, 1 => 100u32..101];
        let mut saw_rare = false;
        for _ in 0..1000 {
            match union.generate(&mut rng) {
                0 => {}
                100 => saw_rare = true,
                other => panic!("unexpected value {other}"),
            }
        }
        assert!(saw_rare, "1-in-6 arm never sampled in 1000 draws");
    }
}
