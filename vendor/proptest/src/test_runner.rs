//! Test configuration and the deterministic RNG behind every strategy.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Why a test case did not run to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should be re-drawn.
    Reject,
}

/// Per-suite configuration, re-exported in the prelude as `ProptestConfig`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Requested number of successful cases per test.
    pub cases: u32,
}

/// Default number of cases when a suite does not configure one.
const DEFAULT_CASES: u32 = 64;

/// Hard cap applied on top of any configured count, so the full property
/// suite stays well under a minute in CI. `PROPTEST_CASES` (when smaller)
/// lowers it further.
const MAX_CASES: u32 = 128;

impl Config {
    /// Configuration running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }

    /// The case count actually run: the configured count, capped by
    /// [`MAX_CASES`] and by the `PROPTEST_CASES` environment variable.
    pub fn resolved_cases(&self) -> u32 {
        let mut cases = self.cases.clamp(1, MAX_CASES);
        if let Ok(env_cases) = std::env::var("PROPTEST_CASES") {
            if let Ok(env_cases) = env_cases.trim().parse::<u32>() {
                cases = cases.min(env_cases.max(1));
            }
        }
        cases
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: DEFAULT_CASES,
        }
    }
}

/// The RNG handed to strategies: a seeded [`StdRng`] whose seed is derived
/// from the test name, so every test draws a stable, independent stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Deterministic RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name gives decorrelated per-test seeds.
        let mut seed: u64 = 0xcbf29ce484222325;
        for byte in name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x100000001b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolved_cases_is_capped() {
        assert_eq!(Config::with_cases(1_000_000).resolved_cases(), MAX_CASES);
        assert_eq!(Config::with_cases(8).resolved_cases(), 8);
        assert!(Config::default().resolved_cases() >= 1);
    }

    #[test]
    fn per_test_streams_differ() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("beta");
        assert_ne!(a.next_u64(), b.next_u64());
        let mut a2 = TestRng::for_test("alpha");
        assert_eq!(TestRng::for_test("alpha").next_u64(), a2.next_u64());
    }
}
