//! Regex-literal string strategies: `"[a-z]{1,4}"` as a `Strategy<Value =
//! String>`, mirroring proptest's `&str` strategy for the simple class +
//! quantifier patterns the workspace uses.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self)
            .unwrap_or_else(|e| panic!("unsupported regex strategy {self:?}: {e}"));
        let mut out = String::new();
        for atom in &atoms {
            let count = match atom.quantifier {
                Quantifier::Exactly(n) => n,
                Quantifier::Between(lo, hi) => rng.gen_range(lo..hi + 1),
            };
            for _ in 0..count {
                let choice = rng.gen_range(0..atom.chars.len());
                out.push(atom.chars[choice]);
            }
        }
        out
    }
}

/// One pattern element: a set of candidate characters plus a repetition.
struct Atom {
    chars: Vec<char>,
    quantifier: Quantifier,
}

enum Quantifier {
    Exactly(usize),
    Between(usize, usize),
}

/// Parses the supported regex subset: literal characters and `[...]`
/// classes (ranges and singletons, no negation), each optionally followed by
/// `{m}`, `{m,n}`, `?`, `*` or `+` (the unbounded forms cap at 8).
fn parse_pattern(pattern: &str) -> Result<Vec<Atom>, String> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let candidate_chars = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => return Err("unterminated character class".into()),
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                            let lo = prev.take().expect("checked above");
                            let hi = chars.next().expect("peeked above");
                            if hi < lo {
                                return Err(format!("inverted range {lo}-{hi}"));
                            }
                            set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        }
                        Some(member) => {
                            if let Some(p) = prev.replace(member) {
                                set.push(p);
                            }
                        }
                    }
                }
                if let Some(p) = prev {
                    set.push(p);
                }
                if set.is_empty() {
                    return Err("empty character class".into());
                }
                set
            }
            '\\' => match chars.next() {
                Some(escaped) => vec![escaped],
                None => return Err("dangling escape".into()),
            },
            '.' => (b' '..=b'~').map(char::from).collect(),
            literal => vec![literal],
        };
        let quantifier = match chars.peek() {
            Some('{') => {
                chars.next();
                let body: String = chars.by_ref().take_while(|&c| c != '}').collect();
                match body.split_once(',') {
                    Some((lo, hi)) => Quantifier::Between(
                        lo.trim().parse().map_err(|_| format!("bad bound {lo:?}"))?,
                        hi.trim().parse().map_err(|_| format!("bad bound {hi:?}"))?,
                    ),
                    None => Quantifier::Exactly(
                        body.trim()
                            .parse()
                            .map_err(|_| format!("bad count {body:?}"))?,
                    ),
                }
            }
            Some('?') => {
                chars.next();
                Quantifier::Between(0, 1)
            }
            Some('*') => {
                chars.next();
                Quantifier::Between(0, 8)
            }
            Some('+') => {
                chars.next();
                Quantifier::Between(1, 8)
            }
            _ => Quantifier::Exactly(1),
        };
        if let Quantifier::Between(lo, hi) = quantifier {
            if lo > hi {
                return Err(format!("inverted quantifier {{{lo},{hi}}}"));
            }
        }
        atoms.push(Atom {
            chars: candidate_chars,
            quantifier,
        });
    }
    Ok(atoms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn class_with_bounds_generates_matching_strings() {
        let mut rng = TestRng::for_test("string_unit");
        for _ in 0..300 {
            let s = "[a-z]{1,4}".generate(&mut rng);
            assert!((1..=4).contains(&s.len()), "bad length {s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
        for _ in 0..300 {
            let s = "[A-Za-z0-9 ]{0,12}".generate(&mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == ' '));
        }
    }

    #[test]
    fn literals_and_quantifiers_compose() {
        let mut rng = TestRng::for_test("string_unit_2");
        for _ in 0..100 {
            let s = "ab[0-9]{2}c?".generate(&mut rng);
            assert!(s.starts_with("ab"), "{s:?}");
            let digits = &s[2..4];
            assert!(digits.chars().all(|c| c.is_ascii_digit()), "{s:?}");
            assert!(s.len() == 4 || (s.len() == 5 && s.ends_with('c')), "{s:?}");
        }
    }
}
