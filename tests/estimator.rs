//! Differential tests of the statistics-driven cardinality estimator.
//!
//! The adversarial synthetic shapes — cyclic queries and cross products —
//! are estimated twice, once with per-predicate statistics
//! ([`MapReduceCostModel::new`]) and once with the uniform baseline
//! ([`MapReduceCostModel::uniform`]), and judged by q-error
//! (`max(est/actual, actual/est)`) against the reference evaluator's true
//! cardinalities. Statistics must not lose to the baseline on the
//! workload's geometric-mean q-error.

use cliquesquare_core::Optimizer;
use cliquesquare_engine::reference::reference_count;
use cliquesquare_engine::{q_error, translate, MapReduceCostModel};
use cliquesquare_mapreduce::{Cluster, ClusterConfig};
use cliquesquare_querygen::SyntheticWorkload;
use cliquesquare_rdf::{Graph, Term};
use cliquesquare_sparql::BgpQuery;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small random graph over the synthetic property vocabulary used by the
/// generated queries (the same substrate as `workload_properties.rs`), so
/// adversarial shapes have real, non-trivial cardinalities.
fn synthetic_graph(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graph = Graph::new();
    for _ in 0..600 {
        let s = rng.gen_range(0..40);
        let p = rng.gen_range(1..11);
        let o = rng.gen_range(0..40);
        graph.insert_terms(
            Term::iri(format!("http://synthetic.example/node{s}")),
            Term::iri(format!("http://synthetic.example/p{p}")),
            Term::iri(format!("http://synthetic.example/node{o}")),
        );
    }
    graph
}

/// `query` with *every* variable distinguished, so the reference count is
/// the join output cardinality the estimator prices (a narrow projection
/// would deduplicate and skew actual-vs-estimated for both models alike).
fn distinguish_all(query: &BgpQuery) -> BgpQuery {
    BgpQuery::named(
        query.name().to_string(),
        query.variables(),
        query.patterns().to_vec(),
    )
}

/// Root-operator cardinality estimates for a connected query:
/// `(statistics, uniform)`.
fn root_estimates(cluster: &Cluster, query: &BgpQuery) -> (u64, u64) {
    let logical = Optimizer::default()
        .optimize(query)
        .flattest_plans()
        .first()
        .map(|p| (*p).clone())
        .expect("plan found");
    let plan = translate(&logical, cluster.graph());
    let root = plan.root().index();
    let stats = MapReduceCostModel::new(cluster).estimate_cards(&plan)[root];
    let uniform = MapReduceCostModel::uniform(cluster).estimate_cards(&plan)[root];
    (stats, uniform)
}

/// Geometric mean of a slice of q-errors.
fn geomean(values: &[f64]) -> f64 {
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[test]
fn statistics_do_not_lose_to_uniform_on_cyclic_queries() {
    let cluster = Cluster::load(synthetic_graph(11), ClusterConfig::with_nodes(4));
    let mut stats_q = Vec::new();
    let mut uniform_q = Vec::new();
    for n in 3..=5 {
        let query = distinguish_all(&SyntheticWorkload::cycle(n));
        let actual = reference_count(cluster.graph(), &query) as u64;
        let (stats, uniform) = root_estimates(&cluster, &query);
        stats_q.push(q_error(stats, actual));
        uniform_q.push(q_error(uniform, actual));
    }
    let (stats, uniform) = (geomean(&stats_q), geomean(&uniform_q));
    assert!(
        stats <= uniform * 1.05,
        "statistics q-error {stats:.2} lost to uniform {uniform:.2} on cycles \
         (per-query: stats {stats_q:?} vs uniform {uniform_q:?})"
    );
}

#[test]
fn statistics_do_not_lose_to_uniform_on_cross_products() {
    let cluster = Cluster::load(synthetic_graph(23), ClusterConfig::with_nodes(4));
    let mut stats_q = Vec::new();
    let mut uniform_q = Vec::new();
    for query in [
        SyntheticWorkload::cross_product(1, 1),
        SyntheticWorkload::cross_product(2, 1),
        SyntheticWorkload::cross_product(2, 2),
        SyntheticWorkload::cross_product(3, 2),
    ] {
        // The clique planner rejects disconnected queries: estimate each
        // connected component separately and multiply, which is also the
        // true cardinality's factorization.
        let mut actual: u64 = 1;
        let mut stats: u64 = 1;
        let mut uniform: u64 = 1;
        for component in query.connected_components() {
            let component = distinguish_all(&component);
            actual = actual.saturating_mul(reference_count(cluster.graph(), &component) as u64);
            let (s, u) = root_estimates(&cluster, &component);
            stats = stats.saturating_mul(s);
            uniform = uniform.saturating_mul(u);
        }
        stats_q.push(q_error(stats, actual));
        uniform_q.push(q_error(uniform, actual));
    }
    let (stats, uniform) = (geomean(&stats_q), geomean(&uniform_q));
    assert!(
        stats <= uniform * 1.05,
        "statistics q-error {stats:.2} lost to uniform {uniform:.2} on cross products \
         (per-query: stats {stats_q:?} vs uniform {uniform_q:?})"
    );
}

#[test]
fn adversarial_estimation_workload_spans_both_shapes() {
    let workload = SyntheticWorkload::estimator_adversarial_workload(6);
    assert!(workload.iter().any(|q| q.name().starts_with("cycle")));
    assert!(workload.iter().any(|q| q.name().starts_with("cross")));
    // Every connected member must be estimable end-to-end.
    let cluster = Cluster::load(synthetic_graph(7), ClusterConfig::with_nodes(4));
    for query in workload.iter().filter(|q| q.is_connected()) {
        let (stats, uniform) = root_estimates(&cluster, &distinguish_all(query));
        // Both estimators produce finite, nonzero-capable numbers.
        assert!(stats < u64::MAX && uniform < u64::MAX, "{}", query.name());
    }
}
