//! Concurrency determinism of the serving stack: a query mix run **solo**
//! must yield byte-identical answers when the same mix runs **interleaved**
//! with random other queries on a shared persistent scheduler, at worker
//! thread counts 1, 2 and 8. This is the N-jobs-in-flight extension of the
//! single-job differential oracles in `parallel_runtime.rs`.

use cliquesquare_mapreduce::{Cluster, ClusterConfig, Runtime};
use cliquesquare_querygen::lubm_queries::lubm_queries;
use cliquesquare_rdf::{LubmGenerator, LubmScale};
use cliquesquare_server::{QueryAnswer, QueryService};
use cliquesquare_sparql::BgpQuery;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

fn tiny_cluster() -> &'static Cluster {
    static CLUSTER: OnceLock<Cluster> = OnceLock::new();
    CLUSTER.get_or_init(|| {
        let graph = LubmGenerator::new(LubmScale::tiny()).generate();
        Cluster::load(graph, ClusterConfig::with_nodes(4))
    })
}

/// The solo oracle: each LUBM query answered once on a dedicated
/// single-worker service with nothing else in flight.
fn solo_answers() -> &'static Vec<(String, QueryAnswer)> {
    static SOLO: OnceLock<Vec<(String, QueryAnswer)>> = OnceLock::new();
    SOLO.get_or_init(|| {
        let service = QueryService::new(tiny_cluster().clone(), Runtime::serving(1));
        lubm_queries()
            .into_iter()
            .map(|query| {
                let answer = service.run(&query).expect("solo run serves");
                (query.name().to_string(), answer)
            })
            .collect()
    })
}

/// The fields of an answer that must be byte-identical across runs
/// (wall-clock time legitimately varies).
fn stable(answer: &QueryAnswer) -> (String, Vec<String>, Vec<Vec<String>>, usize, String) {
    (
        answer.query.clone(),
        answer.variables.clone(),
        answer.rows.clone(),
        answer.total_rows,
        answer.job_descriptor.clone(),
    )
}

/// Runs `mix` on a fresh service at `threads` workers while `noise_threads`
/// background clients hammer the service with `noise` queries, and checks
/// every mix answer against the solo oracle.
fn check_interleaved(threads: usize, mix: &[usize], noise: &[usize], noise_threads: usize) {
    let queries = lubm_queries();
    let solo = solo_answers();
    let service = Arc::new(QueryService::new(
        tiny_cluster().clone(),
        Runtime::serving(threads),
    ));

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let interference: Vec<_> = (0..noise_threads)
        .map(|offset| {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let noise: Vec<BgpQuery> = noise
                .iter()
                .map(|&i| queries[(i + offset) % queries.len()].clone())
                .collect();
            std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    for query in &noise {
                        service.run(query).expect("noise query serves");
                    }
                    if noise.is_empty() {
                        break;
                    }
                }
            })
        })
        .collect();

    for &index in mix {
        let query = &queries[index];
        let answer = service.run(query).expect("mix query serves");
        let (name, expected) = &solo[index];
        assert_eq!(
            &stable(&answer),
            &stable(expected),
            "threads={threads}: {name} diverged from its solo answer"
        );
    }

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for handle in interference {
        handle.join().expect("interference client");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The satellite acceptance property: the same query mix, solo vs.
    /// interleaved with random other queries, at worker threads {1, 2, 8},
    /// yields byte-identical answers per query.
    #[test]
    fn interleaved_serving_is_byte_identical_to_solo(
        mix in proptest::collection::vec(0usize..14, 2..6),
        noise in proptest::collection::vec(0usize..14, 1..4),
    ) {
        for threads in [1usize, 2, 8] {
            check_interleaved(threads, &mix, &noise, 2);
        }
    }
}

/// Deterministic (non-property) cover of the full mix at every thread count,
/// so the oracle is exercised even when `PROPTEST_CASES=0`.
#[test]
fn full_lubm_mix_is_identical_at_all_worker_counts() {
    let full: Vec<usize> = (0..lubm_queries().len()).collect();
    for threads in [1usize, 2, 8] {
        check_interleaved(threads, &full, &full[..3], 1);
    }
}
