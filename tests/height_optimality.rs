//! Integration tests for the height-optimality guarantees of Theorem 4.3 /
//! Figure 9, checked over the paper's counterexample queries, the LUBM
//! workload and a synthetic sample.

use cliquesquare_core::paper_examples;
use cliquesquare_core::planspace::{ho_failures, optimal_height};
use cliquesquare_core::{Optimizer, OptimizerConfig, Variant};
use cliquesquare_querygen::lubm_queries;
use cliquesquare_querygen::{SyntheticWorkload, WorkloadConfig};

fn sample_queries() -> Vec<cliquesquare_sparql::BgpQuery> {
    let mut queries = paper_examples::all();
    queries.extend(SyntheticWorkload::generate(WorkloadConfig {
        queries_per_shape: 5,
        min_patterns: 2,
        max_patterns: 7,
        seed: 3,
    }));
    queries.extend(lubm_queries::lubm_queries());
    queries
}

#[test]
fn ho_partial_variants_always_reach_the_optimal_height() {
    let queries = sample_queries();
    let config = OptimizerConfig::recommended();
    for variant in [Variant::Msc, Variant::MscPlus] {
        let failures = ho_failures(&queries, variant, config);
        assert!(
            failures.is_empty(),
            "{variant} missed the optimal height on {failures:?}"
        );
    }
}

#[test]
fn exact_cover_variants_are_ho_lossy_on_figure14() {
    let q = paper_examples::figure14_query();
    let optimal = optimal_height(&q).unwrap();
    assert_eq!(optimal, 2);
    for variant in [Variant::Mxc, Variant::Xc] {
        let result = Optimizer::with_variant(variant).optimize(&q);
        assert!(!result.plans.is_empty());
        assert!(result.min_height().unwrap() > optimal, "{variant}");
    }
    for variant in [Variant::MxcPlus, Variant::XcPlus] {
        let result = Optimizer::with_variant(variant).optimize(&q);
        assert!(result.plans.is_empty(), "{variant} should fail entirely");
    }
}

#[test]
fn lubm_optimal_heights_are_low() {
    // The headline property: even the 8-10 pattern LUBM queries admit plans
    // of height at most 3 thanks to n-ary star joins.
    for query in lubm_queries::lubm_queries() {
        let height = optimal_height(&query).unwrap();
        let expected_max = match query.len() {
            0..=2 => 1,
            3..=6 => 2,
            _ => 3,
        };
        assert!(
            height <= expected_max,
            "{}: optimal height {} exceeds {}",
            query.name(),
            height,
            expected_max
        );
    }
}

#[test]
fn binary_plans_are_taller_than_flat_plans_on_large_queries() {
    use cliquesquare_baselines::BinaryPlanner;
    use cliquesquare_rdf::{LubmGenerator, LubmScale};

    let graph = LubmGenerator::new(LubmScale::tiny()).generate();
    let planner = BinaryPlanner::new(&graph);
    for name in ["Q12", "Q13", "Q14"] {
        let query = lubm_queries::lubm_query(name).unwrap();
        let flat = optimal_height(&query).unwrap();
        let bushy = planner.best_bushy(&query).unwrap().height();
        let linear = planner.best_linear(&query).unwrap().height();
        // A binary tree over 9-10 relations has height at least ⌈log2 n⌉ = 4,
        // strictly above the flat n-ary optimum of 3.
        assert!(flat < bushy, "{name}: flat {flat} !< bushy {bushy}");
        assert!(bushy <= linear, "{name}: bushy {bushy} > linear {linear}");
        assert_eq!(linear, query.len() - 1);
    }
}

#[test]
fn every_msc_plan_is_at_most_one_level_from_optimal_on_the_sample() {
    // MSC is only HO-partial, but in practice its non-optimal plans stay
    // close to the optimum; this guards against regressions that would make
    // the variant produce wildly deep plans.
    let config = OptimizerConfig::recommended();
    for query in sample_queries() {
        let Some(optimal) = optimal_height(&query) else {
            continue;
        };
        let result = Optimizer::new(OptimizerConfig {
            variant: Variant::Msc,
            ..config
        })
        .optimize(&query);
        for plan in &result.plans {
            assert!(
                plan.height() <= optimal + 2,
                "{}: MSC plan of height {} vs optimal {}",
                query.name(),
                plan.height(),
                optimal
            );
        }
    }
}
