//! Oracle tests for the parallel task runtime: executing a plan on OS
//! threads must be **observationally identical** to sequential execution —
//! same (bit-identical) result relation, same job descriptors, same work
//! counters, same simulated seconds — and both must agree with the naive
//! reference evaluator.

use cliquesquare_core::{Optimizer, Variant};
use cliquesquare_engine::csq::{Csq, CsqConfig};
use cliquesquare_engine::reference::reference_eval_with;
use cliquesquare_engine::Executor;
use cliquesquare_mapreduce::{Cluster, ClusterConfig, Runtime};
use cliquesquare_querygen::lubm_queries::lubm_queries;
use cliquesquare_querygen::{SyntheticShape, SyntheticWorkload};
use cliquesquare_rdf::{Graph, LubmGenerator, LubmScale, Term};
use cliquesquare_sparql::BgpQuery;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn lubm_cluster() -> Cluster {
    let graph = LubmGenerator::new(LubmScale::tiny()).generate();
    Cluster::load(graph, ClusterConfig::with_nodes(4))
}

/// The ISSUE-mandated oracle: on all 14 LUBM queries, the parallel
/// executor's distinct answer set equals both the sequential executor's and
/// the reference evaluator's.
#[test]
fn all_lubm_queries_agree_across_runtimes_and_reference() {
    let cluster = lubm_cluster();
    for query in lubm_queries() {
        let reference = reference_eval_with(cluster.graph(), &query, &Runtime::sequential());
        let sequential =
            Csq::new(cluster.clone(), CsqConfig::default().with_threads(1)).run(&query);
        let parallel = Csq::new(cluster.clone(), CsqConfig::default().with_threads(4)).run(&query);

        assert_eq!(
            sequential.result_count,
            reference.len(),
            "{}: sequential executor disagrees with the reference evaluator",
            query.name()
        );
        assert_eq!(
            parallel.result_count,
            reference.len(),
            "{}: parallel executor disagrees with the reference evaluator",
            query.name()
        );
        assert_eq!(
            sequential.execution.results,
            parallel.execution.results,
            "{}: parallel results are not bit-identical to sequential",
            query.name()
        );
        assert_eq!(
            sequential.execution.results.clone().distinct(),
            reference,
            "{}: executor answer set differs from the reference",
            query.name()
        );
        assert_eq!(
            sequential.job_descriptor,
            parallel.job_descriptor,
            "{}: thread count changed the job descriptor",
            query.name()
        );
        assert_eq!(
            sequential.simulated_seconds,
            parallel.simulated_seconds,
            "{}: thread count changed the simulated cost",
            query.name()
        );
    }
}

/// The parallel reference evaluator is itself an oracle; cross-check it
/// against its sequential form on the whole LUBM workload.
#[test]
fn parallel_reference_evaluator_is_bit_identical_on_lubm() {
    let cluster = lubm_cluster();
    for query in lubm_queries() {
        let sequential = reference_eval_with(cluster.graph(), &query, &Runtime::sequential());
        let parallel = reference_eval_with(cluster.graph(), &query, &Runtime::with_threads(4));
        assert_eq!(sequential, parallel, "{}", query.name());
    }
}

/// Strategy: a random query shape, size and seed (same distribution as the
/// synthetic optimizer workload of Section 6.2).
fn query_strategy() -> impl Strategy<Value = BgpQuery> {
    (0usize..4, 2usize..7, any::<u64>()).prop_map(|(shape, size, seed)| {
        let shape = SyntheticShape::ALL[shape];
        let mut rng = StdRng::seed_from_u64(seed);
        SyntheticWorkload::query(shape, size, &mut rng)
    })
}

/// Strategy: the adversarial execution shapes — high-fan-out stars and deep
/// chains whose projection drops the join keys, so the factorized join path
/// emits runs and expands them only at the projection boundary.
fn adversarial_strategy() -> impl Strategy<Value = BgpQuery> {
    (any::<bool>(), 2usize..6).prop_map(|(star, size)| {
        if star {
            SyntheticWorkload::fanout_star(size)
        } else {
            SyntheticWorkload::deep_chain(size)
        }
    })
}

/// A small random graph over the synthetic property vocabulary used by the
/// generated queries, so that executions can produce non-empty answers.
fn synthetic_graph(seed: u64) -> Graph {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graph = Graph::new();
    for _ in 0..600 {
        let s = rng.gen_range(0..40);
        let p = rng.gen_range(1..11);
        let o = rng.gen_range(0..40);
        graph.insert_terms(
            Term::iri(format!("http://synthetic.example/node{s}")),
            Term::iri(format!("http://synthetic.example/p{p}")),
            Term::iri(format!("http://synthetic.example/node{o}")),
        );
    }
    graph
}

/// The adversarial star is not vacuous: a sequential execution of a fan-out
/// star records factorized runs emitted and rows expanded at the projection
/// (i.e. the differential proptest below really exercises the runs path).
#[test]
fn fanout_stars_take_the_factorized_path() {
    use cliquesquare_engine::relation::stats;
    let cluster = Cluster::load(synthetic_graph(7), ClusterConfig::with_nodes(3));
    let query = SyntheticWorkload::fanout_star(3);
    let result = Optimizer::with_variant(Variant::Msc).optimize(&query);
    let logical = result.flattest_plans()[0].clone();
    stats::reset();
    let output = Executor::sequential(&cluster).execute_logical(&logical);
    let snapshot = stats::snapshot();
    assert!(!output.results.is_empty(), "graph produced no star matches");
    assert!(snapshot.runs_emitted > 0, "fan-out star did not factorize");
    assert_eq!(
        snapshot.rows_expanded,
        output.job_log.total_metrics().join_output_tuples,
        "expansion must materialize exactly the join's logical output"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random synthetic queries executed at threads ∈ {1, 2, 8}: every
    /// thread count produces the bit-identical result relation, identical
    /// work counters, and the reference evaluator's answer count.
    #[test]
    fn random_queries_are_thread_count_invariant(
        query in query_strategy(),
        seed in any::<u64>(),
    ) {
        let graph = synthetic_graph(seed);
        let cluster = Cluster::load(graph, ClusterConfig::with_nodes(3));
        // Project every variable so that distinct answer counting is strict.
        let query = BgpQuery::named(
            query.name().to_string(),
            query.variables(),
            query.patterns().to_vec(),
        );
        let result = Optimizer::with_variant(Variant::Msc).optimize(&query);
        prop_assert!(!result.plans.is_empty(), "synthetic queries are connected");
        let logical = result.flattest_plans()[0].clone();

        let reference = reference_eval_with(cluster.graph(), &query, &Runtime::sequential());
        let sequential = Executor::sequential(&cluster).execute_logical(&logical);
        prop_assert_eq!(sequential.distinct_count(), reference.len());
        for threads in [2usize, 8] {
            let parallel = Executor::with_runtime(&cluster, Runtime::with_threads(threads))
                .execute_logical(&logical);
            prop_assert_eq!(
                &sequential.results,
                &parallel.results,
                "threads={} changed the results",
                threads
            );
            prop_assert_eq!(sequential.metrics, parallel.metrics);
            prop_assert_eq!(
                sequential.job_log.descriptor(),
                parallel.job_log.descriptor()
            );
        }
    }

    /// Differential oracle for the factorized join path: fan-out stars and
    /// deep chains keep their key-dropping projections, so their joins run
    /// factorized where legal. At worker threads ∈ {1, 2, 8} the executor
    /// must stay bit-identical to itself and its distinct answers must equal
    /// the row-major reference evaluator's.
    #[test]
    fn factorized_executions_match_the_row_major_oracle(
        query in adversarial_strategy(),
        seed in any::<u64>(),
    ) {
        let graph = synthetic_graph(seed);
        let cluster = Cluster::load(graph, ClusterConfig::with_nodes(3));
        let result = Optimizer::with_variant(Variant::Msc).optimize(&query);
        prop_assert!(!result.plans.is_empty(), "adversarial queries are connected");
        let logical = result.flattest_plans()[0].clone();

        let reference = reference_eval_with(cluster.graph(), &query, &Runtime::sequential());
        let sequential = Executor::sequential(&cluster).execute_logical(&logical);
        prop_assert_eq!(
            sequential.results.clone().distinct(),
            reference,
            "sequential factorized answers differ from the row-major oracle"
        );
        for threads in [2usize, 8] {
            let parallel = Executor::with_runtime(&cluster, Runtime::with_threads(threads))
                .execute_logical(&logical);
            prop_assert_eq!(
                &sequential.results,
                &parallel.results,
                "threads={} changed the results",
                threads
            );
            prop_assert_eq!(sequential.metrics, parallel.metrics);
            prop_assert_eq!(
                sequential.job_log.descriptor(),
                parallel.job_log.descriptor()
            );
        }
    }
}
