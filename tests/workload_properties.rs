//! Property-based integration tests: random synthetic queries are optimized,
//! translated and executed, and the core invariants of the system are
//! checked on every one of them.

use cliquesquare_core::cost::{CostModel, SimpleCostModel};
use cliquesquare_core::planspace::optimal_height;
use cliquesquare_core::{Optimizer, Variant};
use cliquesquare_engine::reference::reference_eval;
use cliquesquare_engine::Executor;
use cliquesquare_mapreduce::{Cluster, ClusterConfig};
use cliquesquare_querygen::{SyntheticShape, SyntheticWorkload};
use cliquesquare_rdf::{Graph, LubmGenerator, LubmScale, Term};
use cliquesquare_sparql::{BgpQuery, PatternTerm, TriplePattern, Variable};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random query shape, size and seed.
fn query_strategy() -> impl Strategy<Value = BgpQuery> {
    (0usize..4, 2usize..8, any::<u64>()).prop_map(|(shape, size, seed)| {
        let shape = SyntheticShape::ALL[shape];
        let mut rng = StdRng::seed_from_u64(seed);
        SyntheticWorkload::query(shape, size, &mut rng)
    })
}

/// A small random graph over the synthetic property vocabulary used by the
/// generated queries, so that executions can produce non-empty answers.
fn synthetic_graph(seed: u64) -> Graph {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graph = Graph::new();
    for _ in 0..600 {
        let s = rng.gen_range(0..40);
        let p = rng.gen_range(1..11);
        let o = rng.gen_range(0..40);
        graph.insert_terms(
            Term::iri(format!("http://synthetic.example/node{s}")),
            Term::iri(format!("http://synthetic.example/p{p}")),
            Term::iri(format!("http://synthetic.example/node{o}")),
        );
    }
    graph
}

/// Rewrites a synthetic query's variables into constants-compatible form:
/// the generator uses properties `p1..p10` which the synthetic graph also
/// uses, so queries are executable as-is.
fn executable(query: &BgpQuery) -> BgpQuery {
    // Project every variable so that distinct answer counting is strict.
    BgpQuery::named(
        query.name().to_string(),
        query.variables(),
        query.patterns().to_vec(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// MSC always finds at least one plan for a connected query, and its
    /// flattest plan matches the optimal height (HO-partiality).
    #[test]
    fn msc_always_finds_a_height_optimal_plan(query in query_strategy()) {
        let result = Optimizer::with_variant(Variant::Msc).optimize(&query);
        prop_assert!(!result.plans.is_empty());
        let optimal = optimal_height(&query).unwrap();
        prop_assert_eq!(result.min_height().unwrap(), optimal);
        // Every plan covers every pattern.
        for plan in &result.plans {
            prop_assert_eq!(plan.match_ops().len(), query.len());
        }
    }

    /// The flattest MSC plan never has more join levels than a left-deep
    /// binary plan would (n - 1), and n-ary joins keep it within ⌈log2 n⌉.
    #[test]
    fn flat_plans_are_logarithmically_shallow(query in query_strategy()) {
        let optimal = optimal_height(&query).unwrap();
        let n = query.len();
        prop_assert!(optimal <= n.saturating_sub(1).max(1));
        // n-ary star joins at least halve the variable graph per level.
        let log2_bound = (n as f64).log2().ceil() as usize + 1;
        prop_assert!(
            optimal <= log2_bound,
            "optimal height {} exceeds log bound {} for {} patterns",
            optimal, log2_bound, n
        );
    }

    /// The structural cost model ranks some height-optimal plan first.
    #[test]
    fn cost_model_prefers_flat_plans(query in query_strategy()) {
        let result = Optimizer::with_variant(Variant::Msc).optimize(&query);
        let model = SimpleCostModel::default();
        let best = model.choose_best(&result.plans).unwrap();
        prop_assert_eq!(best.height(), result.min_height().unwrap());
    }

    /// Executing the flattest MSC plan on a random graph returns exactly the
    /// answers of the naive reference evaluator.
    #[test]
    fn distributed_execution_matches_reference(query in query_strategy(), seed in any::<u64>()) {
        let query = executable(&query);
        let graph = synthetic_graph(seed);
        let cluster = Cluster::load(graph, ClusterConfig::with_nodes(4));
        let expected = reference_eval(cluster.graph(), &query).len();
        let plan = Optimizer::with_variant(Variant::Msc)
            .optimize(&query)
            .flattest_plans()[0]
            .clone();
        let output = Executor::new(&cluster).execute_logical(&plan);
        prop_assert_eq!(output.distinct_count(), expected);
    }
}

#[test]
fn lubm_data_supports_the_synthetic_and_benchmark_workloads() {
    // Non-property-based sanity check gluing the pieces together once.
    let graph = LubmGenerator::new(LubmScale::tiny()).generate();
    assert!(graph.len() > 200);
    let query = cliquesquare_querygen::lubm_queries::q7();
    let pattern_count = query.len();
    assert_eq!(pattern_count, 5);
    let cluster = Cluster::load(graph, ClusterConfig::with_nodes(3));
    let plan = Optimizer::with_variant(Variant::Msc)
        .optimize(&query)
        .flattest_plans()[0]
        .clone();
    let output = Executor::new(&cluster).execute_logical(&plan);
    assert_eq!(
        output.distinct_count(),
        reference_eval(cluster.graph(), &query).len()
    );
}

#[test]
fn single_pattern_queries_execute_without_joins() {
    let graph = synthetic_graph(1);
    let cluster = Cluster::load(graph, ClusterConfig::with_nodes(2));
    let query = BgpQuery::new(
        vec![Variable::new("s"), Variable::new("o")],
        vec![TriplePattern::new(
            PatternTerm::variable("s"),
            PatternTerm::iri("http://synthetic.example/p1"),
            PatternTerm::variable("o"),
        )],
    );
    let plan = Optimizer::with_variant(Variant::Msc)
        .optimize(&query)
        .flattest_plans()[0]
        .clone();
    let output = Executor::new(&cluster).execute_logical(&plan);
    assert_eq!(output.metrics.join_output_tuples, 0);
    assert_eq!(
        output.distinct_count(),
        reference_eval(cluster.graph(), &query).len()
    );
}
