//! Smoke tests: every example in `examples/` runs to completion on
//! [`LubmScale::tiny`].
//!
//! Each example file is compiled into this test as a `#[path]` module and
//! driven through its `pub fn run(...)` entry point, so the exact code a
//! user would `cargo run --example` is what gets exercised — just at the
//! smallest dataset scale.

use cliquesquare_rdf::LubmScale;

#[allow(dead_code)]
#[path = "../examples/quickstart.rs"]
mod quickstart;

#[allow(dead_code)]
#[path = "../examples/plan_explorer.rs"]
mod plan_explorer;

#[allow(dead_code)]
#[path = "../examples/lubm_workload.rs"]
mod lubm_workload;

#[allow(dead_code)]
#[path = "../examples/variant_comparison.rs"]
mod variant_comparison;

#[allow(dead_code)]
#[path = "../examples/bulk_load.rs"]
mod bulk_load;

#[test]
fn quickstart_runs_to_completion_on_tiny_scale() {
    quickstart::run(LubmScale::tiny());
}

#[test]
fn plan_explorer_runs_to_completion_on_tiny_scale() {
    plan_explorer::run(LubmScale::tiny());
}

#[test]
fn lubm_workload_runs_to_completion_on_tiny_scale() {
    lubm_workload::run(LubmScale::tiny());
}

#[test]
fn variant_comparison_runs_to_completion() {
    variant_comparison::run();
}

#[test]
fn bulk_load_runs_to_completion_on_tiny_scale() {
    bulk_load::run(LubmScale::tiny());
}
