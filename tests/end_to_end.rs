//! End-to-end integration tests: LUBM data generation → partitioning →
//! CliqueSquare optimization → cost-based plan choice → MapReduce execution,
//! checked against the single-node reference evaluator for every LUBM query.

use cliquesquare_engine::csq::{Csq, CsqConfig};
use cliquesquare_engine::reference::reference_count;
use cliquesquare_mapreduce::{Cluster, ClusterConfig};
use cliquesquare_querygen::lubm_queries::{self, lubm_query};
use cliquesquare_rdf::{LubmGenerator, LubmScale};

fn small_cluster(nodes: usize) -> Cluster {
    let graph = LubmGenerator::new(LubmScale::tiny()).generate();
    Cluster::load(graph, ClusterConfig::with_nodes(nodes))
}

#[test]
fn every_lubm_query_returns_the_reference_answers() {
    let cluster = small_cluster(4);
    let csq = Csq::new(cluster.clone(), CsqConfig::default());
    for query in lubm_queries::lubm_queries() {
        let report = csq.run(&query);
        let expected = reference_count(cluster.graph(), &query);
        assert_eq!(
            report.result_count,
            expected,
            "{} returned {} answers, expected {}",
            query.name(),
            report.result_count,
            expected
        );
    }
}

#[test]
fn most_lubm_queries_have_answers_on_generated_data() {
    // The dataset must exercise the workload: the large majority of queries
    // (all but possibly the most selective constant-bound ones on the tiny
    // scale) should return non-empty results.
    let cluster = small_cluster(4);
    let graph = cluster.graph();
    let non_empty = lubm_queries::lubm_queries()
        .iter()
        .filter(|q| reference_count(graph, q) > 0)
        .count();
    assert!(
        non_empty >= 12,
        "only {non_empty}/14 LUBM queries have answers on the generated dataset"
    );
}

#[test]
fn answers_are_independent_of_the_cluster_size() {
    let query = lubm_query("Q9").unwrap();
    let mut counts = Vec::new();
    for nodes in [1, 3, 7] {
        let cluster = small_cluster(nodes);
        let csq = Csq::new(cluster, CsqConfig::default());
        counts.push(csq.run(&query).result_count);
    }
    assert_eq!(counts[0], counts[1]);
    assert_eq!(counts[1], counts[2]);
}

#[test]
fn flat_plans_use_fewer_jobs_than_patterns() {
    // CliqueSquare's whole point: even 9- and 10-pattern queries run in a
    // small number of MapReduce jobs, far fewer than one job per join.
    let cluster = small_cluster(4);
    let csq = Csq::new(cluster, CsqConfig::default());
    for name in ["Q11", "Q12", "Q13", "Q14"] {
        let query = lubm_query(name).unwrap();
        let report = csq.run(&query);
        assert!(
            report.jobs <= 3,
            "{name} used {} jobs for {} patterns",
            report.jobs,
            query.len()
        );
        assert!(report.plan_height <= 3);
    }
}

#[test]
fn simulated_time_grows_with_the_number_of_jobs() {
    let cluster = small_cluster(4);
    let csq = Csq::new(cluster, CsqConfig::default());
    let one_job = csq.run(&lubm_query("Q3").unwrap());
    let multi_job = csq.run(&lubm_query("Q14").unwrap());
    assert!(one_job.jobs <= multi_job.jobs);
    assert!(one_job.simulated_seconds < multi_job.simulated_seconds);
}

#[test]
fn report_contains_consistent_job_accounting() {
    let cluster = small_cluster(4);
    let csq = Csq::new(cluster, CsqConfig::default());
    for name in ["Q1", "Q7", "Q12"] {
        let report = csq.run(&lubm_query(name).unwrap());
        assert_eq!(report.jobs, report.execution.job_log.job_count());
        assert_eq!(report.execution.metrics.jobs as usize, report.jobs);
        assert!(report.execution.metrics.tuples_read > 0);
    }
}
