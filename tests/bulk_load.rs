//! Integration tests of the parallel bulk-load subsystem: the sharded load
//! must be **bit-identical** to the sequential ingest path — same `TermId`
//! assignment, same graph indexes, same partition files — at every thread
//! count, and a loaded cluster must answer queries exactly like a
//! sequentially built one.

use cliquesquare_engine::csq::{Csq, CsqConfig};
use cliquesquare_mapreduce::load::{BulkLoader, LoadOptions};
use cliquesquare_mapreduce::{Cluster, ClusterConfig, PartitionedStore, Runtime};
use cliquesquare_querygen::lubm_queries;
use cliquesquare_rdf::{ntriples, LubmGenerator, LubmScale, Term, TriplePosition};

/// A dataset with literals that exercise the escape paths: quotes,
/// backslashes, newlines, tabs and non-ASCII text.
fn spiky_ntriples() -> String {
    let graph = LubmGenerator::new(LubmScale::tiny()).generate();
    let mut text = ntriples::serialize(&graph);
    let mut extra = cliquesquare_rdf::Graph::new();
    extra.insert_terms(
        Term::iri("http://example.org/doc"),
        Term::iri("http://example.org/title"),
        Term::literal("A \"quoted\"\ttitle\nwith a back\\slash and café"),
    );
    extra.insert_terms(
        Term::iri("http://example.org/doc"),
        Term::iri("http://example.org/note"),
        Term::literal(String::new()),
    );
    text.push_str(&ntriples::serialize(&extra));
    text
}

/// The tentpole acceptance test: parallel N-Triples loads at threads
/// 1, 2 and 8 reproduce the sequential path bit for bit.
#[test]
fn sharded_ntriples_load_is_bit_identical_to_sequential() {
    let text = spiky_ntriples();
    let expected_graph = ntriples::parse_into_graph(&text).expect("baseline parses");
    let expected_store = PartitionedStore::build(&expected_graph, 7);
    let expected_stats = expected_store.stats();

    for threads in [1, 2, 8] {
        let loader = BulkLoader::new(Runtime::with_threads(threads));
        let output = loader
            .load_ntriples(&text, &LoadOptions::with_nodes(7))
            .expect("load succeeds");

        // Same dictionary ids: Graph equality covers the dictionary, the
        // triple list (encoded ids) and all three positional indexes.
        assert_eq!(output.graph, expected_graph, "threads={threads}");
        // Same partition files (same FileKey placement, same file order).
        assert_eq!(output.store, expected_store, "threads={threads}");
        assert_eq!(output.store.stats(), expected_stats, "threads={threads}");

        // Spot-check the id assignment explicitly (first-occurrence order).
        for (id, term) in expected_graph.dictionary().iter() {
            assert_eq!(
                output.graph.lookup(term),
                Some(id),
                "threads={threads}: id of {term} changed"
            );
        }
    }
}

/// Same contract for the LUBM generator input path.
#[test]
fn sharded_lubm_load_is_bit_identical_to_sequential() {
    let scale = LubmScale::default();
    let expected_graph = LubmGenerator::new(scale).generate();
    let expected_store = PartitionedStore::build(&expected_graph, 5);

    for threads in [1, 2, 8] {
        let loader = BulkLoader::new(Runtime::with_threads(threads));
        let output = loader.load_lubm(scale, &LoadOptions::with_nodes(5));
        assert_eq!(output.graph, expected_graph, "threads={threads}");
        assert_eq!(output.store, expected_store, "threads={threads}");
        assert_eq!(
            output.store.stats(),
            expected_store.stats(),
            "threads={threads}"
        );
        assert_eq!(output.report.threads, threads);
        assert_eq!(output.report.triples, expected_graph.len());
    }
}

/// Chunking is an implementation knob: any chunk count yields the same
/// result, including pathological over-chunking.
#[test]
fn chunk_count_never_changes_the_result() {
    let text = spiky_ntriples();
    let expected_graph = ntriples::parse_into_graph(&text).expect("baseline parses");
    for chunks in [1, 2, 5, 64] {
        let loader = BulkLoader::new(Runtime::with_threads(3));
        let output = loader
            .load_ntriples(
                &text,
                &LoadOptions {
                    nodes: 4,
                    chunks: Some(chunks),
                },
            )
            .expect("load succeeds");
        assert_eq!(output.graph, expected_graph, "chunks={chunks}");
    }
}

/// The partitioned dictionary merge engages on parallel runtimes and stays
/// bit-identical to the sequential first-occurrence merge at every thread
/// count (the satellite differential for the parallel merge rework).
#[test]
fn partitioned_merge_is_bit_identical_across_thread_counts() {
    let text = spiky_ntriples();
    let expected_graph = ntriples::parse_into_graph(&text).expect("baseline parses");
    let options = LoadOptions {
        nodes: 4,
        chunks: Some(6),
    };
    for threads in [1, 2, 8] {
        let loader = BulkLoader::new(Runtime::with_threads(threads));
        let output = loader
            .load_ntriples(&text, &options)
            .expect("load succeeds");
        if threads == 1 {
            assert_eq!(
                output.report.merge_partitions, 1,
                "sequential runtimes must keep the single-pass merge"
            );
        } else {
            assert!(
                output.report.merge_partitions > 1,
                "threads={threads}: parallel runtime fell back to the serial merge"
            );
        }
        assert_eq!(output.graph, expected_graph, "threads={threads}");
        for (id, term) in expected_graph.dictionary().iter() {
            assert_eq!(output.graph.lookup(term), Some(id), "threads={threads}");
        }
    }
}

/// A bulk-loaded cluster answers the 14 LUBM queries exactly like the
/// sequentially loaded cluster.
#[test]
fn bulk_loaded_cluster_answers_queries_identically() {
    let scale = LubmScale::tiny();
    let sequential_cluster = Cluster::load(
        LubmGenerator::new(scale).generate(),
        ClusterConfig::with_nodes(4),
    );
    let loader = BulkLoader::new(Runtime::with_threads(4));
    let output = loader.load_lubm(scale, &LoadOptions::with_nodes(4));
    let loaded_cluster = Cluster::load(output.graph, ClusterConfig::with_nodes(4));

    let csq_sequential = Csq::new(sequential_cluster, CsqConfig::default());
    let csq_loaded = Csq::new(loaded_cluster, CsqConfig::default());
    for query in lubm_queries::lubm_queries() {
        assert_eq!(
            csq_sequential.run(&query).result_count,
            csq_loaded.run(&query).result_count,
            "{} answers changed after bulk load",
            query.name()
        );
    }
}

/// Parse errors surface the document-global line number even when the
/// failing line sits deep inside a worker's chunk.
#[test]
fn chunked_parse_errors_report_global_line_numbers() {
    let mut text = "<a> <p> <b> .\n".repeat(100);
    text.push_str("<a> <p> \"unterminated\n");
    text.push_str(&"<a> <p> <b> .\n".repeat(100));
    let loader = BulkLoader::new(Runtime::with_threads(4));
    let err = loader
        .load_ntriples(&text, &LoadOptions::default())
        .unwrap_err();
    assert_eq!(err.line, 101);
    assert!(err.message.contains("unterminated literal"));
}

/// The loaded store supports the partitioner's access paths (sanity check
/// that the parallel build wires placement and file grouping correctly).
#[test]
fn loaded_store_supports_property_scans() {
    let scale = LubmScale::tiny();
    let loader = BulkLoader::new(Runtime::with_threads(2));
    let output = loader.load_lubm(scale, &LoadOptions::with_nodes(3));
    let works_for = output
        .graph
        .lookup(&Term::iri(cliquesquare_rdf::term::vocab::ub("worksFor")))
        .expect("worksFor exists");
    let expected = output
        .graph
        .triples_with(TriplePosition::Property, works_for)
        .count();
    assert!(expected > 0);
    for placement in TriplePosition::ALL {
        assert_eq!(
            output
                .store
                .scan_cardinality(placement, Some(works_for), None),
            expected
        );
    }
}
