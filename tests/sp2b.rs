//! End-to-end tests of the SP²Bench-flavoured workload: the streaming bulk
//! loader must ingest the DBLP-like generator output bit-identically to the
//! sequential path at every thread count, and the engine must answer the
//! chain/skew query set exactly like the naive reference evaluator.

use cliquesquare::engine::csq::{Csq, CsqConfig};
use cliquesquare::engine::reference;
use cliquesquare::mapreduce::load::{BulkLoader, LoadOptions};
use cliquesquare::mapreduce::{Cluster, ClusterConfig, PartitionedStore, Runtime};
use cliquesquare::querygen::sp2b_queries;
use cliquesquare::rdf::{Sp2bGenerator, Sp2bScale};

/// The SP²Bench analogue of the tentpole acceptance test: parallel loads of
/// generator output at threads 1, 2 and 8 reproduce the sequential build
/// bit for bit (ids, indexes, partition files).
#[test]
fn sp2b_bulk_load_is_bit_identical_to_sequential() {
    let scale = Sp2bScale::tiny();
    let expected_graph = Sp2bGenerator::new(scale).generate();
    let expected_store = PartitionedStore::build(&expected_graph, 5);

    for threads in [1, 2, 8] {
        let loader = BulkLoader::new(Runtime::with_threads(threads));
        let output = loader.load_sp2b(scale, &LoadOptions::with_nodes(5));
        assert_eq!(output.graph, expected_graph, "threads={threads}");
        assert_eq!(output.store, expected_store, "threads={threads}");
        assert_eq!(output.report.triples, expected_graph.len());
        for (id, term) in expected_graph.dictionary().iter() {
            assert_eq!(
                output.graph.lookup(term),
                Some(id),
                "threads={threads}: id of {term} changed"
            );
        }
    }
}

/// Every SP²Bench query returns the reference evaluator's answer count on a
/// bulk-loaded cluster, and every query has a non-empty answer (the
/// generator really produces the chains and skewed joins the queries walk).
#[test]
fn sp2b_queries_match_the_reference_evaluator() {
    let scale = Sp2bScale::tiny();
    let graph = Sp2bGenerator::new(scale).generate();

    let loader = BulkLoader::new(Runtime::with_threads(4));
    let output = loader.load_sp2b(scale, &LoadOptions::with_nodes(4));
    let cluster = Cluster::load(output.graph, ClusterConfig::with_nodes(4));
    let csq = Csq::new(cluster, CsqConfig::default());

    for query in sp2b_queries::sp2b_queries() {
        let expected = reference::reference_count(&graph, &query);
        let report = csq.run(&query);
        assert_eq!(
            report.result_count,
            expected,
            "{} diverges from the reference evaluator",
            query.name()
        );
        assert!(expected > 0, "{} has an empty answer", query.name());
    }
}

/// The streaming loader's in-flight gauge stays well below the parsed-bytes
/// total on generator input too (bounded-memory contract for the
/// generated-data path, not just N-Triples text).
#[test]
fn sp2b_streaming_load_bounds_inflight_bytes() {
    let scale = Sp2bScale::default();
    let loader = BulkLoader::new(Runtime::with_threads(2));
    let output = loader.load_sp2b(scale, &LoadOptions::with_nodes(4));
    let report = &output.report;
    assert!(report.parsed_bytes > 0);
    assert!(
        report.peak_inflight_bytes * 2 <= report.parsed_bytes,
        "peak in-flight {} vs parsed {}: the generated-data load is not streaming",
        report.peak_inflight_bytes,
        report.parsed_bytes
    );
}
