//! Integration tests for the plan-space inclusion lattice of Theorem 4.1 /
//! Figure 7 and the correctness statement of Theorem 4.2, verified
//! empirically on tractable queries.

use cliquesquare_core::paper_examples;
use cliquesquare_core::planspace::{figure7_inclusions, plan_signatures};
use cliquesquare_core::{Optimizer, OptimizerConfig, Variant};
use cliquesquare_querygen::{SyntheticShape, SyntheticWorkload, WorkloadConfig};
use std::collections::BTreeSet;

fn tractable_queries() -> Vec<cliquesquare_sparql::BgpQuery> {
    let mut queries = vec![
        paper_examples::figure10_query(),
        paper_examples::figure11_qx(),
        paper_examples::figure14_query(),
    ];
    // Keep the synthetic sample small (≤ 4 patterns): the inclusion checks
    // need the *unrestricted* SC plan space, which blows up combinatorially
    // on larger dense queries and would be truncated by the enumeration caps.
    queries.extend(SyntheticWorkload::generate(WorkloadConfig {
        queries_per_shape: 3,
        min_patterns: 2,
        max_patterns: 4,
        seed: 17,
    }));
    queries
}

#[test]
fn figure7_inclusions_hold_on_every_tractable_query() {
    let config = OptimizerConfig::recommended();
    for (smaller, larger) in figure7_inclusions() {
        for query in tractable_queries() {
            let small = plan_signatures(&query, smaller, config);
            let large = plan_signatures(&query, larger, config);
            assert!(
                small.is_subset(&large),
                "P_{smaller} should be included in P_{larger} on {}",
                query.name()
            );
        }
    }
}

#[test]
fn sc_has_the_largest_plan_space() {
    let config = OptimizerConfig::recommended();
    for query in tractable_queries() {
        let sc = plan_signatures(&query, Variant::Sc, config);
        for variant in Variant::ALL {
            let other = plan_signatures(&query, variant, config);
            assert!(
                other.is_subset(&sc),
                "P_{variant} should be included in P_SC on {}",
                query.name()
            );
        }
    }
}

#[test]
fn incomparable_variants_have_incomparable_spaces_somewhere() {
    // MSC+ and MXC are incomparable in Figure 7: each builds a plan the
    // other cannot, on at least one query of the sample.
    let config = OptimizerConfig::recommended();
    let mut msc_plus_exclusive = false;
    let mut mxc_exclusive = false;
    for query in tractable_queries() {
        let a = plan_signatures(&query, Variant::MscPlus, config);
        let b = plan_signatures(&query, Variant::Mxc, config);
        if a.difference(&b).next().is_some() {
            msc_plus_exclusive = true;
        }
        if b.difference(&a).next().is_some() {
            mxc_exclusive = true;
        }
    }
    assert!(
        msc_plus_exclusive,
        "MSC+ never produced a plan outside MXC's space"
    );
    assert!(
        mxc_exclusive,
        "MXC never produced a plan outside MSC+'s space"
    );
}

#[test]
fn every_variant_produces_only_plans_that_cover_the_query() {
    // Soundness (one half of Theorem 4.2) for every variant: each generated
    // plan matches every triple pattern exactly once per Match operator and
    // joins them into a single connected result.
    let config = OptimizerConfig::recommended();
    for query in tractable_queries() {
        for variant in Variant::ALL {
            let result = Optimizer::new(OptimizerConfig { variant, ..config }).optimize(&query);
            for plan in &result.plans {
                let matched: BTreeSet<usize> = plan
                    .match_ops()
                    .into_iter()
                    .map(|id| match plan.op(id) {
                        cliquesquare_core::LogicalOp::Match { pattern_index, .. } => *pattern_index,
                        _ => unreachable!(),
                    })
                    .collect();
                assert_eq!(
                    matched,
                    (0..query.len()).collect::<BTreeSet<_>>(),
                    "{variant} built a plan not covering {}",
                    query.name()
                );
            }
        }
    }
}

#[test]
fn star_queries_collapse_to_a_single_flat_join() {
    // A pure star has a single maximal clique covering every node: the
    // minimum-cover and maximal-clique variants all degenerate to exactly one
    // plan (the 6-way star join), and even the exhaustive variants cannot do
    // flatter than height 1.
    let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(2);
    let star = SyntheticWorkload::query(SyntheticShape::Star, 6, &mut rng);
    for variant in [
        Variant::MxcPlus,
        Variant::MscPlus,
        Variant::Mxc,
        Variant::Msc,
        Variant::XcPlus,
        Variant::ScPlus,
    ] {
        let result = Optimizer::with_variant(variant).optimize(&star);
        assert_eq!(result.plans.len(), 1, "{variant}");
        assert_eq!(result.plans[0].height(), 1);
        assert_eq!(result.plans[0].max_join_fanin(), 6);
    }
    for variant in [Variant::Xc, Variant::Sc] {
        // The unrestricted variants enumerate every cover of the single
        // 6-node clique — hundreds of thousands of plans. Cap the search:
        // the height-1 plan comes from the one-clique decomposition, which
        // any non-trivial prefix of the enumeration contains.
        let config = OptimizerConfig::variant(variant).with_max_plans(20_000);
        let result = Optimizer::new(config).optimize(&star);
        assert!(!result.plans.is_empty(), "{variant}");
        assert_eq!(result.min_height(), Some(1), "{variant}");
    }
}
