//! Tests of the interesting-orders pass and the sort elision it buys.
//!
//! Three layers:
//! * unit tests of the propagation rules on the paper's example queries
//!   (Figures 1, 10, 11 and 14) — requirements flow down to join inputs,
//!   delivered orders satisfy them where the translation promises it;
//! * whole-suite elision accounting on the 14 LUBM queries — re-sorted join
//!   inputs are the rare exception, not the rule, and multi-job plans elide
//!   their intermediate re-sorts;
//! * a differential proptest: order-elided execution of random queries is
//!   **bit-identical** to the reference evaluator's answer relation, at
//!   threads {1, 2, 8}.

use cliquesquare_core::{paper_examples, Optimizer, Variant};
use cliquesquare_engine::reference::reference_eval_with;
use cliquesquare_engine::relation::stats;
use cliquesquare_engine::{translate, Executor, PhysicalOp};
use cliquesquare_mapreduce::{Cluster, ClusterConfig, Runtime};
use cliquesquare_querygen::lubm_queries::lubm_queries;
use cliquesquare_querygen::{SyntheticShape, SyntheticWorkload};
use cliquesquare_rdf::{Graph, LubmGenerator, LubmScale, Term};
use cliquesquare_sparql::{BgpQuery, Variable};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn lubm_cluster() -> Cluster {
    let graph = LubmGenerator::new(LubmScale::tiny()).generate();
    Cluster::load(graph, ClusterConfig::with_nodes(4))
}

/// The propagation rules, checked on every MSC plan of every paper example
/// query: each join input is required in the join's attribute order, scans
/// and pass-throughs deliver duplicate-free orders over their own output,
/// and a join whose requirement its natural key order satisfies keeps it.
#[test]
fn ordering_rules_hold_on_the_paper_example_plans() {
    let graph = LubmGenerator::new(LubmScale::tiny()).generate();
    for query in paper_examples::all() {
        let result = Optimizer::with_variant(Variant::Msc).optimize(&query);
        assert!(
            !result.plans.is_empty(),
            "{}: MSC finds a plan for every paper example",
            query.name()
        );
        for logical in result.plans.iter().take(4) {
            let physical = translate(logical, &graph);
            for id in physical.ops_where(|_| true) {
                let op = physical.op(id);
                let ordering = physical.ordering(id);
                // Delivered orders never repeat a variable and only mention
                // the operator's own output.
                let output = op.output();
                for (i, v) in ordering.delivered.iter().enumerate() {
                    assert!(!ordering.delivered[..i].contains(v), "duplicate in order");
                    assert!(output.contains(v), "delivered order outside the output");
                }
                // A join requires each input in its attribute order — unless
                // a different consumer of a shared input claimed first.
                if let PhysicalOp::MapJoin {
                    attributes, inputs, ..
                }
                | PhysicalOp::ReduceJoin {
                    attributes, inputs, ..
                } = op
                {
                    let attrs: Vec<Variable> = attributes.iter().cloned().collect();
                    let mut satisfied_inputs = 0usize;
                    for input in inputs {
                        let below = physical.ordering(*input);
                        if below.required == attrs && below.is_satisfied() {
                            satisfied_inputs += 1;
                        }
                    }
                    assert!(
                        satisfied_inputs > 0,
                        "{}: no input of a join delivers its key order",
                        query.name()
                    );
                    // The join's own delivered order satisfies its
                    // requirement by construction.
                    assert!(ordering.is_satisfied(), "join ordering unsatisfied");
                }
            }
        }
    }
}

/// Executing the paper's running example (Figure 1 Q1, 11 patterns) matches
/// the reference evaluator while eliding more sorts than it performs.
#[test]
fn figure1_q1_executes_order_elided_and_matches_the_reference() {
    // The figure's vocabulary (ub:p1 … ub:p11) does not exist in the LUBM
    // data, so build a small synthetic graph over it.
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(7);
    let mut graph = Graph::new();
    for p in 1..=11u32 {
        for _ in 0..120 {
            let s = rng.gen_range(0..30);
            let o = rng.gen_range(0..30);
            graph.insert_terms(
                Term::iri(format!("http://example.org/n{s}")),
                Term::iri(cliquesquare_rdf::term::vocab::ub(&format!("p{p}"))),
                Term::iri(format!("http://example.org/n{o}")),
            );
        }
    }
    // "C1" is a literal object in the figure; make sure some triples match.
    for s in 0..10u32 {
        graph.insert_terms(
            Term::iri(format!("http://example.org/n{s}")),
            Term::iri(cliquesquare_rdf::term::vocab::ub("p11")),
            Term::literal("C1"),
        );
    }
    let cluster = Cluster::load(graph, ClusterConfig::with_nodes(4));
    let query = paper_examples::figure1_q1();
    let result = Optimizer::with_variant(Variant::Msc).optimize(&query);
    let logical = result.flattest_plans()[0].clone();
    let reference = reference_eval_with(cluster.graph(), &query, &Runtime::sequential());

    stats::reset();
    let output = Executor::sequential(&cluster).execute_logical(&logical);
    let after = stats::snapshot();
    assert_eq!(output.results.clone().distinct(), reference);
    assert!(
        after.sorts_elided > after.sorts_performed,
        "elided {} vs performed {}",
        after.sorts_elided,
        after.sorts_performed
    );
}

/// Across the whole 14-query LUBM suite, every join input arrives in key
/// order: with shared-consumer claim splitting and the ≤1-row fast path, no
/// query pays a single re-sort, and every executor answer set still matches
/// the reference evaluator.
#[test]
fn lubm_suite_pays_no_join_input_resorts() {
    let cluster = lubm_cluster();
    let executor = Executor::sequential(&cluster);
    let mut presorted_total = 0u64;
    for query in lubm_queries() {
        let result = Optimizer::with_variant(Variant::Msc).optimize(&query);
        let logical = result.flattest_plans()[0].clone();
        let reference = reference_eval_with(cluster.graph(), &query, &Runtime::sequential());
        stats::reset();
        let output = executor.execute_logical(&logical);
        let after = stats::snapshot();
        assert_eq!(
            output.results.clone().distinct(),
            reference,
            "{}: order-elided execution changed the answers",
            query.name()
        );
        assert_eq!(
            after.join_inputs_resorted,
            0,
            "{}: a join input paid a re-sort",
            query.name()
        );
        presorted_total += after.join_inputs_presorted;
    }
    assert!(presorted_total > 0, "the suite exercises ordered joins");
}

/// Multi-job plans elide their intermediate re-sorts: on a plan with at
/// least one MapShuffler (a reduce join consuming a reduce join), the
/// shuffled intermediate arrives in the consuming join's key order.
#[test]
fn multi_job_plans_keep_shuffled_intermediates_in_key_order() {
    let cluster = lubm_cluster();
    let mut checked = 0usize;
    for query in lubm_queries() {
        let result = Optimizer::with_variant(Variant::Msc).optimize(&query);
        let logical = result.flattest_plans()[0].clone();
        let physical = translate(&logical, cluster.graph());
        let shufflers = physical.ops_where(|op| matches!(op, PhysicalOp::MapShuffler { .. }));
        if shufflers.is_empty() {
            continue;
        }
        checked += 1;
        for id in shufflers {
            let ordering = physical.ordering(id);
            assert!(
                ordering.is_satisfied(),
                "{}: shuffled intermediate not in its consumer's key order: {ordering:?}",
                query.name()
            );
        }
    }
    assert!(checked > 0, "the suite contains multi-job plans");
}

/// Strategy: a random query shape, size and seed (same distribution as the
/// synthetic optimizer workload of Section 6.2).
fn query_strategy() -> impl Strategy<Value = BgpQuery> {
    (0usize..4, 2usize..7, any::<u64>()).prop_map(|(shape, size, seed)| {
        let shape = SyntheticShape::ALL[shape];
        let mut rng = StdRng::seed_from_u64(seed);
        SyntheticWorkload::query(shape, size, &mut rng)
    })
}

/// A small random graph over the synthetic property vocabulary used by the
/// generated queries, so that executions can produce non-empty answers.
fn synthetic_graph(seed: u64) -> Graph {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graph = Graph::new();
    for _ in 0..600 {
        let s = rng.gen_range(0..40);
        let p = rng.gen_range(1..11);
        let o = rng.gen_range(0..40);
        graph.insert_terms(
            Term::iri(format!("http://synthetic.example/node{s}")),
            Term::iri(format!("http://synthetic.example/p{p}")),
            Term::iri(format!("http://synthetic.example/node{o}")),
        );
    }
    graph
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The ISSUE-mandated differential oracle: order-elided execution of a
    /// random query produces an answer relation **bit-identical** to the
    /// reference evaluator's (same rows, same bytes, after `distinct`), and
    /// bit-identical across thread counts {1, 2, 8}.
    #[test]
    fn order_elided_execution_is_bit_identical_to_the_reference(
        query in query_strategy(),
        seed in any::<u64>(),
    ) {
        let graph = synthetic_graph(seed);
        let cluster = Cluster::load(graph, ClusterConfig::with_nodes(3));
        // Project every variable so that answer comparison is strict.
        let query = BgpQuery::named(
            query.name().to_string(),
            query.variables(),
            query.patterns().to_vec(),
        );
        let result = Optimizer::with_variant(Variant::Msc).optimize(&query);
        prop_assert!(!result.plans.is_empty(), "synthetic queries are connected");
        let logical = result.flattest_plans()[0].clone();
        let reference = reference_eval_with(cluster.graph(), &query, &Runtime::sequential());

        let sequential = Executor::sequential(&cluster).execute_logical(&logical);
        prop_assert!(sequential.results.is_canonical());
        // A query distinguishing every variable may execute without a root
        // projection, so the executor's schema is the join-union order while
        // the reference's follows pattern-traversal order; align the columns
        // before the bit-for-bit comparison.
        let align = |results: &cliquesquare_engine::Relation| {
            results.clone().distinct().project(reference.schema()).distinct()
        };
        if reference.is_empty() {
            prop_assert!(sequential.results.is_empty());
        } else {
            prop_assert_eq!(
                &align(&sequential.results),
                &reference,
                "sequential order-elided execution differs from the reference"
            );
        }
        for threads in [2usize, 8] {
            let parallel = Executor::with_runtime(&cluster, Runtime::with_threads(threads))
                .execute_logical(&logical);
            prop_assert_eq!(
                &sequential.results,
                &parallel.results,
                "threads={} changed the result relation",
                threads
            );
            if !reference.is_empty() {
                prop_assert_eq!(
                    &align(&parallel.results),
                    &reference,
                    "threads={} differs from the reference",
                    threads
                );
            }
        }
    }
}
