//! Integration tests for the logical → physical → MapReduce-job pipeline of
//! Section 5, including the Figure 15 style job grouping on the paper's
//! running example.

use cliquesquare_core::{paper_examples, Optimizer, Variant};
use cliquesquare_engine::jobs::schedule;
use cliquesquare_engine::physical::PhysicalOp;
use cliquesquare_engine::translate;
use cliquesquare_mapreduce::JobKind;
use cliquesquare_querygen::lubm_queries;
use cliquesquare_rdf::{Graph, LubmGenerator, LubmScale};

fn data() -> Graph {
    LubmGenerator::new(LubmScale::tiny()).generate()
}

#[test]
fn figure1_query_translates_to_a_three_level_physical_plan() {
    let graph = data();
    let query = paper_examples::figure1_q1();
    let logical = Optimizer::with_variant(Variant::Msc)
        .optimize(&query)
        .flattest_plans()[0]
        .clone();
    assert_eq!(logical.height(), 3);
    let physical = translate(&logical, &graph);
    // First-level joins are co-located map joins; the upper levels shuffle.
    assert!(physical.map_join_count() >= 2);
    assert!(physical.reduce_join_count() >= 2);
    let sched = schedule(&physical);
    assert_eq!(
        sched.job_count, 2,
        "a height-3 MSC plan of Q1 runs in 2 jobs"
    );
    assert!(sched.kinds.iter().all(|k| *k == JobKind::MapReduce));
}

#[test]
fn every_lubm_query_gets_a_valid_job_schedule() {
    let graph = data();
    for query in lubm_queries::lubm_queries() {
        let logical = Optimizer::with_variant(Variant::Msc)
            .optimize(&query)
            .flattest_plans()[0]
            .clone();
        let physical = translate(&logical, &graph);
        let sched = schedule(&physical);
        assert!(sched.job_count >= 1);
        assert_eq!(sched.op_jobs.len(), physical.len());
        for (index, op) in physical.ops().iter().enumerate() {
            let job = sched.op_jobs[index];
            assert!(
                (1..=sched.job_count).contains(&job),
                "{}: operator {index} assigned to invalid job {job}",
                query.name()
            );
            // Reduce joins never land in a later job than their consumers.
            for input in op.inputs() {
                assert!(
                    sched.op_jobs[input.index()] <= job,
                    "{}: data flows backwards between jobs",
                    query.name()
                );
            }
        }
    }
}

#[test]
fn scan_count_matches_match_edge_count() {
    // The translation creates one MapScan per outgoing edge of each logical
    // Match operator, so tree-shaped plans have exactly one scan per pattern.
    let graph = data();
    for query in lubm_queries::lubm_queries() {
        let logical = Optimizer::with_variant(Variant::Msc)
            .optimize(&query)
            .flattest_plans()[0]
            .clone();
        let physical = translate(&logical, &graph);
        let scans = physical.ops_where(|op| matches!(op, PhysicalOp::MapScan { .. }));
        if logical.is_tree() {
            assert_eq!(scans.len(), query.len(), "{}", query.name());
        } else {
            assert!(scans.len() >= query.len(), "{}", query.name());
        }
    }
}

#[test]
fn constant_properties_restrict_the_scanned_files() {
    let graph = data();
    let query = lubm_queries::lubm_query("Q4").unwrap();
    let logical = Optimizer::with_variant(Variant::Msc)
        .optimize(&query)
        .flattest_plans()[0]
        .clone();
    let physical = translate(&logical, &graph);
    for id in physical.ops_where(|op| matches!(op, PhysicalOp::MapScan { .. })) {
        if let PhysicalOp::MapScan { spec, .. } = physical.op(id) {
            // Every pattern of Q4 has a constant property, so every scan is
            // restricted to a single property file.
            assert!(spec.property.is_some());
        }
    }
}

#[test]
fn map_only_plans_have_no_shufflers() {
    let graph = data();
    let query = lubm_queries::lubm_query("Q3").unwrap();
    let logical = Optimizer::with_variant(Variant::Msc)
        .optimize(&query)
        .flattest_plans()[0]
        .clone();
    assert_eq!(logical.height(), 1);
    let physical = translate(&logical, &graph);
    assert_eq!(physical.reduce_join_count(), 0);
    assert!(physical
        .ops_where(|op| matches!(op, PhysicalOp::MapShuffler { .. }))
        .is_empty());
    let sched = schedule(&physical);
    assert_eq!(sched.descriptor(), "M");
}
