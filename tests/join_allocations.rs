//! Allocation regression tests for the flat columnar relation layer.
//!
//! A counting global allocator measures the *actual* number of heap
//! allocations performed by [`Relation::join`] and the shuffle's
//! [`hash_partition`]: both must allocate a bounded number of whole buffers
//! — never one allocation per row or per key. The engine's own
//! `relation::stats` counters are cross-checked in the same run.

use cliquesquare::engine::relation::stats;
use cliquesquare::engine::{hash_partition, join_runs, Relation};
use cliquesquare::rdf::TermId;
use cliquesquare::sparql::Variable;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Wraps the system allocator, counting every allocation call made by the
/// **current thread** (a per-thread counter keeps concurrently running
/// tests in this binary from polluting each other's measurements).
struct CountingAllocator;

thread_local! {
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCATIONS.with(|n| n.set(n.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        THREAD_ALLOCATIONS.with(|n| n.set(n.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    THREAD_ALLOCATIONS.with(Cell::get)
}

fn v(name: &str) -> Variable {
    Variable::new(name)
}

/// Builds an `(x, a)` relation of `rows` rows through the zero-allocation
/// `push_row` path (one buffer reserve up front).
fn build(schema: &[&str], rows: usize, key_of: impl Fn(usize) -> u32) -> Relation {
    let mut relation = Relation::empty(schema.iter().map(|s| v(s)).collect());
    for i in 0..rows {
        relation.push_row(&[TermId(key_of(i)), TermId(i as u32)]);
    }
    relation
}

/// `Relation::join` allocates whole buffers, not per-row keys: the absolute
/// allocation count of a 4 000 × 4 000-row join stays bounded by a small
/// constant (the historical hash join allocated a key `Vec` per row plus a
/// `Vec<Option<TermId>>` template per output row — tens of thousands here).
#[test]
fn sort_merge_join_allocates_no_per_row_memory() {
    const ROWS: usize = 4_000;
    // Mostly-unique keys: output size ~= input size.
    let left = build(&["x", "a"], ROWS, |i| i as u32);
    // Trailing key on the right side to also exercise the re-sort path.
    let right = build(&["b", "x"], ROWS, |i| (ROWS - i) as u32);

    stats::reset();
    let before = allocations();
    let joined = Relation::join(&[&left, &right], &[v("x")]);
    let during_join = allocations() - before;
    let relation_stats = stats::snapshot();

    assert!(
        joined.len() >= ROWS - 1,
        "join produced {} rows",
        joined.len()
    );
    assert_eq!(
        relation_stats.row_allocs, 0,
        "per-row heap allocation on the join path"
    );
    assert_eq!(relation_stats.join_rows_out, joined.len() as u64);
    assert!(
        during_join < 256,
        "join of {ROWS}x{ROWS} rows performed {during_join} allocations \
         (expected a small constant, got per-row behaviour)"
    );
}

/// The shuffle path builds per-node flat buffers directly: allocations
/// scale with the node count (plus buffer growth), never with the rows.
#[test]
fn shuffle_partitioning_allocates_no_per_row_memory() {
    const ROWS: usize = 4_000;
    const NODES: usize = 8;
    let relation = build(&["x", "a"], ROWS, |i| (i * 7) as u32);

    stats::reset();
    let before = allocations();
    let buckets = hash_partition(&relation, &[v("x")], NODES);
    let during_shuffle = allocations() - before;
    let relation_stats = stats::snapshot();

    assert_eq!(buckets.len(), NODES);
    assert_eq!(buckets.iter().map(Relation::len).sum::<usize>(), ROWS);
    assert_eq!(
        relation_stats.row_allocs, 0,
        "per-row heap allocation on the shuffle path"
    );
    assert!(
        during_shuffle < 256,
        "shuffle of {ROWS} rows across {NODES} nodes performed {during_shuffle} \
         allocations (expected O(nodes), got per-row behaviour)"
    );
}

/// The factorized join kernels (run emission and the projection-boundary
/// expansion) allocate whole buffers like the eager sort-merge path: no
/// per-row or per-run heap traffic.
#[test]
fn factorized_join_and_expansion_allocate_no_per_row_memory() {
    const ROWS: usize = 4_000;
    // 16 distinct keys: a high-fan-out star whose cross products dwarf the
    // run count, so per-run allocation would still be cheap but per-expanded-
    // row allocation would blow the bound.
    let left = build(&["x", "a"], ROWS, |i| (i % 16) as u32);
    let right = build(&["x", "b"], ROWS, |i| (i % 16) as u32);

    stats::reset();
    let before = allocations();
    let runs = join_runs(&[&left, &right], &[v("x")], &[]);
    let expanded = runs.expand();
    let during = allocations() - before;
    let relation_stats = stats::snapshot();

    assert_eq!(runs.runs(), 16);
    assert_eq!(expanded.len(), 16 * (ROWS / 16) * (ROWS / 16));
    assert_eq!(
        relation_stats.row_allocs, 0,
        "per-row heap allocation on the factorized path"
    );
    assert_eq!(relation_stats.runs_emitted, 16);
    assert_eq!(relation_stats.rows_expanded, expanded.len() as u64);
    assert!(
        during < 256,
        "factorized join + expansion of {ROWS}x{ROWS} rows performed {during} \
         allocations (expected a small constant, got per-row behaviour)"
    );
}

/// `hash_partition` reserves per-bucket capacity from the observed routing
/// counts, not the input row count: on a fully skewed input the empty
/// buckets reserve nothing, so the total reserved bytes stay bounded by the
/// input (the old per-bucket `rows * arity` reservation held `NODES`x that).
#[test]
fn shuffle_reservations_track_bucket_fill_not_input_size() {
    const ROWS: usize = 4_000;
    const NODES: usize = 8;
    // Every row hashes to the same bucket: worst-case skew.
    let relation = build(&["x", "a"], ROWS, |_| 42);
    let input_bytes = std::mem::size_of_val(relation.data());

    let buckets = hash_partition(&relation, &[v("x")], NODES);
    let reserved: usize = buckets.iter().map(Relation::reserved_bytes).sum();

    assert_eq!(buckets.iter().map(Relation::len).sum::<usize>(), ROWS);
    assert!(
        buckets.iter().filter(|b| b.is_empty()).count() >= NODES - 1,
        "skewed input should fill at most one bucket"
    );
    assert!(
        reserved <= input_bytes,
        "buckets reserved {reserved} bytes for a {input_bytes}-byte input \
         (per-bucket reservations no longer track observed fill)"
    );
}

/// Doubling the row count must not meaningfully change the allocation
/// count of a join (only the logarithmic buffer-growth term moves).
#[test]
fn join_allocations_do_not_scale_with_row_count() {
    let count_join = |rows: usize| -> u64 {
        let left = build(&["x", "a"], rows, |i| i as u32);
        let right = build(&["x", "b"], rows, |i| i as u32);
        let before = allocations();
        let joined = Relation::join(&[&left, &right], &[v("x")]);
        let spent = allocations() - before;
        assert_eq!(joined.len(), rows);
        spent
    };
    let small = count_join(1_000);
    let large = count_join(8_000);
    assert!(
        large <= small + 16,
        "8x the rows cost {large} allocations vs {small}: the join allocates per row"
    );
}
