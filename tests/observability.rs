//! Cross-cutting observability guarantees:
//!
//! * profiling a query must never change its answer, at any thread count;
//! * the per-query span tree must tile the measured wall clock — parse,
//!   plan and execute spans cover the query, job spans cover the execution;
//! * the global metric registry must mirror the thread-local relation
//!   counters the reports are built from.

use cliquesquare::engine::csq::{Csq, CsqConfig};
use cliquesquare::engine::relation::stats as relation_stats;
use cliquesquare::engine::{translate, Executor};
use cliquesquare::mapreduce::{Cluster, ClusterConfig, Runtime};
use cliquesquare::obs;
use cliquesquare::querygen::lubm_queries::lubm_queries;
use cliquesquare::rdf::{LubmGenerator, LubmScale};
use cliquesquare_server::QueryService;

fn cluster() -> Cluster {
    let graph = LubmGenerator::new(LubmScale::tiny()).generate();
    Cluster::load(graph, ClusterConfig::with_nodes(4))
}

#[test]
fn profiling_is_bit_neutral_at_every_thread_count() {
    let cluster = cluster();
    let csq = Csq::new(cluster.clone(), CsqConfig::default());
    for threads in [1, 2, 8] {
        let executor = Executor::with_runtime(&cluster, Runtime::with_threads(threads));
        for query in lubm_queries() {
            let (_, chosen, _) = csq.plan(&query);
            let physical = translate(&chosen, cluster.graph());
            let plain = executor.execute(&physical);
            let profiled = executor.execute_profiled(&physical);
            assert_eq!(
                plain.results,
                profiled.results,
                "{} at {threads} thread(s): profiling changed the answer set",
                query.name()
            );
            assert_eq!(
                plain.job_log.descriptor(),
                profiled.job_log.descriptor(),
                "{} at {threads} thread(s): profiling changed the job structure",
                query.name()
            );
            assert!(plain.profile.is_none());
            let tree = profiled.profile.expect("profiled run returns a span tree");
            assert!(!tree.children.is_empty(), "execute span has job children");
        }
    }
}

#[test]
fn profile_spans_tile_the_measured_wall_clock() {
    let service = QueryService::new(cluster(), Runtime::serving(2));
    let answer = service
        .execute_named_opts("Q2", true)
        .expect("Q2 serves profiled");
    let profile = answer.profile.expect("profile attached");
    assert_eq!(profile.query, "Q2");
    assert_eq!(profile.threads, 2);
    assert!(profile.total_wall_seconds > 0.0);
    assert_eq!(profile.root.name, "query");

    let names: Vec<&str> = profile
        .root
        .children
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    assert_eq!(names, ["parse", "plan", "execute"]);

    // parse + plan + execute cover the whole query: nothing else happens
    // between those phases, so their walls sum to the total up to the
    // instrumentation gaps themselves.
    let phase_sum = profile.root.children_wall_seconds();
    let total = profile.root.wall_seconds;
    assert!(
        (phase_sum - total).abs() <= 0.1 * total + 1e-3,
        "phase walls {phase_sum}s do not tile the query total {total}s"
    );

    // Jobs run one after another inside the execution, so the per-job
    // (wave-level) walls are disjoint and must fit inside the execute span.
    let execute = &profile.root.children[2];
    assert!(
        !execute.children.is_empty(),
        "execute span has job children"
    );
    let job_sum = execute.children_wall_seconds();
    assert!(
        job_sum <= execute.wall_seconds + 1e-3,
        "job walls {job_sum}s exceed the execute span {}s",
        execute.wall_seconds
    );
    for job in &execute.children {
        assert!(job.name.starts_with("job "));
        assert!(
            !job.children.is_empty(),
            "{}: job span has operator children",
            job.name
        );
    }
    // The execution produced the answer the client saw.
    let last_job = execute.children.last().unwrap();
    assert!(last_job.rows_out as usize >= answer.total_rows);
}

#[test]
fn registry_mirrors_the_thread_local_relation_counters() {
    let registry = obs::global();
    let join_rows = registry.counter(
        "csq_relation_join_rows_total",
        "Rows produced by the n-ary sort-merge join",
        &[],
    );
    let sorts_performed = registry.counter(
        "csq_relation_sorts_total",
        "Ordering requirements by outcome",
        &[("outcome", "performed")],
    );
    let runs_emitted = registry.counter(
        "csq_relation_runs_emitted_total",
        "Key groups emitted as factorized runs",
        &[],
    );
    let peak_rows = registry.gauge(
        "csq_relation_peak_rows",
        "Largest single intermediate relation, in rows",
        &[],
    );

    let cluster = cluster();
    let csq = Csq::new(cluster.clone(), CsqConfig::default());
    let executor = Executor::sequential(&cluster);
    let query = lubm_queries().remove(1); // Q2: has joins and sorts
    let (_, chosen, _) = csq.plan(&query);
    let physical = translate(&chosen, cluster.graph());

    let before = (join_rows.get(), sorts_performed.get(), runs_emitted.get());
    relation_stats::reset();
    std::hint::black_box(executor.execute(&physical));
    let local = relation_stats::snapshot();

    // The sequential runtime bumps both the thread-local counters and the
    // registry from this thread; other tests in this process may add more,
    // so the registry delta is a lower-bounded mirror.
    assert!(local.join_rows_out > 0, "Q2 joins produce rows");
    assert!(join_rows.get() - before.0 >= local.join_rows_out);
    assert!(sorts_performed.get() - before.1 >= local.sorts_performed);
    assert!(runs_emitted.get() - before.2 >= local.runs_emitted);
    assert!(peak_rows.get() >= local.peak_rows as i64);
}
