//! Integration tests for the Figure 21 system comparison: CSQ vs SHAPE-2f vs
//! H2RDF+ must agree on every answer, and their relative performance must
//! follow the shape the paper reports.

use cliquesquare_baselines::{H2RdfSystem, ShapeSystem};
use cliquesquare_engine::csq::{Csq, CsqConfig};
use cliquesquare_engine::reference::reference_count;
use cliquesquare_mapreduce::{Cluster, ClusterConfig};
use cliquesquare_querygen::lubm_queries::{self, lubm_query, non_selective_queries};
use cliquesquare_rdf::{LubmGenerator, LubmScale};

fn cluster() -> Cluster {
    let graph = LubmGenerator::new(LubmScale::tiny()).generate();
    Cluster::load(graph, ClusterConfig::with_nodes(7))
}

#[test]
fn all_three_systems_agree_with_the_reference_on_every_query() {
    let cluster = cluster();
    let csq = Csq::new(cluster.clone(), CsqConfig::default());
    let shape = ShapeSystem::new(&cluster);
    let h2rdf = H2RdfSystem::new(&cluster);
    for query in lubm_queries::lubm_queries() {
        let expected = reference_count(cluster.graph(), &query);
        assert_eq!(
            csq.run(&query).result_count,
            expected,
            "CSQ on {}",
            query.name()
        );
        assert_eq!(
            shape.run(&query).result_count,
            expected,
            "SHAPE on {}",
            query.name()
        );
        assert_eq!(
            h2rdf.run(&query).result_count,
            expected,
            "H2RDF+ on {}",
            query.name()
        );
    }
}

#[test]
fn csq_needs_far_fewer_jobs_than_h2rdf_on_large_queries() {
    let cluster = cluster();
    let csq = Csq::new(cluster.clone(), CsqConfig::default());
    let h2rdf = H2RdfSystem::new(&cluster);
    for name in ["Q9", "Q11", "Q12", "Q13", "Q14"] {
        let query = lubm_query(name).unwrap();
        let csq_jobs = csq.run(&query).jobs;
        let h2rdf_jobs = h2rdf.run(&query).jobs;
        assert!(
            csq_jobs * 2 <= h2rdf_jobs,
            "{name}: CSQ used {csq_jobs} jobs, H2RDF+ {h2rdf_jobs}"
        );
    }
}

#[test]
fn csq_outperforms_h2rdf_on_non_selective_queries() {
    let cluster = cluster();
    let csq = Csq::new(cluster.clone(), CsqConfig::default());
    let h2rdf = H2RdfSystem::new(&cluster);
    let mut csq_total = 0.0;
    let mut h2rdf_total = 0.0;
    for query in non_selective_queries() {
        csq_total += csq.run(&query).simulated_seconds;
        h2rdf_total += h2rdf.run(&query).simulated_seconds;
    }
    assert!(
        csq_total * 1.5 < h2rdf_total,
        "expected CSQ ({csq_total:.1}s) to clearly beat H2RDF+ ({h2rdf_total:.1}s) on non-selective queries"
    );
}

#[test]
fn shape_wins_on_its_pwoc_queries() {
    // Q2, Q4, Q9, Q10 are PWOC for SHAPE-2f: it answers them without any
    // MapReduce job and therefore at least as fast as CSQ.
    let cluster = cluster();
    let csq = Csq::new(cluster.clone(), CsqConfig::default());
    let shape = ShapeSystem::new(&cluster);
    for name in ["Q2", "Q4", "Q9", "Q10"] {
        let query = lubm_query(name).unwrap();
        let shape_report = shape.run(&query);
        let csq_report = csq.run(&query);
        assert_eq!(shape_report.jobs, 0, "{name} should be PWOC for SHAPE");
        assert!(
            shape_report.simulated_seconds <= csq_report.simulated_seconds,
            "{name}: SHAPE ({:.2}s) should not lose to CSQ ({:.2}s) on its PWOC query",
            shape_report.simulated_seconds,
            csq_report.simulated_seconds
        );
    }
}

#[test]
fn complex_queries_are_not_pwoc_for_shape_and_need_jobs() {
    // On the 8-10 pattern queries SHAPE's 2-hop guarantee no longer covers
    // the whole query: fragments must be recombined with MapReduce jobs,
    // which is where CliqueSquare's flat plans pay off in the paper.
    let cluster = cluster();
    let shape = ShapeSystem::new(&cluster);
    for name in ["Q12", "Q13", "Q14"] {
        let query = lubm_query(name).unwrap();
        assert!(!ShapeSystem::is_pwoc(&query), "{name} should not be PWOC");
        let report = shape.run(&query);
        assert!(
            report.jobs >= 1,
            "{name} should need at least one MapReduce job"
        );
    }
}

#[test]
fn whole_workload_ordering_matches_the_paper() {
    // Paper: CSQ evaluates the complete workload fastest, SHAPE second,
    // H2RDF+ far behind.
    let cluster = cluster();
    let csq = Csq::new(cluster.clone(), CsqConfig::default());
    let shape = ShapeSystem::new(&cluster);
    let h2rdf = H2RdfSystem::new(&cluster);
    let mut totals = [0.0f64; 3];
    for query in lubm_queries::lubm_queries() {
        totals[0] += csq.run(&query).simulated_seconds;
        totals[1] += shape.run(&query).simulated_seconds;
        totals[2] += h2rdf.run(&query).simulated_seconds;
    }
    assert!(
        totals[0] < totals[2],
        "CSQ ({:.1}s) should beat H2RDF+ ({:.1}s) on the whole workload",
        totals[0],
        totals[2]
    );
    assert!(
        totals[1] < totals[2],
        "SHAPE ({:.1}s) should beat H2RDF+ ({:.1}s) on the whole workload",
        totals[1],
        totals[2]
    );
}
