//! Allocation regression tests for the streaming bulk-load path.
//!
//! A counting global allocator (the same technique as
//! `tests/join_allocations.rs`) verifies that [`BulkLoader`] really
//! recycles its chunk parse/encode buffers across task waves and across
//! loads: a warm load on the same loader must take every scratch buffer
//! from the pool (zero fresh scratch allocations, strictly fewer total
//! allocations than the cold load) while producing a bit-identical graph.

use cliquesquare::mapreduce::load::{BulkLoader, LoadOptions};
use cliquesquare::mapreduce::Runtime;
use cliquesquare::rdf::{ntriples, LubmGenerator, LubmScale};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Wraps the system allocator, counting every allocation made by the
/// current thread (loads under test run on a sequential [`Runtime`], so
/// all of their work happens on this thread).
struct CountingAllocator;

thread_local! {
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCATIONS.with(|n| n.set(n.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        THREAD_ALLOCATIONS.with(|n| n.set(n.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    THREAD_ALLOCATIONS.with(Cell::get)
}

/// A second load on the same loader draws every chunk buffer from the
/// scratch pool: zero fresh scratch allocations, strictly fewer total
/// allocations than the cold load, identical result.
#[test]
fn warm_loads_reuse_parse_buffers_instead_of_allocating() {
    let text = ntriples::serialize(&LubmGenerator::new(LubmScale::tiny()).generate());
    let loader = BulkLoader::new(Runtime::sequential());
    let options = LoadOptions {
        nodes: 4,
        chunks: Some(8),
    };

    let before = allocations();
    let cold = loader.load_ntriples(&text, &options).expect("cold load");
    let cold_allocations = allocations() - before;
    assert!(
        cold.report.scratch_allocations >= 1,
        "cold load must allocate at least one scratch buffer"
    );
    assert!(
        loader.pooled_scratch_buffers() >= 1,
        "finished load must return its buffers to the pool"
    );

    let before = allocations();
    let warm = loader.load_ntriples(&text, &options).expect("warm load");
    let warm_allocations = allocations() - before;

    assert_eq!(
        warm.report.scratch_allocations, 0,
        "warm load allocated fresh scratch buffers instead of reusing the pool"
    );
    assert_eq!(warm.graph, cold.graph, "recycling changed the result");
    assert!(
        warm_allocations < cold_allocations,
        "warm load performed {warm_allocations} allocations vs {cold_allocations} cold \
         (buffer recycling saves nothing)"
    );
}

/// On a sequential runtime only one chunk is ever in flight, so the peak
/// decoded-buffer footprint stays near one chunk — far below the total
/// bytes parsed (the bounded-memory streaming contract, observable through
/// the report gauges).
#[test]
fn sequential_streaming_holds_one_chunk_at_a_time() {
    let text = ntriples::serialize(&LubmGenerator::new(LubmScale::default()).generate());
    let loader = BulkLoader::new(Runtime::sequential());
    let output = loader
        .load_ntriples(
            &text,
            &LoadOptions {
                nodes: 4,
                chunks: Some(16),
            },
        )
        .expect("load succeeds");
    let report = &output.report;
    assert!(report.parsed_bytes > 0);
    assert!(
        report.peak_inflight_bytes * 4 <= report.parsed_bytes,
        "peak in-flight {} vs parsed {}: chunks are accumulating instead of streaming",
        report.peak_inflight_bytes,
        report.parsed_bytes
    );
}
