//! Umbrella crate for the CliqueSquare reproduction.
//!
//! Re-exports every sub-crate under one roof so downstream users can depend
//! on a single `cliquesquare` crate; the sub-crates remain usable
//! individually. This package also owns the repository-level integration
//! tests (`tests/`) and the runnable examples (`examples/`).
//!
//! # Example
//!
//! ```
//! use cliquesquare::engine::csq::{Csq, CsqConfig};
//! use cliquesquare::mapreduce::{Cluster, ClusterConfig};
//! use cliquesquare::rdf::{LubmGenerator, LubmScale};
//! use cliquesquare::sparql::parser::parse_query;
//!
//! let graph = LubmGenerator::new(LubmScale::tiny()).generate();
//! let cluster = Cluster::load(graph, ClusterConfig::with_nodes(4));
//! let csq = Csq::new(cluster, CsqConfig::default());
//! let query = parse_query(
//!     "SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d . }",
//! ).unwrap();
//! assert!(csq.run(&query).result_count > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use cliquesquare_baselines as baselines;
pub use cliquesquare_bench as bench;
pub use cliquesquare_core as core;
pub use cliquesquare_engine as engine;
pub use cliquesquare_mapreduce as mapreduce;
pub use cliquesquare_obs as obs;
pub use cliquesquare_querygen as querygen;
pub use cliquesquare_rdf as rdf;
pub use cliquesquare_sparql as sparql;
