//! Worst-case decomposition-count bounds per variant (Figure 8 and
//! Section 4.5).
//!
//! For a variable graph of `n` nodes the paper derives upper bounds on the
//! number of decompositions `D(n)` a single call of the decomposition
//! routine may produce:
//!
//! | variant | bound |
//! |---------|-------|
//! | MXC+    | C(n+1, ⌈n/2⌉) |
//! | MSC+    | C(2n+1, ⌈n/2⌉) |
//! | MXC     | S(n, ⌈n/2⌉) |
//! | MSC     | C(2ⁿ−1, ⌈n/2⌉) |
//! | XC+     | Σ_{k=1}^{n−1} C(n+1, k) |
//! | SC+     | Σ_{k=1}^{n−1} C(2n+1, k) |
//! | XC      | Σ_{k=0}^{n−1} S(n, k) |
//! | SC      | Σ_{k=1}^{n−1} C(2ⁿ−1, k) |
//!
//! where `C` is the binomial coefficient and `S` the Stirling number of the
//! second kind. All functions saturate at `u128::MAX` instead of overflowing.

use crate::decomposition::Variant;

/// Binomial coefficient `C(n, k)`, saturating at `u128::MAX`.
pub fn binomial(n: u128, k: u128) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        // result *= (n - i); result /= (i + 1); performed carefully to keep
        // intermediate values exact: multiply first, dividing by (i + 1)
        // always yields an integer because result is C(n, i+1) * (i+1)!.
        let factor = n - i;
        result = match result.checked_mul(factor) {
            Some(v) => v / (i + 1),
            None => return u128::MAX,
        };
    }
    result
}

/// Stirling number of the second kind `S(n, k)`: the number of ways to
/// partition a set of `n` objects into `k` non-empty subsets. Saturating.
pub fn stirling2(n: u128, k: u128) -> u128 {
    if n == 0 && k == 0 {
        return 1;
    }
    if k == 0 || k > n {
        return 0;
    }
    let n = n as usize;
    let k = k as usize;
    // Dynamic programming over S(i, j) = j * S(i-1, j) + S(i-1, j-1).
    let mut previous = vec![0u128; k + 1];
    previous[0] = 1; // S(0, 0)
    let mut current = vec![0u128; k + 1];
    for i in 1..=n {
        current[0] = 0;
        for j in 1..=k.min(i) {
            let grow = (j as u128).saturating_mul(previous[j]);
            current[j] = grow.saturating_add(previous[j - 1]);
        }
        for cell in current.iter_mut().take(k + 1).skip(k.min(i) + 1) {
            *cell = 0;
        }
        std::mem::swap(&mut previous, &mut current);
    }
    previous[k]
}

/// Upper bound on the number of decompositions a single decomposition step
/// may produce for a graph of `n` nodes under `variant` (Figure 8).
pub fn worst_case_decompositions(variant: Variant, n: usize) -> u128 {
    if n < 2 {
        return 0;
    }
    let n_u = n as u128;
    let half = n_u.div_ceil(2);
    let partial_cliques = if n >= 128 {
        u128::MAX
    } else {
        (1u128 << n) - 1
    };
    let maximal_cliques = 2 * n_u + 1;
    match variant {
        Variant::MxcPlus => binomial(n_u + 1, half),
        Variant::MscPlus => binomial(maximal_cliques, half),
        Variant::Mxc => stirling2(n_u, half),
        Variant::Msc => binomial(partial_cliques, half),
        Variant::XcPlus => (1..n_u)
            .map(|k| binomial(n_u + 1, k))
            .fold(0u128, u128::saturating_add),
        Variant::ScPlus => (1..n_u)
            .map(|k| binomial(maximal_cliques, k))
            .fold(0u128, u128::saturating_add),
        Variant::Xc => (0..n_u)
            .map(|k| stirling2(n_u, k))
            .fold(0u128, u128::saturating_add),
        Variant::Sc => (1..n_u)
            .map(|k| binomial(partial_cliques, k))
            .fold(0u128, u128::saturating_add),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 3), 120);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(52, 5), 2_598_960);
    }

    #[test]
    fn binomial_saturates_instead_of_overflowing() {
        assert_eq!(binomial(1 << 70, 40), u128::MAX);
    }

    #[test]
    fn stirling_basics() {
        assert_eq!(stirling2(0, 0), 1);
        assert_eq!(stirling2(4, 0), 0);
        assert_eq!(stirling2(4, 5), 0);
        assert_eq!(stirling2(4, 1), 1);
        assert_eq!(stirling2(4, 2), 7);
        assert_eq!(stirling2(4, 4), 1);
        assert_eq!(stirling2(5, 3), 25);
        assert_eq!(stirling2(10, 5), 42_525);
    }

    #[test]
    fn figure8_values_for_small_n() {
        // For n = 4: ⌈n/2⌉ = 2.
        assert_eq!(
            worst_case_decompositions(Variant::MxcPlus, 4),
            binomial(5, 2)
        );
        assert_eq!(
            worst_case_decompositions(Variant::MscPlus, 4),
            binomial(9, 2)
        );
        assert_eq!(worst_case_decompositions(Variant::Mxc, 4), stirling2(4, 2));
        assert_eq!(worst_case_decompositions(Variant::Msc, 4), binomial(15, 2));
        assert_eq!(
            worst_case_decompositions(Variant::XcPlus, 4),
            binomial(5, 1) + binomial(5, 2) + binomial(5, 3)
        );
        assert_eq!(
            worst_case_decompositions(Variant::Xc, 4),
            stirling2(4, 0) + stirling2(4, 1) + stirling2(4, 2) + stirling2(4, 3)
        );
    }

    #[test]
    fn minimum_variants_are_bounded_by_their_unrestricted_counterparts() {
        for n in 2..=10 {
            assert!(
                worst_case_decompositions(Variant::MxcPlus, n)
                    <= worst_case_decompositions(Variant::XcPlus, n)
            );
            assert!(
                worst_case_decompositions(Variant::MscPlus, n)
                    <= worst_case_decompositions(Variant::ScPlus, n)
            );
            assert!(
                worst_case_decompositions(Variant::Msc, n)
                    <= worst_case_decompositions(Variant::Sc, n)
            );
        }
    }

    #[test]
    fn maximal_variants_are_bounded_by_partial_variants_for_larger_n() {
        // The Figure 8 bounds are loose worst cases built from mutually
        // exclusive scenarios; the expected ordering (maximal-clique spaces
        // smaller than partial-clique spaces) only emerges once 2^n − 1
        // exceeds 2n + 1, i.e. from n = 4 onwards.
        for n in 4..=10 {
            assert!(
                worst_case_decompositions(Variant::MscPlus, n)
                    <= worst_case_decompositions(Variant::Msc, n)
            );
            assert!(
                worst_case_decompositions(Variant::ScPlus, n)
                    <= worst_case_decompositions(Variant::Sc, n)
            );
        }
    }

    #[test]
    fn degenerate_sizes() {
        for variant in Variant::ALL {
            assert_eq!(worst_case_decompositions(variant, 0), 0);
            assert_eq!(worst_case_decompositions(variant, 1), 0);
        }
    }

    #[test]
    fn large_n_saturates_gracefully() {
        // SC over a 130-node graph overflows any fixed-width integer; the
        // bound saturates rather than panicking.
        assert_eq!(worst_case_decompositions(Variant::Sc, 130), u128::MAX);
    }
}
