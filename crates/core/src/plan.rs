//! Logical CliqueSquare operators and plans (Section 4.1).

use cliquesquare_sparql::{TriplePattern, Variable};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of an operator inside a [`LogicalPlan`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpId(pub usize);

impl OpId {
    /// Returns the identifier as a `usize` index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A logical operator of a CliqueSquare plan.
///
/// The paper defines four operators: Match, (n-ary) Join, Select and Project.
/// Selections arising from constants in triple patterns are folded into the
/// corresponding Match operator; the explicit Select operator remains
/// available for predicates that can only be checked on a join output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogicalOp {
    /// `M_tp`: outputs the relation of triples matching triple pattern `tp`.
    Match {
        /// Index of the pattern in the original query.
        pattern_index: usize,
        /// The triple pattern itself.
        pattern: TriplePattern,
        /// Output attributes (the pattern's variables).
        output: BTreeSet<Variable>,
    },
    /// `J_A(op_1 … op_m)`: n-ary equality join of its inputs on the common
    /// attribute set `A`.
    Join {
        /// The join attributes `A` (variables shared by all inputs).
        attributes: BTreeSet<Variable>,
        /// Input operators.
        inputs: Vec<OpId>,
        /// Output attributes (union of the inputs' attributes).
        output: BTreeSet<Variable>,
    },
    /// `σ_c(op)`: filters tuples of `op` by an equality condition.
    Select {
        /// Human-readable description of the condition.
        condition: String,
        /// Input operator.
        input: OpId,
        /// Output attributes (same as the input's).
        output: BTreeSet<Variable>,
    },
    /// `π_A(op)`: projects the input onto the attribute list `A`.
    Project {
        /// Projected variables, in output order.
        variables: Vec<Variable>,
        /// Input operator.
        input: OpId,
    },
}

impl LogicalOp {
    /// The operator's input operator ids (empty for Match).
    pub fn inputs(&self) -> Vec<OpId> {
        match self {
            LogicalOp::Match { .. } => Vec::new(),
            LogicalOp::Join { inputs, .. } => inputs.clone(),
            LogicalOp::Select { input, .. } | LogicalOp::Project { input, .. } => vec![*input],
        }
    }

    /// The operator's output attributes.
    pub fn output(&self) -> BTreeSet<Variable> {
        match self {
            LogicalOp::Match { output, .. }
            | LogicalOp::Join { output, .. }
            | LogicalOp::Select { output, .. } => output.clone(),
            LogicalOp::Project { variables, .. } => variables.iter().cloned().collect(),
        }
    }

    /// Returns `true` if the operator is a join.
    pub fn is_join(&self) -> bool {
        matches!(self, LogicalOp::Join { .. })
    }

    /// Returns `true` if the operator is a match (leaf).
    pub fn is_match(&self) -> bool {
        matches!(self, LogicalOp::Match { .. })
    }
}

/// A logical query plan: a rooted DAG of [`LogicalOp`]s stored in an arena.
///
/// Plans built from exact covers are trees; plans built from simple covers
/// may share sub-plans (DAG shape), e.g. when a selective intermediate result
/// feeds two different joins.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogicalPlan {
    ops: Vec<LogicalOp>,
    root: OpId,
}

impl LogicalPlan {
    /// Creates a plan from an operator arena and its root.
    ///
    /// # Panics
    ///
    /// Panics if any referenced operator id is out of bounds.
    pub fn new(ops: Vec<LogicalOp>, root: OpId) -> Self {
        assert!(root.index() < ops.len(), "root out of bounds");
        for op in &ops {
            for input in op.inputs() {
                assert!(input.index() < ops.len(), "input out of bounds");
            }
        }
        Self { ops, root }
    }

    /// Returns the plan's root operator id.
    pub fn root(&self) -> OpId {
        self.root
    }

    /// Returns the operator with the given id.
    pub fn op(&self, id: OpId) -> &LogicalOp {
        &self.ops[id.index()]
    }

    /// Returns all operators in the arena.
    pub fn ops(&self) -> &[LogicalOp] {
        &self.ops
    }

    /// Number of operators in the plan.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the plan has no operators (never constructed).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Returns the ids of the Match (leaf) operators.
    pub fn match_ops(&self) -> Vec<OpId> {
        (0..self.ops.len())
            .map(OpId)
            .filter(|id| self.op(*id).is_match())
            .collect()
    }

    /// Returns the ids of the Join operators.
    pub fn join_ops(&self) -> Vec<OpId> {
        (0..self.ops.len())
            .map(OpId)
            .filter(|id| self.op(*id).is_join())
            .collect()
    }

    /// Number of join operators in the plan.
    pub fn join_count(&self) -> usize {
        self.join_ops().len()
    }

    /// The plan's **height**: the largest number of join operators on a
    /// root-to-leaf path (Section 4.4). Flat plans have small height.
    pub fn height(&self) -> usize {
        let mut memo = vec![None; self.ops.len()];
        self.height_of(self.root, &mut memo)
    }

    fn height_of(&self, id: OpId, memo: &mut Vec<Option<usize>>) -> usize {
        if let Some(h) = memo[id.index()] {
            return h;
        }
        let op = self.op(id);
        let children_max = op
            .inputs()
            .into_iter()
            .map(|c| self.height_of(c, memo))
            .max()
            .unwrap_or(0);
        let h = children_max + usize::from(op.is_join());
        memo[id.index()] = Some(h);
        h
    }

    /// The maximum fan-in (number of join inputs) over all joins in the plan.
    pub fn max_join_fanin(&self) -> usize {
        self.join_ops()
            .into_iter()
            .map(|id| self.op(id).inputs().len())
            .max()
            .unwrap_or(0)
    }

    /// The output variables of the plan's root.
    pub fn output_variables(&self) -> Vec<Variable> {
        match self.op(self.root) {
            LogicalOp::Project { variables, .. } => variables.clone(),
            other => other.output().into_iter().collect(),
        }
    }

    /// Returns `true` if the plan is a tree (no operator feeds two parents).
    pub fn is_tree(&self) -> bool {
        let mut indegree = vec![0usize; self.ops.len()];
        for op in &self.ops {
            for input in op.inputs() {
                indegree[input.index()] += 1;
            }
        }
        indegree.iter().all(|&d| d <= 1)
    }

    /// A canonical structural signature of the plan, used to deduplicate
    /// plans and to define the similarity classes `P∼(q)` of Section 4.3
    /// (projections and selections are ignored, join inputs are unordered).
    pub fn signature(&self) -> String {
        let mut memo = vec![None; self.ops.len()];
        self.signature_of(self.root, &mut memo)
    }

    fn signature_of(&self, id: OpId, memo: &mut Vec<Option<String>>) -> String {
        if let Some(sig) = &memo[id.index()] {
            return sig.clone();
        }
        let sig = match self.op(id) {
            LogicalOp::Match { pattern_index, .. } => format!("M{pattern_index}"),
            LogicalOp::Join {
                attributes, inputs, ..
            } => {
                let mut child_sigs: Vec<String> =
                    inputs.iter().map(|c| self.signature_of(*c, memo)).collect();
                child_sigs.sort();
                child_sigs.dedup();
                let attrs: Vec<String> = attributes.iter().map(|v| v.name().to_string()).collect();
                format!("J[{}]({})", attrs.join(","), child_sigs.join("|"))
            }
            LogicalOp::Select { input, .. } | LogicalOp::Project { input, .. } => {
                // σ/π do not participate in the similarity classes.
                self.signature_of(*input, memo)
            }
        };
        memo[id.index()] = Some(sig.clone());
        sig
    }

    /// Pretty-prints the plan as an indented operator tree (sub-plans that
    /// are shared in a DAG are printed once per reference).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(self.root, 0, &mut out);
        out
    }

    fn render_into(&self, id: OpId, depth: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        match self.op(id) {
            LogicalOp::Match {
                pattern_index,
                pattern,
                ..
            } => {
                out.push_str(&format!("{indent}Match t{pattern_index}: {pattern}\n"));
            }
            LogicalOp::Join {
                attributes,
                inputs,
                output,
            } => {
                let attrs: Vec<String> = attributes.iter().map(ToString::to_string).collect();
                let outs: Vec<String> = output.iter().map(ToString::to_string).collect();
                out.push_str(&format!(
                    "{indent}Join on [{}] -> ({})\n",
                    attrs.join(","),
                    outs.join(",")
                ));
                for input in inputs {
                    self.render_into(*input, depth + 1, out);
                }
            }
            LogicalOp::Select {
                condition, input, ..
            } => {
                out.push_str(&format!("{indent}Select {condition}\n"));
                self.render_into(*input, depth + 1, out);
            }
            LogicalOp::Project { variables, input } => {
                let vars: Vec<String> = variables.iter().map(ToString::to_string).collect();
                out.push_str(&format!("{indent}Project [{}]\n", vars.join(",")));
                self.render_into(*input, depth + 1, out);
            }
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesquare_sparql::PatternTerm;

    fn vars(names: &[&str]) -> BTreeSet<Variable> {
        names.iter().map(|n| Variable::new(*n)).collect()
    }

    fn pattern(s: &str, o: &str) -> TriplePattern {
        TriplePattern::new(
            PatternTerm::variable(s),
            PatternTerm::iri("p"),
            PatternTerm::variable(o),
        )
    }

    /// Builds the plan π(J_y(J_x(M0, M1), M2)) for a 3-pattern chain.
    fn chain_plan() -> LogicalPlan {
        let ops = vec![
            LogicalOp::Match {
                pattern_index: 0,
                pattern: pattern("a", "x"),
                output: vars(&["a", "x"]),
            },
            LogicalOp::Match {
                pattern_index: 1,
                pattern: pattern("x", "y"),
                output: vars(&["x", "y"]),
            },
            LogicalOp::Match {
                pattern_index: 2,
                pattern: pattern("y", "b"),
                output: vars(&["y", "b"]),
            },
            LogicalOp::Join {
                attributes: vars(&["x"]),
                inputs: vec![OpId(0), OpId(1)],
                output: vars(&["a", "x", "y"]),
            },
            LogicalOp::Join {
                attributes: vars(&["y"]),
                inputs: vec![OpId(3), OpId(2)],
                output: vars(&["a", "x", "y", "b"]),
            },
            LogicalOp::Project {
                variables: vec![Variable::new("a"), Variable::new("b")],
                input: OpId(4),
            },
        ];
        LogicalPlan::new(ops, OpId(5))
    }

    #[test]
    fn height_and_counts() {
        let plan = chain_plan();
        assert_eq!(plan.height(), 2);
        assert_eq!(plan.join_count(), 2);
        assert_eq!(plan.match_ops().len(), 3);
        assert_eq!(plan.max_join_fanin(), 2);
        assert!(plan.is_tree());
        assert_eq!(
            plan.output_variables(),
            vec![Variable::new("a"), Variable::new("b")]
        );
    }

    #[test]
    fn flat_plan_has_height_one() {
        let ops = vec![
            LogicalOp::Match {
                pattern_index: 0,
                pattern: pattern("x", "a"),
                output: vars(&["x", "a"]),
            },
            LogicalOp::Match {
                pattern_index: 1,
                pattern: pattern("x", "b"),
                output: vars(&["x", "b"]),
            },
            LogicalOp::Match {
                pattern_index: 2,
                pattern: pattern("x", "c"),
                output: vars(&["x", "c"]),
            },
            LogicalOp::Join {
                attributes: vars(&["x"]),
                inputs: vec![OpId(0), OpId(1), OpId(2)],
                output: vars(&["x", "a", "b", "c"]),
            },
        ];
        let plan = LogicalPlan::new(ops, OpId(3));
        assert_eq!(plan.height(), 1);
        assert_eq!(plan.max_join_fanin(), 3);
    }

    #[test]
    fn signature_ignores_input_order_and_projection() {
        let plan_a = chain_plan();
        // Same plan with swapped join input order and no projection.
        let ops = vec![
            LogicalOp::Match {
                pattern_index: 0,
                pattern: pattern("a", "x"),
                output: vars(&["a", "x"]),
            },
            LogicalOp::Match {
                pattern_index: 1,
                pattern: pattern("x", "y"),
                output: vars(&["x", "y"]),
            },
            LogicalOp::Match {
                pattern_index: 2,
                pattern: pattern("y", "b"),
                output: vars(&["y", "b"]),
            },
            LogicalOp::Join {
                attributes: vars(&["x"]),
                inputs: vec![OpId(1), OpId(0)],
                output: vars(&["a", "x", "y"]),
            },
            LogicalOp::Join {
                attributes: vars(&["y"]),
                inputs: vec![OpId(2), OpId(3)],
                output: vars(&["a", "x", "y", "b"]),
            },
        ];
        let plan_b = LogicalPlan::new(ops, OpId(4));
        assert_eq!(plan_a.signature(), plan_b.signature());
    }

    #[test]
    fn dag_plan_detected() {
        // One match feeds two joins (simple-cover style sharing).
        let ops = vec![
            LogicalOp::Match {
                pattern_index: 0,
                pattern: pattern("x", "a"),
                output: vars(&["x", "a"]),
            },
            LogicalOp::Match {
                pattern_index: 1,
                pattern: pattern("x", "y"),
                output: vars(&["x", "y"]),
            },
            LogicalOp::Match {
                pattern_index: 2,
                pattern: pattern("y", "b"),
                output: vars(&["y", "b"]),
            },
            LogicalOp::Join {
                attributes: vars(&["x"]),
                inputs: vec![OpId(0), OpId(1)],
                output: vars(&["x", "a", "y"]),
            },
            LogicalOp::Join {
                attributes: vars(&["y"]),
                inputs: vec![OpId(1), OpId(2)],
                output: vars(&["x", "y", "b"]),
            },
            LogicalOp::Join {
                attributes: vars(&["x", "y"]),
                inputs: vec![OpId(3), OpId(4)],
                output: vars(&["x", "a", "y", "b"]),
            },
        ];
        let plan = LogicalPlan::new(ops, OpId(5));
        assert!(!plan.is_tree());
        assert_eq!(plan.height(), 2);
    }

    #[test]
    fn render_contains_operators() {
        let text = chain_plan().render();
        assert!(text.contains("Project"));
        assert!(text.contains("Join on"));
        assert!(text.contains("Match t0"));
        assert_eq!(text, chain_plan().to_string());
    }

    #[test]
    #[should_panic(expected = "input out of bounds")]
    fn out_of_bounds_input_panics() {
        let ops = vec![LogicalOp::Project {
            variables: vec![Variable::new("a")],
            input: OpId(7),
        }];
        let _ = LogicalPlan::new(ops, OpId(0));
    }
}
