//! Variable (multi)graphs — the query representation of Section 3.1.

use cliquesquare_sparql::{BgpQuery, Variable};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A node of a [`VariableGraph`].
///
/// A node corresponds to a set of triple patterns of the original query that
/// have already been joined on their common variables (Definition 3.1). In
/// the initial graph each node holds exactly one triple pattern.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphNode {
    /// Indices of the query's triple patterns covered by this node.
    pub patterns: BTreeSet<usize>,
    /// Variables exposed by this node (union of its patterns' variables).
    pub variables: BTreeSet<Variable>,
    /// Indices of the nodes of the *previous* variable graph this node was
    /// built from by clique reduction. Empty for the initial graph.
    pub derived_from: BTreeSet<usize>,
}

impl GraphNode {
    /// Creates a node covering a single triple pattern.
    pub fn leaf(pattern_index: usize, variables: BTreeSet<Variable>) -> Self {
        Self {
            patterns: BTreeSet::from([pattern_index]),
            variables,
            derived_from: BTreeSet::new(),
        }
    }

    /// Returns `true` if the node shares `variable` with another node's
    /// variable set.
    pub fn mentions(&self, variable: &Variable) -> bool {
        self.variables.contains(variable)
    }
}

/// A variable multigraph `(N, E, V)`: nodes are sets of triple patterns,
/// and there is an edge labelled `v` between two nodes iff both mention the
/// variable `v` (Definition 3.1).
///
/// Edges are not materialized: they are fully determined by the nodes'
/// variable sets, and all algorithms only need per-variable incidence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VariableGraph {
    nodes: Vec<GraphNode>,
}

impl VariableGraph {
    /// Builds the initial variable graph of a query: one node per triple
    /// pattern.
    pub fn from_query(query: &BgpQuery) -> Self {
        let nodes = query
            .patterns()
            .iter()
            .enumerate()
            .map(|(i, p)| GraphNode::leaf(i, p.variables().into_iter().collect()))
            .collect();
        Self { nodes }
    }

    /// Builds a graph directly from nodes (used by clique reduction).
    pub fn from_nodes(nodes: Vec<GraphNode>) -> Self {
        Self { nodes }
    }

    /// Returns the nodes of the graph.
    pub fn nodes(&self) -> &[GraphNode] {
        &self.nodes
    }

    /// Returns the number of nodes `|N|`.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Returns the *join variables* of the graph: variables mentioned by at
    /// least two distinct nodes (each such variable labels at least one edge).
    pub fn join_variables(&self) -> Vec<Variable> {
        self.variable_incidence()
            .into_iter()
            .filter(|(_, nodes)| nodes.len() >= 2)
            .map(|(v, _)| v)
            .collect()
    }

    /// Returns, for every variable, the set of node indices mentioning it.
    pub fn variable_incidence(&self) -> BTreeMap<Variable, BTreeSet<usize>> {
        let mut incidence: BTreeMap<Variable, BTreeSet<usize>> = BTreeMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            for v in &node.variables {
                incidence.entry(v.clone()).or_default().insert(i);
            }
        }
        incidence
    }

    /// Returns the *maximal variable clique* of `variable`: all nodes
    /// incident to an edge labelled with it (Definition 3.2), or `None` if
    /// the variable labels no edge (fewer than two nodes mention it).
    pub fn maximal_clique(&self, variable: &Variable) -> Option<BTreeSet<usize>> {
        let nodes: BTreeSet<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.mentions(variable))
            .map(|(i, _)| i)
            .collect();
        (nodes.len() >= 2).then_some(nodes)
    }

    /// Returns all maximal cliques, keyed by their variable.
    pub fn maximal_cliques(&self) -> BTreeMap<Variable, BTreeSet<usize>> {
        self.variable_incidence()
            .into_iter()
            .filter(|(_, nodes)| nodes.len() >= 2)
            .collect()
    }

    /// Returns the labelled edges of the graph as `(node, variable, node)`
    /// triples with `node1 < node2`. Mostly useful for inspection and tests.
    pub fn edges(&self) -> Vec<(usize, Variable, usize)> {
        let mut edges = Vec::new();
        for (v, nodes) in self.maximal_cliques() {
            let nodes: Vec<usize> = nodes.into_iter().collect();
            for i in 0..nodes.len() {
                for j in i + 1..nodes.len() {
                    edges.push((nodes[i], v.clone(), nodes[j]));
                }
            }
        }
        edges
    }

    /// Returns `true` if the graph is connected (ignoring isolated single
    /// node graphs, which are trivially connected).
    pub fn is_connected(&self) -> bool {
        if self.nodes.len() <= 1 {
            return true;
        }
        let mut visited = vec![false; self.nodes.len()];
        let mut stack = vec![0usize];
        visited[0] = true;
        let incidence = self.variable_incidence();
        while let Some(i) = stack.pop() {
            for v in &self.nodes[i].variables {
                if let Some(peers) = incidence.get(v) {
                    for &j in peers {
                        if !visited[j] {
                            visited[j] = true;
                            stack.push(j);
                        }
                    }
                }
            }
        }
        visited.into_iter().all(|v| v)
    }

    /// Returns the variables shared by **all** of the given nodes.
    ///
    /// For a clique generated from variable `v` this always contains `v`;
    /// it is the attribute set `A` of the n-ary join the clique induces.
    pub fn common_variables(&self, nodes: &BTreeSet<usize>) -> BTreeSet<Variable> {
        let mut iter = nodes.iter();
        let Some(&first) = iter.next() else {
            return BTreeSet::new();
        };
        let mut common = self.nodes[first].variables.clone();
        for &i in iter {
            common = common
                .intersection(&self.nodes[i].variables)
                .cloned()
                .collect();
        }
        common
    }
}

impl fmt::Display for VariableGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, node) in self.nodes.iter().enumerate() {
            let patterns: Vec<String> = node.patterns.iter().map(|p| format!("t{p}")).collect();
            let vars: Vec<String> = node.variables.iter().map(|v| v.to_string()).collect();
            writeln!(
                f,
                "N{i}: [{}] vars {{{}}}",
                patterns.join(", "),
                vars.join(", ")
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesquare_sparql::parser::parse_query;

    /// The paper's running example query Q1 (Figure 1), using generic
    /// property names p1..p11.
    pub(crate) fn paper_q1() -> BgpQuery {
        parse_query(
            "SELECT ?a ?b WHERE {
                ?a ub:p1 ?b .
                ?a ub:p2 ?c .
                ?d ub:p3 ?a .
                ?d ub:p4 ?e .
                ?l ub:p5 ?d .
                ?f ub:p6 ?d .
                ?f ub:p7 ?g .
                ?g ub:p8 ?h .
                ?g ub:p9 ?i .
                ?i ub:p10 ?j .
                ?j ub:p11 \"C1\" }",
        )
        .unwrap()
    }

    #[test]
    fn initial_graph_has_one_node_per_pattern() {
        let q = paper_q1();
        let g = VariableGraph::from_query(&q);
        assert_eq!(g.len(), 11);
        for (i, node) in g.nodes().iter().enumerate() {
            assert_eq!(node.patterns, BTreeSet::from([i]));
            assert!(node.derived_from.is_empty());
        }
    }

    #[test]
    fn maximal_cliques_of_paper_q1() {
        let q = paper_q1();
        let g = VariableGraph::from_query(&q);
        // The maximal clique of d is {t3, t4, t5, t6} (0-based: {2,3,4,5}).
        let cd = g.maximal_clique(&Variable::new("d")).unwrap();
        assert_eq!(cd, BTreeSet::from([2, 3, 4, 5]));
        let ca = g.maximal_clique(&Variable::new("a")).unwrap();
        assert_eq!(ca, BTreeSet::from([0, 1, 2]));
        // b appears in a single pattern: no edge, no maximal clique.
        assert!(g.maximal_clique(&Variable::new("b")).is_none());
        // The join variables of Q1 are a, d, f, g, i, j.
        let jv: Vec<String> = g
            .join_variables()
            .iter()
            .map(|v| v.name().to_string())
            .collect();
        assert_eq!(jv, vec!["a", "d", "f", "g", "i", "j"]);
    }

    #[test]
    fn connectivity() {
        let q = paper_q1();
        let g = VariableGraph::from_query(&q);
        assert!(g.is_connected());

        let disconnected = parse_query("SELECT ?a WHERE { ?a ub:p ?b . ?x ub:q ?y }").unwrap();
        assert!(!VariableGraph::from_query(&disconnected).is_connected());
    }

    #[test]
    fn common_variables_of_clique() {
        let q = paper_q1();
        let g = VariableGraph::from_query(&q);
        let clique = BTreeSet::from([2, 3, 4, 5]);
        let common = g.common_variables(&clique);
        assert_eq!(common, BTreeSet::from([Variable::new("d")]));
        assert!(g.common_variables(&BTreeSet::new()).is_empty());
    }

    #[test]
    fn edges_are_symmetric_and_labelled() {
        let q = parse_query("SELECT ?a WHERE { ?a ub:p1 ?b . ?b ub:p2 ?c . ?c ub:p3 ?a }").unwrap();
        let g = VariableGraph::from_query(&q);
        let edges = g.edges();
        assert_eq!(edges.len(), 3);
        assert!(edges.iter().all(|(i, _, j)| i < j));
    }

    #[test]
    fn single_node_graph() {
        let q = parse_query("SELECT ?a WHERE { ?a ub:p1 ?b }").unwrap();
        let g = VariableGraph::from_query(&q);
        assert_eq!(g.len(), 1);
        assert!(g.is_connected());
        assert!(g.join_variables().is_empty());
        assert!(g.maximal_cliques().is_empty());
    }
}
