//! The example queries used throughout the paper's figures.
//!
//! These are useful both as documentation and as fixtures for tests,
//! benchmarks and examples: they are exactly the queries on which the paper
//! demonstrates the behaviour (and failure modes) of the eight CliqueSquare
//! variants.

use cliquesquare_sparql::parser::parse_query;
use cliquesquare_sparql::BgpQuery;

/// The running example query Q1 of Figure 1: 11 triple patterns whose
/// variable graph has maximal cliques on `a`, `d`, `f`, `g`, `i`, `j`.
pub fn figure1_q1() -> BgpQuery {
    let mut q = parse_query(
        "SELECT ?a ?b WHERE {
            ?a ub:p1 ?b .
            ?a ub:p2 ?c .
            ?d ub:p3 ?a .
            ?d ub:p4 ?e .
            ?l ub:p5 ?d .
            ?f ub:p6 ?d .
            ?f ub:p7 ?g .
            ?g ub:p8 ?h .
            ?g ub:p9 ?i .
            ?i ub:p10 ?j .
            ?j ub:p11 \"C1\" }",
    )
    .expect("figure 1 query is well-formed");
    q.set_name("Fig1-Q1");
    q
}

/// The 3-pattern chain of Figure 10 (`t1 –x– t2 –y– t3`): the query on which
/// the maximal-clique exact-cover variants (MXC+, XC+) fail to find *any*
/// plan, and on which SC+ misses some height-optimal plans.
pub fn figure10_query() -> BgpQuery {
    let mut q = parse_query(
        "SELECT ?x ?y WHERE {
            ?x ub:q1 ?u .
            ?x ub:q2 ?y .
            ?y ub:q3 ?w }",
    )
    .expect("figure 10 query is well-formed");
    q.set_name("Fig10");
    q
}

/// The 4-pattern chain QX of Figure 11 (`t1 –x– t2 –y– t3 –z– t4`): the query
/// showing that minimum covers (MSC) may miss some height-optimal plans,
/// while still finding one (Figures 12 and 13).
pub fn figure11_qx() -> BgpQuery {
    let mut q = parse_query(
        "SELECT ?x ?z WHERE {
            ?x ub:q1 ?u .
            ?x ub:q2 ?y .
            ?y ub:q3 ?z .
            ?z ub:q4 ?w }",
    )
    .expect("figure 11 query is well-formed");
    q.set_name("Fig11-QX");
    q
}

/// The 4-pattern star of Figure 14 (`t2` sharing a different variable with
/// each of `t1`, `t3`, `t4`): the query on which every exact-cover variant is
/// height-optimal lossy, because only overlapping (simple) covers allow a
/// two-stage plan.
///
/// The central pattern uses variables in all three positions so that it
/// shares a *different* variable with each neighbour.
pub fn figure14_query() -> BgpQuery {
    let mut q = parse_query(
        "SELECT ?w ?x ?y WHERE {
            ?w ub:q1 ?a .
            ?w ?x ?y .
            ?x ub:q2 ?b .
            ?y ub:q3 ?c }",
    )
    .expect("figure 14 query is well-formed");
    q.set_name("Fig14");
    q
}

/// All paper example queries with their figure labels.
pub fn all() -> Vec<BgpQuery> {
    vec![
        figure1_q1(),
        figure10_query(),
        figure11_qx(),
        figure14_query(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variable_graph::VariableGraph;
    use cliquesquare_sparql::Variable;
    use std::collections::BTreeSet;

    #[test]
    fn figure1_structure() {
        let q = figure1_q1();
        assert_eq!(q.len(), 11);
        let g = VariableGraph::from_query(&q);
        let cliques = g.maximal_cliques();
        assert_eq!(cliques.len(), 6);
        assert_eq!(cliques[&Variable::new("d")], BTreeSet::from([2, 3, 4, 5]));
    }

    #[test]
    fn figure10_structure() {
        let q = figure10_query();
        let g = VariableGraph::from_query(&q);
        let cliques = g.maximal_cliques();
        assert_eq!(cliques.len(), 2);
        assert_eq!(cliques[&Variable::new("x")], BTreeSet::from([0, 1]));
        assert_eq!(cliques[&Variable::new("y")], BTreeSet::from([1, 2]));
    }

    #[test]
    fn figure11_structure() {
        let q = figure11_qx();
        let g = VariableGraph::from_query(&q);
        let cliques = g.maximal_cliques();
        assert_eq!(cliques.len(), 3);
        assert_eq!(cliques[&Variable::new("y")], BTreeSet::from([1, 2]));
    }

    #[test]
    fn figure14_structure() {
        let q = figure14_query();
        let g = VariableGraph::from_query(&q);
        let cliques = g.maximal_cliques();
        // w:{t1,t2}, x:{t2,t3}, y:{t2,t4}
        assert_eq!(cliques.len(), 3);
        assert_eq!(cliques[&Variable::new("w")], BTreeSet::from([0, 1]));
        assert_eq!(cliques[&Variable::new("x")], BTreeSet::from([1, 2]));
        assert_eq!(cliques[&Variable::new("y")], BTreeSet::from([1, 3]));
    }

    #[test]
    fn all_examples_are_connected() {
        for q in all() {
            assert!(q.is_connected(), "{} should be connected", q.name());
            assert!(VariableGraph::from_query(&q).is_connected());
        }
    }
}
