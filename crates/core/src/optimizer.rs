//! The CliqueSquare optimization algorithm (Algorithm 1) and plan builder
//! (`CREATEQUERYPLANS`, Section 4.2).

use crate::clique::reduce;
use crate::decomposition::{decompositions, DecompositionLimits, Variant};
use crate::plan::{LogicalOp, LogicalPlan, OpId};
use crate::variable_graph::VariableGraph;
use cliquesquare_sparql::BgpQuery;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// Configuration of the [`Optimizer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptimizerConfig {
    /// The clique-decomposition variant to use.
    pub variant: Variant,
    /// Per-graph decomposition enumeration limits.
    pub limits: DecompositionLimits,
    /// Maximum number of plans to generate before truncating the search.
    pub max_plans: usize,
}

impl OptimizerConfig {
    /// A configuration for `variant` with default limits.
    pub fn variant(variant: Variant) -> Self {
        Self {
            variant,
            limits: DecompositionLimits::default(),
            max_plans: 200_000,
        }
    }

    /// The paper's recommended configuration: CliqueSquare-MSC.
    pub fn recommended() -> Self {
        Self::variant(Variant::Msc)
    }

    /// Sets the maximum number of generated plans.
    pub fn with_max_plans(mut self, max_plans: usize) -> Self {
        self.max_plans = max_plans;
        self
    }

    /// Sets the decomposition limits.
    pub fn with_limits(mut self, limits: DecompositionLimits) -> Self {
        self.limits = limits;
        self
    }
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self::recommended()
    }
}

/// The result of running the optimizer on a query.
#[derive(Debug, Clone)]
pub struct OptimizeResult {
    /// Every generated plan, including structural duplicates (Figure 16
    /// counts all of them; Figure 19 measures the uniqueness ratio).
    pub plans: Vec<LogicalPlan>,
    /// Total number of clique decompositions explored across all recursion
    /// levels.
    pub decompositions_explored: usize,
    /// `true` if the search was cut short by [`OptimizerConfig::max_plans`]
    /// or the decomposition limits.
    pub truncated: bool,
    /// Wall-clock optimization time.
    pub elapsed: Duration,
}

impl OptimizeResult {
    /// The smallest height among the generated plans.
    pub fn min_height(&self) -> Option<usize> {
        self.plans.iter().map(LogicalPlan::height).min()
    }

    /// The plans achieving the smallest height.
    pub fn flattest_plans(&self) -> Vec<&LogicalPlan> {
        let Some(min) = self.min_height() else {
            return Vec::new();
        };
        self.plans.iter().filter(|p| p.height() == min).collect()
    }

    /// The structurally distinct plans (deduplicated by
    /// [`LogicalPlan::signature`]).
    pub fn unique_plans(&self) -> Vec<&LogicalPlan> {
        let mut seen = BTreeSet::new();
        self.plans
            .iter()
            .filter(|p| seen.insert(p.signature()))
            .collect()
    }

    /// Number of structurally distinct plans.
    pub fn unique_count(&self) -> usize {
        self.unique_plans().len()
    }
}

/// The CliqueSquare logical optimizer.
///
/// Starting from the query's variable graph (one node per triple pattern),
/// the optimizer repeatedly applies clique decomposition and clique reduction
/// until the graph shrinks to one node, and materializes every explored
/// sequence of graphs into a logical plan of n-ary joins.
#[derive(Debug, Clone, Default)]
pub struct Optimizer {
    config: OptimizerConfig,
}

impl Optimizer {
    /// Creates an optimizer with the given configuration.
    pub fn new(config: OptimizerConfig) -> Self {
        Self { config }
    }

    /// Creates an optimizer for `variant` with default limits.
    pub fn with_variant(variant: Variant) -> Self {
        Self::new(OptimizerConfig::variant(variant))
    }

    /// Returns the optimizer's configuration.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Runs Algorithm 1 on `query` and returns every generated plan.
    ///
    /// The query must be connected (×-free); for a disconnected query no
    /// decomposition can cover the isolated patterns and the result is empty.
    pub fn optimize(&self, query: &BgpQuery) -> OptimizeResult {
        let start = Instant::now();
        let mut result = OptimizeResult {
            plans: Vec::new(),
            decompositions_explored: 0,
            truncated: false,
            elapsed: Duration::ZERO,
        };
        if query.is_empty() {
            result.elapsed = start.elapsed();
            return result;
        }
        let graph = VariableGraph::from_query(query);
        let mut states = Vec::new();
        self.recurse(query, graph, &mut states, &mut result);
        result.elapsed = start.elapsed();
        result
    }

    /// One recursive step of Algorithm 1.
    fn recurse(
        &self,
        query: &BgpQuery,
        graph: VariableGraph,
        states: &mut Vec<VariableGraph>,
        result: &mut OptimizeResult,
    ) {
        if result.plans.len() >= self.config.max_plans {
            result.truncated = true;
            return;
        }
        let is_complete = graph.len() == 1;
        states.push(graph);
        if is_complete {
            result.plans.push(build_plan(states, query));
        } else {
            let graph_ref = states.last().expect("state just pushed").clone();
            let decs = decompositions(&graph_ref, self.config.variant, &self.config.limits);
            if decs.len() >= self.config.limits.max_decompositions {
                result.truncated = true;
            }
            result.decompositions_explored += decs.len();
            for d in &decs {
                if result.plans.len() >= self.config.max_plans {
                    result.truncated = true;
                    break;
                }
                let reduced = reduce(&graph_ref, d);
                self.recurse(query, reduced, states, result);
            }
        }
        states.pop();
    }
}

/// Builds a logical plan from a sequence of variable graphs
/// (`CREATEQUERYPLANS`, Section 4.2).
///
/// The first graph contributes one Match operator per triple pattern; every
/// later graph contributes one n-ary Join per multi-node clique, while
/// single-node cliques pass their operator through unchanged. A final Project
/// restricts the output to the query's distinguished variables.
pub fn build_plan(states: &[VariableGraph], query: &BgpQuery) -> LogicalPlan {
    assert!(!states.is_empty(), "cannot build a plan from no states");
    assert_eq!(
        states.last().map(VariableGraph::len),
        Some(1),
        "the final state must have a single node"
    );

    let mut ops: Vec<LogicalOp> = Vec::new();
    let first = &states[0];
    let mut prev_ops: Vec<OpId> = first
        .nodes()
        .iter()
        .map(|node| {
            let pattern_index = *node
                .patterns
                .iter()
                .next()
                .expect("initial nodes hold one pattern");
            ops.push(LogicalOp::Match {
                pattern_index,
                pattern: query.patterns()[pattern_index].clone(),
                output: node.variables.clone(),
            });
            OpId(ops.len() - 1)
        })
        .collect();

    for level in 1..states.len() {
        let prev_graph = &states[level - 1];
        let current = &states[level];
        let mut current_ops = Vec::with_capacity(current.len());
        for node in current.nodes() {
            if node.derived_from.len() == 1 {
                let parent = *node.derived_from.iter().next().expect("one parent");
                current_ops.push(prev_ops[parent]);
                continue;
            }
            let attributes = prev_graph.common_variables(&node.derived_from);
            let mut inputs: Vec<OpId> = Vec::with_capacity(node.derived_from.len());
            for &parent in &node.derived_from {
                let op = prev_ops[parent];
                if !inputs.contains(&op) {
                    inputs.push(op);
                }
            }
            debug_assert!(
                !attributes.is_empty(),
                "clique nodes must share at least one variable"
            );
            ops.push(LogicalOp::Join {
                attributes,
                inputs,
                output: node.variables.clone(),
            });
            current_ops.push(OpId(ops.len() - 1));
        }
        prev_ops = current_ops;
    }

    let body_root = prev_ops[0];
    let variables = if query.distinguished().is_empty() {
        query.variables()
    } else {
        query.distinguished().to_vec()
    };
    ops.push(LogicalOp::Project {
        variables,
        input: body_root,
    });
    let root = OpId(ops.len() - 1);
    LogicalPlan::new(ops, root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_examples;
    use cliquesquare_sparql::parser::parse_query;

    fn optimize(variant: Variant, query: &BgpQuery) -> OptimizeResult {
        Optimizer::with_variant(variant).optimize(query)
    }

    #[test]
    fn single_pattern_query_yields_match_project_plan() {
        let q = parse_query("SELECT ?x WHERE { ?x ub:worksFor ?y }").unwrap();
        let result = optimize(Variant::Msc, &q);
        assert_eq!(result.plans.len(), 1);
        let plan = &result.plans[0];
        assert_eq!(plan.height(), 0);
        assert_eq!(plan.join_count(), 0);
        assert_eq!(plan.match_ops().len(), 1);
    }

    #[test]
    fn two_pattern_query_yields_single_join_plan() {
        let q =
            parse_query("SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d }").unwrap();
        for variant in Variant::ALL {
            let result = optimize(variant, &q);
            assert_eq!(result.plans.len(), 1, "{variant}");
            assert_eq!(result.plans[0].height(), 1);
            assert_eq!(result.plans[0].max_join_fanin(), 2);
        }
    }

    #[test]
    fn every_plan_covers_every_pattern_exactly_like_the_query() {
        for query in paper_examples::all() {
            for variant in [Variant::Msc, Variant::MscPlus, Variant::Mxc] {
                let result = optimize(variant, &query);
                for plan in &result.plans {
                    let matched: BTreeSet<usize> = plan
                        .match_ops()
                        .into_iter()
                        .map(|id| match plan.op(id) {
                            LogicalOp::Match { pattern_index, .. } => *pattern_index,
                            _ => unreachable!(),
                        })
                        .collect();
                    assert_eq!(matched.len(), query.len(), "{variant} on {}", query.name());
                }
            }
        }
    }

    #[test]
    fn mxc_plus_and_xc_plus_fail_on_figure10() {
        let q = paper_examples::figure10_query();
        assert!(optimize(Variant::MxcPlus, &q).plans.is_empty());
        assert!(optimize(Variant::XcPlus, &q).plans.is_empty());
        // ... while the simple-cover variants do find plans.
        assert!(!optimize(Variant::MscPlus, &q).plans.is_empty());
        assert!(!optimize(Variant::Msc, &q).plans.is_empty());
    }

    #[test]
    fn figure11_msc_produces_only_the_two_level_plan_of_figure12() {
        let q = paper_examples::figure11_qx();
        let result = optimize(Variant::Msc, &q);
        assert!(!result.plans.is_empty());
        // All MSC plans for QX have height 2 (Figure 12); the alternative
        // height-2 plan of Figure 13 uses a non-minimum cover and is absent.
        for plan in &result.plans {
            assert_eq!(plan.height(), 2);
        }
        // Figure 13's plan joins {t1,t2}, {t2,t3}, {t3,t4} in the first level:
        // that requires 3 cliques, more than the minimum 2.
        assert!(result.plans.iter().all(|p| p.join_count() <= 3));
    }

    #[test]
    fn figure14_exact_variants_are_ho_lossy() {
        let q = paper_examples::figure14_query();
        let msc_plus = optimize(Variant::MscPlus, &q);
        let best_simple = msc_plus.min_height().unwrap();
        assert_eq!(best_simple, 2);
        for variant in [Variant::Mxc, Variant::Xc] {
            let result = optimize(variant, &q);
            assert!(
                !result.plans.is_empty(),
                "{variant} should still find plans"
            );
            assert!(
                result.min_height().unwrap() > best_simple,
                "{variant} found a flat plan it should not be able to build"
            );
        }
    }

    #[test]
    fn paper_q1_msc_finds_height_three_plan() {
        // Figure 4 shows the MSC plan for Q1 with three join levels.
        let q = paper_examples::figure1_q1();
        let result = optimize(Variant::Msc, &q);
        assert!(!result.plans.is_empty());
        assert_eq!(result.min_height(), Some(3));
        // The first-level decomposition of Figure 5 uses 4 cliques on a, d/f, g/i, j.
        let flattest = result.flattest_plans();
        assert!(flattest.iter().any(|p| p.max_join_fanin() >= 3));
    }

    #[test]
    fn sc_space_includes_msc_space_on_small_queries() {
        let q = paper_examples::figure11_qx();
        let msc: BTreeSet<String> = optimize(Variant::Msc, &q)
            .plans
            .iter()
            .map(LogicalPlan::signature)
            .collect();
        let sc: BTreeSet<String> = optimize(Variant::Sc, &q)
            .plans
            .iter()
            .map(LogicalPlan::signature)
            .collect();
        assert!(msc.is_subset(&sc));
        assert!(sc.len() > msc.len());
    }

    #[test]
    fn truncation_respects_max_plans() {
        let q = paper_examples::figure1_q1();
        let config = OptimizerConfig::variant(Variant::Sc).with_max_plans(10);
        let result = Optimizer::new(config).optimize(&q);
        assert!(result.truncated);
        assert!(result.plans.len() <= 10);
    }

    #[test]
    fn disconnected_query_produces_no_plans() {
        let q = parse_query("SELECT ?a WHERE { ?a ub:p ?b . ?x ub:q ?y }").unwrap();
        let result = optimize(Variant::Msc, &q);
        assert!(result.plans.is_empty());
    }

    #[test]
    fn empty_query_produces_no_plans() {
        let q = BgpQuery::new(vec![], vec![]);
        let result = optimize(Variant::Msc, &q);
        assert!(result.plans.is_empty());
        assert_eq!(result.decompositions_explored, 0);
    }

    #[test]
    fn unique_plans_deduplicate_by_signature() {
        let q = paper_examples::figure1_q1();
        let result = optimize(Variant::Msc, &q);
        assert!(result.unique_count() <= result.plans.len());
        assert!(result.unique_count() >= 1);
    }

    #[test]
    fn plans_project_the_distinguished_variables() {
        let q = parse_query("SELECT ?a WHERE { ?a ub:p1 ?b . ?b ub:p2 ?c . ?c ub:p3 ?d }").unwrap();
        let result = optimize(Variant::Msc, &q);
        for plan in &result.plans {
            assert_eq!(
                plan.output_variables(),
                vec![cliquesquare_sparql::Variable::new("a")]
            );
        }
    }

    use std::collections::BTreeSet;
}
