//! The eight clique-decomposition variants and their enumeration
//! (Section 4.3).
//!
//! A decomposition method is determined by three independent choices:
//!
//! 1. **maximal** cliques only (`+` suffix) vs. **partial** cliques,
//! 2. **exact** covers (`XC`) vs. **simple** covers (`SC`),
//! 3. **minimum-size** covers only (`M` prefix) vs. all covers,
//!
//! giving the variants MXC+, XC+, MSC+, SC+, MXC, XC, MSC and SC.
//!
//! Cover enumeration follows the classic branching on the lowest uncovered
//! node, which enumerates every *irredundant* cover exactly once (a cover is
//! irredundant if every clique contributes at least one otherwise-uncovered
//! node). Covers containing fully redundant cliques add no new joins and are
//! deliberately not enumerated; this matches the intent of Definition 3.3,
//! which requires decompositions to strictly shrink the graph.

use crate::clique::{Clique, Decomposition};
use crate::variable_graph::VariableGraph;
use cliquesquare_sparql::Variable;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// One of the eight CliqueSquare decomposition variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Variant {
    /// Minimum exact covers of maximal cliques.
    MxcPlus,
    /// Exact covers of maximal cliques.
    XcPlus,
    /// Minimum simple covers of maximal cliques.
    MscPlus,
    /// Simple covers of maximal cliques.
    ScPlus,
    /// Minimum exact covers of partial cliques.
    Mxc,
    /// Exact covers of partial cliques.
    Xc,
    /// Minimum simple covers of partial cliques (the paper's recommended
    /// variant).
    Msc,
    /// Simple covers of partial cliques (the complete, largest search space).
    Sc,
}

impl Variant {
    /// All eight variants in the order used by the paper's tables.
    pub const ALL: [Variant; 8] = [
        Variant::MxcPlus,
        Variant::XcPlus,
        Variant::MscPlus,
        Variant::ScPlus,
        Variant::Mxc,
        Variant::Xc,
        Variant::Msc,
        Variant::Sc,
    ];

    /// Returns `true` if the variant only uses maximal cliques.
    pub fn maximal_only(self) -> bool {
        matches!(
            self,
            Variant::MxcPlus | Variant::XcPlus | Variant::MscPlus | Variant::ScPlus
        )
    }

    /// Returns `true` if the variant requires exact (disjoint) covers.
    pub fn exact_cover(self) -> bool {
        matches!(
            self,
            Variant::MxcPlus | Variant::XcPlus | Variant::Mxc | Variant::Xc
        )
    }

    /// Returns `true` if the variant keeps only minimum-size covers.
    pub fn minimum_only(self) -> bool {
        matches!(
            self,
            Variant::MxcPlus | Variant::MscPlus | Variant::Mxc | Variant::Msc
        )
    }

    /// The paper's name for the variant (e.g. `"MSC+"`).
    pub fn name(self) -> &'static str {
        match self {
            Variant::MxcPlus => "MXC+",
            Variant::XcPlus => "XC+",
            Variant::MscPlus => "MSC+",
            Variant::ScPlus => "SC+",
            Variant::Mxc => "MXC",
            Variant::Xc => "XC",
            Variant::Msc => "MSC",
            Variant::Sc => "SC",
        }
    }

    /// Parses a variant from the paper's name (case-insensitive).
    pub fn parse(name: &str) -> Option<Variant> {
        let normalized = name.trim().to_ascii_uppercase();
        Variant::ALL.into_iter().find(|v| v.name() == normalized)
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Enumeration limits protecting against the exponential variants (SC, XC).
///
/// The paper stops each optimization run after a 100-second timeout; we use
/// explicit counts instead so results stay deterministic across machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecompositionLimits {
    /// Maximum number of decompositions returned for a single graph.
    pub max_decompositions: usize,
    /// Maximum number of candidate cliques considered for a single graph.
    pub max_candidate_cliques: usize,
}

impl Default for DecompositionLimits {
    fn default() -> Self {
        Self {
            max_decompositions: 20_000,
            max_candidate_cliques: 50_000,
        }
    }
}

impl DecompositionLimits {
    /// Effectively unlimited enumeration (use only on small queries).
    pub fn unlimited() -> Self {
        Self {
            max_decompositions: usize::MAX,
            max_candidate_cliques: usize::MAX,
        }
    }
}

/// A candidate clique used during cover enumeration.
#[derive(Debug, Clone)]
struct Candidate {
    variable: Variable,
    nodes: BTreeSet<usize>,
}

/// Generates the candidate cliques for `graph` under `variant`.
///
/// For `+` variants these are exactly the maximal cliques; otherwise every
/// non-empty subset of each maximal clique is a candidate (Definition 3.2).
/// Candidates with identical node sets are deduplicated, keeping the first
/// generating variable: the induced join is identical either way.
fn candidate_cliques(
    graph: &VariableGraph,
    variant: Variant,
    limits: &DecompositionLimits,
) -> Vec<Candidate> {
    let mut seen: BTreeSet<BTreeSet<usize>> = BTreeSet::new();
    let mut candidates = Vec::new();
    for (variable, maximal) in graph.maximal_cliques() {
        if variant.maximal_only() {
            if seen.insert(maximal.clone()) {
                candidates.push(Candidate {
                    variable,
                    nodes: maximal,
                });
            }
            continue;
        }
        // Partial cliques: all non-empty subsets of the maximal clique.
        let members: Vec<usize> = maximal.iter().copied().collect();
        let subset_count = 1usize << members.len();
        for mask in 1..subset_count {
            let nodes: BTreeSet<usize> = members
                .iter()
                .enumerate()
                .filter(|(bit, _)| mask & (1 << bit) != 0)
                .map(|(_, &n)| n)
                .collect();
            if seen.insert(nodes.clone()) {
                candidates.push(Candidate {
                    variable: variable.clone(),
                    nodes,
                });
            }
            if candidates.len() >= limits.max_candidate_cliques {
                return candidates;
            }
        }
    }
    candidates
}

/// Enumerates the clique decompositions of `graph` for the given `variant`.
///
/// Returns an empty vector when no valid decomposition exists (which is how
/// MXC+ and XC+ fail on queries like Figure 10) or when the graph has fewer
/// than two nodes.
pub fn decompositions(
    graph: &VariableGraph,
    variant: Variant,
    limits: &DecompositionLimits,
) -> Vec<Decomposition> {
    let n = graph.len();
    if n < 2 {
        return Vec::new();
    }
    let mut candidates = candidate_cliques(graph, variant, limits);
    if candidates.is_empty() {
        return Vec::new();
    }
    // Try large cliques first: small covers are then found early, which both
    // speeds up the search and keeps it correct under the enumeration cap.
    candidates.sort_by(|a, b| {
        b.nodes
            .len()
            .cmp(&a.nodes.len())
            .then(a.nodes.cmp(&b.nodes))
    });

    // node -> candidate indices containing it
    let mut containing: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ci, cand) in candidates.iter().enumerate() {
        for &node in &cand.nodes {
            containing[node].push(ci);
        }
    }
    // A node mentioned by no candidate can never be covered.
    if containing.iter().any(Vec::is_empty) {
        return Vec::new();
    }

    let max_cover_size = n - 1; // Definition 3.3: |D| < |N|
    let mut covers: Vec<Vec<usize>> = Vec::new();
    if variant.minimum_only() {
        // Iterative deepening on the cover size: the first size that admits a
        // cover is the minimum, and bounding the depth keeps the search exact
        // even for queries on which unbounded enumeration would be capped.
        for size in 1..=max_cover_size {
            let mut chosen: Vec<usize> = Vec::new();
            let mut covered: BTreeSet<usize> = BTreeSet::new();
            enumerate_covers(
                &candidates,
                &containing,
                n,
                variant.exact_cover(),
                size,
                limits.max_decompositions,
                &mut chosen,
                &mut covered,
                &mut covers,
            );
            if !covers.is_empty() {
                break;
            }
        }
        // Deepening can admit covers smaller than the bound on later levels of
        // the recursion, but by construction the first non-empty level only
        // contains minimum-size covers; keep the filter as a safety net.
        if let Some(min_size) = covers.iter().map(Vec::len).min() {
            covers.retain(|c| c.len() == min_size);
        }
    } else {
        let mut chosen: Vec<usize> = Vec::new();
        let mut covered: BTreeSet<usize> = BTreeSet::new();
        enumerate_covers(
            &candidates,
            &containing,
            n,
            variant.exact_cover(),
            max_cover_size,
            limits.max_decompositions,
            &mut chosen,
            &mut covered,
            &mut covers,
        );
    }

    covers
        .into_iter()
        .map(|cover| {
            Decomposition::new(
                cover
                    .into_iter()
                    .map(|ci| {
                        Clique::new(
                            candidates[ci].variable.clone(),
                            candidates[ci].nodes.iter().copied(),
                        )
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Recursive enumeration of irredundant covers: branch on the candidates
/// containing the lowest uncovered node. Each irredundant cover is produced
/// exactly once because the order in which its cliques are selected is
/// uniquely determined by that rule.
#[allow(clippy::too_many_arguments)]
fn enumerate_covers(
    candidates: &[Candidate],
    containing: &[Vec<usize>],
    n: usize,
    exact: bool,
    max_size: usize,
    max_covers: usize,
    chosen: &mut Vec<usize>,
    covered: &mut BTreeSet<usize>,
    covers: &mut Vec<Vec<usize>>,
) {
    if covers.len() >= max_covers {
        return;
    }
    if covered.len() == n {
        if chosen.len() <= max_size {
            covers.push(chosen.clone());
        }
        return;
    }
    if chosen.len() >= max_size {
        return; // cannot add more cliques and still satisfy |D| < |N|
    }
    // Lowest uncovered node.
    let next = (0..n)
        .find(|i| !covered.contains(i))
        .expect("some node uncovered");
    for &ci in &containing[next] {
        let cand = &candidates[ci];
        if exact && cand.nodes.iter().any(|node| covered.contains(node)) {
            continue;
        }
        let newly: Vec<usize> = cand
            .nodes
            .iter()
            .copied()
            .filter(|node| !covered.contains(node))
            .collect();
        debug_assert!(!newly.is_empty(), "candidate must cover the branch node");
        chosen.push(ci);
        covered.extend(newly.iter().copied());
        enumerate_covers(
            candidates, containing, n, exact, max_size, max_covers, chosen, covered, covers,
        );
        chosen.pop();
        for node in newly {
            covered.remove(&node);
        }
        if covers.len() >= max_covers {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_examples;
    use std::collections::BTreeSet;

    fn graph(q: &cliquesquare_sparql::BgpQuery) -> VariableGraph {
        VariableGraph::from_query(q)
    }

    #[test]
    fn variant_flags_and_names() {
        assert!(Variant::MxcPlus.maximal_only());
        assert!(Variant::MxcPlus.exact_cover());
        assert!(Variant::MxcPlus.minimum_only());
        assert!(!Variant::Sc.maximal_only());
        assert!(!Variant::Sc.exact_cover());
        assert!(!Variant::Sc.minimum_only());
        assert_eq!(Variant::MscPlus.name(), "MSC+");
        assert_eq!(Variant::parse("msc+"), Some(Variant::MscPlus));
        assert_eq!(Variant::parse("SC"), Some(Variant::Sc));
        assert_eq!(Variant::parse("bogus"), None);
        assert_eq!(Variant::ALL.len(), 8);
        assert_eq!(Variant::Msc.to_string(), "MSC");
    }

    #[test]
    fn figure10_mxc_plus_and_xc_plus_find_no_decomposition() {
        // The maximal cliques {t1,t2} and {t2,t3} overlap on t2, so no exact
        // cover made only of maximal cliques exists (Section 4.4).
        let g = graph(&paper_examples::figure10_query());
        assert!(decompositions(&g, Variant::MxcPlus, &DecompositionLimits::default()).is_empty());
        assert!(decompositions(&g, Variant::XcPlus, &DecompositionLimits::default()).is_empty());
    }

    #[test]
    fn figure10_msc_plus_finds_the_overlapping_cover() {
        let g = graph(&paper_examples::figure10_query());
        let decs = decompositions(&g, Variant::MscPlus, &DecompositionLimits::default());
        assert_eq!(decs.len(), 1);
        assert_eq!(decs[0].len(), 2);
        assert!(!decs[0].is_exact());
    }

    #[test]
    fn figure10_sc_contains_partial_cover_used_in_proof() {
        // {{t1,t2},{t3}} is the partial-clique cover used in the SC+ proof.
        let g = graph(&paper_examples::figure10_query());
        let decs = decompositions(&g, Variant::Sc, &DecompositionLimits::default());
        let target: Vec<BTreeSet<usize>> = vec![BTreeSet::from([0, 1]), BTreeSet::from([2])];
        assert!(decs.iter().any(|d| d.signature() == target));
        // SC also contains the MSC+ cover.
        let overlap: Vec<BTreeSet<usize>> = vec![BTreeSet::from([0, 1]), BTreeSet::from([1, 2])];
        assert!(decs.iter().any(|d| d.signature() == overlap));
    }

    #[test]
    fn all_decompositions_are_valid() {
        for query in paper_examples::all() {
            let g = graph(&query);
            for variant in Variant::ALL {
                for d in decompositions(&g, variant, &DecompositionLimits::default()) {
                    assert!(
                        d.is_valid_for(&g),
                        "{variant} produced invalid {d} for {}",
                        query.name()
                    );
                    if variant.exact_cover() {
                        assert!(d.is_exact(), "{variant} produced non-exact {d}");
                    }
                    if variant.maximal_only() {
                        let maximal = g.maximal_cliques();
                        for c in &d.cliques {
                            assert!(
                                maximal.values().any(|m| *m == c.nodes),
                                "{variant} produced non-maximal clique {c}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn minimum_variants_only_return_smallest_covers() {
        for query in paper_examples::all() {
            let g = graph(&query);
            for (min_variant, all_variant) in [
                (Variant::Msc, Variant::Sc),
                (Variant::MscPlus, Variant::ScPlus),
                (Variant::Mxc, Variant::Xc),
                (Variant::MxcPlus, Variant::XcPlus),
            ] {
                let min_decs = decompositions(&g, min_variant, &DecompositionLimits::default());
                let all_decs = decompositions(&g, all_variant, &DecompositionLimits::default());
                if let Some(global_min) = all_decs.iter().map(Decomposition::len).min() {
                    for d in &min_decs {
                        assert_eq!(d.len(), global_min);
                    }
                }
                // Every minimum cover is also in the unrestricted space.
                for d in &min_decs {
                    assert!(all_decs.iter().any(|o| o.signature() == d.signature()));
                }
            }
        }
    }

    #[test]
    fn maximal_spaces_are_subsets_of_partial_spaces() {
        // Restricted to the small example queries: on Figure 1's Q1 the
        // unrestricted SC enumeration hits the decomposition cap, which would
        // make the inclusion comparison meaningless.
        let queries = [
            paper_examples::figure10_query(),
            paper_examples::figure11_qx(),
            paper_examples::figure14_query(),
        ];
        for query in queries {
            let g = graph(&query);
            for (plus, full) in [
                (Variant::ScPlus, Variant::Sc),
                (Variant::XcPlus, Variant::Xc),
            ] {
                let plus_sigs: BTreeSet<_> =
                    decompositions(&g, plus, &DecompositionLimits::default())
                        .iter()
                        .map(Decomposition::signature)
                        .collect();
                let full_sigs: BTreeSet<_> =
                    decompositions(&g, full, &DecompositionLimits::default())
                        .iter()
                        .map(Decomposition::signature)
                        .collect();
                assert!(
                    plus_sigs.is_subset(&full_sigs),
                    "{plus} ⊄ {full} on {}",
                    query.name()
                );
            }
        }
    }

    #[test]
    fn star_query_has_single_minimum_decomposition() {
        let q = cliquesquare_sparql::parser::parse_query(
            "SELECT ?x WHERE { ?x ub:p1 ?a . ?x ub:p2 ?b . ?x ub:p3 ?c . ?x ub:p4 ?d }",
        )
        .unwrap();
        let g = graph(&q);
        for variant in [
            Variant::Msc,
            Variant::MscPlus,
            Variant::Mxc,
            Variant::MxcPlus,
        ] {
            let decs = decompositions(&g, variant, &DecompositionLimits::default());
            assert_eq!(decs.len(), 1, "{variant}");
            assert_eq!(decs[0].len(), 1);
            assert_eq!(decs[0].cliques[0].len(), 4);
        }
    }

    #[test]
    fn limits_cap_enumeration() {
        let g = graph(&paper_examples::figure1_q1());
        let limits = DecompositionLimits {
            max_decompositions: 5,
            max_candidate_cliques: 100,
        };
        let decs = decompositions(&g, Variant::Sc, &limits);
        assert!(decs.len() <= 5);
        assert!(!decs.is_empty());
    }

    #[test]
    fn single_node_graph_has_no_decomposition() {
        let q = cliquesquare_sparql::parser::parse_query("SELECT ?a WHERE { ?a ub:p ?b }").unwrap();
        let g = graph(&q);
        assert!(decompositions(&g, Variant::Msc, &DecompositionLimits::default()).is_empty());
    }

    #[test]
    fn figure14_exact_cover_requires_three_cliques() {
        // Exact covers must use singletons for two of the satellite patterns,
        // so their minimum size is 3, while simple covers reach size 3 with
        // the three overlapping maximal cliques.
        let g = graph(&paper_examples::figure14_query());
        let xc = decompositions(&g, Variant::Mxc, &DecompositionLimits::default());
        assert!(!xc.is_empty());
        assert!(xc.iter().all(|d| d.len() == 3));
        let msc_plus = decompositions(&g, Variant::MscPlus, &DecompositionLimits::default());
        assert!(msc_plus.iter().all(|d| d.len() <= 3));
    }
}
