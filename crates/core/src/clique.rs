//! Variable cliques, clique decompositions and clique reduction
//! (Definitions 3.2 – 3.4).

use crate::variable_graph::{GraphNode, VariableGraph};
use cliquesquare_sparql::Variable;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A variable clique: a set of nodes of a variable graph all incident to
/// edges carrying the same variable (Definition 3.2).
///
/// A *maximal* clique contains every node mentioning the variable; a
/// *partial* clique is any non-empty subset of a maximal clique (including
/// singletons, which act as pass-through nodes in the reduction).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Clique {
    /// The variable that generated the clique.
    pub variable: Variable,
    /// Indices of the nodes (in the graph being decomposed) forming the clique.
    pub nodes: BTreeSet<usize>,
}

impl Clique {
    /// Creates a clique from its generating variable and node set.
    pub fn new(variable: Variable, nodes: impl IntoIterator<Item = usize>) -> Self {
        Self {
            variable,
            nodes: nodes.into_iter().collect(),
        }
    }

    /// Number of nodes in the clique.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the clique is empty (never produced by the
    /// decomposition enumerators).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Returns `true` if this is a singleton (pass-through) clique.
    pub fn is_singleton(&self) -> bool {
        self.nodes.len() == 1
    }
}

impl fmt::Display for Clique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let nodes: Vec<String> = self.nodes.iter().map(|n| format!("n{n}")).collect();
        write!(f, "{}:{{{}}}", self.variable, nodes.join(","))
    }
}

/// A clique decomposition: a set of cliques covering every node of the graph
/// with strictly fewer cliques than there are nodes (Definition 3.3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decomposition {
    /// The cliques of the decomposition, in canonical (sorted) order.
    pub cliques: Vec<Clique>,
}

impl Decomposition {
    /// Creates a decomposition, normalizing clique order.
    pub fn new(mut cliques: Vec<Clique>) -> Self {
        cliques.sort();
        Self { cliques }
    }

    /// Number of cliques `|D|`.
    pub fn len(&self) -> usize {
        self.cliques.len()
    }

    /// Returns `true` if the decomposition contains no cliques.
    pub fn is_empty(&self) -> bool {
        self.cliques.is_empty()
    }

    /// Returns the set of node indices covered by the decomposition.
    pub fn covered_nodes(&self) -> BTreeSet<usize> {
        self.cliques.iter().flat_map(|c| c.nodes.clone()).collect()
    }

    /// Checks Definition 3.3 against `graph`: all nodes covered and
    /// `|D| < |N|`.
    pub fn is_valid_for(&self, graph: &VariableGraph) -> bool {
        self.len() < graph.len() && self.covered_nodes().len() == graph.len()
    }

    /// Returns `true` if no two cliques share a node (exact cover).
    pub fn is_exact(&self) -> bool {
        let total: usize = self.cliques.iter().map(Clique::len).sum();
        total == self.covered_nodes().len()
    }

    /// A canonical signature of the decomposition ignoring generating
    /// variables: the sorted list of node sets. Two decompositions with the
    /// same signature induce the same joins and therefore the same plans.
    pub fn signature(&self) -> Vec<BTreeSet<usize>> {
        let mut sets: Vec<BTreeSet<usize>> = self.cliques.iter().map(|c| c.nodes.clone()).collect();
        sets.sort();
        sets.dedup();
        sets
    }
}

impl fmt::Display for Decomposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.cliques.iter().map(|c| c.to_string()).collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

/// Applies a clique decomposition to a variable graph (Definition 3.4):
/// every clique becomes a node of the reduced graph whose pattern set is the
/// union of its members' pattern sets; edges are recomputed from shared
/// variables.
///
/// Each produced node records the indices of the nodes it was derived from
/// (`derived_from`), which the plan builder uses to wire join inputs.
pub fn reduce(graph: &VariableGraph, decomposition: &Decomposition) -> VariableGraph {
    // Deduplicate cliques with identical node sets: they would produce
    // identical nodes (the same join) and only inflate the reduced graph.
    let node_sets = decomposition.signature();
    let nodes = node_sets
        .into_iter()
        .map(|members| {
            let mut patterns = BTreeSet::new();
            let mut variables = BTreeSet::new();
            for &m in &members {
                let node = &graph.nodes()[m];
                patterns.extend(node.patterns.iter().copied());
                variables.extend(node.variables.iter().cloned());
            }
            GraphNode {
                patterns,
                variables,
                derived_from: members,
            }
        })
        .collect();
    VariableGraph::from_nodes(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_examples;
    use cliquesquare_sparql::Variable;

    fn clique(v: &str, nodes: &[usize]) -> Clique {
        Clique::new(Variable::new(v), nodes.iter().copied())
    }

    #[test]
    fn clique_basics() {
        let c = clique("d", &[2, 3, 4, 5]);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        assert!(!c.is_singleton());
        assert!(clique("x", &[1]).is_singleton());
        assert_eq!(c.to_string(), "?d:{n2,n3,n4,n5}");
    }

    #[test]
    fn decomposition_validity_against_paper_d1() {
        // d1 from Section 3.2: {{t1,t2,t3},{t3,t4,t5,t6},{t6,t7},{t7,t8,t9},{t9,t10},{t10,t11}}
        let q = paper_examples::figure1_q1();
        let g = VariableGraph::from_query(&q);
        let d1 = Decomposition::new(vec![
            clique("a", &[0, 1, 2]),
            clique("d", &[2, 3, 4, 5]),
            clique("f", &[5, 6]),
            clique("g", &[6, 7, 8]),
            clique("i", &[8, 9]),
            clique("j", &[9, 10]),
        ]);
        assert!(d1.is_valid_for(&g));
        assert!(!d1.is_exact()); // t3, t6, t7, t9, t10 are shared
        assert_eq!(d1.len(), 6);
        assert_eq!(d1.covered_nodes().len(), 11);
    }

    #[test]
    fn decomposition_with_too_many_cliques_is_invalid() {
        let q = paper_examples::figure10_query();
        let g = VariableGraph::from_query(&q);
        // 3 singleton cliques for a 3 node graph: |D| == |N| is not allowed.
        let d = Decomposition::new(vec![
            clique("x", &[0]),
            clique("x", &[1]),
            clique("y", &[2]),
        ]);
        assert!(!d.is_valid_for(&g));
    }

    #[test]
    fn decomposition_missing_a_node_is_invalid() {
        let q = paper_examples::figure10_query();
        let g = VariableGraph::from_query(&q);
        let d = Decomposition::new(vec![clique("x", &[0, 1])]);
        assert!(!d.is_valid_for(&g));
    }

    #[test]
    fn reduction_follows_paper_figure_2() {
        // Reducing Q1's graph by d1 yields the 6-node graph G2 of Figure 2.
        let q = paper_examples::figure1_q1();
        let g1 = VariableGraph::from_query(&q);
        let d1 = Decomposition::new(vec![
            clique("a", &[0, 1, 2]),
            clique("d", &[2, 3, 4, 5]),
            clique("f", &[5, 6]),
            clique("g", &[6, 7, 8]),
            clique("i", &[8, 9]),
            clique("j", &[9, 10]),
        ]);
        let g2 = reduce(&g1, &d1);
        assert_eq!(g2.len(), 6);
        let pattern_sets: Vec<BTreeSet<usize>> =
            g2.nodes().iter().map(|n| n.patterns.clone()).collect();
        assert!(pattern_sets.contains(&BTreeSet::from([0, 1, 2])));
        assert!(pattern_sets.contains(&BTreeSet::from([2, 3, 4, 5])));
        assert!(pattern_sets.contains(&BTreeSet::from([9, 10])));
        // G2 is still connected and can be decomposed further.
        assert!(g2.is_connected());
        assert!(!g2.join_variables().is_empty());
    }

    #[test]
    fn reduction_records_derivation() {
        let q = paper_examples::figure10_query();
        let g = VariableGraph::from_query(&q);
        let d = Decomposition::new(vec![clique("x", &[0, 1]), clique("y", &[1, 2])]);
        let reduced = reduce(&g, &d);
        assert_eq!(reduced.len(), 2);
        for node in reduced.nodes() {
            assert!(!node.derived_from.is_empty());
            assert_eq!(node.derived_from.len(), 2);
        }
    }

    #[test]
    fn reduction_deduplicates_identical_node_sets() {
        let q = paper_examples::figure10_query();
        let g = VariableGraph::from_query(&q);
        // The same node set generated from two different variables collapses
        // into one reduced node.
        let d = Decomposition::new(vec![clique("x", &[0, 1, 2]), clique("y", &[0, 1, 2])]);
        let reduced = reduce(&g, &d);
        assert_eq!(reduced.len(), 1);
    }

    #[test]
    fn signature_ignores_generating_variable() {
        let d1 = Decomposition::new(vec![clique("x", &[0, 1]), clique("y", &[1, 2])]);
        let d2 = Decomposition::new(vec![clique("w", &[1, 2]), clique("z", &[0, 1])]);
        assert_eq!(d1.signature(), d2.signature());
    }
}
