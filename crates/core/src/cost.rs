//! Logical-level cost estimation and plan selection.
//!
//! The full cost model of Section 5.4 (scan, CPU, I/O and network costs of
//! the physical MapReduce operators) lives in the `cliquesquare-engine`
//! crate, where cardinalities are available. This module provides the
//! *logical* counterpart: a pluggable [`CostModel`] trait plus a simple
//! structural model that is sufficient to rank plans when no engine is
//! attached (e.g. in the optimizer-only experiments of Section 6.2).

use crate::plan::{LogicalOp, LogicalPlan};

/// Estimates the cost of a logical plan; lower is better.
pub trait CostModel {
    /// Returns the estimated cost of `plan`.
    fn cost(&self, plan: &LogicalPlan) -> f64;

    /// Picks the cheapest plan of a slice, breaking ties by generation order.
    fn choose_best<'a>(&self, plans: &'a [LogicalPlan]) -> Option<&'a LogicalPlan> {
        plans.iter().min_by(|a, b| {
            self.cost(a)
                .partial_cmp(&self.cost(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

/// A structural cost model over plan shape.
///
/// Each join level adds a full MapReduce job's worth of latency, each join
/// operator adds processing work, and wide intermediate results (joins with
/// few shared attributes relative to their output width) add shuffle volume.
/// The default weights make height the dominant factor, matching the paper's
/// observation that response time is driven by the number of successive jobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimpleCostModel {
    /// Cost charged per unit of plan height (per successive join level).
    pub height_weight: f64,
    /// Cost charged per join operator.
    pub join_weight: f64,
    /// Cost charged per join input (models shuffle volume).
    pub input_weight: f64,
    /// Cost charged per output attribute of each join (models tuple width).
    pub width_weight: f64,
}

impl Default for SimpleCostModel {
    fn default() -> Self {
        Self {
            height_weight: 1000.0,
            join_weight: 10.0,
            input_weight: 1.0,
            width_weight: 0.1,
        }
    }
}

impl CostModel for SimpleCostModel {
    fn cost(&self, plan: &LogicalPlan) -> f64 {
        let mut cost = plan.height() as f64 * self.height_weight;
        for id in plan.join_ops() {
            if let LogicalOp::Join { inputs, output, .. } = plan.op(id) {
                cost += self.join_weight;
                cost += inputs.len() as f64 * self.input_weight;
                cost += output.len() as f64 * self.width_weight;
            }
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Optimizer;
    use crate::paper_examples;
    use crate::Variant;

    #[test]
    fn flatter_plans_cost_less() {
        let q = paper_examples::figure14_query();
        let flat = Optimizer::with_variant(Variant::MscPlus)
            .optimize(&q)
            .plans
            .into_iter()
            .next()
            .unwrap();
        let tall = Optimizer::with_variant(Variant::Mxc)
            .optimize(&q)
            .plans
            .into_iter()
            .next()
            .unwrap();
        assert!(flat.height() < tall.height());
        let model = SimpleCostModel::default();
        assert!(model.cost(&flat) < model.cost(&tall));
    }

    #[test]
    fn choose_best_prefers_minimum_cost() {
        let q = paper_examples::figure1_q1();
        let result = Optimizer::with_variant(Variant::Msc).optimize(&q);
        let model = SimpleCostModel::default();
        let best = model.choose_best(&result.plans).unwrap();
        let best_cost = model.cost(best);
        for plan in &result.plans {
            assert!(model.cost(plan) >= best_cost);
        }
        // The best plan according to the structural model is height-optimal.
        assert_eq!(best.height(), result.min_height().unwrap());
    }

    #[test]
    fn choose_best_on_empty_slice_is_none() {
        let model = SimpleCostModel::default();
        assert!(model.choose_best(&[]).is_none());
    }

    #[test]
    fn weights_influence_ranking() {
        let q = paper_examples::figure11_qx();
        let plans = Optimizer::with_variant(Variant::Sc).optimize(&q).plans;
        assert!(plans.len() > 1);
        let height_focused = SimpleCostModel::default();
        let join_focused = SimpleCostModel {
            height_weight: 0.0,
            join_weight: 100.0,
            input_weight: 0.0,
            width_weight: 0.0,
        };
        let best_h = height_focused.choose_best(&plans).unwrap();
        let best_j = join_focused.choose_best(&plans).unwrap();
        assert_eq!(
            best_h.height(),
            plans.iter().map(LogicalPlan::height).min().unwrap()
        );
        assert_eq!(
            best_j.join_count(),
            plans.iter().map(LogicalPlan::join_count).min().unwrap()
        );
    }
}
