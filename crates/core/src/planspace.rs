//! Plan-space measurements: the quantities reported in Figures 16–19 of the
//! paper's Section 6.2 (number of plans, optimality ratio, optimization time,
//! uniqueness ratio) plus height-optimality helpers.

use crate::decomposition::Variant;
use crate::optimizer::{OptimizeResult, Optimizer, OptimizerConfig};
use crate::plan::LogicalPlan;
use cliquesquare_sparql::BgpQuery;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Computes the optimal (smallest achievable) plan height for a query.
///
/// CliqueSquare-MSC is height-optimal *partial* (Theorem 4.3): for every
/// query it produces at least one plan of optimal height, so the minimum
/// height over its plan space equals the global optimum. Returns `None` for
/// queries on which no plan exists (empty or disconnected queries).
pub fn optimal_height(query: &BgpQuery) -> Option<usize> {
    Optimizer::with_variant(Variant::Msc)
        .optimize(query)
        .min_height()
}

/// Returns `true` if `plan` is height-optimal for `query` (Definition 4.1).
pub fn is_height_optimal(plan: &LogicalPlan, query: &BgpQuery) -> bool {
    optimal_height(query).is_some_and(|h| plan.height() == h)
}

/// Per-query measurements for one variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryMeasurement {
    /// Name of the query.
    pub query: String,
    /// Variant under measurement.
    pub variant: Variant,
    /// Total number of generated plans (duplicates included, as in Fig. 16).
    pub plans: usize,
    /// Number of structurally unique plans.
    pub unique_plans: usize,
    /// Number of height-optimal plans among the generated ones.
    pub height_optimal_plans: usize,
    /// Optimal height of the query (from the MSC reference), if any plan exists.
    pub optimal_height: Option<usize>,
    /// Minimum height among the generated plans, if any.
    pub min_height: Option<usize>,
    /// Optimization wall-clock time in milliseconds.
    pub time_ms: f64,
    /// Whether the search was truncated by the configured limits.
    pub truncated: bool,
}

impl QueryMeasurement {
    /// Optimality ratio for this query: HO plans / all plans, 0 when no plan
    /// was found (the convention of Figure 17).
    pub fn optimality_ratio(&self) -> f64 {
        if self.plans == 0 {
            0.0
        } else {
            self.height_optimal_plans as f64 / self.plans as f64
        }
    }

    /// Uniqueness ratio for this query: unique plans / all plans, 1 when no
    /// plan was found (no duplicates were produced).
    pub fn uniqueness_ratio(&self) -> f64 {
        if self.plans == 0 {
            1.0
        } else {
            self.unique_plans as f64 / self.plans as f64
        }
    }
}

/// Measures one variant on one query.
pub fn measure_query(
    query: &BgpQuery,
    variant: Variant,
    config: OptimizerConfig,
) -> QueryMeasurement {
    let config = OptimizerConfig { variant, ..config };
    let result: OptimizeResult = Optimizer::new(config).optimize(query);
    let optimal = optimal_height(query);
    let height_optimal_plans = match optimal {
        Some(h) => result.plans.iter().filter(|p| p.height() == h).count(),
        None => 0,
    };
    QueryMeasurement {
        query: query.name().to_string(),
        variant,
        plans: result.plans.len(),
        unique_plans: result.unique_count(),
        height_optimal_plans,
        optimal_height: optimal,
        min_height: result.min_height(),
        time_ms: result.elapsed.as_secs_f64() * 1000.0,
        truncated: result.truncated,
    }
}

/// Aggregate of [`QueryMeasurement`]s for one variant over a workload:
/// one row of Figures 16–19.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariantReport {
    /// Variant under measurement.
    pub variant: Variant,
    /// Average number of generated plans per query (Figure 16).
    pub avg_plans: f64,
    /// Average optimality ratio (Figure 17).
    pub avg_optimality_ratio: f64,
    /// Average optimization time in milliseconds (Figure 18).
    pub avg_time_ms: f64,
    /// Average uniqueness ratio (Figure 19).
    pub avg_uniqueness_ratio: f64,
    /// Number of queries for which the variant found no plan at all.
    pub failed_queries: usize,
    /// Number of queries measured.
    pub queries: usize,
}

/// Aggregate report over a workload for a set of variants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanSpaceReport {
    /// One row per variant.
    pub rows: Vec<VariantReport>,
    /// The individual per-query measurements behind the aggregates.
    pub measurements: Vec<QueryMeasurement>,
}

impl PlanSpaceReport {
    /// Returns the report row for `variant`, if it was measured.
    pub fn row(&self, variant: Variant) -> Option<&VariantReport> {
        self.rows.iter().find(|r| r.variant == variant)
    }
}

/// Runs the Section 6.2 experiment: measures every variant on every query
/// and aggregates per-variant averages.
pub fn evaluate_variants(
    queries: &[BgpQuery],
    variants: &[Variant],
    config: OptimizerConfig,
) -> PlanSpaceReport {
    let mut measurements = Vec::new();
    let mut rows = Vec::new();
    for &variant in variants {
        let per_query: Vec<QueryMeasurement> = queries
            .iter()
            .map(|q| measure_query(q, variant, config))
            .collect();
        let n = per_query.len().max(1) as f64;
        let avg_plans = per_query.iter().map(|m| m.plans as f64).sum::<f64>() / n;
        let avg_optimality_ratio = per_query
            .iter()
            .map(QueryMeasurement::optimality_ratio)
            .sum::<f64>()
            / n;
        let avg_time_ms = per_query.iter().map(|m| m.time_ms).sum::<f64>() / n;
        let avg_uniqueness_ratio = per_query
            .iter()
            .map(QueryMeasurement::uniqueness_ratio)
            .sum::<f64>()
            / n;
        let failed_queries = per_query.iter().filter(|m| m.plans == 0).count();
        rows.push(VariantReport {
            variant,
            avg_plans,
            avg_optimality_ratio,
            avg_time_ms,
            avg_uniqueness_ratio,
            failed_queries,
            queries: per_query.len(),
        });
        measurements.extend(per_query);
    }
    PlanSpaceReport { rows, measurements }
}

/// Classification of a variant's ability to find height-optimal plans
/// (Definition 4.2 / 4.3 and Figure 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HoClass {
    /// The variant's plan space contains *all* HO plans of every query.
    Complete,
    /// The variant's plan space contains *at least one* HO plan of every query.
    Partial,
    /// There are queries for which the variant finds no HO plan.
    Lossy,
}

/// The paper's classification of each variant (Figure 9).
pub fn paper_ho_class(variant: Variant) -> HoClass {
    match variant {
        Variant::Sc => HoClass::Complete,
        Variant::ScPlus | Variant::MscPlus | Variant::Msc => HoClass::Partial,
        Variant::MxcPlus | Variant::XcPlus | Variant::Mxc | Variant::Xc => HoClass::Lossy,
    }
}

/// Empirically checks, over a set of queries, whether `variant` found at
/// least one HO plan for every query (the HO-partial property restricted to
/// the given workload). Returns the names of the queries where it failed.
pub fn ho_failures(queries: &[BgpQuery], variant: Variant, config: OptimizerConfig) -> Vec<String> {
    let mut failures = Vec::new();
    for query in queries {
        let Some(optimal) = optimal_height(query) else {
            continue;
        };
        let measurement = measure_query(query, variant, config);
        if measurement.min_height != Some(optimal) {
            failures.push(query.name().to_string());
        }
    }
    failures
}

/// Returns the set of plan signatures produced by `variant` for `query`
/// (used to verify the plan-space inclusions of Figure 7).
pub fn plan_signatures(
    query: &BgpQuery,
    variant: Variant,
    config: OptimizerConfig,
) -> BTreeSet<String> {
    let config = OptimizerConfig { variant, ..config };
    Optimizer::new(config)
        .optimize(query)
        .plans
        .iter()
        .map(LogicalPlan::signature)
        .collect()
}

/// The plan-space inclusion lattice of Figure 7: pairs `(smaller, larger)`
/// such that the plan space of `smaller` is included in that of `larger`.
pub fn figure7_inclusions() -> Vec<(Variant, Variant)> {
    use Variant::*;
    vec![
        (MxcPlus, XcPlus),
        (MxcPlus, MscPlus),
        (MxcPlus, Mxc),
        (XcPlus, ScPlus),
        (XcPlus, Xc),
        (MscPlus, ScPlus),
        (MscPlus, Msc),
        (Mxc, Xc),
        (Mxc, Msc),
        (ScPlus, Sc),
        (Xc, Sc),
        (Msc, Sc),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_examples;

    fn config() -> OptimizerConfig {
        OptimizerConfig::recommended()
    }

    #[test]
    fn optimal_heights_of_paper_examples() {
        assert_eq!(optimal_height(&paper_examples::figure1_q1()), Some(3));
        assert_eq!(optimal_height(&paper_examples::figure10_query()), Some(2));
        assert_eq!(optimal_height(&paper_examples::figure11_qx()), Some(2));
        assert_eq!(optimal_height(&paper_examples::figure14_query()), Some(2));
    }

    #[test]
    fn msc_measurements_are_all_height_optimal_on_small_examples() {
        // On the small example queries every MSC plan is height optimal, as
        // in the paper's synthetic workload (Figure 17). This is not
        // guaranteed in general, so larger queries only assert HO-partiality.
        for query in [
            paper_examples::figure10_query(),
            paper_examples::figure11_qx(),
        ] {
            let m = measure_query(&query, Variant::Msc, config());
            assert!(m.plans > 0);
            assert_eq!(m.optimality_ratio(), 1.0, "MSC not HO on {}", query.name());
            assert!(m.uniqueness_ratio() > 0.0);
        }
        // On Figure 14 and the large Figure 1 query MSC mixes optimal and
        // non-optimal plans but, being HO-partial, always includes at least
        // one height-optimal plan.
        for query in [
            paper_examples::figure14_query(),
            paper_examples::figure1_q1(),
        ] {
            let m = measure_query(&query, Variant::Msc, config());
            assert!(m.plans > 0);
            assert!(
                m.height_optimal_plans >= 1,
                "no HO plan on {}",
                query.name()
            );
            assert_eq!(m.min_height, m.optimal_height);
        }
    }

    #[test]
    fn exact_variants_are_lossy_on_figure14() {
        let q = paper_examples::figure14_query();
        for variant in [Variant::Mxc, Variant::Xc] {
            let m = measure_query(&q, variant, config());
            assert!(m.plans > 0);
            assert_eq!(m.optimality_ratio(), 0.0, "{variant}");
        }
        for variant in [Variant::MxcPlus, Variant::XcPlus] {
            let m = measure_query(&q, variant, config());
            assert_eq!(m.plans, 0, "{variant} cannot cover Figure 14 exactly");
            assert_eq!(m.optimality_ratio(), 0.0);
        }
    }

    #[test]
    fn evaluate_variants_produces_one_row_per_variant() {
        // Only the small example queries: running SC / XC over the 11-pattern
        // Figure 1 query enumerates tens of thousands of plans and belongs in
        // the benchmark harness, not a unit test.
        let queries = [
            paper_examples::figure10_query(),
            paper_examples::figure11_qx(),
            paper_examples::figure14_query(),
        ];
        let report = evaluate_variants(&queries, &Variant::ALL, config());
        assert_eq!(report.rows.len(), 8);
        assert_eq!(report.measurements.len(), 8 * queries.len());
        let msc = report.row(Variant::Msc).unwrap();
        assert_eq!(msc.failed_queries, 0);
        assert!(msc.avg_plans >= 1.0);
        assert!(msc.avg_optimality_ratio > 0.7);
        let mxc_plus = report.row(Variant::MxcPlus).unwrap();
        assert!(mxc_plus.failed_queries > 0);
    }

    #[test]
    fn ho_failures_match_paper_classification_on_examples() {
        let queries = [
            paper_examples::figure10_query(),
            paper_examples::figure11_qx(),
            paper_examples::figure14_query(),
        ];
        for variant in [Variant::Msc, Variant::MscPlus, Variant::ScPlus, Variant::Sc] {
            assert!(
                ho_failures(&queries, variant, config()).is_empty(),
                "{variant} should be HO-partial on the example queries"
            );
        }
        // The exact variants all miss the flattest plan of Figure 14.
        for variant in [Variant::Mxc, Variant::Xc, Variant::MxcPlus, Variant::XcPlus] {
            assert!(
                ho_failures(&queries, variant, config()).contains(&"Fig14".to_string()),
                "{variant} should fail on Figure 14"
            );
        }
    }

    #[test]
    fn figure7_inclusions_hold_on_small_examples() {
        // Verify the plan-space inclusion lattice on the tractable examples.
        let queries = [
            paper_examples::figure10_query(),
            paper_examples::figure11_qx(),
            paper_examples::figure14_query(),
        ];
        for (smaller, larger) in figure7_inclusions() {
            for query in &queries {
                let s = plan_signatures(query, smaller, config());
                let l = plan_signatures(query, larger, config());
                assert!(
                    s.is_subset(&l),
                    "P_{smaller} ⊄ P_{larger} on {}",
                    query.name()
                );
            }
        }
    }

    #[test]
    fn paper_ho_classification_table() {
        assert_eq!(paper_ho_class(Variant::Sc), HoClass::Complete);
        assert_eq!(paper_ho_class(Variant::Msc), HoClass::Partial);
        assert_eq!(paper_ho_class(Variant::MscPlus), HoClass::Partial);
        assert_eq!(paper_ho_class(Variant::ScPlus), HoClass::Partial);
        for v in [Variant::Mxc, Variant::Xc, Variant::MxcPlus, Variant::XcPlus] {
            assert_eq!(paper_ho_class(v), HoClass::Lossy);
        }
    }
}
