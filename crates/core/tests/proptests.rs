//! Property-based tests for the CliqueSquare optimizer's core invariants:
//! decomposition validity, clique reduction, plan structure and height
//! optimality over randomly generated connected queries.

use cliquesquare_core::clique::reduce;
use cliquesquare_core::decomposition::{decompositions, DecompositionLimits, Variant};
use cliquesquare_core::{LogicalOp, Optimizer, VariableGraph};
use cliquesquare_sparql::{BgpQuery, PatternTerm, TriplePattern, Variable};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Generates a random *connected* BGP query: pattern `i` always shares a
/// variable with one of the earlier patterns.
fn connected_query_strategy() -> impl Strategy<Value = BgpQuery> {
    (2usize..7, any::<u64>()).prop_map(|(n, seed)| {
        // Simple deterministic pseudo-random attachment from the seed.
        let mut patterns = Vec::with_capacity(n);
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let pool = (n / 2).max(2) + 2;
        let mut used: Vec<usize> = vec![0];
        for i in 0..n {
            // Anchor each new pattern on an already-used variable so the
            // generated query is always connected (×-free).
            let subject = used[next() % used.len()];
            let mut object = next() % pool;
            if object == subject {
                object = (object + 1) % pool;
            }
            for v in [subject, object] {
                if !used.contains(&v) {
                    used.push(v);
                }
            }
            patterns.push(TriplePattern::new(
                PatternTerm::variable(format!("v{subject}")),
                PatternTerm::iri(format!("http://ex.org/p{i}")),
                PatternTerm::variable(format!("v{object}")),
            ));
        }
        let distinguished = vec![Variable::new("v0")];
        BgpQuery::new(distinguished, patterns)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every decomposition produced by every variant satisfies Definition 3.3
    /// (covers all nodes, strictly fewer cliques than nodes), and exact-cover
    /// variants produce disjoint cliques.
    #[test]
    fn decompositions_satisfy_definition_3_3(query in connected_query_strategy()) {
        prop_assume!(query.is_connected());
        let graph = VariableGraph::from_query(&query);
        let limits = DecompositionLimits::default();
        for variant in Variant::ALL {
            for d in decompositions(&graph, variant, &limits) {
                prop_assert!(d.is_valid_for(&graph), "{variant}: {d}");
                if variant.exact_cover() {
                    prop_assert!(d.is_exact(), "{variant}: {d}");
                }
                if variant.maximal_only() {
                    let maximal = graph.maximal_cliques();
                    for clique in &d.cliques {
                        prop_assert!(maximal.values().any(|m| *m == clique.nodes));
                    }
                }
            }
        }
    }

    /// Clique reduction strictly shrinks the graph and preserves the set of
    /// triple patterns covered.
    #[test]
    fn reduction_shrinks_and_preserves_patterns(query in connected_query_strategy()) {
        prop_assume!(query.is_connected());
        let graph = VariableGraph::from_query(&query);
        let limits = DecompositionLimits::default();
        for d in decompositions(&graph, Variant::Msc, &limits) {
            let reduced = reduce(&graph, &d);
            prop_assert!(reduced.len() < graph.len());
            let covered: BTreeSet<usize> = reduced
                .nodes()
                .iter()
                .flat_map(|n| n.patterns.iter().copied())
                .collect();
            prop_assert_eq!(covered, (0..query.len()).collect::<BTreeSet<_>>());
        }
    }

    /// Minimum-cover variants never return covers of different sizes, and
    /// their covers are never larger than what the unrestricted variant finds.
    #[test]
    fn minimum_covers_are_minimum(query in connected_query_strategy()) {
        prop_assume!(query.is_connected());
        let graph = VariableGraph::from_query(&query);
        let limits = DecompositionLimits::default();
        let msc = decompositions(&graph, Variant::Msc, &limits);
        if let Some(first) = msc.first() {
            prop_assert!(msc.iter().all(|d| d.len() == first.len()));
            let sc = decompositions(&graph, Variant::Sc, &limits);
            if let Some(sc_min) = sc.iter().map(|d| d.len()).min() {
                prop_assert!(first.len() <= sc_min);
            }
        }
    }

    /// Every plan built by MSC covers each triple pattern with exactly one
    /// Match operator, projects the distinguished variables, and respects the
    /// n-ary join semantics (join attributes are shared by all inputs).
    #[test]
    fn msc_plans_are_well_formed(query in connected_query_strategy()) {
        prop_assume!(query.is_connected());
        let result = Optimizer::with_variant(Variant::Msc).optimize(&query);
        prop_assert!(!result.plans.is_empty());
        for plan in &result.plans {
            let matched: BTreeSet<usize> = plan
                .match_ops()
                .into_iter()
                .map(|id| match plan.op(id) {
                    LogicalOp::Match { pattern_index, .. } => *pattern_index,
                    _ => unreachable!(),
                })
                .collect();
            prop_assert_eq!(matched, (0..query.len()).collect::<BTreeSet<_>>());
            prop_assert_eq!(
                plan.output_variables(),
                query.distinguished().to_vec()
            );
            for id in plan.join_ops() {
                if let LogicalOp::Join { attributes, inputs, .. } = plan.op(id) {
                    prop_assert!(!attributes.is_empty());
                    prop_assert!(inputs.len() >= 2);
                    for input in inputs {
                        let output = plan.op(*input).output();
                        for attr in attributes {
                            prop_assert!(output.contains(attr), "join attribute missing from input");
                        }
                    }
                }
            }
        }
    }

    /// Plan heights behave monotonically: the flattest MSC plan is never
    /// deeper than the flattest plan of any exact-cover variant.
    #[test]
    fn msc_is_at_least_as_flat_as_exact_variants(query in connected_query_strategy()) {
        prop_assume!(query.is_connected());
        let msc = Optimizer::with_variant(Variant::Msc).optimize(&query);
        let msc_best = msc.min_height().unwrap();
        for variant in [Variant::Mxc, Variant::MxcPlus, Variant::XcPlus] {
            let other = Optimizer::with_variant(variant).optimize(&query);
            if let Some(other_best) = other.min_height() {
                prop_assert!(
                    msc_best <= other_best,
                    "MSC height {msc_best} deeper than {variant} height {other_best}"
                );
            }
        }
    }
}
