//! The MapReduce cost model of Section 5.4, over *estimated* cardinalities.
//!
//! The optimizer needs to pick one plan among the candidates before anything
//! is executed, so the model walks the physical plan and estimates, for every
//! operator, the work it will cause:
//!
//! * `c(MS)   = |file| · c_read`
//! * `c(F)    = |input| · c_check`
//! * `c(π)    = |input| · c_check`
//! * `c(MF)   = |input| · (c_read + c_write)`
//! * `c(MJ)   = |output| · (c_join + c_write)`
//! * `c(RJ)   = Σ|inputs| · c_shuffle + |output| · (c_join + c_write)`
//!
//! plus the per-job start-up overhead, which is what makes flat plans win.
//! Scan cardinalities are exact (they come from the partitioned store);
//! join cardinalities use the classic independence assumption.

use crate::jobs::schedule;
use crate::physical::{PhysId, PhysicalOp, PhysicalPlan};
use crate::translate::translate;
use cliquesquare_core::LogicalPlan;
use cliquesquare_mapreduce::Cluster;
use serde::{Deserialize, Serialize};

/// The estimated cost of a physical plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Estimated total work plus job overhead, in simulated seconds.
    pub total_seconds: f64,
    /// Number of MapReduce jobs the plan needs.
    pub jobs: usize,
    /// Estimated cardinality of the final result.
    pub estimated_result: f64,
}

/// The Section 5.4 cost model bound to a loaded cluster.
#[derive(Debug, Clone)]
pub struct MapReduceCostModel<'a> {
    cluster: &'a Cluster,
}

impl<'a> MapReduceCostModel<'a> {
    /// Creates a cost model over the given cluster.
    pub fn new(cluster: &'a Cluster) -> Self {
        Self { cluster }
    }

    /// Estimates the cost of a physical plan.
    pub fn estimate(&self, plan: &PhysicalPlan) -> CostEstimate {
        let params = &self.cluster.config().cost;
        let nodes = self.cluster.nodes().max(1) as f64;
        let sched = schedule(plan);

        // Estimated output cardinality of every operator, bottom-up.
        let mut cards = vec![0.0f64; plan.len()];
        let mut work = 0.0f64;
        for index in 0..plan.len() {
            let id = PhysId(index);
            let op = plan.op(id);
            let card = match op {
                PhysicalOp::MapScan { spec, .. } => {
                    let scanned = self.cluster.store().scan_cardinality(
                        spec.placement,
                        spec.property,
                        spec.type_object,
                    ) as f64;
                    work += scanned * params.read;
                    scanned
                }
                PhysicalOp::Filter {
                    conditions, input, ..
                } => {
                    let input_card = cards[input.index()];
                    work += input_card * params.check;
                    // Each equality condition keeps roughly one value out of
                    // the distinct values of that column; without per-column
                    // statistics use a fixed selectivity of 5% per condition.
                    input_card * 0.05f64.powi(conditions.len() as i32)
                }
                PhysicalOp::MapShuffler { input, .. } => {
                    let input_card = cards[input.index()];
                    work += input_card * (params.read + params.write);
                    input_card
                }
                PhysicalOp::MapJoin { inputs, .. } | PhysicalOp::ReduceJoin { inputs, .. } => {
                    let input_cards: Vec<f64> = inputs.iter().map(|i| cards[i.index()]).collect();
                    let output = join_cardinality(&input_cards);
                    if matches!(op, PhysicalOp::ReduceJoin { .. }) {
                        let shuffled: f64 = input_cards.iter().sum();
                        work += shuffled * params.shuffle;
                    }
                    work += output * (params.join + params.write);
                    output
                }
                PhysicalOp::Project { input, .. } => {
                    let input_card = cards[input.index()];
                    work += input_card * params.check;
                    input_card
                }
            };
            cards[index] = card;
        }

        let overhead = sched.job_count as f64 * params.job_startup
            + sched
                .kinds
                .iter()
                .map(|k| match k {
                    cliquesquare_mapreduce::JobKind::MapOnly => params.task_startup,
                    cliquesquare_mapreduce::JobKind::MapReduce => 2.0 * params.task_startup,
                })
                .sum::<f64>();
        CostEstimate {
            total_seconds: overhead + work / nodes,
            jobs: sched.job_count,
            estimated_result: cards[plan.root().index()],
        }
    }

    /// Translates and estimates a logical plan.
    pub fn estimate_logical(&self, plan: &LogicalPlan) -> CostEstimate {
        self.estimate(&translate(plan, self.cluster.graph()))
    }

    /// Picks the cheapest logical plan of a slice according to the model.
    pub fn choose_best<'p>(&self, plans: &'p [LogicalPlan]) -> Option<&'p LogicalPlan> {
        plans.iter().min_by(|a, b| {
            self.estimate_logical(a)
                .total_seconds
                .partial_cmp(&self.estimate_logical(b).total_seconds)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

/// Join cardinality under the textbook independence assumption: the product
/// of the input cardinalities divided by the largest input once per joined
/// input beyond the first (i.e. every extra input acts as a filter with
/// selectivity `1 / max_input`).
fn join_cardinality(inputs: &[f64]) -> f64 {
    if inputs.is_empty() {
        return 0.0;
    }
    let max = inputs.iter().cloned().fold(1.0f64, f64::max).max(1.0);
    let product: f64 = inputs.iter().product();
    product / max.powi(inputs.len() as i32 - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesquare_core::{Optimizer, Variant};
    use cliquesquare_mapreduce::ClusterConfig;
    use cliquesquare_rdf::{LubmGenerator, LubmScale};
    use cliquesquare_sparql::parser::parse_query;

    fn cluster() -> Cluster {
        let graph = LubmGenerator::new(LubmScale::tiny()).generate();
        Cluster::load(graph, ClusterConfig::with_nodes(4))
    }

    #[test]
    fn join_cardinality_behaves() {
        assert_eq!(join_cardinality(&[]), 0.0);
        assert_eq!(join_cardinality(&[100.0]), 100.0);
        assert_eq!(join_cardinality(&[100.0, 50.0]), 50.0);
        assert!(join_cardinality(&[100.0, 100.0, 100.0]) <= 100.0 + f64::EPSILON);
        assert_eq!(join_cardinality(&[0.0, 10.0]), 0.0);
    }

    #[test]
    fn more_jobs_cost_more() {
        let cluster = cluster();
        let model = MapReduceCostModel::new(&cluster);
        let query = "SELECT ?a WHERE { ?a ub:p1 ?b . ?b ub:p2 ?c . ?c ub:p3 ?d . ?d ub:p4 ?e . ?e ub:p5 ?f . ?f ub:p6 ?g }";
        let q = parse_query(query).unwrap();
        let flat = Optimizer::with_variant(Variant::Msc).optimize(&q);
        let deep = Optimizer::with_variant(Variant::Mxc).optimize(&q);
        let flat_cost = model.estimate_logical(flat.flattest_plans()[0]);
        let deep_plan = deep.plans.iter().max_by_key(|p| p.height()).unwrap();
        let deep_cost = model.estimate_logical(deep_plan);
        assert!(flat_cost.jobs <= deep_cost.jobs);
        assert!(flat_cost.total_seconds <= deep_cost.total_seconds);
    }

    #[test]
    fn choose_best_picks_a_cheap_plan() {
        let cluster = cluster();
        let model = MapReduceCostModel::new(&cluster);
        let q = parse_query(
            "SELECT ?x ?z WHERE { ?x ub:advisor ?y . ?y ub:worksFor ?z . ?z ub:subOrganizationOf ?u }",
        )
        .unwrap();
        let plans = Optimizer::with_variant(Variant::Msc).optimize(&q).plans;
        let best = model.choose_best(&plans).unwrap();
        let best_cost = model.estimate_logical(best).total_seconds;
        for plan in &plans {
            assert!(model.estimate_logical(plan).total_seconds >= best_cost);
        }
    }

    #[test]
    fn selective_scans_are_estimated_cheaper() {
        let cluster = cluster();
        let model = MapReduceCostModel::new(&cluster);
        let narrow =
            parse_query("SELECT ?x WHERE { ?x rdf:type ub:GraduateStudent . ?x ub:memberOf ?d }")
                .unwrap();
        let wide = parse_query("SELECT ?x WHERE { ?x rdf:type ?t . ?x ub:memberOf ?d }").unwrap();
        let narrow_plan = Optimizer::with_variant(Variant::Msc).optimize(&narrow);
        let wide_plan = Optimizer::with_variant(Variant::Msc).optimize(&wide);
        let narrow_cost = model.estimate_logical(narrow_plan.flattest_plans()[0]);
        let wide_cost = model.estimate_logical(wide_plan.flattest_plans()[0]);
        assert!(narrow_cost.total_seconds < wide_cost.total_seconds);
    }

    #[test]
    fn estimate_reports_job_count() {
        let cluster = cluster();
        let model = MapReduceCostModel::new(&cluster);
        let q =
            parse_query("SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d }").unwrap();
        let plans = Optimizer::with_variant(Variant::Msc).optimize(&q).plans;
        let estimate = model.estimate_logical(&plans[0]);
        assert_eq!(estimate.jobs, 1);
        assert!(estimate.total_seconds > 0.0);
        assert!(estimate.estimated_result > 0.0);
    }
}
