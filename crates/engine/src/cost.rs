//! The MapReduce cost model of Section 5.4, over *estimated* cardinalities.
//!
//! The optimizer needs to pick one plan among the candidates before anything
//! is executed, so the model walks the physical plan and estimates, for every
//! operator, the work it will cause:
//!
//! * `c(MS)   = |file| · c_read`
//! * `c(F)    = |input| · c_check`
//! * `c(π)    = |input| · c_check`
//! * `c(MF)   = |input| · (c_read + c_write)`
//! * `c(MJ)   = |output| · (c_join + c_write)`
//! * `c(RJ)   = Σ|inputs| · c_shuffle + |output| · (c_join + c_write)`
//!
//! plus the per-job start-up overhead, which is what makes flat plans win.
//!
//! Cardinalities come from the catalog statistics the cluster computes at
//! load time ([`cliquesquare_rdf::GraphStatistics`]):
//!
//! * **Scans** are exact: per-predicate triple counts (and per-class counts
//!   for split `rdf:type` files) answer a scan's size without touching the
//!   store.
//! * **Residual filters** use distinct-count selection: an equality on
//!   position `P` of a predicate-`p` scan keeps `1 / d_P(p)` of its input,
//!   where `d_P(p)` is the number of distinct values predicate `p` has at
//!   `P` — instead of the old fixed 5% guess.
//! * **Joins** use distinct-count estimation under the containment
//!   assumption: `|R₁ ⋈ … ⋈ Rₙ| = Π|Rᵢ| · d_min / Π dᵢ`, where `dᵢ` is
//!   input `i`'s distinct count of the join key (for two inputs this is the
//!   textbook `|R||S| / max(d_R, d_S)`), with per-attribute distinct counts
//!   propagated bottom-up. [`MapReduceCostModel::uniform`] retains the old
//!   pure independence assumption for differential measurement.
//!
//! The model is also *order-aware*: an operator whose delivered ordering
//! does not satisfy its consumer's requirement will be sorted by the
//! executor, so the model charges `n·log₂ n` comparisons for it. Plans that
//! chain their join keys (Selinger-style interesting orders) sort less and
//! therefore win ties that pure cardinality pricing would leave unresolved.

use crate::jobs::schedule;
use crate::physical::{PhysId, PhysicalOp, PhysicalPlan, ScanSpec};
use crate::translate::translate;
use cliquesquare_core::LogicalPlan;
use cliquesquare_mapreduce::Cluster;
use cliquesquare_rdf::{GraphStatistics, TriplePosition};
use cliquesquare_sparql::Variable;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The estimated cost of a physical plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Estimated total work plus job overhead, in simulated seconds.
    pub total_seconds: f64,
    /// Number of MapReduce jobs the plan needs.
    pub jobs: usize,
    /// Estimated cardinality of the final result.
    pub estimated_result: f64,
}

/// Estimated output cardinality and per-attribute distinct counts of one
/// operator, propagated bottom-up through the plan.
#[derive(Debug, Clone, Default)]
struct OpEstimate {
    card: f64,
    distincts: BTreeMap<Variable, f64>,
}

impl OpEstimate {
    /// Distinct count of `attribute`, capped by the output cardinality;
    /// falls back to the cardinality itself when untracked.
    fn distinct(&self, attribute: &Variable) -> f64 {
        self.distincts
            .get(attribute)
            .copied()
            .unwrap_or(self.card)
            .min(self.card)
            .max(if self.card > 0.0 { 1.0 } else { 0.0 })
    }
}

/// The Section 5.4 cost model bound to a loaded cluster.
#[derive(Debug, Clone)]
pub struct MapReduceCostModel<'a> {
    cluster: &'a Cluster,
    /// Catalog statistics driving selectivity estimates; `None` reverts to
    /// the paper's uniform independence assumption.
    statistics: Option<&'a GraphStatistics>,
}

impl<'a> MapReduceCostModel<'a> {
    /// Creates a statistics-driven cost model over the given cluster.
    pub fn new(cluster: &'a Cluster) -> Self {
        Self {
            cluster,
            statistics: Some(cluster.statistics()),
        }
    }

    /// Creates the paper's original uniform model (independence assumption,
    /// fixed filter selectivity), for differential estimator measurement.
    pub fn uniform(cluster: &'a Cluster) -> Self {
        Self {
            cluster,
            statistics: None,
        }
    }

    /// Estimated output cardinality of a scan. Exact either way: the
    /// catalog's per-predicate (and per-class) counts equal what the store
    /// would deliver, without materializing the scan.
    fn scan_cardinality(&self, spec: &ScanSpec) -> f64 {
        match self.statistics {
            Some(stats) => stats.scan_cardinality(spec.property, spec.type_object) as f64,
            None => self.cluster.store().scan_cardinality(
                spec.placement,
                spec.property,
                spec.type_object,
            ) as f64,
        }
    }

    /// Distinct-count map of a scan's output variables.
    fn scan_distincts(&self, spec: &ScanSpec, card: f64) -> BTreeMap<Variable, f64> {
        let Some(stats) = self.statistics else {
            return BTreeMap::new();
        };
        let mut distincts = BTreeMap::new();
        for (position, term) in [
            (TriplePosition::Subject, &spec.pattern.subject),
            (TriplePosition::Property, &spec.pattern.property),
            (TriplePosition::Object, &spec.pattern.object),
        ] {
            let Some(variable) = term.as_variable() else {
                continue;
            };
            let distinct = match spec.property {
                // A class-restricted `rdf:type` scan binds one distinct
                // subject per triple (a subject types a class once).
                Some(_) if spec.type_object.is_some() && position == TriplePosition::Subject => {
                    card
                }
                Some(property) => stats.distinct_at(property, position) as f64,
                None => match position {
                    TriplePosition::Subject => stats.distinct_subjects() as f64,
                    TriplePosition::Property => stats.distinct_properties() as f64,
                    TriplePosition::Object => stats.distinct_objects() as f64,
                },
            };
            let distinct = distinct.min(card);
            let entry = distincts.entry(variable.clone()).or_insert(distinct);
            *entry = entry.min(distinct);
        }
        distincts
    }

    /// Walks the plan bottom-up producing per-operator estimates and the
    /// total estimated work in simulated seconds (excluding job overhead).
    fn walk(&self, plan: &PhysicalPlan) -> (Vec<OpEstimate>, f64) {
        let params = &self.cluster.config().cost;
        let mut estimates: Vec<OpEstimate> = Vec::with_capacity(plan.len());
        let mut work = 0.0f64;
        for index in 0..plan.len() {
            let id = PhysId(index);
            let op = plan.op(id);
            let estimate = match op {
                PhysicalOp::MapScan { spec, .. } => {
                    let card = self.scan_cardinality(spec);
                    work += card * params.read;
                    OpEstimate {
                        card,
                        distincts: self.scan_distincts(spec, card),
                    }
                }
                PhysicalOp::Filter {
                    conditions, input, ..
                } => {
                    let input_est = &estimates[input.index()];
                    let input_card = input_est.card;
                    work += input_card * params.check;
                    let selectivity = match (self.statistics, scan_spec(plan, *input)) {
                        (Some(stats), Some(spec)) => conditions
                            .iter()
                            .map(|condition| condition_selectivity(stats, spec, condition.position))
                            .product::<f64>(),
                        // Without statistics: the old fixed 5% per condition.
                        _ => 0.05f64.powi(conditions.len() as i32),
                    };
                    let card = input_card * selectivity;
                    OpEstimate {
                        card,
                        distincts: scale_distincts(&input_est.distincts, card),
                    }
                }
                PhysicalOp::MapShuffler { input, .. } => {
                    let input_est = estimates[input.index()].clone();
                    work += input_est.card * (params.read + params.write);
                    input_est
                }
                PhysicalOp::MapJoin {
                    attributes, inputs, ..
                }
                | PhysicalOp::ReduceJoin {
                    attributes, inputs, ..
                } => {
                    let input_ests: Vec<&OpEstimate> =
                        inputs.iter().map(|i| &estimates[i.index()]).collect();
                    let estimate = if self.statistics.is_some() {
                        join_estimate(attributes, &input_ests)
                    } else {
                        let input_cards: Vec<f64> = input_ests.iter().map(|est| est.card).collect();
                        OpEstimate {
                            card: join_cardinality(&input_cards),
                            distincts: BTreeMap::new(),
                        }
                    };
                    if matches!(op, PhysicalOp::ReduceJoin { .. }) {
                        let shuffled: f64 = input_ests.iter().map(|est| est.card).sum();
                        work += shuffled * params.shuffle;
                    }
                    work += estimate.card * (params.join + params.write);
                    estimate
                }
                PhysicalOp::Project { input, .. } => {
                    let input_est = estimates[input.index()].clone();
                    work += input_est.card * params.check;
                    input_est
                }
            };
            // Order-awareness: an unsatisfied ordering requirement means the
            // executor sorts this operator's output — n·log₂ n comparisons.
            // Plans whose join keys chain deliver the required orders for
            // free and skip this charge (Selinger interesting orders).
            if !plan.ordering(id).is_satisfied() {
                let n = estimate.card;
                work += n * n.max(2.0).log2() * params.check;
            }
            estimates.push(estimate);
        }
        (estimates, work)
    }

    /// Estimates the cost of a physical plan.
    pub fn estimate(&self, plan: &PhysicalPlan) -> CostEstimate {
        let nodes = self.cluster.nodes().max(1) as f64;
        let params = &self.cluster.config().cost;
        let sched = schedule(plan);
        let (estimates, work) = self.walk(plan);
        let overhead = sched.job_count as f64 * params.job_startup
            + sched
                .kinds
                .iter()
                .map(|k| match k {
                    cliquesquare_mapreduce::JobKind::MapOnly => params.task_startup,
                    cliquesquare_mapreduce::JobKind::MapReduce => 2.0 * params.task_startup,
                })
                .sum::<f64>();
        CostEstimate {
            total_seconds: overhead + work / nodes,
            jobs: sched.job_count,
            estimated_result: estimates
                .get(plan.root().index())
                .map_or(0.0, |est| est.card),
        }
    }

    /// Per-operator estimated output cardinalities (rounded to rows),
    /// indexed like the plan's operator arena. These are what the executor
    /// attaches as `est_rows` span attributes next to the measured
    /// `rows_out`, turning estimator quality (q-error) into a tracked,
    /// per-operator metric.
    pub fn estimate_cards(&self, plan: &PhysicalPlan) -> Vec<u64> {
        self.walk(plan)
            .0
            .into_iter()
            .map(|est| est.card.round().max(0.0) as u64)
            .collect()
    }

    /// Translates and estimates a logical plan.
    pub fn estimate_logical(&self, plan: &LogicalPlan) -> CostEstimate {
        self.estimate(&translate(plan, self.cluster.graph()))
    }

    /// Picks the cheapest logical plan of a slice according to the model.
    pub fn choose_best<'p>(&self, plans: &'p [LogicalPlan]) -> Option<&'p LogicalPlan> {
        plans.iter().min_by(|a, b| {
            self.estimate_logical(a)
                .total_seconds
                .partial_cmp(&self.estimate_logical(b).total_seconds)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

/// The scan spec feeding an operator, walked through single-input chains.
fn scan_spec(plan: &PhysicalPlan, mut id: PhysId) -> Option<&ScanSpec> {
    loop {
        match plan.op(id) {
            PhysicalOp::MapScan { spec, .. } => return Some(spec),
            PhysicalOp::Filter { input, .. }
            | PhysicalOp::MapShuffler { input, .. }
            | PhysicalOp::Project { input, .. } => id = *input,
            PhysicalOp::MapJoin { .. } | PhysicalOp::ReduceJoin { .. } => return None,
        }
    }
}

/// Distinct-count selectivity of an equality condition on `position` of a
/// scan: one value out of the predicate's distinct values at that position.
fn condition_selectivity(
    stats: &GraphStatistics,
    spec: &ScanSpec,
    position: TriplePosition,
) -> f64 {
    let distinct = match spec.property {
        Some(property) => stats.distinct_at(property, position),
        None => match position {
            TriplePosition::Subject => stats.distinct_subjects(),
            TriplePosition::Property => stats.distinct_properties(),
            TriplePosition::Object => stats.distinct_objects(),
        },
    };
    1.0 / (distinct.max(1) as f64)
}

/// Rescales a distinct-count map after a cardinality-reducing operator.
fn scale_distincts(distincts: &BTreeMap<Variable, f64>, card: f64) -> BTreeMap<Variable, f64> {
    distincts
        .iter()
        .map(|(variable, &distinct)| (variable.clone(), distinct.min(card)))
        .collect()
}

/// Distinct-count n-ary join estimation under the containment assumption,
/// applied per join attribute: each attribute `a` shared by `k ≥ 2` inputs
/// contributes a reduction factor `d_min(a) / Π dᵢ(a)` over those inputs
/// (two inputs: the textbook `1 / max(d_R, d_S)`), and the factors multiply
/// under attribute independence. Joining on several attributes at once —
/// the closing edge of a cyclic query — is therefore priced as more
/// selective than any single key, where a single-key approximation
/// overestimates by the dropped attribute's distinct count.
fn join_estimate(
    attributes: &std::collections::BTreeSet<Variable>,
    inputs: &[&OpEstimate],
) -> OpEstimate {
    if inputs.is_empty() {
        return OpEstimate::default();
    }
    if inputs.iter().any(|est| est.card <= 0.0) {
        return OpEstimate::default();
    }
    let mut card: f64 = inputs.iter().map(|est| est.card).product();
    for attribute in attributes {
        // Only inputs that actually carry the attribute join on it; the
        // fallback-to-cardinality of `distinct` would wrongly charge the
        // others.
        let distincts: Vec<f64> = inputs
            .iter()
            .filter(|est| est.distincts.contains_key(attribute))
            .map(|est| est.distinct(attribute).max(1.0))
            .collect();
        if distincts.len() < 2 {
            continue;
        }
        let d_min = distincts.iter().copied().fold(f64::INFINITY, f64::min);
        for &d in &distincts {
            card /= d;
        }
        card *= d_min;
    }
    // Propagate distinct counts: join attributes shrink to the smallest
    // input's distincts (containment), everything else is capped by the
    // output cardinality.
    let mut distincts: BTreeMap<Variable, f64> = BTreeMap::new();
    for est in inputs {
        for (variable, &distinct) in &est.distincts {
            let value = if attributes.contains(variable) {
                inputs
                    .iter()
                    .map(|other| other.distinct(variable))
                    .fold(f64::INFINITY, f64::min)
            } else {
                distinct
            };
            let entry = distincts.entry(variable.clone()).or_insert(value);
            *entry = entry.min(value);
        }
    }
    let distincts = scale_distincts(&distincts, card);
    OpEstimate { card, distincts }
}

/// The q-error of a cardinality estimate: `max(est/actual, actual/est)`,
/// with both sides floored at one row so empty results compare sanely.
/// 1.0 is a perfect estimate; the measure is symmetric in over- and
/// under-estimation.
pub fn q_error(estimated: u64, actual: u64) -> f64 {
    let estimated = (estimated as f64).max(1.0);
    let actual = (actual as f64).max(1.0);
    (estimated / actual).max(actual / estimated)
}

/// Join cardinality under the textbook independence assumption: the product
/// of the input cardinalities divided by the largest input once per joined
/// input beyond the first (i.e. every extra input acts as a filter with
/// selectivity `1 / max_input`).
fn join_cardinality(inputs: &[f64]) -> f64 {
    if inputs.is_empty() {
        return 0.0;
    }
    let max = inputs.iter().cloned().fold(1.0f64, f64::max).max(1.0);
    let product: f64 = inputs.iter().product();
    product / max.powi(inputs.len() as i32 - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_count;
    use cliquesquare_core::{Optimizer, Variant};
    use cliquesquare_mapreduce::ClusterConfig;
    use cliquesquare_rdf::{LubmGenerator, LubmScale};
    use cliquesquare_sparql::parser::parse_query;

    fn cluster() -> Cluster {
        let graph = LubmGenerator::new(LubmScale::tiny()).generate();
        Cluster::load(graph, ClusterConfig::with_nodes(4))
    }

    #[test]
    fn join_cardinality_behaves() {
        assert_eq!(join_cardinality(&[]), 0.0);
        assert_eq!(join_cardinality(&[100.0]), 100.0);
        assert_eq!(join_cardinality(&[100.0, 50.0]), 50.0);
        assert!(join_cardinality(&[100.0, 100.0, 100.0]) <= 100.0 + f64::EPSILON);
        assert_eq!(join_cardinality(&[0.0, 10.0]), 0.0);
    }

    #[test]
    fn more_jobs_cost_more() {
        let cluster = cluster();
        let model = MapReduceCostModel::new(&cluster);
        let query = "SELECT ?a WHERE { ?a ub:p1 ?b . ?b ub:p2 ?c . ?c ub:p3 ?d . ?d ub:p4 ?e . ?e ub:p5 ?f . ?f ub:p6 ?g }";
        let q = parse_query(query).unwrap();
        let flat = Optimizer::with_variant(Variant::Msc).optimize(&q);
        let deep = Optimizer::with_variant(Variant::Mxc).optimize(&q);
        let flat_cost = model.estimate_logical(flat.flattest_plans()[0]);
        let deep_plan = deep.plans.iter().max_by_key(|p| p.height()).unwrap();
        let deep_cost = model.estimate_logical(deep_plan);
        assert!(flat_cost.jobs <= deep_cost.jobs);
        assert!(flat_cost.total_seconds <= deep_cost.total_seconds);
    }

    #[test]
    fn choose_best_picks_a_cheap_plan() {
        let cluster = cluster();
        let model = MapReduceCostModel::new(&cluster);
        let q = parse_query(
            "SELECT ?x ?z WHERE { ?x ub:advisor ?y . ?y ub:worksFor ?z . ?z ub:subOrganizationOf ?u }",
        )
        .unwrap();
        let plans = Optimizer::with_variant(Variant::Msc).optimize(&q).plans;
        let best = model.choose_best(&plans).unwrap();
        let best_cost = model.estimate_logical(best).total_seconds;
        for plan in &plans {
            assert!(model.estimate_logical(plan).total_seconds >= best_cost);
        }
    }

    #[test]
    fn selective_scans_are_estimated_cheaper() {
        let cluster = cluster();
        let model = MapReduceCostModel::new(&cluster);
        let narrow =
            parse_query("SELECT ?x WHERE { ?x rdf:type ub:GraduateStudent . ?x ub:memberOf ?d }")
                .unwrap();
        let wide = parse_query("SELECT ?x WHERE { ?x rdf:type ?t . ?x ub:memberOf ?d }").unwrap();
        let narrow_plan = Optimizer::with_variant(Variant::Msc).optimize(&narrow);
        let wide_plan = Optimizer::with_variant(Variant::Msc).optimize(&wide);
        let narrow_cost = model.estimate_logical(narrow_plan.flattest_plans()[0]);
        let wide_cost = model.estimate_logical(wide_plan.flattest_plans()[0]);
        assert!(narrow_cost.total_seconds < wide_cost.total_seconds);
    }

    #[test]
    fn estimate_reports_job_count() {
        let cluster = cluster();
        let model = MapReduceCostModel::new(&cluster);
        let q =
            parse_query("SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d }").unwrap();
        let plans = Optimizer::with_variant(Variant::Msc).optimize(&q).plans;
        let estimate = model.estimate_logical(&plans[0]);
        assert_eq!(estimate.jobs, 1);
        assert!(estimate.total_seconds > 0.0);
        assert!(estimate.estimated_result > 0.0);
    }

    /// The q-error of a root-result estimate against the true count.
    fn q_error(estimated: f64, actual: usize) -> f64 {
        let estimated = estimated.max(1.0);
        let actual = (actual as f64).max(1.0);
        (estimated / actual).max(actual / estimated)
    }

    #[test]
    fn stats_estimates_beat_uniform_on_joins() {
        let cluster = cluster();
        let stats_model = MapReduceCostModel::new(&cluster);
        let uniform_model = MapReduceCostModel::uniform(&cluster);
        let queries = [
            "SELECT ?x ?z WHERE { ?x ub:advisor ?y . ?y ub:worksFor ?z }",
            "SELECT ?x WHERE { ?x rdf:type ub:GraduateStudent . ?x ub:memberOf ?d }",
            "SELECT ?x ?d WHERE { ?x ub:memberOf ?d . ?x ub:advisor ?a . ?a ub:worksFor ?d }",
        ];
        let mut stats_total = 1.0f64;
        let mut uniform_total = 1.0f64;
        for text in queries {
            let q = parse_query(text).unwrap();
            let actual = reference_count(cluster.graph(), &q);
            let plans = Optimizer::with_variant(Variant::Msc).optimize(&q).plans;
            let plan = &plans[0];
            let stats_q = q_error(stats_model.estimate_logical(plan).estimated_result, actual);
            let uniform_q = q_error(
                uniform_model.estimate_logical(plan).estimated_result,
                actual,
            );
            stats_total *= stats_q;
            uniform_total *= uniform_q;
        }
        // Geometric-mean q-error must improve with statistics.
        assert!(
            stats_total <= uniform_total,
            "stats {stats_total} vs uniform {uniform_total}"
        );
    }

    #[test]
    fn estimate_cards_are_per_operator_and_exact_on_scans() {
        let cluster = cluster();
        let model = MapReduceCostModel::new(&cluster);
        let q = parse_query("SELECT ?x ?y WHERE { ?x ub:advisor ?y . ?y ub:worksFor ?z }").unwrap();
        let plans = Optimizer::with_variant(Variant::Msc).optimize(&q).plans;
        let physical = translate(&plans[0], cluster.graph());
        let cards = model.estimate_cards(&physical);
        assert_eq!(cards.len(), physical.len());
        for (index, card) in cards.iter().enumerate() {
            if let PhysicalOp::MapScan { spec, .. } = physical.op(PhysId(index)) {
                let exact = cluster.store().scan_cardinality(
                    spec.placement,
                    spec.property,
                    spec.type_object,
                ) as u64;
                assert_eq!(*card, exact, "scan estimates are exact");
            }
        }
    }

    #[test]
    fn unsatisfied_orderings_are_priced() {
        // Two structurally identical plans that differ only in sort needs
        // are separated by the order-awareness charge; here we just assert
        // the charge is monotone: a plan's cost with the model equals the
        // cost of its own walk (sanity), and sorting work is non-negative.
        let cluster = cluster();
        let model = MapReduceCostModel::new(&cluster);
        let q = parse_query(
            "SELECT ?x ?z WHERE { ?x ub:advisor ?y . ?y ub:worksFor ?z . ?z ub:subOrganizationOf ?u }",
        )
        .unwrap();
        let plans = Optimizer::with_variant(Variant::Msc).optimize(&q).plans;
        for plan in plans.iter().take(8) {
            let estimate = model.estimate_logical(plan);
            assert!(estimate.total_seconds.is_finite());
            assert!(estimate.total_seconds > 0.0);
        }
    }
}
