//! Physical MapReduce operators and plans (Section 5.2), plus the ordering
//! properties attached to every operator by the interesting-orders pass
//! ([`crate::translate::interesting_orders`]): what ordering each operator's
//! consumer *requires* and what ordering the operator's output *delivers*.
//! The executor uses the delivered orders to skip re-sorts between
//! operators; a sort runs only where required and delivered disagree.

use cliquesquare_rdf::{TermId, TriplePosition};
use cliquesquare_sparql::{TriplePattern, Variable};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of an operator inside a [`PhysicalPlan`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PhysId(pub usize);

impl PhysId {
    /// Returns the identifier as a `usize` index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Describes which partition files a Map Scan reads.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanSpec {
    /// Index of the triple pattern in the original query.
    pub pattern_index: usize,
    /// The triple pattern being matched.
    pub pattern: TriplePattern,
    /// The placement replica read, chosen so that the scan is co-located
    /// with the first-level join consuming it (the position of the join
    /// variable inside the pattern).
    pub placement: TriplePosition,
    /// Property file restriction (dictionary id of the constant property).
    pub property: Option<TermId>,
    /// `rdf:type` object file restriction (dictionary id of the class).
    pub type_object: Option<TermId>,
}

/// A residual equality check a Filter applies on scanned triples.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterCondition {
    /// The triple position being constrained.
    pub position: TriplePosition,
    /// The constant the position must equal.
    pub constant: TermId,
}

/// A physical MapReduce operator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhysicalOp {
    /// `MS[FS]`: scans the HDFS partition files selected by the spec.
    MapScan {
        /// What to scan.
        spec: ScanSpec,
        /// Output attributes.
        output: BTreeSet<Variable>,
    },
    /// `F_con(op)`: filters tuples by residual constant equalities.
    Filter {
        /// The conditions to check (conjunction).
        conditions: Vec<FilterCondition>,
        /// Input operator.
        input: PhysId,
        /// Output attributes.
        output: BTreeSet<Variable>,
    },
    /// `MJ_A`: a co-located (directed) join evaluated independently on every
    /// node, possible because its inputs are partitioned on `A`.
    MapJoin {
        /// Join attributes.
        attributes: BTreeSet<Variable>,
        /// Input operators.
        inputs: Vec<PhysId>,
        /// Output attributes.
        output: BTreeSet<Variable>,
    },
    /// `MF_A`: the repartition phase of a repartition join; shuffles its
    /// input on `A`.
    MapShuffler {
        /// Shuffle attributes.
        attributes: BTreeSet<Variable>,
        /// Input operator.
        input: PhysId,
        /// Output attributes.
        output: BTreeSet<Variable>,
    },
    /// `RJ_A`: the join phase of a repartition join; gathers its inputs by
    /// the values of `A` and joins them on each node.
    ReduceJoin {
        /// Join attributes.
        attributes: BTreeSet<Variable>,
        /// Input operators.
        inputs: Vec<PhysId>,
        /// Output attributes.
        output: BTreeSet<Variable>,
    },
    /// `π_A`: projection onto `A`.
    Project {
        /// Projected variables in output order.
        variables: Vec<Variable>,
        /// Input operator.
        input: PhysId,
    },
}

impl PhysicalOp {
    /// The operator's input ids.
    pub fn inputs(&self) -> Vec<PhysId> {
        match self {
            PhysicalOp::MapScan { .. } => Vec::new(),
            PhysicalOp::Filter { input, .. }
            | PhysicalOp::MapShuffler { input, .. }
            | PhysicalOp::Project { input, .. } => vec![*input],
            PhysicalOp::MapJoin { inputs, .. } | PhysicalOp::ReduceJoin { inputs, .. } => {
                inputs.clone()
            }
        }
    }

    /// The operator's output attributes.
    pub fn output(&self) -> BTreeSet<Variable> {
        match self {
            PhysicalOp::MapScan { output, .. }
            | PhysicalOp::Filter { output, .. }
            | PhysicalOp::MapJoin { output, .. }
            | PhysicalOp::MapShuffler { output, .. }
            | PhysicalOp::ReduceJoin { output, .. } => output.clone(),
            PhysicalOp::Project { variables, .. } => variables.iter().cloned().collect(),
        }
    }

    /// Short operator name for rendering.
    pub fn name(&self) -> &'static str {
        match self {
            PhysicalOp::MapScan { .. } => "MapScan",
            PhysicalOp::Filter { .. } => "Filter",
            PhysicalOp::MapJoin { .. } => "MapJoin",
            PhysicalOp::MapShuffler { .. } => "MapShuffler",
            PhysicalOp::ReduceJoin { .. } => "ReduceJoin",
            PhysicalOp::Project { .. } => "Project",
        }
    }

    /// Returns `true` for operators that run in the map phase of a job.
    pub fn is_map_side(&self) -> bool {
        !matches!(self, PhysicalOp::ReduceJoin { .. })
    }
}

/// The ordering properties of one operator's output, computed by the
/// interesting-orders pass ([`crate::translate::interesting_orders`]).
///
/// Orderings are variable sequences: rows sorted lexicographically by the
/// listed variables' columns, in sequence (the plan-level counterpart of the
/// relation layer's `SortOrder`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpOrdering {
    /// The ordering this operator's consumer wants its output in: the
    /// consuming join's attributes (so the join can merge without
    /// re-sorting) or the final projection's variable order (so the root
    /// canonicalization is free). Empty when no consumer cares.
    pub required: Vec<Variable>,
    /// The ordering this operator's output actually delivers: the required
    /// order when the operator has to (or can cheaply) produce it, or its
    /// natural order — index order for scans, join-key order for joins —
    /// when that already satisfies the requirement.
    pub delivered: Vec<Variable>,
}

impl OpOrdering {
    /// Returns `true` when the delivered order satisfies the requirement
    /// (the required variables are a prefix of the delivered sequence).
    pub fn is_satisfied(&self) -> bool {
        self.required.len() <= self.delivered.len()
            && self.delivered[..self.required.len()] == self.required[..]
    }
}

/// A physical plan: a rooted DAG of physical operators, each carrying the
/// ordering properties assigned by the interesting-orders pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhysicalPlan {
    ops: Vec<PhysicalOp>,
    root: PhysId,
    /// Per-operator ordering properties, indexed like `ops`.
    orders: Vec<OpOrdering>,
    /// Joins whose output stays run-length factorized until the final
    /// projection boundary, indexed like `ops`
    /// (see [`crate::translate::factorized_joins`]).
    factorized: Vec<bool>,
}

impl PhysicalPlan {
    /// Creates a plan from an operator arena and root id, running the
    /// interesting-orders pass to attach ordering properties to every
    /// operator.
    ///
    /// # Panics
    ///
    /// Panics if any referenced operator id is out of bounds, or if the
    /// arena is not bottom-up (every input must have a smaller id than its
    /// consumer — the order the executor and the interesting-orders pass
    /// rely on).
    pub fn new(ops: Vec<PhysicalOp>, root: PhysId) -> Self {
        assert!(root.index() < ops.len(), "root out of bounds");
        for (index, op) in ops.iter().enumerate() {
            for input in op.inputs() {
                assert!(
                    input.index() < index,
                    "arena not bottom-up: operator {index} consumes input {}",
                    input.index()
                );
            }
        }
        let orders = crate::translate::interesting_orders(&ops);
        let factorized = crate::translate::factorized_joins(&ops, root);
        Self {
            ops,
            root,
            orders,
            factorized,
        }
    }

    /// The root operator id.
    pub fn root(&self) -> PhysId {
        self.root
    }

    /// The ordering properties of the operator with the given id.
    pub fn ordering(&self, id: PhysId) -> &OpOrdering {
        &self.orders[id.index()]
    }

    /// Returns `true` when the join with the given id keeps its output in
    /// run-length factorized form (expanded only at the final projection).
    pub fn factorized(&self, id: PhysId) -> bool {
        self.factorized[id.index()]
    }

    /// The operator with the given id.
    pub fn op(&self, id: PhysId) -> &PhysicalOp {
        &self.ops[id.index()]
    }

    /// All operators.
    pub fn ops(&self) -> &[PhysicalOp] {
        &self.ops
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the plan has no operators.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Ids of all operators of a given kind, in arena order.
    pub fn ops_where(&self, predicate: impl Fn(&PhysicalOp) -> bool) -> Vec<PhysId> {
        (0..self.ops.len())
            .map(PhysId)
            .filter(|id| predicate(self.op(*id)))
            .collect()
    }

    /// Number of reduce joins (shuffling joins) in the plan.
    pub fn reduce_join_count(&self) -> usize {
        self.ops_where(|op| matches!(op, PhysicalOp::ReduceJoin { .. }))
            .len()
    }

    /// Number of map joins (co-located joins) in the plan.
    pub fn map_join_count(&self) -> usize {
        self.ops_where(|op| matches!(op, PhysicalOp::MapJoin { .. }))
            .len()
    }

    /// Pretty-prints the plan as an indented operator tree.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(self.root, 0, &mut out);
        out
    }

    fn render_into(&self, id: PhysId, depth: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        let op = self.op(id);
        let attrs: Vec<String> = op.output().iter().map(ToString::to_string).collect();
        let ordering = self.ordering(id);
        let order_note = if ordering.delivered.is_empty() {
            String::new()
        } else {
            let delivered: Vec<String> =
                ordering.delivered.iter().map(ToString::to_string).collect();
            format!(" sorted[{}]", delivered.join(","))
        };
        match op {
            PhysicalOp::MapScan { spec, .. } => {
                out.push_str(&format!(
                    "{indent}MapScan t{} [{} placement, {}] -> ({}){}\n",
                    spec.pattern_index,
                    spec.placement,
                    spec.pattern,
                    attrs.join(","),
                    order_note
                ));
            }
            other => {
                out.push_str(&format!(
                    "{indent}{} -> ({}){}\n",
                    other.name(),
                    attrs.join(","),
                    order_note
                ));
                for input in other.inputs() {
                    self.render_into(input, depth + 1, out);
                }
            }
        }
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesquare_sparql::PatternTerm;

    fn vars(names: &[&str]) -> BTreeSet<Variable> {
        names.iter().map(|n| Variable::new(*n)).collect()
    }

    fn scan(idx: usize, placement: TriplePosition, out: &[&str]) -> PhysicalOp {
        PhysicalOp::MapScan {
            spec: ScanSpec {
                pattern_index: idx,
                pattern: TriplePattern::new(
                    PatternTerm::variable("s"),
                    PatternTerm::iri("p"),
                    PatternTerm::variable("o"),
                ),
                placement,
                property: Some(TermId(1)),
                type_object: None,
            },
            output: vars(out),
        }
    }

    fn sample_plan() -> PhysicalPlan {
        let ops = vec![
            scan(0, TriplePosition::Subject, &["s", "o"]),
            scan(1, TriplePosition::Subject, &["s", "q"]),
            PhysicalOp::MapJoin {
                attributes: vars(&["s"]),
                inputs: vec![PhysId(0), PhysId(1)],
                output: vars(&["s", "o", "q"]),
            },
            scan(2, TriplePosition::Object, &["o", "r"]),
            PhysicalOp::ReduceJoin {
                attributes: vars(&["o"]),
                inputs: vec![PhysId(2), PhysId(3)],
                output: vars(&["s", "o", "q", "r"]),
            },
            PhysicalOp::Project {
                variables: vec![Variable::new("s"), Variable::new("r")],
                input: PhysId(4),
            },
        ];
        PhysicalPlan::new(ops, PhysId(5))
    }

    #[test]
    fn op_kind_counts() {
        let plan = sample_plan();
        assert_eq!(plan.len(), 6);
        assert_eq!(plan.map_join_count(), 1);
        assert_eq!(plan.reduce_join_count(), 1);
        assert_eq!(
            plan.ops_where(|op| matches!(op, PhysicalOp::MapScan { .. }))
                .len(),
            3
        );
    }

    #[test]
    fn map_side_classification() {
        let plan = sample_plan();
        assert!(plan.op(PhysId(0)).is_map_side());
        assert!(plan.op(PhysId(2)).is_map_side());
        assert!(!plan.op(PhysId(4)).is_map_side());
    }

    #[test]
    fn output_attributes_follow_operator_semantics() {
        let plan = sample_plan();
        assert_eq!(plan.op(plan.root()).output(), vars(&["s", "r"]));
        assert_eq!(plan.op(PhysId(2)).output(), vars(&["s", "o", "q"]));
    }

    #[test]
    fn render_mentions_scans_and_joins() {
        let text = sample_plan().render();
        assert!(text.contains("MapScan t0"));
        assert!(text.contains("MapJoin"));
        assert!(text.contains("ReduceJoin"));
        assert!(text.contains("Project"));
    }

    #[test]
    #[should_panic(expected = "root out of bounds")]
    fn invalid_root_panics() {
        let _ = PhysicalPlan::new(vec![], PhysId(0));
    }
}
