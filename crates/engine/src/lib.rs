//! CSQ: the CliqueSquare execution engine over the simulated MapReduce
//! cluster.
//!
//! This crate turns the logical plans produced by `cliquesquare-core` into
//! physical MapReduce plans and executes them against the partitioned store
//! of `cliquesquare-mapreduce`, reproducing Section 5 of the paper:
//!
//! * [`physical`] — the physical operators (MapScan, Filter, MapJoin,
//!   MapShuffler, ReduceJoin, Project) and physical plans,
//! * [`translate`] — logical → physical translation (Section 5.2),
//! * [`jobs`] — grouping of physical operators into MapReduce jobs
//!   (Section 5.3),
//! * [`executor`] — execution with full work accounting; per-node map and
//!   reduce task waves run on a [`cliquesquare_mapreduce::Runtime`]
//!   (sequential by default, real OS threads with `CSQ_THREADS`/`--threads`,
//!   bit-identical results either way),
//! * [`factorized`] — run-length factorized join outputs: star joins emit
//!   `(key, payload ranges)` runs and expand only at the projection
//!   boundary,
//! * [`cost`] — the Section 5.4 cost model used to choose among plans,
//! * [`reference`] — a naive single-node BGP evaluator used as a correctness
//!   oracle in tests,
//! * [`csq`] — the end-to-end façade (optimize, choose, execute).
//!
//! # Example
//!
//! ```
//! use cliquesquare_engine::csq::{Csq, CsqConfig};
//! use cliquesquare_mapreduce::{Cluster, ClusterConfig};
//! use cliquesquare_rdf::{LubmGenerator, LubmScale};
//! use cliquesquare_sparql::parser::parse_query;
//!
//! let graph = LubmGenerator::new(LubmScale::tiny()).generate();
//! let cluster = Cluster::load(graph, ClusterConfig::with_nodes(4));
//! let csq = Csq::new(cluster, CsqConfig::default());
//! let report = csq.run(&parse_query(
//!     "SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d . }",
//! ).unwrap());
//! assert!(report.result_count > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cost;
pub mod csq;
pub mod executor;
pub mod factorized;
pub mod jobs;
pub mod physical;
pub mod reference;
pub mod relation;
pub mod translate;

pub use cost::{q_error, CostEstimate, MapReduceCostModel};
pub use csq::{Csq, CsqConfig, CsqReport};
pub use executor::{ExecutionOutput, Executor};
pub use factorized::{join_runs, RunsRelation};
pub use physical::{OpOrdering, PhysId, PhysicalOp, PhysicalPlan, ScanSpec};
pub use relation::{hash_partition, JoinOrder, MergeStack, Relation, SortOrder};
pub use translate::{interesting_orders, rebind_constants, translate};
