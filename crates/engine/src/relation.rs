//! In-memory relations (variable bindings) and n-ary hash joins.

use cliquesquare_rdf::TermId;
use cliquesquare_sparql::Variable;
use std::collections::HashMap;

/// A relation over query variables: a schema plus dictionary-encoded rows.
///
/// This is the tuple format flowing between simulated physical operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    schema: Vec<Variable>,
    rows: Vec<Vec<TermId>>,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn empty(schema: Vec<Variable>) -> Self {
        Self {
            schema,
            rows: Vec::new(),
        }
    }

    /// Creates a relation from a schema and rows.
    ///
    /// # Panics
    ///
    /// Panics if any row's arity differs from the schema's.
    pub fn new(schema: Vec<Variable>, rows: Vec<Vec<TermId>>) -> Self {
        for row in &rows {
            assert_eq!(row.len(), schema.len(), "row arity mismatch");
        }
        Self { schema, rows }
    }

    /// The relation's schema (variable order of each row).
    pub fn schema(&self) -> &[Variable] {
        &self.schema
    }

    /// The relation's rows.
    pub fn rows(&self) -> &[Vec<TermId>] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row arity differs from the schema's.
    pub fn push(&mut self, row: Vec<TermId>) {
        assert_eq!(row.len(), self.schema.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Index of `variable` in the schema.
    pub fn column(&self, variable: &Variable) -> Option<usize> {
        self.schema.iter().position(|v| v == variable)
    }

    /// Concatenates another relation with the *same schema* into this one.
    ///
    /// # Panics
    ///
    /// Panics if the schemas differ.
    pub fn union_in_place(&mut self, other: Relation) {
        assert_eq!(self.schema, other.schema, "schema mismatch in union");
        self.rows.extend(other.rows);
    }

    /// Projects the relation onto `variables` (dropping duplicates of rows is
    /// *not* performed: BGP semantics keep multiplicities).
    pub fn project(&self, variables: &[Variable]) -> Relation {
        let columns: Vec<usize> = variables.iter().filter_map(|v| self.column(v)).collect();
        let kept: Vec<Variable> = variables
            .iter()
            .filter(|v| self.column(v).is_some())
            .cloned()
            .collect();
        let rows = self
            .rows
            .iter()
            .map(|row| columns.iter().map(|&c| row[c]).collect())
            .collect();
        Relation { schema: kept, rows }
    }

    /// Sorts rows lexicographically (used to compare results in tests).
    pub fn sorted(mut self) -> Relation {
        self.rows.sort_unstable();
        self
    }

    /// Deduplicates rows (after sorting). BGP evaluation is set semantics in
    /// the paper's formalization, so final results are compared deduplicated.
    pub fn distinct(mut self) -> Relation {
        self.rows.sort_unstable();
        self.rows.dedup();
        self
    }

    /// The key of a row restricted to the given columns.
    fn key(row: &[TermId], columns: &[usize]) -> Vec<TermId> {
        columns.iter().map(|&c| row[c]).collect()
    }

    /// N-ary hash join of `inputs` on the shared `attributes`.
    ///
    /// The output schema is the union of the input schemas in input order
    /// (join attributes appear once). This mirrors the logical `J_A` operator:
    /// every input must contain every join attribute.
    pub fn join(inputs: &[&Relation], attributes: &[Variable]) -> Relation {
        assert!(!inputs.is_empty(), "join needs at least one input");
        // Output schema: union of schemas, first occurrence wins.
        let mut schema: Vec<Variable> = Vec::new();
        for rel in inputs {
            for v in rel.schema() {
                if !schema.contains(v) {
                    schema.push(v.clone());
                }
            }
        }
        if inputs.len() == 1 {
            // Single input: the join is the identity.
            return Relation::new(schema, inputs[0].rows.clone());
        }

        // Group every input by its key on the join attributes.
        let mut grouped: Vec<HashMap<Vec<TermId>, Vec<&Vec<TermId>>>> =
            Vec::with_capacity(inputs.len());
        let mut key_columns: Vec<Vec<usize>> = Vec::with_capacity(inputs.len());
        for rel in inputs {
            let columns: Vec<usize> = attributes
                .iter()
                .map(|a| {
                    rel.column(a)
                        .unwrap_or_else(|| panic!("join attribute {a} missing from input"))
                })
                .collect();
            let mut map: HashMap<Vec<TermId>, Vec<&Vec<TermId>>> = HashMap::new();
            for row in &rel.rows {
                map.entry(Self::key(row, &columns)).or_default().push(row);
            }
            key_columns.push(columns);
            grouped.push(map);
        }

        // Iterate over the keys of the smallest input and probe the others.
        let (smallest, _) = grouped
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| m.len())
            .expect("at least one input");
        let mut output = Relation::empty(schema.clone());
        let out_columns: Vec<Vec<usize>> = inputs
            .iter()
            .map(|rel| {
                rel.schema()
                    .iter()
                    .map(|v| schema.iter().position(|s| s == v).expect("schema union"))
                    .collect()
            })
            .collect();

        'keys: for key in grouped[smallest].keys() {
            let mut per_input: Vec<&Vec<&Vec<TermId>>> = Vec::with_capacity(inputs.len());
            for map in &grouped {
                match map.get(key) {
                    Some(rows) => per_input.push(rows),
                    None => continue 'keys,
                }
            }
            // Cross product of the matching rows of every input, merging each
            // combination into one output row and rejecting combinations that
            // disagree on shared non-join attributes.
            let template = vec![None; schema.len()];
            combine(&per_input, &out_columns, 0, template, &mut output);
        }
        output
    }
}

/// Recursively merges one matching row from each input into output rows.
fn combine(
    per_input: &[&Vec<&Vec<TermId>>],
    out_columns: &[Vec<usize>],
    depth: usize,
    partial: Vec<Option<TermId>>,
    output: &mut Relation,
) {
    if depth == per_input.len() {
        let row: Vec<TermId> = partial
            .into_iter()
            .map(|cell| cell.expect("every output column filled by some input"))
            .collect();
        output.push(row);
        return;
    }
    'rows: for source in per_input[depth] {
        let mut next = partial.clone();
        for (src_col, &dst_col) in out_columns[depth].iter().enumerate() {
            let value = source[src_col];
            match next[dst_col] {
                None => next[dst_col] = Some(value),
                Some(existing) if existing != value => continue 'rows,
                Some(_) => {}
            }
        }
        combine(per_input, out_columns, depth + 1, next, output);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> Variable {
        Variable::new(name)
    }

    fn t(id: u32) -> TermId {
        TermId(id)
    }

    fn rel(schema: &[&str], rows: &[&[u32]]) -> Relation {
        Relation::new(
            schema.iter().map(|s| v(s)).collect(),
            rows.iter()
                .map(|r| r.iter().map(|&x| t(x)).collect())
                .collect(),
        )
    }

    #[test]
    fn basic_accessors() {
        let r = rel(&["a", "b"], &[&[1, 2], &[3, 4]]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.column(&v("b")), Some(1));
        assert_eq!(r.column(&v("z")), None);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let _ = rel(&["a", "b"], &[&[1]]);
    }

    #[test]
    fn binary_join_on_one_attribute() {
        let left = rel(&["a", "x"], &[&[1, 10], &[2, 20], &[3, 10]]);
        let right = rel(&["x", "b"], &[&[10, 100], &[20, 200], &[30, 300]]);
        let joined = Relation::join(&[&left, &right], &[v("x")]).sorted();
        assert_eq!(joined.schema(), &[v("a"), v("x"), v("b")]);
        assert_eq!(
            joined.rows(),
            rel(
                &["a", "x", "b"],
                &[&[1, 10, 100], &[2, 20, 200], &[3, 10, 100]]
            )
            .sorted()
            .rows()
        );
    }

    #[test]
    fn three_way_star_join() {
        let r1 = rel(&["x", "a"], &[&[1, 11], &[2, 12]]);
        let r2 = rel(&["x", "b"], &[&[1, 21], &[1, 22]]);
        let r3 = rel(&["x", "c"], &[&[1, 31], &[3, 33]]);
        let joined = Relation::join(&[&r1, &r2, &r3], &[v("x")]).sorted();
        // Only x = 1 survives; r2 contributes two rows.
        assert_eq!(joined.len(), 2);
        for row in joined.rows() {
            assert_eq!(row[0], t(1));
        }
    }

    #[test]
    fn join_on_multiple_attributes() {
        let left = rel(&["x", "y", "a"], &[&[1, 2, 10], &[1, 3, 11]]);
        let right = rel(&["x", "y", "b"], &[&[1, 2, 20], &[1, 9, 21]]);
        let joined = Relation::join(&[&left, &right], &[v("x"), v("y")]);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined.rows()[0], vec![t(1), t(2), t(10), t(20)]);
    }

    #[test]
    fn join_checks_shared_non_join_attributes() {
        // Both inputs carry variable `z` but the join is only on `x`; rows
        // that disagree on `z` must not combine.
        let left = rel(&["x", "z"], &[&[1, 5], &[1, 6]]);
        let right = rel(&["x", "z", "b"], &[&[1, 5, 50], &[1, 7, 70]]);
        let joined = Relation::join(&[&left, &right], &[v("x")]);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined.rows()[0], vec![t(1), t(5), t(50)]);
    }

    #[test]
    fn empty_input_produces_empty_join() {
        let left = rel(&["x", "a"], &[]);
        let right = rel(&["x", "b"], &[&[1, 2]]);
        let joined = Relation::join(&[&left, &right], &[v("x")]);
        assert!(joined.is_empty());
    }

    #[test]
    fn single_input_join_is_identity() {
        let r = rel(&["x", "a"], &[&[1, 2], &[3, 4]]);
        let joined = Relation::join(&[&r], &[v("x")]);
        assert_eq!(joined.rows(), r.rows());
    }

    #[test]
    fn project_and_distinct() {
        let r = rel(&["a", "b", "c"], &[&[1, 2, 3], &[1, 2, 4], &[5, 6, 7]]);
        let projected = r.project(&[v("a"), v("b")]);
        assert_eq!(projected.schema(), &[v("a"), v("b")]);
        assert_eq!(projected.len(), 3);
        assert_eq!(projected.distinct().len(), 2);
        // Projecting onto an absent variable silently drops it.
        let narrowed = r.project(&[v("a"), v("z")]);
        assert_eq!(narrowed.schema(), &[v("a")]);
    }

    #[test]
    fn union_in_place_appends_rows() {
        let mut a = rel(&["x"], &[&[1]]);
        let b = rel(&["x"], &[&[2], &[3]]);
        a.union_in_place(b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    #[should_panic(expected = "schema mismatch")]
    fn union_with_different_schema_panics() {
        let mut a = rel(&["x"], &[&[1]]);
        let b = rel(&["y"], &[&[2]]);
        a.union_in_place(b);
    }
}
