//! In-memory relations (variable bindings) and n-ary hash joins.
//!
//! Relations track whether their rows are in *canonical* (lexicographically
//! sorted) order. Canonical form is what makes the parallel runtime's output
//! bit-identical to sequential execution: operators that merge per-node or
//! per-partition results canonicalize, and downstream consumers
//! ([`Relation::sorted`], [`Relation::distinct`], [`Relation::union_in_place`])
//! skip the redundant re-sort when their inputs are already canonical.

use cliquesquare_rdf::TermId;
use cliquesquare_sparql::Variable;
use std::collections::HashMap;

/// A relation over query variables: a schema plus dictionary-encoded rows.
///
/// This is the tuple format flowing between simulated physical operators.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Vec<Variable>,
    rows: Vec<Vec<TermId>>,
    /// `true` when `rows` is known to be lexicographically sorted. Kept
    /// up to date cheaply on `push`/`union_in_place`; `false` is always a
    /// safe value (it only costs a re-sort later).
    canonical: bool,
}

/// Equality compares schema and rows; the `canonical` bookkeeping flag is
/// derived state and must not influence it.
impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.rows == other.rows
    }
}

impl Eq for Relation {}

fn rows_sorted(rows: &[Vec<TermId>]) -> bool {
    rows.windows(2).all(|pair| pair[0] <= pair[1])
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn empty(schema: Vec<Variable>) -> Self {
        Self {
            schema,
            rows: Vec::new(),
            canonical: true,
        }
    }

    /// Creates a relation from a schema and rows.
    ///
    /// # Panics
    ///
    /// Panics if any row's arity differs from the schema's.
    pub fn new(schema: Vec<Variable>, rows: Vec<Vec<TermId>>) -> Self {
        for row in &rows {
            assert_eq!(row.len(), schema.len(), "row arity mismatch");
        }
        let canonical = rows_sorted(&rows);
        Self {
            schema,
            rows,
            canonical,
        }
    }

    /// The relation's schema (variable order of each row).
    pub fn schema(&self) -> &[Variable] {
        &self.schema
    }

    /// The relation's rows.
    pub fn rows(&self) -> &[Vec<TermId>] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Returns `true` if the rows are known to be in canonical (sorted)
    /// order.
    pub fn is_canonical(&self) -> bool {
        self.canonical
    }

    /// Appends a row, keeping the canonical flag accurate: appending a row
    /// that is `>=` the current last row preserves sortedness.
    ///
    /// # Panics
    ///
    /// Panics if the row arity differs from the schema's.
    pub fn push(&mut self, row: Vec<TermId>) {
        assert_eq!(row.len(), self.schema.len(), "row arity mismatch");
        if self.canonical {
            if let Some(last) = self.rows.last() {
                if *last > row {
                    self.canonical = false;
                }
            }
        }
        self.rows.push(row);
    }

    /// Index of `variable` in the schema.
    pub fn column(&self, variable: &Variable) -> Option<usize> {
        self.schema.iter().position(|v| v == variable)
    }

    /// Sorts the rows into canonical order (no-op when already canonical).
    pub fn canonicalize(&mut self) {
        if !self.canonical {
            self.rows.sort_unstable();
            self.canonical = true;
        }
        debug_assert!(rows_sorted(&self.rows), "canonical relation not sorted");
    }

    /// Combines another relation with the *same schema* into this one.
    ///
    /// When both sides are canonical the rows are merged (linear time) and
    /// the result stays canonical; otherwise the rows are concatenated and
    /// the result is marked non-canonical.
    ///
    /// # Panics
    ///
    /// Panics if the schemas differ.
    pub fn union_in_place(&mut self, other: Relation) {
        assert_eq!(self.schema, other.schema, "schema mismatch in union");
        if self.rows.is_empty() {
            self.rows = other.rows;
            self.canonical = other.canonical;
            return;
        }
        if other.rows.is_empty() {
            return;
        }
        if self.canonical && other.canonical {
            let left = std::mem::take(&mut self.rows);
            let mut merged = Vec::with_capacity(left.len() + other.rows.len());
            let mut a = left.into_iter().peekable();
            let mut b = other.rows.into_iter().peekable();
            loop {
                match (a.peek(), b.peek()) {
                    (Some(x), Some(y)) => {
                        if x <= y {
                            merged.push(a.next().expect("peeked"));
                        } else {
                            merged.push(b.next().expect("peeked"));
                        }
                    }
                    (Some(_), None) => merged.push(a.next().expect("peeked")),
                    (None, Some(_)) => merged.push(b.next().expect("peeked")),
                    (None, None) => break,
                }
            }
            debug_assert!(
                rows_sorted(&merged),
                "merge of canonical inputs not canonical"
            );
            self.rows = merged;
        } else {
            self.rows.extend(other.rows);
            self.canonical = false;
        }
    }

    /// Projects the relation onto `variables` (dropping duplicates of rows is
    /// *not* performed: BGP semantics keep multiplicities).
    pub fn project(&self, variables: &[Variable]) -> Relation {
        let columns: Vec<usize> = variables.iter().filter_map(|v| self.column(v)).collect();
        let kept: Vec<Variable> = variables
            .iter()
            .filter(|v| self.column(v).is_some())
            .cloned()
            .collect();
        let rows: Vec<Vec<TermId>> = self
            .rows
            .iter()
            .map(|row| columns.iter().map(|&c| row[c]).collect())
            .collect();
        // Projection drops / reorders columns, so sortedness of the input
        // does not carry over in general; recheck (one linear pass) so that
        // downstream `distinct` calls can skip their sort.
        let canonical = rows_sorted(&rows);
        Relation {
            schema: kept,
            rows,
            canonical,
        }
    }

    /// Sorts rows lexicographically (used to compare results in tests).
    /// Already-canonical relations are returned unchanged.
    pub fn sorted(mut self) -> Relation {
        self.canonicalize();
        self
    }

    /// Deduplicates rows (after sorting, skipped when already canonical).
    /// BGP evaluation is set semantics in the paper's formalization, so
    /// final results are compared deduplicated.
    pub fn distinct(mut self) -> Relation {
        self.canonicalize();
        self.rows.dedup();
        self
    }

    /// Number of distinct rows, without consuming or cloning the relation
    /// when it is already canonical.
    pub fn distinct_len(&self) -> usize {
        if self.canonical {
            debug_assert!(rows_sorted(&self.rows), "canonical relation not sorted");
            let duplicates = self
                .rows
                .windows(2)
                .filter(|pair| pair[0] == pair[1])
                .count();
            self.rows.len() - duplicates
        } else {
            let mut rows = self.rows.clone();
            rows.sort_unstable();
            rows.dedup();
            rows.len()
        }
    }

    /// The key of a row restricted to the given columns.
    fn key(row: &[TermId], columns: &[usize]) -> Vec<TermId> {
        columns.iter().map(|&c| row[c]).collect()
    }

    /// N-ary hash join of `inputs` on the shared `attributes`.
    ///
    /// The output schema is the union of the input schemas in input order
    /// (join attributes appear once). This mirrors the logical `J_A` operator:
    /// every input must contain every join attribute. The output is
    /// canonicalized (sorted), so join results are deterministic even though
    /// the probe order over the hash table is not.
    pub fn join(inputs: &[&Relation], attributes: &[Variable]) -> Relation {
        assert!(!inputs.is_empty(), "join needs at least one input");
        // Output schema: union of schemas, first occurrence wins.
        let mut schema: Vec<Variable> = Vec::new();
        for rel in inputs {
            for v in rel.schema() {
                if !schema.contains(v) {
                    schema.push(v.clone());
                }
            }
        }
        if inputs.len() == 1 {
            // Single input: the join is the identity (canonicalized).
            let mut out = Relation::new(schema, inputs[0].rows.clone());
            out.canonicalize();
            return out;
        }

        // Group every input by its key on the join attributes.
        let mut grouped: Vec<HashMap<Vec<TermId>, Vec<&Vec<TermId>>>> =
            Vec::with_capacity(inputs.len());
        let mut key_columns: Vec<Vec<usize>> = Vec::with_capacity(inputs.len());
        for rel in inputs {
            let columns: Vec<usize> = attributes
                .iter()
                .map(|a| {
                    rel.column(a)
                        .unwrap_or_else(|| panic!("join attribute {a} missing from input"))
                })
                .collect();
            let mut map: HashMap<Vec<TermId>, Vec<&Vec<TermId>>> = HashMap::new();
            for row in &rel.rows {
                map.entry(Self::key(row, &columns)).or_default().push(row);
            }
            key_columns.push(columns);
            grouped.push(map);
        }

        // Iterate over the keys of the smallest input and probe the others.
        let (smallest, _) = grouped
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| m.len())
            .expect("at least one input");
        let mut output = Relation::empty(schema.clone());
        let out_columns: Vec<Vec<usize>> = inputs
            .iter()
            .map(|rel| {
                rel.schema()
                    .iter()
                    .map(|v| schema.iter().position(|s| s == v).expect("schema union"))
                    .collect()
            })
            .collect();

        'keys: for key in grouped[smallest].keys() {
            let mut per_input: Vec<&Vec<&Vec<TermId>>> = Vec::with_capacity(inputs.len());
            for map in &grouped {
                match map.get(key) {
                    Some(rows) => per_input.push(rows),
                    None => continue 'keys,
                }
            }
            // Cross product of the matching rows of every input, merging each
            // combination into one output row and rejecting combinations that
            // disagree on shared non-join attributes.
            let template = vec![None; schema.len()];
            combine(&per_input, &out_columns, 0, template, &mut output);
        }
        output.canonicalize();
        output
    }
}

/// Recursively merges one matching row from each input into output rows.
fn combine(
    per_input: &[&Vec<&Vec<TermId>>],
    out_columns: &[Vec<usize>],
    depth: usize,
    partial: Vec<Option<TermId>>,
    output: &mut Relation,
) {
    if depth == per_input.len() {
        let row: Vec<TermId> = partial
            .into_iter()
            .map(|cell| cell.expect("every output column filled by some input"))
            .collect();
        output.push(row);
        return;
    }
    'rows: for source in per_input[depth] {
        let mut next = partial.clone();
        for (src_col, &dst_col) in out_columns[depth].iter().enumerate() {
            let value = source[src_col];
            match next[dst_col] {
                None => next[dst_col] = Some(value),
                Some(existing) if existing != value => continue 'rows,
                Some(_) => {}
            }
        }
        combine(per_input, out_columns, depth + 1, next, output);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> Variable {
        Variable::new(name)
    }

    fn t(id: u32) -> TermId {
        TermId(id)
    }

    fn rel(schema: &[&str], rows: &[&[u32]]) -> Relation {
        Relation::new(
            schema.iter().map(|s| v(s)).collect(),
            rows.iter()
                .map(|r| r.iter().map(|&x| t(x)).collect())
                .collect(),
        )
    }

    #[test]
    fn basic_accessors() {
        let r = rel(&["a", "b"], &[&[1, 2], &[3, 4]]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.column(&v("b")), Some(1));
        assert_eq!(r.column(&v("z")), None);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let _ = rel(&["a", "b"], &[&[1]]);
    }

    #[test]
    fn binary_join_on_one_attribute() {
        let left = rel(&["a", "x"], &[&[1, 10], &[2, 20], &[3, 10]]);
        let right = rel(&["x", "b"], &[&[10, 100], &[20, 200], &[30, 300]]);
        let joined = Relation::join(&[&left, &right], &[v("x")]).sorted();
        assert_eq!(joined.schema(), &[v("a"), v("x"), v("b")]);
        assert_eq!(
            joined.rows(),
            rel(
                &["a", "x", "b"],
                &[&[1, 10, 100], &[2, 20, 200], &[3, 10, 100]]
            )
            .sorted()
            .rows()
        );
    }

    #[test]
    fn three_way_star_join() {
        let r1 = rel(&["x", "a"], &[&[1, 11], &[2, 12]]);
        let r2 = rel(&["x", "b"], &[&[1, 21], &[1, 22]]);
        let r3 = rel(&["x", "c"], &[&[1, 31], &[3, 33]]);
        let joined = Relation::join(&[&r1, &r2, &r3], &[v("x")]).sorted();
        // Only x = 1 survives; r2 contributes two rows.
        assert_eq!(joined.len(), 2);
        for row in joined.rows() {
            assert_eq!(row[0], t(1));
        }
    }

    #[test]
    fn join_on_multiple_attributes() {
        let left = rel(&["x", "y", "a"], &[&[1, 2, 10], &[1, 3, 11]]);
        let right = rel(&["x", "y", "b"], &[&[1, 2, 20], &[1, 9, 21]]);
        let joined = Relation::join(&[&left, &right], &[v("x"), v("y")]);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined.rows()[0], vec![t(1), t(2), t(10), t(20)]);
    }

    #[test]
    fn join_checks_shared_non_join_attributes() {
        // Both inputs carry variable `z` but the join is only on `x`; rows
        // that disagree on `z` must not combine.
        let left = rel(&["x", "z"], &[&[1, 5], &[1, 6]]);
        let right = rel(&["x", "z", "b"], &[&[1, 5, 50], &[1, 7, 70]]);
        let joined = Relation::join(&[&left, &right], &[v("x")]);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined.rows()[0], vec![t(1), t(5), t(50)]);
    }

    #[test]
    fn empty_input_produces_empty_join() {
        let left = rel(&["x", "a"], &[]);
        let right = rel(&["x", "b"], &[&[1, 2]]);
        let joined = Relation::join(&[&left, &right], &[v("x")]);
        assert!(joined.is_empty());
    }

    #[test]
    fn single_input_join_is_identity_up_to_order() {
        let r = rel(&["x", "a"], &[&[1, 2], &[3, 4]]);
        let joined = Relation::join(&[&r], &[v("x")]);
        assert_eq!(joined.rows(), r.rows());
    }

    #[test]
    fn join_output_is_canonical() {
        let left = rel(&["a", "x"], &[&[9, 10], &[2, 20], &[3, 10]]);
        let right = rel(&["x", "b"], &[&[10, 100], &[20, 200]]);
        let joined = Relation::join(&[&left, &right], &[v("x")]);
        assert!(joined.is_canonical());
        assert!(joined.rows().windows(2).all(|pair| pair[0] <= pair[1]));
    }

    #[test]
    fn project_and_distinct() {
        let r = rel(&["a", "b", "c"], &[&[1, 2, 3], &[1, 2, 4], &[5, 6, 7]]);
        let projected = r.project(&[v("a"), v("b")]);
        assert_eq!(projected.schema(), &[v("a"), v("b")]);
        assert_eq!(projected.len(), 3);
        assert_eq!(projected.distinct().len(), 2);
        // Projecting onto an absent variable silently drops it.
        let narrowed = r.project(&[v("a"), v("z")]);
        assert_eq!(narrowed.schema(), &[v("a")]);
    }

    #[test]
    fn union_in_place_appends_rows() {
        let mut a = rel(&["x"], &[&[1]]);
        let b = rel(&["x"], &[&[2], &[3]]);
        a.union_in_place(b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn union_of_canonical_inputs_merges_in_order() {
        let mut a = rel(&["x"], &[&[1], &[4], &[9]]);
        let b = rel(&["x"], &[&[2], &[4], &[7]]);
        assert!(a.is_canonical() && b.is_canonical());
        a.union_in_place(b);
        assert!(a.is_canonical());
        let values: Vec<u32> = a.rows().iter().map(|r| r[0].0).collect();
        assert_eq!(values, vec![1, 2, 4, 4, 7, 9]);
    }

    #[test]
    fn union_with_non_canonical_input_concatenates() {
        let mut a = rel(&["x"], &[&[1], &[2]]);
        let b = rel(&["x"], &[&[5], &[3]]);
        assert!(!b.is_canonical());
        a.union_in_place(b);
        assert!(!a.is_canonical());
        assert_eq!(a.len(), 4);
        assert_eq!(a.distinct_len(), 4);
    }

    #[test]
    fn push_tracks_canonical_order() {
        let mut r = Relation::empty(vec![v("x")]);
        assert!(r.is_canonical());
        r.push(vec![t(1)]);
        r.push(vec![t(2)]);
        assert!(r.is_canonical());
        r.push(vec![t(0)]);
        assert!(!r.is_canonical());
        r.canonicalize();
        assert!(r.is_canonical());
        assert_eq!(r.rows()[0], vec![t(0)]);
    }

    #[test]
    fn distinct_len_matches_distinct() {
        let canonical = rel(&["x"], &[&[1], &[1], &[2], &[3], &[3]]);
        assert!(canonical.is_canonical());
        assert_eq!(canonical.distinct_len(), 3);
        let scrambled = rel(&["x"], &[&[3], &[1], &[2], &[1], &[3]]);
        assert!(!scrambled.is_canonical());
        assert_eq!(scrambled.distinct_len(), 3);
        assert_eq!(scrambled.distinct().len(), 3);
    }

    #[test]
    fn equality_ignores_canonical_flag() {
        let sorted = rel(&["x"], &[&[1], &[2]]);
        let mut pushed = Relation::empty(vec![v("x")]);
        pushed.push(vec![t(1)]);
        pushed.push(vec![t(2)]);
        assert_eq!(sorted, pushed);
    }

    #[test]
    #[should_panic(expected = "schema mismatch")]
    fn union_with_different_schema_panics() {
        let mut a = rel(&["x"], &[&[1]]);
        let b = rel(&["y"], &[&[2]]);
        a.union_in_place(b);
    }
}
