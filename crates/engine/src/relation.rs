//! In-memory relations (variable bindings) stored as flat columnar buffers,
//! plus the n-ary sort-merge join.
//!
//! A [`Relation`] keeps all of its rows in **one** row-major `Vec<TermId>`
//! buffer (`arity` consecutive ids per row) instead of a `Vec` per row. Rows
//! are handed out as borrowed `&[TermId]` slices, so scanning, shuffling and
//! joining perform no per-row heap allocation — the [`stats`] counters make
//! that measurable.
//!
//! Relations track the ordering their rows are known to satisfy as an
//! explicit [`SortOrder`] descriptor: the column permutation the rows are
//! currently sorted by. *Canonical* order (sorted by all columns in schema
//! order) is the special case used to compare results and deduplicate; the
//! interesting-orders machinery in `translate`/`executor` mostly works with
//! **partial** orders — a join only needs its inputs sorted by the key
//! columns, and a shuffle bucket of a key-ordered input is still key-ordered.
//! Every consumer of an ordering goes through [`Relation::sort_by_columns`]
//! (or [`Relation::canonicalize`]), which elides the sort whenever the
//! tracked order — or a linear verification pass — proves the rows already
//! ordered; the `sorts_performed` / `sorts_elided` counters in [`stats`]
//! record which way each requirement went. The n-ary [`Relation::join`]
//! cashes the same invariant in: inputs whose tracked order has the join
//! attributes as a prefix are merged in place, and every other input pays
//! one column-permuted index sort — never a hash table, never a key `Vec`
//! per row.

use cliquesquare_rdf::TermId;
use cliquesquare_sparql::Variable;
use std::cmp::Ordering;

/// Thread-local allocation and throughput counters for the relation layer.
///
/// The counters exist so the flat-buffer and sort-elision claims are
/// *measured*, not asserted: `row_allocs` counts heap allocations made for
/// an individual row (zero on every engine path since the columnar
/// refactor), `buffer_allocs` counts whole-buffer allocations (bounded by
/// the operator count, not the row count), the join counters record output
/// volume and which of the two sort-merge paths each input took, and the
/// `sorts_*` counters record how every ordering requirement was met.
pub mod stats {
    use cliquesquare_obs::{Counter, Gauge};
    use std::cell::Cell;
    use std::sync::{Arc, OnceLock};

    /// A snapshot of the thread-local relation counters.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    pub struct RelationStats {
        /// Heap allocations sized to a single row (must stay 0 on the join
        /// and shuffle paths).
        pub row_allocs: u64,
        /// Whole-buffer allocations (one per operator output / sort / merge,
        /// independent of the row count).
        pub buffer_allocs: u64,
        /// Rows produced by [`super::Relation::join`].
        pub join_rows_out: u64,
        /// Join inputs consumed through the tracked-order fast path (the
        /// join attributes are a prefix of the input's [`super::SortOrder`];
        /// no re-sort needed).
        pub join_inputs_presorted: u64,
        /// Join inputs that paid the one-shot column-permuted index sort.
        pub join_inputs_resorted: u64,
        /// Index sorts actually performed: [`super::Relation::canonicalize`]
        /// / [`super::Relation::sort_by_columns`] calls that had to permute
        /// rows, plus join-input re-sorts.
        pub sorts_performed: u64,
        /// Ordering requirements satisfied *without* sorting: the tracked
        /// [`super::SortOrder`] (or a linear verification pass) proved the
        /// rows already ordered.
        pub sorts_elided: u64,
        /// Key groups emitted as factorized runs by
        /// [`crate::factorized::join_runs`] instead of materialized rows.
        /// On an output-sublinear star join this stays far below
        /// `rows_expanded`.
        pub runs_emitted: u64,
        /// Rows materialized when factorized runs were expanded at the
        /// projection boundary.
        pub rows_expanded: u64,
        /// Largest single intermediate relation produced so far, in rows.
        pub peak_rows: u64,
        /// Largest single intermediate buffer produced so far, in bytes.
        pub peak_bytes: u64,
        /// High-water mark of bytes held simultaneously by the streaming
        /// shuffle (routed buckets plus the incremental per-node partial
        /// merges of [`super::MergeStack`]), over the execution.
        pub shuffle_peak_bytes: u64,
    }

    impl RelationStats {
        /// Counter increments between `earlier` and `self`, both snapshots
        /// of the *same* thread (the profiler brackets each task with
        /// this). The `peak_*` fields are high-water marks, not monotone
        /// counters, so the delta carries `self`'s value unchanged.
        pub fn since(&self, earlier: &RelationStats) -> RelationStats {
            RelationStats {
                row_allocs: self.row_allocs.saturating_sub(earlier.row_allocs),
                buffer_allocs: self.buffer_allocs.saturating_sub(earlier.buffer_allocs),
                join_rows_out: self.join_rows_out.saturating_sub(earlier.join_rows_out),
                join_inputs_presorted: self
                    .join_inputs_presorted
                    .saturating_sub(earlier.join_inputs_presorted),
                join_inputs_resorted: self
                    .join_inputs_resorted
                    .saturating_sub(earlier.join_inputs_resorted),
                sorts_performed: self.sorts_performed.saturating_sub(earlier.sorts_performed),
                sorts_elided: self.sorts_elided.saturating_sub(earlier.sorts_elided),
                runs_emitted: self.runs_emitted.saturating_sub(earlier.runs_emitted),
                rows_expanded: self.rows_expanded.saturating_sub(earlier.rows_expanded),
                peak_rows: self.peak_rows,
                peak_bytes: self.peak_bytes,
                shuffle_peak_bytes: self.shuffle_peak_bytes,
            }
        }
    }

    thread_local! {
        static STATS: Cell<RelationStats> = const { Cell::new(RelationStats {
            row_allocs: 0,
            buffer_allocs: 0,
            join_rows_out: 0,
            join_inputs_presorted: 0,
            join_inputs_resorted: 0,
            sorts_performed: 0,
            sorts_elided: 0,
            runs_emitted: 0,
            rows_expanded: 0,
            peak_rows: 0,
            peak_bytes: 0,
            shuffle_peak_bytes: 0,
        }) };
    }

    /// Process-global mirrors of the thread-local counters, registered in
    /// [`cliquesquare_obs::global`] so a live `/metrics` scrape sees the
    /// relation layer. The thread-local [`Cell`]s stay authoritative —
    /// `reset`/`snapshot` semantics (and therefore every `report_*`
    /// column and baseline diff) are untouched; the mirror only *adds*
    /// one relaxed atomic op to each per-operator counting call.
    struct Mirror {
        row_allocs: Arc<Counter>,
        buffer_allocs: Arc<Counter>,
        join_rows: Arc<Counter>,
        join_inputs_presorted: Arc<Counter>,
        join_inputs_resorted: Arc<Counter>,
        sorts_performed: Arc<Counter>,
        sorts_elided: Arc<Counter>,
        runs_emitted: Arc<Counter>,
        rows_expanded: Arc<Counter>,
        peak_rows: Arc<Gauge>,
        peak_bytes: Arc<Gauge>,
        shuffle_peak_bytes: Arc<Gauge>,
    }

    fn mirror() -> &'static Mirror {
        static MIRROR: OnceLock<Mirror> = OnceLock::new();
        MIRROR.get_or_init(|| {
            let registry = cliquesquare_obs::global();
            Mirror {
                row_allocs: registry.counter(
                    "csq_relation_row_allocs_total",
                    "Heap allocations sized to a single row",
                    &[],
                ),
                buffer_allocs: registry.counter(
                    "csq_relation_buffer_allocs_total",
                    "Whole-buffer relation allocations",
                    &[],
                ),
                join_rows: registry.counter(
                    "csq_relation_join_rows_total",
                    "Rows produced by the n-ary sort-merge join",
                    &[],
                ),
                join_inputs_presorted: registry.counter(
                    "csq_relation_join_inputs_total",
                    "Join inputs by sort-merge path",
                    &[("path", "presorted")],
                ),
                join_inputs_resorted: registry.counter(
                    "csq_relation_join_inputs_total",
                    "Join inputs by sort-merge path",
                    &[("path", "resorted")],
                ),
                sorts_performed: registry.counter(
                    "csq_relation_sorts_total",
                    "Ordering requirements by outcome",
                    &[("outcome", "performed")],
                ),
                sorts_elided: registry.counter(
                    "csq_relation_sorts_total",
                    "Ordering requirements by outcome",
                    &[("outcome", "elided")],
                ),
                runs_emitted: registry.counter(
                    "csq_relation_runs_emitted_total",
                    "Key groups emitted as factorized runs",
                    &[],
                ),
                rows_expanded: registry.counter(
                    "csq_relation_rows_expanded_total",
                    "Rows materialized from factorized runs",
                    &[],
                ),
                peak_rows: registry.gauge(
                    "csq_relation_peak_rows",
                    "Largest single intermediate relation, in rows",
                    &[],
                ),
                peak_bytes: registry.gauge(
                    "csq_relation_peak_bytes",
                    "Largest single intermediate buffer, in bytes",
                    &[],
                ),
                shuffle_peak_bytes: registry.gauge(
                    "csq_relation_shuffle_peak_bytes",
                    "High-water bytes held by the streaming shuffle",
                    &[],
                ),
            }
        })
    }

    /// Resets this thread's counters to zero.
    pub fn reset() {
        STATS.with(|s| s.set(RelationStats::default()));
    }

    /// Reads this thread's counters.
    pub fn snapshot() -> RelationStats {
        STATS.with(|s| s.get())
    }

    fn update(f: impl FnOnce(&mut RelationStats)) {
        STATS.with(|s| {
            let mut v = s.get();
            f(&mut v);
            s.set(v);
        });
    }

    pub(crate) fn count_row_allocs(n: u64) {
        update(|s| s.row_allocs += n);
        mirror().row_allocs.add(n);
    }

    pub(crate) fn count_buffer_alloc() {
        update(|s| s.buffer_allocs += 1);
        mirror().buffer_allocs.inc();
    }

    pub(crate) fn count_join_rows(n: u64) {
        update(|s| s.join_rows_out += n);
        mirror().join_rows.add(n);
    }

    pub(crate) fn count_join_input(presorted: bool) {
        update(|s| {
            if presorted {
                s.join_inputs_presorted += 1;
            } else {
                s.join_inputs_resorted += 1;
            }
        });
        let mirror = mirror();
        if presorted {
            mirror.join_inputs_presorted.inc();
        } else {
            mirror.join_inputs_resorted.inc();
        }
    }

    pub(crate) fn count_sort(performed: bool) {
        update(|s| {
            if performed {
                s.sorts_performed += 1;
            } else {
                s.sorts_elided += 1;
            }
        });
        let mirror = mirror();
        if performed {
            mirror.sorts_performed.inc();
        } else {
            mirror.sorts_elided.inc();
        }
    }

    pub(crate) fn count_runs(n: u64) {
        update(|s| s.runs_emitted += n);
        mirror().runs_emitted.add(n);
    }

    pub(crate) fn count_expanded(n: u64) {
        update(|s| s.rows_expanded += n);
        mirror().rows_expanded.add(n);
    }

    /// Records one materialized intermediate; the peak counters keep the
    /// high-water mark over the execution.
    pub(crate) fn note_intermediate(rows: u64, bytes: u64) {
        update(|s| {
            s.peak_rows = s.peak_rows.max(rows);
            s.peak_bytes = s.peak_bytes.max(bytes);
        });
        let mirror = mirror();
        mirror.peak_rows.record_max(rows as i64);
        mirror.peak_bytes.record_max(bytes as i64);
    }

    /// Records the bytes a shuffle holds at one instant; the peak counter
    /// keeps the high-water mark over the execution.
    pub(crate) fn note_shuffle(bytes: u64) {
        update(|s| s.shuffle_peak_bytes = s.shuffle_peak_bytes.max(bytes));
        mirror().shuffle_peak_bytes.record_max(bytes as i64);
    }
}

/// The ordering a relation's rows are known to satisfy: rows are sorted
/// lexicographically by the listed columns, in sequence. Rows that tie on
/// every listed column appear in a deterministic but unspecified relative
/// order, so a descriptor listing **all** columns means equal rows are
/// adjacent, and the identity permutation means *canonical* order.
///
/// An empty descriptor claims nothing ([`SortOrder::none`]); it is always a
/// safe value — it only costs a re-sort later.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SortOrder(Vec<usize>);

impl SortOrder {
    /// The empty descriptor: no ordering is claimed.
    pub fn none() -> Self {
        Self(Vec::new())
    }

    /// An ordering by the given column sequence. Repeated columns are
    /// dropped (ordering by an already-listed column adds nothing).
    pub fn by(columns: impl IntoIterator<Item = usize>) -> Self {
        let mut cols: Vec<usize> = Vec::new();
        for c in columns {
            if !cols.contains(&c) {
                cols.push(c);
            }
        }
        Self(cols)
    }

    /// Canonical order: every column in schema position order.
    pub fn canonical(arity: usize) -> Self {
        Self((0..arity).collect())
    }

    /// The column sequence of the descriptor.
    pub fn columns(&self) -> &[usize] {
        &self.0
    }

    /// Returns `true` when no ordering is claimed.
    pub fn is_none(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns `true` when this is the canonical order of an `arity`-column
    /// relation (the identity permutation over all columns).
    pub fn is_canonical(&self, arity: usize) -> bool {
        self.0.len() == arity && self.0.iter().enumerate().all(|(i, &c)| c == i)
    }

    /// Returns `true` when rows sorted by this descriptor are also sorted by
    /// `columns`: the requirement (ignoring columns this order has already
    /// pinned earlier) must be a prefix of the tracked sequence.
    pub fn satisfies(&self, columns: &[usize]) -> bool {
        let mut position = 0usize;
        for &c in columns {
            if self.0[..position].contains(&c) {
                // Already pinned by an earlier column of the requirement:
                // rows tying up to `position` are equal on `c` too.
                continue;
            }
            if position < self.0.len() && self.0[position] == c {
                position += 1;
            } else {
                return false;
            }
        }
        true
    }

    /// The longest common prefix of two descriptors (the order a merge of
    /// two relations can preserve).
    pub fn shared_prefix<'a>(&'a self, other: &SortOrder) -> &'a [usize] {
        let n = self
            .0
            .iter()
            .zip(&other.0)
            .take_while(|(a, b)| a == b)
            .count();
        &self.0[..n]
    }
}

/// A relation over query variables: a schema plus dictionary-encoded rows in
/// one flat row-major buffer.
///
/// This is the tuple format flowing between simulated physical operators.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Vec<Variable>,
    /// Row-major storage: row `i` occupies `data[i * arity .. (i + 1) * arity]`.
    data: Vec<TermId>,
    /// Number of rows, tracked explicitly because the arity can be zero
    /// (a relation over no variables still distinguishes 0 rows from 1).
    rows: usize,
    /// The ordering the rows are known to satisfy. Kept up to date cheaply
    /// on `push_row`/`union_in_place`; [`SortOrder::none`] is always a safe
    /// value (it only costs a re-sort later).
    order: SortOrder,
}

/// Equality compares schema and rows; the `order` bookkeeping descriptor is
/// derived state and must not influence it.
impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.rows == other.rows && self.data == other.data
    }
}

impl Eq for Relation {}

/// Compares two rows by the given column sequence.
fn cmp_by_columns(a: &[TermId], b: &[TermId], columns: &[usize]) -> Ordering {
    for &c in columns {
        match a[c].cmp(&b[c]) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    Ordering::Equal
}

/// One linear pass checking that a flat buffer's rows are sorted by the
/// given column sequence.
fn sorted_by(data: &[TermId], arity: usize, columns: &[usize]) -> bool {
    if arity == 0 || columns.is_empty() {
        return true;
    }
    let mut chunks = data.chunks_exact(arity);
    let Some(mut previous) = chunks.next() else {
        return true;
    };
    for row in chunks {
        if cmp_by_columns(previous, row, columns) == Ordering::Greater {
            return false;
        }
        previous = row;
    }
    true
}

/// One linear pass checking that a flat buffer's rows are in canonical
/// (full lexicographic) order.
fn flat_sorted(data: &[TermId], arity: usize) -> bool {
    if arity == 0 {
        return true;
    }
    let mut chunks = data.chunks_exact(arity);
    let Some(mut previous) = chunks.next() else {
        return true;
    };
    for row in chunks {
        if previous > row {
            return false;
        }
        previous = row;
    }
    true
}

/// Borrowed iterator over a relation's rows as `&[TermId]` slices.
#[derive(Debug, Clone)]
pub struct Rows<'a> {
    data: &'a [TermId],
    arity: usize,
    remaining: usize,
    offset: usize,
}

impl<'a> Iterator for Rows<'a> {
    type Item = &'a [TermId];

    fn next(&mut self) -> Option<&'a [TermId]> {
        if self.remaining == 0 {
            return None;
        }
        let row = &self.data[self.offset..self.offset + self.arity];
        self.offset += self.arity;
        self.remaining -= 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for Rows<'_> {}

/// The output-order requirement of [`Relation::join_ordered`]: what the
/// join's consumer needs the output sorted by.
#[derive(Debug, Clone, Copy)]
pub enum JoinOrder<'a> {
    /// Fully canonicalize the output (sort by all columns in schema order).
    /// This is the pre-interesting-orders behaviour and what
    /// [`Relation::join`] requests.
    Canonical,
    /// Keep the natural key-grouped order: the output is sorted by the join
    /// attributes (in attribute order) and left otherwise untouched.
    Natural,
    /// Sort the output by the given variable sequence, eliding the sort when
    /// the natural key order already delivers it.
    Columns(&'a [Variable]),
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn empty(schema: Vec<Variable>) -> Self {
        let order = SortOrder::canonical(schema.len());
        Self {
            schema,
            data: Vec::new(),
            rows: 0,
            order,
        }
    }

    /// The relation with no variables and exactly one (empty) row — the
    /// identity for binding extension in the reference evaluator.
    pub fn unit() -> Self {
        Self {
            schema: Vec::new(),
            data: Vec::new(),
            rows: 1,
            order: SortOrder::canonical(0),
        }
    }

    /// Creates a relation from a schema and materialized rows.
    ///
    /// This is a convenience for tests and small fixtures: it flattens the
    /// per-row `Vec`s into the columnar buffer (and counts them as row
    /// allocations in [`stats`]). Hot paths build relations with
    /// [`Relation::push_row`] or [`Relation::from_flat`] instead.
    ///
    /// # Panics
    ///
    /// Panics if any row's arity differs from the schema's.
    pub fn new(schema: Vec<Variable>, rows: Vec<Vec<TermId>>) -> Self {
        stats::count_row_allocs(rows.len() as u64);
        let mut relation = Self::empty(schema);
        if let Some(first) = rows.first() {
            stats::count_buffer_alloc();
            relation.data.reserve(first.len() * rows.len());
        }
        for row in &rows {
            relation.push_row(row);
        }
        relation
    }

    /// Creates a relation directly from a flat row-major buffer.
    ///
    /// The ordering descriptor is computed with one linear canonical-order
    /// check so downstream consumers can still skip redundant sorts.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length is not a multiple of the schema arity
    /// (a zero-arity schema requires an empty buffer).
    pub fn from_flat(schema: Vec<Variable>, data: Vec<TermId>) -> Self {
        let arity = schema.len();
        let rows = if arity == 0 {
            assert!(data.is_empty(), "flat buffer for a zero-arity schema");
            0
        } else {
            assert_eq!(
                data.len() % arity,
                0,
                "flat buffer length not a multiple of arity"
            );
            data.len() / arity
        };
        let order = if flat_sorted(&data, arity) {
            SortOrder::canonical(arity)
        } else {
            SortOrder::none()
        };
        Self {
            schema,
            data,
            rows,
            order,
        }
    }

    /// The relation's schema (variable order of each row).
    pub fn schema(&self) -> &[Variable] {
        &self.schema
    }

    /// Number of columns per row.
    pub fn arity(&self) -> usize {
        self.schema.len()
    }

    /// The flat row-major buffer backing the relation.
    pub fn data(&self) -> &[TermId] {
        &self.data
    }

    /// Bytes currently reserved by the flat row buffer (capacity, not just
    /// the filled length) — lets tests regress the shuffle's reservation
    /// policy against real numbers.
    pub fn reserved_bytes(&self) -> usize {
        self.data.capacity() * TERM_BYTES
    }

    /// Builds a relation from pre-assembled raw parts, adopting `order` as
    /// the tracked claim (verified in debug builds). Used by the factorized
    /// expansion, which knows the order its emission loop produced.
    pub(crate) fn from_raw(
        schema: Vec<Variable>,
        data: Vec<TermId>,
        rows: usize,
        order: SortOrder,
    ) -> Self {
        let arity = schema.len();
        debug_assert_eq!(data.len(), rows * arity, "raw buffer length mismatch");
        debug_assert!(
            sorted_by(&data, arity, order.columns()),
            "raw relation does not satisfy the claimed order"
        );
        Self {
            schema,
            data,
            rows,
            order,
        }
    }

    /// Row `index` as a borrowed slice.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn row(&self, index: usize) -> &[TermId] {
        assert!(index < self.rows, "row index out of bounds");
        let arity = self.schema.len();
        &self.data[index * arity..(index + 1) * arity]
    }

    /// Iterates over the rows as borrowed `&[TermId]` slices (no per-row
    /// allocation).
    pub fn rows(&self) -> Rows<'_> {
        Rows {
            data: &self.data,
            arity: self.schema.len(),
            remaining: self.rows,
            offset: 0,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Heap bytes of the flat row buffer (the unit of the `peak_bytes` and
    /// `shuffle_peak_bytes` counters in [`stats`]).
    pub fn buffer_bytes(&self) -> u64 {
        (self.data.len() * TERM_BYTES) as u64
    }

    /// Returns `true` if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The ordering the rows are known to satisfy.
    pub fn order(&self) -> &SortOrder {
        &self.order
    }

    /// Returns `true` if the rows are known to be in canonical (sorted)
    /// order.
    pub fn is_canonical(&self) -> bool {
        self.order.is_canonical(self.schema.len())
    }

    /// Declares the ordering the rows are known to satisfy. The caller
    /// guarantees the claim (a producer that emitted rows in a known order,
    /// e.g. an index scan); it is verified in debug builds.
    pub fn assume_order(&mut self, order: SortOrder) {
        debug_assert!(
            sorted_by(&self.data, self.schema.len(), order.columns()),
            "assumed order {:?} not satisfied",
            order
        );
        self.order = order;
    }

    /// Appends a row by copying it into the flat buffer, keeping the
    /// ordering descriptor accurate: appending a row that compares `>=` the
    /// current last row under the tracked order preserves it.
    ///
    /// # Panics
    ///
    /// Panics if the row arity differs from the schema's.
    pub fn push_row(&mut self, row: &[TermId]) {
        let arity = self.schema.len();
        assert_eq!(row.len(), arity, "row arity mismatch");
        if self.rows > 0 && !self.order.is_none() {
            let last = &self.data[(self.rows - 1) * arity..];
            if cmp_by_columns(last, row, self.order.columns()) == Ordering::Greater {
                self.order = SortOrder::none();
            }
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Appends a row *without* maintaining the ordering descriptor (the
    /// relation's order becomes [`SortOrder::none`]). Producers that emit
    /// rows in an order they already know — index scans, the reference
    /// evaluator's chunk loop — use this to skip the per-push comparison and
    /// re-establish the descriptor once with [`Relation::assume_order`].
    ///
    /// # Panics
    ///
    /// Panics if the row arity differs from the schema's.
    pub fn push_row_unordered(&mut self, row: &[TermId]) {
        assert_eq!(row.len(), self.schema.len(), "row arity mismatch");
        if !self.order.is_none() {
            self.order = SortOrder::none();
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Index of `variable` in the schema.
    pub fn column(&self, variable: &Variable) -> Option<usize> {
        self.schema.iter().position(|v| v == variable)
    }

    /// Sorts the rows into canonical order (elided when the tracked order is
    /// already canonical; one verification pass rescues almost-sorted
    /// buffers from the sort).
    pub fn canonicalize(&mut self) {
        let arity = self.schema.len();
        if self.order.is_canonical(arity) {
            stats::count_sort(false);
        } else if flat_sorted(&self.data, arity) {
            self.order = SortOrder::canonical(arity);
            stats::count_sort(false);
        } else {
            self.sort_now(SortOrder::canonical(arity));
        }
        debug_assert!(
            flat_sorted(&self.data, arity),
            "canonical relation not sorted"
        );
    }

    /// Ensures the rows are sorted by the given column sequence, eliding the
    /// sort when the tracked order (or a linear verification pass) proves
    /// them already ordered. The outcome is recorded in the
    /// `sorts_performed` / `sorts_elided` counters of [`stats`].
    pub fn sort_by_columns(&mut self, columns: &[usize]) {
        let order = SortOrder::by(columns.iter().copied());
        if self.rows <= 1 {
            // At most one row: every ordering holds, adopt the claim as-is.
            self.order = order;
            stats::count_sort(false);
            return;
        }
        if self.order.satisfies(order.columns()) {
            stats::count_sort(false);
            return;
        }
        if sorted_by(&self.data, self.schema.len(), order.columns()) {
            self.order = order;
            stats::count_sort(false);
            return;
        }
        self.sort_now(order);
    }

    /// Index sort + one permuted copy by the given order. The sort touches
    /// only the key columns, gathered into contiguous column-major storage
    /// first: a single-column key sorts one flat `(key, row)` array, and a
    /// multi-column key goes through the chunked [`KeyChunk`] comparator.
    /// A handful of buffer allocations, zero per-row allocations.
    fn sort_now(&mut self, order: SortOrder) {
        assert!(self.rows <= u32::MAX as usize, "relation too large");
        let arity = self.schema.len();
        stats::count_buffer_alloc();
        let permutation: Vec<u32> = if let [col] = *order.columns() {
            // Single-column key: sort flat (key, row) pairs — a branch-light
            // wide compare over one contiguous buffer. Ties keep the original
            // row order, so the result is deterministic.
            let mut keyed: Vec<(TermId, u32)> = (0..self.rows as u32)
                .map(|row| (self.data[row as usize * arity + col], row))
                .collect();
            keyed.sort_unstable();
            keyed.into_iter().map(|(_, row)| row).collect()
        } else {
            let chunk = KeyChunk::gather(&self.data, arity, order.columns(), self.rows);
            let mut permutation: Vec<u32> = (0..self.rows as u32).collect();
            permutation.sort_unstable_by(|&a, &b| chunk.cmp_rows(a as usize, b as usize));
            permutation
        };
        stats::count_buffer_alloc();
        let mut sorted: Vec<TermId> = Vec::with_capacity(self.data.len());
        for &i in &permutation {
            sorted.extend_from_slice(self.row(i as usize));
        }
        self.data = sorted;
        self.order = order;
        stats::count_sort(true);
    }

    /// Combines another relation with the *same schema* into this one.
    ///
    /// When the two orders share a prefix, the flat buffers are merged by
    /// that prefix (linear time, ties go to `self`'s rows) and the result
    /// stays ordered by it; otherwise the buffers are concatenated and the
    /// result's order is dropped.
    ///
    /// # Panics
    ///
    /// Panics if the schemas differ.
    pub fn union_in_place(&mut self, other: Relation) {
        assert_eq!(self.schema, other.schema, "schema mismatch in union");
        if self.rows == 0 {
            self.data = other.data;
            self.rows = other.rows;
            self.order = other.order;
            return;
        }
        if other.rows == 0 {
            return;
        }
        let arity = self.schema.len();
        if arity == 0 {
            self.rows += other.rows;
            return;
        }
        let shared = self.order.shared_prefix(&other.order);
        if shared.is_empty() {
            self.data.extend_from_slice(&other.data);
            self.rows += other.rows;
            self.order = SortOrder::none();
            return;
        }
        let shared = shared.to_vec();
        let left = std::mem::take(&mut self.data);
        let right = other.data;
        stats::count_buffer_alloc();
        let mut merged: Vec<TermId> = Vec::with_capacity(left.len() + right.len());
        let (mut i, mut j) = (0usize, 0usize);
        if let [key] = shared[..] {
            // Single shared column (the common case: parts ordered by one
            // join key): compare the key ids directly instead of going
            // through the per-column comparator.
            while i < left.len() && j < right.len() {
                if left[i + key] <= right[j + key] {
                    merged.extend_from_slice(&left[i..i + arity]);
                    i += arity;
                } else {
                    merged.extend_from_slice(&right[j..j + arity]);
                    j += arity;
                }
            }
        }
        while i < left.len() && j < right.len() {
            if cmp_by_columns(&left[i..i + arity], &right[j..j + arity], &shared)
                != Ordering::Greater
            {
                merged.extend_from_slice(&left[i..i + arity]);
                i += arity;
            } else {
                merged.extend_from_slice(&right[j..j + arity]);
                j += arity;
            }
        }
        merged.extend_from_slice(&left[i..]);
        merged.extend_from_slice(&right[j..]);
        debug_assert!(
            sorted_by(&merged, arity, &shared),
            "merge of ordered inputs lost the shared order"
        );
        self.data = merged;
        self.rows += other.rows;
        self.order = SortOrder::by(shared);
    }

    /// Merges relations with identical schemas into one, interleaving rows
    /// by the ordering prefixes the inputs share: a k-way ordered merge,
    /// implemented as a balanced tree of two-way [`Relation::union_in_place`]
    /// merges (`⌈log₂ k⌉` linear passes — one comparison per row per level,
    /// instead of `k` comparisons per row for a naive k-way scan). Ties are
    /// resolved toward the earliest input and rows of one input keep their
    /// relative order, so the result is deterministic in the input order;
    /// inputs sharing no order are concatenated. This is how the executor
    /// combines per-node parts and shuffle buckets without re-sorting.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or the schemas differ.
    pub fn merge_ordered(mut parts: Vec<Relation>) -> Relation {
        assert!(!parts.is_empty(), "merge_ordered needs at least one input");
        while parts.len() > 1 {
            let mut next = Vec::with_capacity(parts.len().div_ceil(2));
            let mut iter = parts.into_iter();
            while let Some(mut first) = iter.next() {
                if let Some(second) = iter.next() {
                    first.union_in_place(second);
                }
                next.push(first);
            }
            parts = next;
        }
        parts.pop().expect("at least one part")
    }

    /// Appends another relation's rows (same schema) in concatenation
    /// order, without the ordered merge of [`Relation::union_in_place`].
    /// The ordering descriptor stays exact: the result keeps the orders'
    /// shared prefix only when the boundary rows are ordered by it.
    ///
    /// # Panics
    ///
    /// Panics if the schemas differ.
    pub fn concat(&mut self, other: Relation) {
        assert_eq!(self.schema, other.schema, "schema mismatch in concat");
        if other.rows == 0 {
            return;
        }
        if self.rows == 0 {
            self.data = other.data;
            self.rows = other.rows;
            self.order = other.order;
            return;
        }
        let arity = self.schema.len();
        if arity == 0 {
            self.rows += other.rows;
            return;
        }
        let shared = self.order.shared_prefix(&other.order).to_vec();
        let ordered = !shared.is_empty()
            && cmp_by_columns(
                &self.data[(self.rows - 1) * arity..],
                &other.data[..arity],
                &shared,
            ) != Ordering::Greater;
        self.data.extend_from_slice(&other.data);
        self.rows += other.rows;
        self.order = if ordered {
            SortOrder::by(shared)
        } else {
            SortOrder::none()
        };
    }

    /// Projects the relation onto `variables` (dropping duplicates of rows is
    /// *not* performed: BGP semantics keep multiplicities).
    pub fn project(&self, variables: &[Variable]) -> Relation {
        let columns: Vec<usize> = variables.iter().filter_map(|v| self.column(v)).collect();
        let kept: Vec<Variable> = variables
            .iter()
            .filter(|v| self.column(v).is_some())
            .cloned()
            .collect();
        let arity = kept.len();
        stats::count_buffer_alloc();
        let mut data: Vec<TermId> = Vec::with_capacity(arity * self.rows);
        for row in self.rows() {
            for &c in &columns {
                data.push(row[c]);
            }
        }
        // Ordering survives projection as the longest prefix of the tracked
        // order whose columns are all kept (a dropped column breaks ties in
        // a way the output can no longer see).
        let mut order_columns: Vec<usize> = Vec::new();
        for &c in self.order.columns() {
            match columns.iter().position(|&kept_col| kept_col == c) {
                Some(out_col) => order_columns.push(out_col),
                None => break,
            }
        }
        let out = Relation {
            schema: kept,
            data,
            rows: self.rows,
            order: SortOrder::by(order_columns),
        };
        debug_assert!(
            sorted_by(&out.data, arity, out.order.columns()),
            "projection lost the inherited order"
        );
        out
    }

    /// Sorts rows lexicographically (used to compare results in tests).
    /// Already-canonical relations are returned unchanged.
    pub fn sorted(mut self) -> Relation {
        self.canonicalize();
        self
    }

    /// Deduplicates rows in place (after sorting, skipped when already
    /// canonical). BGP evaluation is set semantics in the paper's
    /// formalization, so final results are compared deduplicated.
    pub fn distinct(mut self) -> Relation {
        self.canonicalize();
        let arity = self.schema.len();
        if arity == 0 {
            self.rows = self.rows.min(1);
            return self;
        }
        if self.rows <= 1 {
            return self;
        }
        let mut write = 1usize;
        for read in 1..self.rows {
            let duplicate = self.data[read * arity..(read + 1) * arity]
                == self.data[(write - 1) * arity..write * arity];
            if !duplicate {
                if read != write {
                    self.data
                        .copy_within(read * arity..(read + 1) * arity, write * arity);
                }
                write += 1;
            }
        }
        self.data.truncate(write * arity);
        self.rows = write;
        self
    }

    /// Number of distinct rows, without consuming or cloning the relation
    /// when its tracked order covers every column (any full column
    /// permutation puts equal rows next to each other).
    pub fn distinct_len(&self) -> usize {
        let arity = self.schema.len();
        if arity == 0 {
            return self.rows.min(1);
        }
        if self.order.columns().len() == arity {
            debug_assert!(
                sorted_by(&self.data, arity, self.order.columns()),
                "tracked order not satisfied"
            );
            let duplicates = (1..self.rows)
                .filter(|&i| {
                    self.data[(i - 1) * arity..i * arity] == self.data[i * arity..(i + 1) * arity]
                })
                .count();
            self.rows - duplicates
        } else {
            self.clone().distinct().len()
        }
    }

    /// N-ary **sort-merge** join of `inputs` on the shared `attributes`,
    /// with the output fully canonicalized. Equivalent to
    /// [`Relation::join_ordered`] with [`JoinOrder::Canonical`].
    pub fn join(inputs: &[&Relation], attributes: &[Variable]) -> Relation {
        Self::join_ordered(inputs, attributes, JoinOrder::Canonical)
    }

    /// N-ary **sort-merge** join of `inputs` on the shared `attributes`.
    ///
    /// The output schema is the union of the input schemas in input order
    /// (join attributes appear once). This mirrors the logical `J_A`
    /// operator: every input must contain every join attribute.
    ///
    /// Each input is walked in key order: an input whose tracked
    /// [`SortOrder`] has the join attributes as a prefix is consumed as-is,
    /// and any other input pays one column-permuted index sort — no hash
    /// table and no per-row key allocation on either path. Matching key
    /// groups are combined with a cross product that writes into one reused
    /// scratch row, rejecting combinations that disagree on shared non-join
    /// attributes.
    ///
    /// The merge emits key groups in ascending key order, so the raw output
    /// is sorted by the join attributes; `output_order` then decides how
    /// much more ordering the consumer needs — sorting is elided whenever
    /// the natural key order already satisfies it. All paths are
    /// deterministic, so join results are bit-identical at any thread count.
    pub fn join_ordered(
        inputs: &[&Relation],
        attributes: &[Variable],
        output_order: JoinOrder<'_>,
    ) -> Relation {
        assert!(!inputs.is_empty(), "join needs at least one input");
        // Output schema: union of schemas, first occurrence wins.
        let mut schema: Vec<Variable> = Vec::new();
        for rel in inputs {
            for v in rel.schema() {
                if !schema.contains(v) {
                    schema.push(v.clone());
                }
            }
        }
        if inputs.len() == 1 {
            // Single input: the join is the identity (finalized to the
            // requested order).
            stats::count_buffer_alloc();
            let mut out = Relation {
                schema,
                data: inputs[0].data.clone(),
                rows: inputs[0].rows,
                order: inputs[0].order.clone(),
            };
            finalize_join_order(&mut out, output_order);
            stats::count_join_rows(out.rows as u64);
            return out;
        }

        let n = inputs.len();
        // Per input: key columns and the row visit order that makes the
        // rows key-sorted.
        let views: Vec<InputView<'_>> = inputs
            .iter()
            .map(|rel| InputView::new(rel, attributes))
            .collect();

        let mut out = Relation::empty(schema);
        if views.iter().any(|view| view.len() == 0) {
            // An empty output satisfies any ordering: adopt the requested
            // one so downstream consumers see the order the plan promised.
            finalize_join_order(&mut out, output_order);
            stats::count_join_rows(0);
            return out;
        }

        // Output column mapping: `writes[i]` are the columns input `i` is
        // the first to provide; `checks[i]` are columns some earlier input
        // already provided that are *not* join attributes (join attributes
        // are equal by construction of the merge). Both are column-index
        // pairs `(src, dst)`.
        let mut writes: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        let mut checks: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        let mut provided = vec![false; out.schema.len()];
        for (i, rel) in inputs.iter().enumerate() {
            for (src, v) in rel.schema().iter().enumerate() {
                let dst = out
                    .schema
                    .iter()
                    .position(|s| s == v)
                    .expect("schema union");
                if !provided[dst] {
                    provided[dst] = true;
                    writes[i].push((src, dst));
                } else if !attributes.contains(v) {
                    checks[i].push((src, dst));
                }
            }
        }

        stats::count_buffer_alloc();
        let mut scratch: Vec<TermId> = vec![TermId(0); out.schema.len()];
        merge_key_groups(&views, |views, cursors, ends| {
            emit_groups(
                views,
                &writes,
                &checks,
                cursors,
                ends,
                0,
                &mut scratch,
                &mut out,
            );
        });
        // Key groups were emitted in ascending key order: the output is
        // sorted by the join attributes' output columns.
        let natural = SortOrder::by(
            attributes
                .iter()
                .map(|a| out.column(a).expect("join attribute in output schema")),
        );
        out.assume_order(natural);
        finalize_join_order(&mut out, output_order);
        stats::count_join_rows(out.rows as u64);
        stats::note_intermediate(out.rows as u64, (out.data.len() * TERM_BYTES) as u64);
        out
    }
}

/// An incremental k-way ordered merge: push same-schema relations one at a
/// time, finish once, and the result is **bit-identical** to
/// [`Relation::merge_ordered`] over the full pushed sequence — while only
/// `O(log k)` partial merges are ever held, so a shuffle can drain routed
/// buckets into the reduce side in bounded batches instead of collecting
/// all `k` buckets first.
///
/// The stack mirrors binary-counter addition: each entry at level `L` is
/// the merged, **aligned** block of `2^L` consecutive inputs (input indexes
/// `[i·2^L, (i+1)·2^L)`), and two same-level entries merge immediately
/// (earlier block as `self`, so ties keep resolving toward earlier inputs).
/// `merge_ordered`'s balanced pairing tree consists of exactly the aligned
/// complete blocks plus a right-nested spine over the incomplete suffix
/// (each pass pairs `2^p`-aligned neighbours, carrying the odd tail), which
/// is what [`finish`](Self::finish) reproduces by folding the stack from
/// the smallest block upward — see `merge_stack_matches_merge_ordered`.
#[derive(Debug, Default)]
pub struct MergeStack {
    /// `(level, partial merge)` entries; levels strictly decrease from the
    /// bottom of the stack to the top.
    stack: Vec<(u32, Relation)>,
}

impl MergeStack {
    /// An empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes the next input, merging aligned same-size blocks eagerly.
    pub fn push(&mut self, relation: Relation) {
        let mut level = 0u32;
        let mut current = relation;
        while matches!(self.stack.last(), Some((l, _)) if *l == level) {
            let (_, mut below) = self.stack.pop().expect("matched a top entry");
            below.union_in_place(current);
            current = below;
            level += 1;
        }
        self.stack.push((level, current));
    }

    /// Folds the remaining partial merges (smallest block into the next
    /// larger, upward) into the final relation; `None` if nothing was
    /// pushed.
    pub fn finish(mut self) -> Option<Relation> {
        while self.stack.len() > 1 {
            let (_, top) = self.stack.pop().expect("len checked > 1");
            self.stack
                .last_mut()
                .expect("len checked >= 1")
                .1
                .union_in_place(top);
        }
        self.stack.pop().map(|(_, relation)| relation)
    }

    /// Total heap bytes of the held partial merges (the streaming shuffle's
    /// live footprint, recorded by `stats::shuffle_peak_bytes`).
    pub fn held_bytes(&self) -> u64 {
        self.stack
            .iter()
            .map(|(_, relation)| relation.buffer_bytes())
            .sum()
    }
}

/// Bytes per stored [`TermId`], for the `peak_bytes` accounting.
pub(crate) const TERM_BYTES: usize = std::mem::size_of::<TermId>();

/// Drives the n-ary sort-merge alignment over pre-built [`InputView`]s:
/// repeatedly aligns all cursors on the next common key, delimits each
/// input's equal-key group `[cursors[i], ends[i])`, and hands the aligned
/// group to `on_group`. Groups arrive in ascending key order. Shared by the
/// eager cross-product join and the factorized run-emitting join in
/// [`crate::factorized`].
pub(crate) fn merge_key_groups<F>(views: &[InputView<'_>], mut on_group: F)
where
    F: FnMut(&[InputView<'_>], &[usize], &[usize]),
{
    let n = views.len();
    if views.iter().any(|view| view.len() == 0) {
        return;
    }
    let mut cursors = vec![0usize; n];
    let mut ends = vec![0usize; n];
    // Repeatedly align all cursors on a common key, then hand the aligned
    // key groups to the emitter.
    let mut max_input = 0usize;
    'merge: loop {
        // Align every input's current key with the largest current key.
        'align: loop {
            let mut advanced_max = false;
            for i in 0..n {
                if i == max_input {
                    continue;
                }
                loop {
                    if cursors[i] == views[i].len() {
                        break 'merge;
                    }
                    match cmp_keys(&views[i], cursors[i], &views[max_input], cursors[max_input]) {
                        Ordering::Less => cursors[i] += 1,
                        Ordering::Equal => break,
                        Ordering::Greater => {
                            max_input = i;
                            advanced_max = true;
                            break;
                        }
                    }
                }
                if advanced_max {
                    continue 'align;
                }
            }
            break 'align;
        }
        // All inputs agree on the key: delimit each input's key group.
        for i in 0..n {
            let mut end = cursors[i] + 1;
            while end < views[i].len()
                && cmp_keys(&views[i], end, &views[i], cursors[i]) == Ordering::Equal
            {
                end += 1;
            }
            ends[i] = end;
        }
        on_group(views, &cursors, &ends);
        cursors.copy_from_slice(&ends);
        if (0..n).any(|i| cursors[i] == views[i].len()) {
            break 'merge;
        }
    }
}

/// Applies a [`JoinOrder`] requirement to a finished join output.
fn finalize_join_order(out: &mut Relation, output_order: JoinOrder<'_>) {
    match output_order {
        JoinOrder::Canonical => out.canonicalize(),
        JoinOrder::Natural => {}
        JoinOrder::Columns(variables) => {
            let columns: Vec<usize> = variables.iter().filter_map(|v| out.column(v)).collect();
            out.sort_by_columns(&columns);
        }
    }
}

/// A column-major (PAX-style) copy of a relation's key columns: column `k`'s
/// values for every row sit in one contiguous `&[TermId]` slice. The merge
/// and sort comparators walk these slices instead of striding through whole
/// row-major rows, so a comparison touches only key cache lines and the
/// single-column case degenerates to one flat `u32` compare the compiler can
/// vectorize.
pub(crate) struct KeyChunk {
    buf: Vec<TermId>,
    rows: usize,
    cols: usize,
}

impl KeyChunk {
    /// Gathers `key_cols` of a row-major buffer into column-major storage.
    /// One buffer allocation sized `key_cols.len() * rows`; no per-row
    /// allocation.
    pub(crate) fn gather(data: &[TermId], arity: usize, key_cols: &[usize], rows: usize) -> Self {
        stats::count_buffer_alloc();
        let mut buf: Vec<TermId> = Vec::with_capacity(key_cols.len() * rows);
        if rows > 0 {
            for &col in key_cols {
                buf.extend(data[col..].iter().step_by(arity).copied());
            }
        }
        Self {
            buf,
            rows,
            cols: key_cols.len(),
        }
    }

    /// Key column `k` as one contiguous slice.
    #[inline]
    pub(crate) fn column(&self, k: usize) -> &[TermId] {
        &self.buf[k * self.rows..(k + 1) * self.rows]
    }

    /// Compares two rows of the chunk, touching only the contiguous key
    /// columns (the explicit chunked comparator for multi-column keys).
    #[inline]
    pub(crate) fn cmp_rows(&self, a: usize, b: usize) -> Ordering {
        for k in 0..self.cols {
            let col = self.column(k);
            match col[a].cmp(&col[b]) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        Ordering::Equal
    }

    /// Reorders every column by `permutation` (new position → old position).
    fn permute(&mut self, permutation: &[u32]) {
        stats::count_buffer_alloc();
        let mut permuted: Vec<TermId> = Vec::with_capacity(self.buf.len());
        for k in 0..self.cols {
            let col = self.column(k);
            permuted.extend(permutation.iter().map(|&row| col[row as usize]));
        }
        self.buf = permuted;
    }
}

/// One join input viewed in key-sorted row order, with the key columns
/// gathered into a contiguous column-major [`KeyChunk`] so the merge
/// comparators never touch payload columns.
pub(crate) struct InputView<'r> {
    rel: &'r Relation,
    /// Column of each join attribute in the input's schema.
    key_cols: Vec<usize>,
    /// Column-major copy of the key columns, in key-sorted row order.
    keys: KeyChunk,
    /// Row visit order: `None` when the relation's tracked order has the
    /// join attributes as a prefix (rows are already key-sorted); otherwise
    /// the one-shot column-permuted index sort.
    order: Option<Vec<u32>>,
}

impl<'r> InputView<'r> {
    pub(crate) fn new(rel: &'r Relation, attributes: &[Variable]) -> Self {
        let key_cols: Vec<usize> = attributes
            .iter()
            .map(|a| {
                rel.column(a)
                    .unwrap_or_else(|| panic!("join attribute {a} missing from input"))
            })
            .collect();
        // A relation with at most one row satisfies *every* ordering: empty
        // shuffle buckets (and singleton groups) must not be counted — or
        // paid for — as re-sorts just because their tracked descriptor was
        // claimed for a different column sequence.
        let presorted = rel.len() <= 1 || rel.order().satisfies(&key_cols);
        stats::count_join_input(presorted);
        stats::count_sort(!presorted);
        let mut keys = KeyChunk::gather(rel.data(), rel.arity(), &key_cols, rel.len());
        let order = if presorted {
            None
        } else {
            assert!(rel.len() <= u32::MAX as usize, "relation too large");
            stats::count_buffer_alloc();
            let mut order: Vec<u32> = (0..rel.len() as u32).collect();
            order.sort_unstable_by(|&a, &b| keys.cmp_rows(a as usize, b as usize));
            keys.permute(&order);
            Some(order)
        };
        Self {
            rel,
            key_cols,
            keys,
            order,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.rel.len()
    }

    /// Number of join-key columns.
    pub(crate) fn key_arity(&self) -> usize {
        self.key_cols.len()
    }

    /// The `k`-th key column's value at key-sorted position `pos`, read from
    /// the contiguous chunk.
    #[inline]
    pub(crate) fn key(&self, k: usize, pos: usize) -> TermId {
        self.keys.column(k)[pos]
    }

    /// The row at key-sorted position `pos`.
    pub(crate) fn row(&self, pos: usize) -> &'r [TermId] {
        match &self.order {
            None => self.rel.row(pos),
            Some(order) => self.rel.row(order[pos] as usize),
        }
    }
}

/// Compares the join keys of two key-sorted positions (possibly of different
/// inputs), walking the contiguous column-major key chunks in attribute
/// order — the hot comparator of the n-ary merge.
#[inline]
pub(crate) fn cmp_keys(a: &InputView<'_>, apos: usize, b: &InputView<'_>, bpos: usize) -> Ordering {
    debug_assert_eq!(a.key_cols.len(), b.key_cols.len());
    for k in 0..a.key_cols.len() {
        match a.keys.column(k)[apos].cmp(&b.keys.column(k)[bpos]) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    Ordering::Equal
}

/// Emits the cross product of the aligned key groups `[cursors[i], ends[i])`
/// into `out`, writing every combination into the single reused `scratch`
/// row. Combinations that disagree on a shared non-join attribute are
/// rejected before recursing further. Rows are appended to the raw buffer;
/// the caller re-establishes the output's ordering descriptor afterwards.
#[allow(clippy::too_many_arguments)]
fn emit_groups(
    views: &[InputView<'_>],
    writes: &[Vec<(usize, usize)>],
    checks: &[Vec<(usize, usize)>],
    cursors: &[usize],
    ends: &[usize],
    depth: usize,
    scratch: &mut Vec<TermId>,
    out: &mut Relation,
) {
    if depth == views.len() {
        out.data.extend_from_slice(scratch);
        out.rows += 1;
        return;
    }
    'rows: for pos in cursors[depth]..ends[depth] {
        let row = views[depth].row(pos);
        for &(src, dst) in &checks[depth] {
            if scratch[dst] != row[src] {
                continue 'rows;
            }
        }
        for &(src, dst) in &writes[depth] {
            scratch[dst] = row[src];
        }
        emit_groups(
            views,
            writes,
            checks,
            cursors,
            ends,
            depth + 1,
            scratch,
            out,
        );
    }
}

/// Hash-partitions a relation's rows into `nodes` buckets on the given
/// attributes (the simulated shuffle's routing step), building each bucket's
/// flat buffer directly — zero per-row heap allocations. Routing runs in two
/// passes: the first hashes every row once and counts the per-bucket fill,
/// the second scatters rows into buffers reserved at **exactly** the
/// observed fill — so a skewed key distribution (wide fan-out) never
/// over-reserves, and empty buckets reserve nothing.
///
/// The hash is deterministic (FNV-1a over the key columns), so rows are
/// routed identically on every run and at every thread count. Rows are
/// appended to their bucket in input order, which preserves the relative
/// order of the input — every bucket inherits the input's tracked
/// [`SortOrder`].
///
/// # Panics
///
/// Panics if an attribute is missing from the relation's schema.
pub fn hash_partition(relation: &Relation, attributes: &[Variable], nodes: usize) -> Vec<Relation> {
    let nodes = nodes.max(1);
    let arity = relation.arity();
    let columns: Vec<usize> = attributes
        .iter()
        .map(|a| {
            relation
                .column(a)
                .unwrap_or_else(|| panic!("shuffle attribute {a} missing from input"))
        })
        .collect();
    // Pass 1: hash every row to its node, remembering the route (one u32 per
    // row) and the per-bucket row counts. Row counts are tracked explicitly
    // so zero-arity rows (empty key, empty payload) are routed like any
    // other row instead of vanishing.
    stats::count_buffer_alloc();
    let mut routes: Vec<u32> = Vec::with_capacity(relation.len());
    let mut counts = vec![0usize; nodes];
    for row in relation.rows() {
        let node = (shuffle_hash(row, &columns) % nodes as u64) as usize;
        routes.push(node as u32);
        counts[node] += 1;
    }
    // Pass 2: scatter into buffers reserved at exactly the observed fill.
    let mut buffers: Vec<Vec<TermId>> = counts
        .iter()
        .map(|&rows| {
            stats::count_buffer_alloc();
            Vec::with_capacity(rows * arity)
        })
        .collect();
    for (row, &node) in relation.rows().zip(&routes) {
        buffers[node as usize].extend_from_slice(row);
    }
    buffers
        .into_iter()
        .zip(counts)
        .map(|(data, rows)| {
            let out = Relation {
                schema: relation.schema().to_vec(),
                data,
                rows,
                order: relation.order.clone(),
            };
            debug_assert!(
                sorted_by(out.data(), arity, out.order.columns()),
                "bucket lost the input's order"
            );
            out
        })
        .collect()
}

/// Deterministic shuffle hash (FNV-1a over the key columns), so that the
/// hash-partitioned shuffle routes rows identically on every run and at
/// every thread count.
pub fn shuffle_hash(row: &[TermId], columns: &[usize]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &column in columns {
        hash ^= u64::from(row[column].0);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> Variable {
        Variable::new(name)
    }

    fn t(id: u32) -> TermId {
        TermId(id)
    }

    fn rel(schema: &[&str], rows: &[&[u32]]) -> Relation {
        Relation::new(
            schema.iter().map(|s| v(s)).collect(),
            rows.iter()
                .map(|r| r.iter().map(|&x| t(x)).collect())
                .collect(),
        )
    }

    fn rows_of(relation: &Relation) -> Vec<Vec<TermId>> {
        relation.rows().map(<[TermId]>::to_vec).collect()
    }

    #[test]
    fn basic_accessors() {
        let r = rel(&["a", "b"], &[&[1, 2], &[3, 4]]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.arity(), 2);
        assert_eq!(r.column(&v("b")), Some(1));
        assert_eq!(r.column(&v("z")), None);
        assert_eq!(r.row(0), &[t(1), t(2)]);
        assert_eq!(r.row(1), &[t(3), t(4)]);
        assert_eq!(r.data(), &[t(1), t(2), t(3), t(4)]);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let _ = rel(&["a", "b"], &[&[1]]);
    }

    #[test]
    fn rows_iterator_is_exact_size() {
        let r = rel(&["a"], &[&[1], &[2], &[3]]);
        let mut rows = r.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows.next(), Some(&[t(1)][..]));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows.count(), 2);
    }

    #[test]
    fn unit_relation_has_one_empty_row() {
        let unit = Relation::unit();
        assert_eq!(unit.len(), 1);
        assert_eq!(unit.arity(), 0);
        assert_eq!(unit.rows().next(), Some(&[][..]));
        assert_eq!(unit.clone().distinct().len(), 1);
        assert_eq!(unit.distinct_len(), 1);
    }

    #[test]
    fn from_flat_round_trips() {
        let schema = vec![v("a"), v("b")];
        let r = Relation::from_flat(schema.clone(), vec![t(1), t(2), t(3), t(4)]);
        assert_eq!(r.len(), 2);
        assert!(r.is_canonical());
        let unsorted = Relation::from_flat(schema, vec![t(9), t(9), t(1), t(2)]);
        assert!(!unsorted.is_canonical());
        assert_eq!(unsorted.len(), 2);
    }

    #[test]
    fn sort_order_prefix_reasoning() {
        let order = SortOrder::by([2, 0, 1]);
        assert!(order.satisfies(&[]));
        assert!(order.satisfies(&[2]));
        assert!(order.satisfies(&[2, 0]));
        assert!(order.satisfies(&[2, 0, 1]));
        assert!(!order.satisfies(&[0]));
        assert!(!order.satisfies(&[2, 1]));
        // A column the order already pinned earlier is skipped.
        assert!(order.satisfies(&[2, 2, 0]));
        assert!(order.satisfies(&[2, 0, 2, 1]));
        // Requirements longer than the tracked order fail.
        assert!(!SortOrder::by([2]).satisfies(&[2, 0]));
        // Canonical checks.
        assert!(SortOrder::canonical(3).is_canonical(3));
        assert!(!SortOrder::by([0, 1]).is_canonical(3));
        assert!(!SortOrder::by([1, 0, 2]).is_canonical(3));
        assert!(SortOrder::none().is_none());
        // Shared prefixes.
        assert_eq!(
            SortOrder::by([2, 0, 1]).shared_prefix(&SortOrder::by([2, 0])),
            &[2, 0]
        );
        assert_eq!(
            SortOrder::by([1, 0]).shared_prefix(&SortOrder::by([0, 1])),
            &[] as &[usize]
        );
        // `by` deduplicates.
        assert_eq!(SortOrder::by([1, 1, 0, 1]).columns(), &[1, 0]);
    }

    #[test]
    fn sort_by_columns_elides_satisfied_requirements() {
        let mut r = rel(&["a", "b"], &[&[1, 9], &[2, 5], &[3, 7]]);
        assert!(r.is_canonical());
        stats::reset();
        r.sort_by_columns(&[0]);
        assert_eq!(stats::snapshot().sorts_elided, 1);
        assert_eq!(stats::snapshot().sorts_performed, 0);
        // Sorting by b permutes the rows and retags the order.
        r.sort_by_columns(&[1]);
        assert_eq!(stats::snapshot().sorts_performed, 1);
        assert_eq!(r.order().columns(), &[1]);
        assert!(!r.is_canonical());
        let b_values: Vec<u32> = r.rows().map(|row| row[1].0).collect();
        assert_eq!(b_values, vec![5, 7, 9]);
        // The new order now satisfies a [1]-prefix requirement.
        r.sort_by_columns(&[1]);
        assert_eq!(stats::snapshot().sorts_performed, 1);
        assert_eq!(stats::snapshot().sorts_elided, 2);
    }

    #[test]
    fn sort_by_columns_rescues_accidentally_ordered_rows() {
        // Built unordered (descending pushes), but ascending on column 1.
        let mut r = Relation::empty(vec![v("a"), v("b")]);
        r.push_row(&[t(9), t(1)]);
        r.push_row(&[t(5), t(2)]);
        assert!(r.order().is_none());
        stats::reset();
        r.sort_by_columns(&[1]);
        assert_eq!(stats::snapshot().sorts_elided, 1);
        assert_eq!(stats::snapshot().sorts_performed, 0);
        assert_eq!(r.order().columns(), &[1]);
    }

    #[test]
    fn assume_order_and_unordered_pushes() {
        let mut r = Relation::empty(vec![v("a"), v("b")]);
        // Rows ascending on column 1, not on column 0.
        r.push_row_unordered(&[t(9), t(1)]);
        r.push_row_unordered(&[t(5), t(2)]);
        assert!(r.order().is_none());
        r.assume_order(SortOrder::by([1]));
        assert!(r.order().satisfies(&[1]));
    }

    #[test]
    fn binary_join_on_one_attribute() {
        let left = rel(&["a", "x"], &[&[1, 10], &[2, 20], &[3, 10]]);
        let right = rel(&["x", "b"], &[&[10, 100], &[20, 200], &[30, 300]]);
        let joined = Relation::join(&[&left, &right], &[v("x")]).sorted();
        assert_eq!(joined.schema(), &[v("a"), v("x"), v("b")]);
        assert_eq!(
            rows_of(&joined),
            rows_of(
                &rel(
                    &["a", "x", "b"],
                    &[&[1, 10, 100], &[2, 20, 200], &[3, 10, 100]]
                )
                .sorted()
            )
        );
    }

    #[test]
    fn three_way_star_join() {
        let r1 = rel(&["x", "a"], &[&[1, 11], &[2, 12]]);
        let r2 = rel(&["x", "b"], &[&[1, 21], &[1, 22]]);
        let r3 = rel(&["x", "c"], &[&[1, 31], &[3, 33]]);
        let joined = Relation::join(&[&r1, &r2, &r3], &[v("x")]).sorted();
        // Only x = 1 survives; r2 contributes two rows.
        assert_eq!(joined.len(), 2);
        for row in joined.rows() {
            assert_eq!(row[0], t(1));
        }
    }

    #[test]
    fn join_on_multiple_attributes() {
        let left = rel(&["x", "y", "a"], &[&[1, 2, 10], &[1, 3, 11]]);
        let right = rel(&["x", "y", "b"], &[&[1, 2, 20], &[1, 9, 21]]);
        let joined = Relation::join(&[&left, &right], &[v("x"), v("y")]);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined.row(0), &[t(1), t(2), t(10), t(20)]);
    }

    #[test]
    fn join_checks_shared_non_join_attributes() {
        // Both inputs carry variable `z` but the join is only on `x`; rows
        // that disagree on `z` must not combine.
        let left = rel(&["x", "z"], &[&[1, 5], &[1, 6]]);
        let right = rel(&["x", "z", "b"], &[&[1, 5, 50], &[1, 7, 70]]);
        let joined = Relation::join(&[&left, &right], &[v("x")]);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined.row(0), &[t(1), t(5), t(50)]);
    }

    #[test]
    fn empty_input_produces_empty_join() {
        let left = rel(&["x", "a"], &[]);
        let right = rel(&["x", "b"], &[&[1, 2]]);
        let joined = Relation::join(&[&left, &right], &[v("x")]);
        assert!(joined.is_empty());
    }

    #[test]
    fn single_input_join_is_identity_up_to_order() {
        let r = rel(&["x", "a"], &[&[1, 2], &[3, 4]]);
        let joined = Relation::join(&[&r], &[v("x")]);
        assert_eq!(rows_of(&joined), rows_of(&r));
    }

    #[test]
    fn join_output_is_canonical() {
        let left = rel(&["a", "x"], &[&[9, 10], &[2, 20], &[3, 10]]);
        let right = rel(&["x", "b"], &[&[10, 100], &[20, 200]]);
        let joined = Relation::join(&[&left, &right], &[v("x")]);
        assert!(joined.is_canonical());
        assert!(flat_sorted(joined.data(), joined.arity()));
    }

    #[test]
    fn join_ordered_natural_keeps_key_order() {
        let left = rel(&["a", "x"], &[&[9, 10], &[2, 20], &[3, 10]]);
        let right = rel(&["x", "b"], &[&[10, 100], &[20, 200]]);
        let joined = Relation::join_ordered(&[&left, &right], &[v("x")], JoinOrder::Natural);
        // Output schema [a, x, b]: sorted by the key column x (= column 1),
        // not canonicalized.
        assert_eq!(joined.order().columns(), &[1]);
        assert!(joined.order().satisfies(&[1]));
        let keys: Vec<u32> = joined.rows().map(|row| row[1].0).collect();
        assert_eq!(keys, vec![10, 10, 20]);
        // Same rows as the canonical join, different order.
        let canonical = Relation::join(&[&left, &right], &[v("x")]);
        assert_eq!(joined.sorted(), canonical);
    }

    #[test]
    fn join_ordered_columns_sorts_by_the_requirement() {
        let left = rel(&["a", "x"], &[&[9, 10], &[2, 20], &[3, 10]]);
        let right = rel(&["x", "b"], &[&[10, 100], &[20, 200]]);
        stats::reset();
        let joined =
            Relation::join_ordered(&[&left, &right], &[v("x")], JoinOrder::Columns(&[v("a")]));
        let a_values: Vec<u32> = joined.rows().map(|row| row[0].0).collect();
        assert_eq!(a_values, vec![2, 3, 9]);
        assert!(joined.order().satisfies(&[0]));

        // A requirement the natural key order already satisfies is elided.
        stats::reset();
        let by_key =
            Relation::join_ordered(&[&left, &right], &[v("x")], JoinOrder::Columns(&[v("x")]));
        assert!(by_key.order().satisfies(&[1]));
        let after = stats::snapshot();
        assert_eq!(
            after.sorts_performed, 1,
            "only the left input's key re-sort runs; the output sort is elided"
        );
    }

    #[test]
    fn join_with_no_attributes_is_a_cross_product() {
        let left = rel(&["a"], &[&[1], &[2]]);
        let right = rel(&["b"], &[&[7], &[8], &[9]]);
        let joined = Relation::join(&[&left, &right], &[]);
        assert_eq!(joined.len(), 6);
        assert_eq!(joined.schema(), &[v("a"), v("b")]);
    }

    #[test]
    fn join_uses_the_presorted_fast_path_for_leading_keys() {
        stats::reset();
        // Canonical, key `x` leading in both inputs → no re-sort.
        let left = rel(&["x", "a"], &[&[1, 10], &[2, 20]]);
        let right = rel(&["x", "b"], &[&[1, 5], &[3, 6]]);
        assert!(left.is_canonical() && right.is_canonical());
        let joined = Relation::join(&[&left, &right], &[v("x")]);
        assert_eq!(joined.len(), 1);
        let after = stats::snapshot();
        assert_eq!(after.join_inputs_presorted, 2);
        assert_eq!(after.join_inputs_resorted, 0);

        stats::reset();
        // Key `x` trailing in the left input → one column-permuted sort.
        let trailing = rel(&["a", "x"], &[&[10, 1], &[20, 2]]);
        let joined = Relation::join(&[&trailing, &right], &[v("x")]);
        assert_eq!(joined.len(), 1);
        let after = stats::snapshot();
        assert_eq!(after.join_inputs_presorted, 1);
        assert_eq!(after.join_inputs_resorted, 1);
    }

    #[test]
    fn join_accepts_any_tracked_key_prefix_order() {
        // Key `x` trailing in the schema, but the rows are *tracked* as
        // sorted by x — the fast path must accept them without a re-sort.
        let mut left = Relation::empty(vec![v("a"), v("x")]);
        left.push_row_unordered(&[t(30), t(1)]);
        left.push_row_unordered(&[t(10), t(2)]);
        left.assume_order(SortOrder::by([1]));
        let right = rel(&["x", "b"], &[&[1, 5], &[2, 6]]);
        stats::reset();
        let joined = Relation::join_ordered(&[&left, &right], &[v("x")], JoinOrder::Natural);
        assert_eq!(joined.len(), 2);
        let after = stats::snapshot();
        assert_eq!(after.join_inputs_presorted, 2);
        assert_eq!(after.join_inputs_resorted, 0);
        assert_eq!(after.sorts_performed, 0);
    }

    #[test]
    fn join_handles_duplicate_keys_on_both_sides() {
        let left = rel(&["x", "a"], &[&[1, 10], &[1, 11], &[2, 12]]);
        let right = rel(&["x", "b"], &[&[1, 20], &[1, 21], &[1, 22]]);
        let joined = Relation::join(&[&left, &right], &[v("x")]);
        // 2 left rows with x=1 × 3 right rows with x=1.
        assert_eq!(joined.len(), 6);
    }

    #[test]
    fn hash_partition_routes_every_row_exactly_once() {
        let r = rel(&["x", "a"], &[&[1, 10], &[2, 20], &[3, 30], &[4, 40]]);
        let buckets = hash_partition(&r, &[v("x")], 3);
        assert_eq!(buckets.len(), 3);
        let total: usize = buckets.iter().map(Relation::len).sum();
        assert_eq!(total, r.len());
        let mut recombined: Vec<Vec<TermId>> = buckets.iter().flat_map(rows_of).collect();
        recombined.sort_unstable();
        let mut expected = rows_of(&r);
        expected.sort_unstable();
        assert_eq!(recombined, expected);
        // Same key → same bucket.
        for bucket in &buckets {
            for row in bucket.rows() {
                let node = (shuffle_hash(row, &[0]) % 3) as usize;
                assert_eq!(bucket.schema(), r.schema());
                assert!(
                    std::ptr::eq(&buckets[node], bucket) || buckets[node].is_empty() || {
                        // The row must live in the bucket its hash selects.
                        rows_of(&buckets[node]).contains(&row.to_vec())
                    }
                );
            }
        }
    }

    #[test]
    fn hash_partition_keeps_zero_arity_rows() {
        let buckets = hash_partition(&Relation::unit(), &[], 3);
        assert_eq!(buckets.iter().map(Relation::len).sum::<usize>(), 1);
        for bucket in &buckets {
            assert_eq!(bucket.arity(), 0);
        }
    }

    #[test]
    fn hash_partition_preserves_sortedness_per_bucket() {
        let r = rel(&["x"], &[&[1], &[2], &[3], &[4], &[5], &[6]]);
        assert!(r.is_canonical());
        for bucket in hash_partition(&r, &[v("x")], 4) {
            assert!(bucket.is_canonical());
        }
    }

    #[test]
    fn hash_partition_buckets_inherit_partial_orders() {
        // Tracked order [1] (sorted by x in trailing position).
        let mut r = Relation::empty(vec![v("a"), v("x")]);
        for i in 0..16u32 {
            r.push_row_unordered(&[t(100 - i), t(i)]);
        }
        r.assume_order(SortOrder::by([1]));
        for bucket in hash_partition(&r, &[v("x")], 4) {
            assert_eq!(bucket.order().columns(), &[1]);
        }
    }

    #[test]
    fn merge_ordered_interleaves_by_the_shared_order() {
        // Every part is sorted by x only (column 0), not canonically.
        let part = |rows: &[[u32; 2]]| {
            let mut r = Relation::empty(vec![v("x"), v("p")]);
            for row in rows {
                r.push_row_unordered(&[t(row[0]), t(row[1])]);
            }
            r.assume_order(SortOrder::by([0]));
            r
        };
        let a = part(&[[1, 9], [4, 2]]);
        let b = part(&[[2, 1], [3, 8]]);
        let c = part(&[[4, 1]]);
        let merged = Relation::merge_ordered(vec![a, b, c]);
        assert_eq!(merged.order().columns(), &[0]);
        let xs: Vec<u32> = merged.rows().map(|row| row[0].0).collect();
        assert_eq!(xs, vec![1, 2, 3, 4, 4]);
        // Ties on the shared order go to the earlier input.
        assert_eq!(merged.row(3), &[t(4), t(2)]);
        assert_eq!(merged.row(4), &[t(4), t(1)]);
    }

    #[test]
    fn merge_ordered_concatenates_unrelated_orders() {
        let a = rel(&["x"], &[&[3], &[1]]); // unordered
        let b = rel(&["x"], &[&[2], &[4]]);
        assert!(a.order().is_none());
        let merged = Relation::merge_ordered(vec![a, b]);
        assert!(merged.order().is_none());
        let xs: Vec<u32> = merged.rows().map(|row| row[0].0).collect();
        assert_eq!(xs, vec![3, 1, 2, 4]);
    }

    /// Builds `k` parts with deliberately *heterogeneous* tracked orders —
    /// the case where a naive left-fold of `union_in_place` diverges from
    /// the balanced pairing tree, because each pairing's shared prefix
    /// depends on which inputs meet.
    fn mixed_order_parts(k: usize) -> Vec<Relation> {
        (0..k)
            .map(|i| {
                let mut r = Relation::empty(vec![v("x"), v("a")]);
                for row in 0..4u32 {
                    r.push_row_unordered(&[t((row * 3 + i as u32) % 11), t(i as u32 * 10 + row)]);
                }
                match i % 3 {
                    0 => r.sort_by_columns(&[0, 1]),
                    1 => r.sort_by_columns(&[0]),
                    _ => {} // left unordered
                }
                r
            })
            .collect()
    }

    /// The incremental `MergeStack` must reproduce `merge_ordered` bit for
    /// bit — same rows, same row order, same tracked order — at every input
    /// count, including the incomplete-suffix shapes (k not a power of two).
    #[test]
    fn merge_stack_matches_merge_ordered() {
        for k in 1..=13 {
            let parts = mixed_order_parts(k);
            let expected = Relation::merge_ordered(parts.clone());
            let mut stack = MergeStack::new();
            for part in parts {
                stack.push(part);
            }
            let merged = stack.finish().expect("pushed at least one part");
            assert_eq!(merged.order(), expected.order(), "k={k}");
            assert_eq!(
                merged.rows().collect::<Vec<_>>(),
                expected.rows().collect::<Vec<_>>(),
                "k={k}"
            );
        }
    }

    /// The stack holds one partial merge per set bit of the pushed count —
    /// logarithmic, which is the whole point of streaming the shuffle.
    #[test]
    fn merge_stack_holds_logarithmically_many_partials() {
        let mut stack = MergeStack::new();
        for (i, part) in mixed_order_parts(100).into_iter().enumerate() {
            stack.push(part);
            let pushed = i + 1;
            assert_eq!(stack.stack.len(), pushed.count_ones() as usize);
            assert!(stack.held_bytes() > 0);
        }
    }

    #[test]
    fn merge_stack_empty_finish_is_none() {
        assert!(MergeStack::new().finish().is_none());
        assert_eq!(MergeStack::new().held_bytes(), 0);
    }

    #[test]
    fn project_and_distinct() {
        let r = rel(&["a", "b", "c"], &[&[1, 2, 3], &[1, 2, 4], &[5, 6, 7]]);
        let projected = r.project(&[v("a"), v("b")]);
        assert_eq!(projected.schema(), &[v("a"), v("b")]);
        assert_eq!(projected.len(), 3);
        assert_eq!(projected.distinct().len(), 2);
        // Projecting onto an absent variable silently drops it.
        let narrowed = r.project(&[v("a"), v("z")]);
        assert_eq!(narrowed.schema(), &[v("a")]);
    }

    #[test]
    fn project_inherits_the_surviving_order_prefix() {
        let r = rel(&["a", "b", "c"], &[&[1, 2, 3], &[1, 2, 4], &[5, 6, 7]]);
        assert!(r.is_canonical());
        // Keeping a leading prefix keeps canonical order.
        let leading = r.project(&[v("a"), v("b")]);
        assert!(leading.is_canonical());
        // Reordering the kept columns yields a full (but non-canonical)
        // permutation order — distinct_len can still count in place.
        let reordered = r.project(&[v("b"), v("a")]);
        assert_eq!(reordered.order().columns(), &[1, 0]);
        assert!(!reordered.is_canonical());
        assert_eq!(reordered.distinct_len(), 2);
        // Dropping the first order column severs the inherited order.
        let severed = r.project(&[v("b"), v("c")]);
        assert!(severed.order().is_none());
    }

    #[test]
    fn project_to_zero_columns_keeps_the_row_count() {
        let r = rel(&["a"], &[&[1], &[2]]);
        let projected = r.project(&[v("z")]);
        assert_eq!(projected.arity(), 0);
        assert_eq!(projected.len(), 2);
        assert_eq!(projected.distinct().len(), 1);
    }

    #[test]
    fn union_in_place_appends_rows() {
        let mut a = rel(&["x"], &[&[1]]);
        let b = rel(&["x"], &[&[2], &[3]]);
        a.union_in_place(b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn union_of_canonical_inputs_merges_in_order() {
        let mut a = rel(&["x"], &[&[1], &[4], &[9]]);
        let b = rel(&["x"], &[&[2], &[4], &[7]]);
        assert!(a.is_canonical() && b.is_canonical());
        a.union_in_place(b);
        assert!(a.is_canonical());
        let values: Vec<u32> = a.rows().map(|r| r[0].0).collect();
        assert_eq!(values, vec![1, 2, 4, 4, 7, 9]);
    }

    #[test]
    fn union_merges_by_the_shared_order_prefix() {
        // Both sides sorted by the trailing column only.
        let mut a = Relation::empty(vec![v("a"), v("x")]);
        a.push_row_unordered(&[t(9), t(1)]);
        a.push_row_unordered(&[t(1), t(5)]);
        a.assume_order(SortOrder::by([1]));
        let mut b = Relation::empty(vec![v("a"), v("x")]);
        b.push_row_unordered(&[t(7), t(2)]);
        b.push_row_unordered(&[t(2), t(5)]);
        b.assume_order(SortOrder::by([1]));
        a.union_in_place(b);
        assert_eq!(a.order().columns(), &[1]);
        let xs: Vec<u32> = a.rows().map(|row| row[1].0).collect();
        assert_eq!(xs, vec![1, 2, 5, 5]);
        // The tie on x = 5 keeps `self`'s row first.
        assert_eq!(a.row(2), &[t(1), t(5)]);
        assert_eq!(a.row(3), &[t(2), t(5)]);
    }

    #[test]
    fn union_with_non_canonical_input_concatenates() {
        let mut a = rel(&["x"], &[&[1], &[2]]);
        let b = rel(&["x"], &[&[5], &[3]]);
        assert!(!b.is_canonical());
        a.union_in_place(b);
        assert!(!a.is_canonical());
        assert_eq!(a.len(), 4);
        assert_eq!(a.distinct_len(), 4);
    }

    #[test]
    fn push_row_tracks_canonical_order() {
        let mut r = Relation::empty(vec![v("x")]);
        assert!(r.is_canonical());
        r.push_row(&[t(1)]);
        r.push_row(&[t(2)]);
        assert!(r.is_canonical());
        r.push_row(&[t(0)]);
        assert!(!r.is_canonical());
        r.canonicalize();
        assert!(r.is_canonical());
        assert_eq!(r.row(0), &[t(0)]);
    }

    #[test]
    fn distinct_len_matches_distinct() {
        let canonical = rel(&["x"], &[&[1], &[1], &[2], &[3], &[3]]);
        assert!(canonical.is_canonical());
        assert_eq!(canonical.distinct_len(), 3);
        let scrambled = rel(&["x"], &[&[3], &[1], &[2], &[1], &[3]]);
        assert!(!scrambled.is_canonical());
        assert_eq!(scrambled.distinct_len(), 3);
        assert_eq!(scrambled.distinct().len(), 3);
    }

    #[test]
    fn equality_ignores_the_order_descriptor() {
        let sorted = rel(&["x"], &[&[1], &[2]]);
        let mut pushed = Relation::empty(vec![v("x")]);
        pushed.push_row_unordered(&[t(1)]);
        pushed.push_row_unordered(&[t(2)]);
        assert!(pushed.order().is_none());
        assert_eq!(sorted, pushed);
    }

    #[test]
    #[should_panic(expected = "schema mismatch")]
    fn union_with_different_schema_panics() {
        let mut a = rel(&["x"], &[&[1]]);
        let b = rel(&["y"], &[&[2]]);
        a.union_in_place(b);
    }

    #[test]
    fn join_reports_zero_row_allocations() {
        let left = rel(&["x", "a"], &[&[1, 10], &[2, 20], &[3, 30]]);
        let right = rel(&["b", "x"], &[&[5, 1], &[6, 2], &[7, 9]]);
        stats::reset();
        let joined = Relation::join(&[&left, &right], &[v("x")]);
        let buckets = hash_partition(&joined, &[v("x")], 4);
        let after = stats::snapshot();
        assert_eq!(after.row_allocs, 0, "join/shuffle allocated per-row");
        assert_eq!(after.join_rows_out, joined.len() as u64);
        assert!(after.buffer_allocs > 0);
        assert_eq!(buckets.len(), 4);
    }
}
