//! In-memory relations (variable bindings) stored as flat columnar buffers,
//! plus the n-ary sort-merge join.
//!
//! A [`Relation`] keeps all of its rows in **one** row-major `Vec<TermId>`
//! buffer (`arity` consecutive ids per row) instead of a `Vec` per row. Rows
//! are handed out as borrowed `&[TermId]` slices, so scanning, shuffling and
//! joining perform no per-row heap allocation — the [`stats`] counters make
//! that measurable.
//!
//! Relations track whether their rows are in *canonical* (lexicographically
//! sorted) order. Canonical form is what makes the parallel runtime's output
//! bit-identical to sequential execution: operators that merge per-node or
//! per-partition results canonicalize, and downstream consumers
//! ([`Relation::sorted`], [`Relation::distinct`], [`Relation::union_in_place`])
//! skip the redundant re-sort when their inputs are already canonical. The
//! n-ary [`Relation::join`] cashes the same invariant in: inputs whose join
//! attributes are the leading columns of an already-canonical relation are
//! merged in place, and every other input pays one column-permuted index
//! sort — never a hash table, never a key `Vec` per row.

use cliquesquare_rdf::TermId;
use cliquesquare_sparql::Variable;
use std::cmp::Ordering;

/// Thread-local allocation and throughput counters for the relation layer.
///
/// The counters exist so the flat-buffer claim is *measured*, not asserted:
/// `row_allocs` counts heap allocations made for an individual row (zero on
/// every engine path since the columnar refactor), `buffer_allocs` counts
/// whole-buffer allocations (bounded by the operator count, not the row
/// count), and the join counters record output volume and which of the two
/// sort-merge paths each input took.
pub mod stats {
    use std::cell::Cell;

    /// A snapshot of the thread-local relation counters.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    pub struct RelationStats {
        /// Heap allocations sized to a single row (must stay 0 on the join
        /// and shuffle paths).
        pub row_allocs: u64,
        /// Whole-buffer allocations (one per operator output / sort / merge,
        /// independent of the row count).
        pub buffer_allocs: u64,
        /// Rows produced by [`super::Relation::join`].
        pub join_rows_out: u64,
        /// Join inputs consumed through the sorted-leading-columns fast path
        /// (no re-sort needed).
        pub join_inputs_presorted: u64,
        /// Join inputs that paid the one-shot column-permuted index sort.
        pub join_inputs_resorted: u64,
    }

    thread_local! {
        static STATS: Cell<RelationStats> = const { Cell::new(RelationStats {
            row_allocs: 0,
            buffer_allocs: 0,
            join_rows_out: 0,
            join_inputs_presorted: 0,
            join_inputs_resorted: 0,
        }) };
    }

    /// Resets this thread's counters to zero.
    pub fn reset() {
        STATS.with(|s| s.set(RelationStats::default()));
    }

    /// Reads this thread's counters.
    pub fn snapshot() -> RelationStats {
        STATS.with(|s| s.get())
    }

    fn update(f: impl FnOnce(&mut RelationStats)) {
        STATS.with(|s| {
            let mut v = s.get();
            f(&mut v);
            s.set(v);
        });
    }

    pub(crate) fn count_row_allocs(n: u64) {
        update(|s| s.row_allocs += n);
    }

    pub(crate) fn count_buffer_alloc() {
        update(|s| s.buffer_allocs += 1);
    }

    pub(crate) fn count_join_rows(n: u64) {
        update(|s| s.join_rows_out += n);
    }

    pub(crate) fn count_join_input(presorted: bool) {
        update(|s| {
            if presorted {
                s.join_inputs_presorted += 1;
            } else {
                s.join_inputs_resorted += 1;
            }
        });
    }
}

/// A relation over query variables: a schema plus dictionary-encoded rows in
/// one flat row-major buffer.
///
/// This is the tuple format flowing between simulated physical operators.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Vec<Variable>,
    /// Row-major storage: row `i` occupies `data[i * arity .. (i + 1) * arity]`.
    data: Vec<TermId>,
    /// Number of rows, tracked explicitly because the arity can be zero
    /// (a relation over no variables still distinguishes 0 rows from 1).
    rows: usize,
    /// `true` when the rows are known to be lexicographically sorted. Kept
    /// up to date cheaply on `push_row`/`union_in_place`; `false` is always
    /// a safe value (it only costs a re-sort later).
    canonical: bool,
}

/// Equality compares schema and rows; the `canonical` bookkeeping flag is
/// derived state and must not influence it.
impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.rows == other.rows && self.data == other.data
    }
}

impl Eq for Relation {}

/// One linear pass checking that a flat buffer's rows are sorted.
fn flat_sorted(data: &[TermId], arity: usize) -> bool {
    if arity == 0 {
        return true;
    }
    let mut chunks = data.chunks_exact(arity);
    let Some(mut previous) = chunks.next() else {
        return true;
    };
    for row in chunks {
        if previous > row {
            return false;
        }
        previous = row;
    }
    true
}

/// Borrowed iterator over a relation's rows as `&[TermId]` slices.
#[derive(Debug, Clone)]
pub struct Rows<'a> {
    data: &'a [TermId],
    arity: usize,
    remaining: usize,
    offset: usize,
}

impl<'a> Iterator for Rows<'a> {
    type Item = &'a [TermId];

    fn next(&mut self) -> Option<&'a [TermId]> {
        if self.remaining == 0 {
            return None;
        }
        let row = &self.data[self.offset..self.offset + self.arity];
        self.offset += self.arity;
        self.remaining -= 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for Rows<'_> {}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn empty(schema: Vec<Variable>) -> Self {
        Self {
            schema,
            data: Vec::new(),
            rows: 0,
            canonical: true,
        }
    }

    /// The relation with no variables and exactly one (empty) row — the
    /// identity for binding extension in the reference evaluator.
    pub fn unit() -> Self {
        Self {
            schema: Vec::new(),
            data: Vec::new(),
            rows: 1,
            canonical: true,
        }
    }

    /// Creates a relation from a schema and materialized rows.
    ///
    /// This is a convenience for tests and small fixtures: it flattens the
    /// per-row `Vec`s into the columnar buffer (and counts them as row
    /// allocations in [`stats`]). Hot paths build relations with
    /// [`Relation::push_row`] or [`Relation::from_flat`] instead.
    ///
    /// # Panics
    ///
    /// Panics if any row's arity differs from the schema's.
    pub fn new(schema: Vec<Variable>, rows: Vec<Vec<TermId>>) -> Self {
        stats::count_row_allocs(rows.len() as u64);
        let mut relation = Self::empty(schema);
        if let Some(first) = rows.first() {
            stats::count_buffer_alloc();
            relation.data.reserve(first.len() * rows.len());
        }
        for row in &rows {
            relation.push_row(row);
        }
        relation
    }

    /// Creates a relation directly from a flat row-major buffer.
    ///
    /// The canonical flag is computed with one linear pass so downstream
    /// consumers can still skip redundant sorts.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length is not a multiple of the schema arity
    /// (a zero-arity schema requires an empty buffer).
    pub fn from_flat(schema: Vec<Variable>, data: Vec<TermId>) -> Self {
        let arity = schema.len();
        let rows = if arity == 0 {
            assert!(data.is_empty(), "flat buffer for a zero-arity schema");
            0
        } else {
            assert_eq!(
                data.len() % arity,
                0,
                "flat buffer length not a multiple of arity"
            );
            data.len() / arity
        };
        let canonical = flat_sorted(&data, arity);
        Self {
            schema,
            data,
            rows,
            canonical,
        }
    }

    /// The relation's schema (variable order of each row).
    pub fn schema(&self) -> &[Variable] {
        &self.schema
    }

    /// Number of columns per row.
    pub fn arity(&self) -> usize {
        self.schema.len()
    }

    /// The flat row-major buffer backing the relation.
    pub fn data(&self) -> &[TermId] {
        &self.data
    }

    /// Row `index` as a borrowed slice.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn row(&self, index: usize) -> &[TermId] {
        assert!(index < self.rows, "row index out of bounds");
        let arity = self.schema.len();
        &self.data[index * arity..(index + 1) * arity]
    }

    /// Iterates over the rows as borrowed `&[TermId]` slices (no per-row
    /// allocation).
    pub fn rows(&self) -> Rows<'_> {
        Rows {
            data: &self.data,
            arity: self.schema.len(),
            remaining: self.rows,
            offset: 0,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Returns `true` if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Returns `true` if the rows are known to be in canonical (sorted)
    /// order.
    pub fn is_canonical(&self) -> bool {
        self.canonical
    }

    /// Appends a row by copying it into the flat buffer, keeping the
    /// canonical flag accurate: appending a row that is `>=` the current
    /// last row preserves sortedness.
    ///
    /// # Panics
    ///
    /// Panics if the row arity differs from the schema's.
    pub fn push_row(&mut self, row: &[TermId]) {
        let arity = self.schema.len();
        assert_eq!(row.len(), arity, "row arity mismatch");
        if self.canonical && self.rows > 0 {
            let last = &self.data[(self.rows - 1) * arity..];
            if last > row {
                self.canonical = false;
            }
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Index of `variable` in the schema.
    pub fn column(&self, variable: &Variable) -> Option<usize> {
        self.schema.iter().position(|v| v == variable)
    }

    /// Sorts the rows into canonical order (no-op when already canonical;
    /// one verification pass rescues almost-sorted buffers from the sort).
    pub fn canonicalize(&mut self) {
        let arity = self.schema.len();
        if !self.canonical {
            if flat_sorted(&self.data, arity) {
                self.canonical = true;
            } else {
                // Index sort + one permuted copy: two buffer allocations,
                // zero per-row allocations.
                assert!(self.rows <= u32::MAX as usize, "relation too large");
                stats::count_buffer_alloc();
                let mut order: Vec<u32> = (0..self.rows as u32).collect();
                order.sort_unstable_by(|&a, &b| self.row(a as usize).cmp(self.row(b as usize)));
                stats::count_buffer_alloc();
                let mut sorted: Vec<TermId> = Vec::with_capacity(self.data.len());
                for &i in &order {
                    sorted.extend_from_slice(self.row(i as usize));
                }
                self.data = sorted;
                self.canonical = true;
            }
        }
        debug_assert!(
            flat_sorted(&self.data, arity),
            "canonical relation not sorted"
        );
    }

    /// Combines another relation with the *same schema* into this one.
    ///
    /// When both sides are canonical the flat buffers are merged (linear
    /// time) and the result stays canonical; otherwise the buffers are
    /// concatenated and the result is marked non-canonical.
    ///
    /// # Panics
    ///
    /// Panics if the schemas differ.
    pub fn union_in_place(&mut self, other: Relation) {
        assert_eq!(self.schema, other.schema, "schema mismatch in union");
        if self.rows == 0 {
            self.data = other.data;
            self.rows = other.rows;
            self.canonical = other.canonical;
            return;
        }
        if other.rows == 0 {
            return;
        }
        let arity = self.schema.len();
        if self.canonical && other.canonical {
            if arity == 0 {
                self.rows += other.rows;
                return;
            }
            let left = std::mem::take(&mut self.data);
            let right = other.data;
            stats::count_buffer_alloc();
            let mut merged: Vec<TermId> = Vec::with_capacity(left.len() + right.len());
            let (mut i, mut j) = (0usize, 0usize);
            while i < left.len() && j < right.len() {
                if left[i..i + arity] <= right[j..j + arity] {
                    merged.extend_from_slice(&left[i..i + arity]);
                    i += arity;
                } else {
                    merged.extend_from_slice(&right[j..j + arity]);
                    j += arity;
                }
            }
            merged.extend_from_slice(&left[i..]);
            merged.extend_from_slice(&right[j..]);
            debug_assert!(
                flat_sorted(&merged, arity),
                "merge of canonical inputs not canonical"
            );
            self.data = merged;
            self.rows += other.rows;
        } else {
            self.data.extend_from_slice(&other.data);
            self.rows += other.rows;
            self.canonical = false;
        }
    }

    /// Appends another relation's rows (same schema) in concatenation
    /// order, without the sorted merge of [`Relation::union_in_place`].
    /// The canonical flag stays exact: the result is canonical only when
    /// both inputs are and the boundary rows are ordered.
    ///
    /// # Panics
    ///
    /// Panics if the schemas differ.
    pub fn concat(&mut self, other: Relation) {
        assert_eq!(self.schema, other.schema, "schema mismatch in concat");
        if other.rows == 0 {
            return;
        }
        if self.rows == 0 {
            self.data = other.data;
            self.rows = other.rows;
            self.canonical = other.canonical;
            return;
        }
        let arity = self.schema.len();
        self.canonical = self.canonical
            && other.canonical
            && (arity == 0 || self.data[(self.rows - 1) * arity..] <= other.data[..arity]);
        self.data.extend_from_slice(&other.data);
        self.rows += other.rows;
    }

    /// Projects the relation onto `variables` (dropping duplicates of rows is
    /// *not* performed: BGP semantics keep multiplicities).
    pub fn project(&self, variables: &[Variable]) -> Relation {
        let columns: Vec<usize> = variables.iter().filter_map(|v| self.column(v)).collect();
        let kept: Vec<Variable> = variables
            .iter()
            .filter(|v| self.column(v).is_some())
            .cloned()
            .collect();
        let arity = kept.len();
        stats::count_buffer_alloc();
        let mut data: Vec<TermId> = Vec::with_capacity(arity * self.rows);
        // Projection drops / reorders columns, so sortedness of the input
        // does not carry over in general; track it while emitting so that
        // downstream `distinct` calls can skip their sort.
        let mut canonical = true;
        for (index, row) in self.rows().enumerate() {
            for &c in &columns {
                data.push(row[c]);
            }
            if canonical && index > 0 {
                let here = (index) * arity;
                if data[here - arity..here] > data[here..] {
                    canonical = false;
                }
            }
        }
        Relation {
            schema: kept,
            data,
            rows: self.rows,
            canonical,
        }
    }

    /// Sorts rows lexicographically (used to compare results in tests).
    /// Already-canonical relations are returned unchanged.
    pub fn sorted(mut self) -> Relation {
        self.canonicalize();
        self
    }

    /// Deduplicates rows in place (after sorting, skipped when already
    /// canonical). BGP evaluation is set semantics in the paper's
    /// formalization, so final results are compared deduplicated.
    pub fn distinct(mut self) -> Relation {
        self.canonicalize();
        let arity = self.schema.len();
        if arity == 0 {
            self.rows = self.rows.min(1);
            return self;
        }
        if self.rows <= 1 {
            return self;
        }
        let mut write = 1usize;
        for read in 1..self.rows {
            let duplicate = self.data[read * arity..(read + 1) * arity]
                == self.data[(write - 1) * arity..write * arity];
            if !duplicate {
                if read != write {
                    self.data
                        .copy_within(read * arity..(read + 1) * arity, write * arity);
                }
                write += 1;
            }
        }
        self.data.truncate(write * arity);
        self.rows = write;
        self
    }

    /// Number of distinct rows, without consuming or cloning the relation
    /// when it is already canonical.
    pub fn distinct_len(&self) -> usize {
        let arity = self.schema.len();
        if arity == 0 {
            return self.rows.min(1);
        }
        if self.canonical {
            debug_assert!(
                flat_sorted(&self.data, arity),
                "canonical relation not sorted"
            );
            let duplicates = (1..self.rows)
                .filter(|&i| {
                    self.data[(i - 1) * arity..i * arity] == self.data[i * arity..(i + 1) * arity]
                })
                .count();
            self.rows - duplicates
        } else {
            self.clone().distinct().len()
        }
    }

    /// N-ary **sort-merge** join of `inputs` on the shared `attributes`.
    ///
    /// The output schema is the union of the input schemas in input order
    /// (join attributes appear once). This mirrors the logical `J_A`
    /// operator: every input must contain every join attribute.
    ///
    /// Each input is walked in key order: an already-canonical input whose
    /// join attributes are its leading columns (in attribute order) is
    /// consumed as-is, and any other input pays one column-permuted index
    /// sort — no hash table and no per-row key allocation on either path.
    /// Matching key groups are combined with a cross product that writes
    /// into one reused scratch row, rejecting combinations that disagree on
    /// shared non-join attributes. The output is canonicalized (sorted), so
    /// join results are deterministic and bit-identical at any thread count.
    pub fn join(inputs: &[&Relation], attributes: &[Variable]) -> Relation {
        assert!(!inputs.is_empty(), "join needs at least one input");
        // Output schema: union of schemas, first occurrence wins.
        let mut schema: Vec<Variable> = Vec::new();
        for rel in inputs {
            for v in rel.schema() {
                if !schema.contains(v) {
                    schema.push(v.clone());
                }
            }
        }
        if inputs.len() == 1 {
            // Single input: the join is the identity (canonicalized).
            stats::count_buffer_alloc();
            let mut out = Relation {
                schema,
                data: inputs[0].data.clone(),
                rows: inputs[0].rows,
                canonical: inputs[0].canonical,
            };
            out.canonicalize();
            stats::count_join_rows(out.rows as u64);
            return out;
        }

        let n = inputs.len();
        // Per input: key columns and the row visit order that makes the
        // rows key-sorted.
        let views: Vec<InputView<'_>> = inputs
            .iter()
            .map(|rel| InputView::new(rel, attributes))
            .collect();

        let mut out = Relation::empty(schema);
        if views.iter().any(|view| view.len() == 0) {
            stats::count_join_rows(0);
            return out;
        }

        // Output column mapping: `writes[i]` are the columns input `i` is
        // the first to provide; `checks[i]` are columns some earlier input
        // already provided that are *not* join attributes (join attributes
        // are equal by construction of the merge). Both are column-index
        // pairs `(src, dst)`.
        let mut writes: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        let mut checks: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        let mut provided = vec![false; out.schema.len()];
        for (i, rel) in inputs.iter().enumerate() {
            for (src, v) in rel.schema().iter().enumerate() {
                let dst = out
                    .schema
                    .iter()
                    .position(|s| s == v)
                    .expect("schema union");
                if !provided[dst] {
                    provided[dst] = true;
                    writes[i].push((src, dst));
                } else if !attributes.contains(v) {
                    checks[i].push((src, dst));
                }
            }
        }

        stats::count_buffer_alloc();
        let mut scratch: Vec<TermId> = vec![TermId(0); out.schema.len()];
        let mut cursors = vec![0usize; n];
        let mut ends = vec![0usize; n];
        // The n-ary merge: repeatedly align all cursors on a common key,
        // then emit the cross product of the aligned key groups.
        let mut max_input = 0usize;
        'merge: loop {
            // Align every input's current key with the largest current key.
            'align: loop {
                let mut advanced_max = false;
                for i in 0..n {
                    if i == max_input {
                        continue;
                    }
                    loop {
                        if cursors[i] == views[i].len() {
                            break 'merge;
                        }
                        match cmp_keys(&views[i], cursors[i], &views[max_input], cursors[max_input])
                        {
                            Ordering::Less => cursors[i] += 1,
                            Ordering::Equal => break,
                            Ordering::Greater => {
                                max_input = i;
                                advanced_max = true;
                                break;
                            }
                        }
                    }
                    if advanced_max {
                        continue 'align;
                    }
                }
                break 'align;
            }
            // All inputs agree on the key: delimit each input's key group.
            for i in 0..n {
                let mut end = cursors[i] + 1;
                while end < views[i].len()
                    && cmp_keys(&views[i], end, &views[i], cursors[i]) == Ordering::Equal
                {
                    end += 1;
                }
                ends[i] = end;
            }
            emit_groups(
                &views,
                &writes,
                &checks,
                &cursors,
                &ends,
                0,
                &mut scratch,
                &mut out,
            );
            cursors.copy_from_slice(&ends);
            if (0..n).any(|i| cursors[i] == views[i].len()) {
                break 'merge;
            }
        }
        out.canonicalize();
        stats::count_join_rows(out.rows as u64);
        out
    }
}

/// One join input viewed in key-sorted row order.
struct InputView<'r> {
    rel: &'r Relation,
    /// Column of each join attribute in the input's schema.
    key_cols: Vec<usize>,
    /// Row visit order: `None` when the relation is canonical and the join
    /// attributes are its leading columns (rows are already key-sorted);
    /// otherwise the one-shot column-permuted index sort.
    order: Option<Vec<u32>>,
}

impl<'r> InputView<'r> {
    fn new(rel: &'r Relation, attributes: &[Variable]) -> Self {
        let key_cols: Vec<usize> = attributes
            .iter()
            .map(|a| {
                rel.column(a)
                    .unwrap_or_else(|| panic!("join attribute {a} missing from input"))
            })
            .collect();
        let presorted = rel.is_canonical()
            && key_cols
                .iter()
                .enumerate()
                .all(|(position, &column)| column == position);
        stats::count_join_input(presorted);
        let order = if presorted {
            None
        } else {
            assert!(rel.len() <= u32::MAX as usize, "relation too large");
            stats::count_buffer_alloc();
            let mut order: Vec<u32> = (0..rel.len() as u32).collect();
            order.sort_unstable_by(|&a, &b| {
                let ra = rel.row(a as usize);
                let rb = rel.row(b as usize);
                key_cols
                    .iter()
                    .map(|&c| ra[c])
                    .cmp(key_cols.iter().map(|&c| rb[c]))
            });
            Some(order)
        };
        Self {
            rel,
            key_cols,
            order,
        }
    }

    fn len(&self) -> usize {
        self.rel.len()
    }

    /// The row at key-sorted position `pos`.
    fn row(&self, pos: usize) -> &[TermId] {
        match &self.order {
            None => self.rel.row(pos),
            Some(order) => self.rel.row(order[pos] as usize),
        }
    }
}

/// Compares the join keys of two key-sorted positions (possibly of different
/// inputs), column by column in attribute order.
fn cmp_keys(a: &InputView<'_>, apos: usize, b: &InputView<'_>, bpos: usize) -> Ordering {
    let ra = a.row(apos);
    let rb = b.row(bpos);
    for (&ca, &cb) in a.key_cols.iter().zip(&b.key_cols) {
        match ra[ca].cmp(&rb[cb]) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    Ordering::Equal
}

/// Emits the cross product of the aligned key groups `[cursors[i], ends[i])`
/// into `out`, writing every combination into the single reused `scratch`
/// row. Combinations that disagree on a shared non-join attribute are
/// rejected before recursing further.
#[allow(clippy::too_many_arguments)]
fn emit_groups(
    views: &[InputView<'_>],
    writes: &[Vec<(usize, usize)>],
    checks: &[Vec<(usize, usize)>],
    cursors: &[usize],
    ends: &[usize],
    depth: usize,
    scratch: &mut Vec<TermId>,
    out: &mut Relation,
) {
    if depth == views.len() {
        out.data.extend_from_slice(scratch);
        out.rows += 1;
        out.canonical = false;
        return;
    }
    'rows: for pos in cursors[depth]..ends[depth] {
        let row = views[depth].row(pos);
        for &(src, dst) in &checks[depth] {
            if scratch[dst] != row[src] {
                continue 'rows;
            }
        }
        for &(src, dst) in &writes[depth] {
            scratch[dst] = row[src];
        }
        emit_groups(
            views,
            writes,
            checks,
            cursors,
            ends,
            depth + 1,
            scratch,
            out,
        );
    }
}

/// Hash-partitions a relation's rows into `nodes` buckets on the given
/// attributes (the simulated shuffle's routing step), building each bucket's
/// flat buffer directly — zero per-row heap allocations.
///
/// The hash is deterministic (FNV-1a over the key columns), so rows are
/// routed identically on every run and at every thread count. Rows are
/// appended to their bucket in input order, which preserves the relative
/// order (and thus sortedness) of any sorted input.
///
/// # Panics
///
/// Panics if an attribute is missing from the relation's schema.
pub fn hash_partition(relation: &Relation, attributes: &[Variable], nodes: usize) -> Vec<Relation> {
    let nodes = nodes.max(1);
    let columns: Vec<usize> = attributes
        .iter()
        .map(|a| {
            relation
                .column(a)
                .unwrap_or_else(|| panic!("shuffle attribute {a} missing from input"))
        })
        .collect();
    let mut buffers: Vec<Vec<TermId>> = (0..nodes).map(|_| Vec::new()).collect();
    // Row counts are tracked explicitly so zero-arity rows (empty key, empty
    // payload) are routed like any other row instead of vanishing.
    let mut counts = vec![0usize; nodes];
    for row in relation.rows() {
        let node = (shuffle_hash(row, &columns) % nodes as u64) as usize;
        buffers[node].extend_from_slice(row);
        counts[node] += 1;
    }
    buffers
        .into_iter()
        .zip(counts)
        .map(|(data, rows)| {
            stats::count_buffer_alloc();
            let canonical = flat_sorted(&data, relation.arity());
            Relation {
                schema: relation.schema().to_vec(),
                data,
                rows,
                canonical,
            }
        })
        .collect()
}

/// Deterministic shuffle hash (FNV-1a over the key columns), so that the
/// hash-partitioned shuffle routes rows identically on every run and at
/// every thread count.
pub fn shuffle_hash(row: &[TermId], columns: &[usize]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &column in columns {
        hash ^= u64::from(row[column].0);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> Variable {
        Variable::new(name)
    }

    fn t(id: u32) -> TermId {
        TermId(id)
    }

    fn rel(schema: &[&str], rows: &[&[u32]]) -> Relation {
        Relation::new(
            schema.iter().map(|s| v(s)).collect(),
            rows.iter()
                .map(|r| r.iter().map(|&x| t(x)).collect())
                .collect(),
        )
    }

    fn rows_of(relation: &Relation) -> Vec<Vec<TermId>> {
        relation.rows().map(<[TermId]>::to_vec).collect()
    }

    #[test]
    fn basic_accessors() {
        let r = rel(&["a", "b"], &[&[1, 2], &[3, 4]]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.arity(), 2);
        assert_eq!(r.column(&v("b")), Some(1));
        assert_eq!(r.column(&v("z")), None);
        assert_eq!(r.row(0), &[t(1), t(2)]);
        assert_eq!(r.row(1), &[t(3), t(4)]);
        assert_eq!(r.data(), &[t(1), t(2), t(3), t(4)]);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let _ = rel(&["a", "b"], &[&[1]]);
    }

    #[test]
    fn rows_iterator_is_exact_size() {
        let r = rel(&["a"], &[&[1], &[2], &[3]]);
        let mut rows = r.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows.next(), Some(&[t(1)][..]));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows.count(), 2);
    }

    #[test]
    fn unit_relation_has_one_empty_row() {
        let unit = Relation::unit();
        assert_eq!(unit.len(), 1);
        assert_eq!(unit.arity(), 0);
        assert_eq!(unit.rows().next(), Some(&[][..]));
        assert_eq!(unit.clone().distinct().len(), 1);
        assert_eq!(unit.distinct_len(), 1);
    }

    #[test]
    fn from_flat_round_trips() {
        let schema = vec![v("a"), v("b")];
        let r = Relation::from_flat(schema.clone(), vec![t(1), t(2), t(3), t(4)]);
        assert_eq!(r.len(), 2);
        assert!(r.is_canonical());
        let unsorted = Relation::from_flat(schema, vec![t(9), t(9), t(1), t(2)]);
        assert!(!unsorted.is_canonical());
        assert_eq!(unsorted.len(), 2);
    }

    #[test]
    fn binary_join_on_one_attribute() {
        let left = rel(&["a", "x"], &[&[1, 10], &[2, 20], &[3, 10]]);
        let right = rel(&["x", "b"], &[&[10, 100], &[20, 200], &[30, 300]]);
        let joined = Relation::join(&[&left, &right], &[v("x")]).sorted();
        assert_eq!(joined.schema(), &[v("a"), v("x"), v("b")]);
        assert_eq!(
            rows_of(&joined),
            rows_of(
                &rel(
                    &["a", "x", "b"],
                    &[&[1, 10, 100], &[2, 20, 200], &[3, 10, 100]]
                )
                .sorted()
            )
        );
    }

    #[test]
    fn three_way_star_join() {
        let r1 = rel(&["x", "a"], &[&[1, 11], &[2, 12]]);
        let r2 = rel(&["x", "b"], &[&[1, 21], &[1, 22]]);
        let r3 = rel(&["x", "c"], &[&[1, 31], &[3, 33]]);
        let joined = Relation::join(&[&r1, &r2, &r3], &[v("x")]).sorted();
        // Only x = 1 survives; r2 contributes two rows.
        assert_eq!(joined.len(), 2);
        for row in joined.rows() {
            assert_eq!(row[0], t(1));
        }
    }

    #[test]
    fn join_on_multiple_attributes() {
        let left = rel(&["x", "y", "a"], &[&[1, 2, 10], &[1, 3, 11]]);
        let right = rel(&["x", "y", "b"], &[&[1, 2, 20], &[1, 9, 21]]);
        let joined = Relation::join(&[&left, &right], &[v("x"), v("y")]);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined.row(0), &[t(1), t(2), t(10), t(20)]);
    }

    #[test]
    fn join_checks_shared_non_join_attributes() {
        // Both inputs carry variable `z` but the join is only on `x`; rows
        // that disagree on `z` must not combine.
        let left = rel(&["x", "z"], &[&[1, 5], &[1, 6]]);
        let right = rel(&["x", "z", "b"], &[&[1, 5, 50], &[1, 7, 70]]);
        let joined = Relation::join(&[&left, &right], &[v("x")]);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined.row(0), &[t(1), t(5), t(50)]);
    }

    #[test]
    fn empty_input_produces_empty_join() {
        let left = rel(&["x", "a"], &[]);
        let right = rel(&["x", "b"], &[&[1, 2]]);
        let joined = Relation::join(&[&left, &right], &[v("x")]);
        assert!(joined.is_empty());
    }

    #[test]
    fn single_input_join_is_identity_up_to_order() {
        let r = rel(&["x", "a"], &[&[1, 2], &[3, 4]]);
        let joined = Relation::join(&[&r], &[v("x")]);
        assert_eq!(rows_of(&joined), rows_of(&r));
    }

    #[test]
    fn join_output_is_canonical() {
        let left = rel(&["a", "x"], &[&[9, 10], &[2, 20], &[3, 10]]);
        let right = rel(&["x", "b"], &[&[10, 100], &[20, 200]]);
        let joined = Relation::join(&[&left, &right], &[v("x")]);
        assert!(joined.is_canonical());
        assert!(flat_sorted(joined.data(), joined.arity()));
    }

    #[test]
    fn join_with_no_attributes_is_a_cross_product() {
        let left = rel(&["a"], &[&[1], &[2]]);
        let right = rel(&["b"], &[&[7], &[8], &[9]]);
        let joined = Relation::join(&[&left, &right], &[]);
        assert_eq!(joined.len(), 6);
        assert_eq!(joined.schema(), &[v("a"), v("b")]);
    }

    #[test]
    fn join_uses_the_presorted_fast_path_for_leading_keys() {
        stats::reset();
        // Canonical, key `x` leading in both inputs → no re-sort.
        let left = rel(&["x", "a"], &[&[1, 10], &[2, 20]]);
        let right = rel(&["x", "b"], &[&[1, 5], &[3, 6]]);
        assert!(left.is_canonical() && right.is_canonical());
        let joined = Relation::join(&[&left, &right], &[v("x")]);
        assert_eq!(joined.len(), 1);
        let after = stats::snapshot();
        assert_eq!(after.join_inputs_presorted, 2);
        assert_eq!(after.join_inputs_resorted, 0);

        stats::reset();
        // Key `x` trailing in the left input → one column-permuted sort.
        let trailing = rel(&["a", "x"], &[&[10, 1], &[20, 2]]);
        let joined = Relation::join(&[&trailing, &right], &[v("x")]);
        assert_eq!(joined.len(), 1);
        let after = stats::snapshot();
        assert_eq!(after.join_inputs_presorted, 1);
        assert_eq!(after.join_inputs_resorted, 1);
    }

    #[test]
    fn join_handles_duplicate_keys_on_both_sides() {
        let left = rel(&["x", "a"], &[&[1, 10], &[1, 11], &[2, 12]]);
        let right = rel(&["x", "b"], &[&[1, 20], &[1, 21], &[1, 22]]);
        let joined = Relation::join(&[&left, &right], &[v("x")]);
        // 2 left rows with x=1 × 3 right rows with x=1.
        assert_eq!(joined.len(), 6);
    }

    #[test]
    fn hash_partition_routes_every_row_exactly_once() {
        let r = rel(&["x", "a"], &[&[1, 10], &[2, 20], &[3, 30], &[4, 40]]);
        let buckets = hash_partition(&r, &[v("x")], 3);
        assert_eq!(buckets.len(), 3);
        let total: usize = buckets.iter().map(Relation::len).sum();
        assert_eq!(total, r.len());
        let mut recombined: Vec<Vec<TermId>> = buckets.iter().flat_map(rows_of).collect();
        recombined.sort_unstable();
        let mut expected = rows_of(&r);
        expected.sort_unstable();
        assert_eq!(recombined, expected);
        // Same key → same bucket.
        for bucket in &buckets {
            for row in bucket.rows() {
                let node = (shuffle_hash(row, &[0]) % 3) as usize;
                assert_eq!(bucket.schema(), r.schema());
                assert!(
                    std::ptr::eq(&buckets[node], bucket) || buckets[node].is_empty() || {
                        // The row must live in the bucket its hash selects.
                        rows_of(&buckets[node]).contains(&row.to_vec())
                    }
                );
            }
        }
    }

    #[test]
    fn hash_partition_keeps_zero_arity_rows() {
        let buckets = hash_partition(&Relation::unit(), &[], 3);
        assert_eq!(buckets.iter().map(Relation::len).sum::<usize>(), 1);
        for bucket in &buckets {
            assert_eq!(bucket.arity(), 0);
        }
    }

    #[test]
    fn hash_partition_preserves_sortedness_per_bucket() {
        let r = rel(&["x"], &[&[1], &[2], &[3], &[4], &[5], &[6]]);
        assert!(r.is_canonical());
        for bucket in hash_partition(&r, &[v("x")], 4) {
            assert!(bucket.is_canonical());
        }
    }

    #[test]
    fn project_and_distinct() {
        let r = rel(&["a", "b", "c"], &[&[1, 2, 3], &[1, 2, 4], &[5, 6, 7]]);
        let projected = r.project(&[v("a"), v("b")]);
        assert_eq!(projected.schema(), &[v("a"), v("b")]);
        assert_eq!(projected.len(), 3);
        assert_eq!(projected.distinct().len(), 2);
        // Projecting onto an absent variable silently drops it.
        let narrowed = r.project(&[v("a"), v("z")]);
        assert_eq!(narrowed.schema(), &[v("a")]);
    }

    #[test]
    fn project_to_zero_columns_keeps_the_row_count() {
        let r = rel(&["a"], &[&[1], &[2]]);
        let projected = r.project(&[v("z")]);
        assert_eq!(projected.arity(), 0);
        assert_eq!(projected.len(), 2);
        assert_eq!(projected.distinct().len(), 1);
    }

    #[test]
    fn union_in_place_appends_rows() {
        let mut a = rel(&["x"], &[&[1]]);
        let b = rel(&["x"], &[&[2], &[3]]);
        a.union_in_place(b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn union_of_canonical_inputs_merges_in_order() {
        let mut a = rel(&["x"], &[&[1], &[4], &[9]]);
        let b = rel(&["x"], &[&[2], &[4], &[7]]);
        assert!(a.is_canonical() && b.is_canonical());
        a.union_in_place(b);
        assert!(a.is_canonical());
        let values: Vec<u32> = a.rows().map(|r| r[0].0).collect();
        assert_eq!(values, vec![1, 2, 4, 4, 7, 9]);
    }

    #[test]
    fn union_with_non_canonical_input_concatenates() {
        let mut a = rel(&["x"], &[&[1], &[2]]);
        let b = rel(&["x"], &[&[5], &[3]]);
        assert!(!b.is_canonical());
        a.union_in_place(b);
        assert!(!a.is_canonical());
        assert_eq!(a.len(), 4);
        assert_eq!(a.distinct_len(), 4);
    }

    #[test]
    fn push_row_tracks_canonical_order() {
        let mut r = Relation::empty(vec![v("x")]);
        assert!(r.is_canonical());
        r.push_row(&[t(1)]);
        r.push_row(&[t(2)]);
        assert!(r.is_canonical());
        r.push_row(&[t(0)]);
        assert!(!r.is_canonical());
        r.canonicalize();
        assert!(r.is_canonical());
        assert_eq!(r.row(0), &[t(0)]);
    }

    #[test]
    fn distinct_len_matches_distinct() {
        let canonical = rel(&["x"], &[&[1], &[1], &[2], &[3], &[3]]);
        assert!(canonical.is_canonical());
        assert_eq!(canonical.distinct_len(), 3);
        let scrambled = rel(&["x"], &[&[3], &[1], &[2], &[1], &[3]]);
        assert!(!scrambled.is_canonical());
        assert_eq!(scrambled.distinct_len(), 3);
        assert_eq!(scrambled.distinct().len(), 3);
    }

    #[test]
    fn equality_ignores_canonical_flag() {
        let sorted = rel(&["x"], &[&[1], &[2]]);
        let mut pushed = Relation::empty(vec![v("x")]);
        pushed.push_row(&[t(1)]);
        pushed.push_row(&[t(2)]);
        assert_eq!(sorted, pushed);
    }

    #[test]
    #[should_panic(expected = "schema mismatch")]
    fn union_with_different_schema_panics() {
        let mut a = rel(&["x"], &[&[1]]);
        let b = rel(&["y"], &[&[2]]);
        a.union_in_place(b);
    }

    #[test]
    fn join_reports_zero_row_allocations() {
        let left = rel(&["x", "a"], &[&[1, 10], &[2, 20], &[3, 30]]);
        let right = rel(&["b", "x"], &[&[5, 1], &[6, 2], &[7, 9]]);
        stats::reset();
        let joined = Relation::join(&[&left, &right], &[v("x")]);
        let buckets = hash_partition(&joined, &[v("x")], 4);
        let after = stats::snapshot();
        assert_eq!(after.row_allocs, 0, "join/shuffle allocated per-row");
        assert_eq!(after.join_rows_out, joined.len() as u64);
        assert!(after.buffer_allocs > 0);
        assert_eq!(buckets.len(), 4);
    }
}
