//! The CSQ façade: optimize a query with CliqueSquare, pick the cheapest
//! plan with the MapReduce cost model, and execute it on the simulated
//! cluster.

use crate::cost::MapReduceCostModel;
use crate::executor::{ExecutionOutput, Executor};
use crate::translate::translate;
use cliquesquare_core::{LogicalPlan, Optimizer, OptimizerConfig, Variant};
use cliquesquare_mapreduce::{Cluster, Runtime};
use cliquesquare_sparql::BgpQuery;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Configuration of a [`Csq`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CsqConfig {
    /// Optimizer variant (the paper recommends and ships MSC).
    pub variant: Variant,
    /// Cap on the number of candidate plans considered by the cost model.
    pub max_candidate_plans: usize,
    /// Degree of execution parallelism: `1` runs task waves sequentially,
    /// `N > 1` runs them on `N` OS threads, and `0` defers to the
    /// `CSQ_THREADS` environment variable (sequential when unset). Results
    /// and simulated seconds are bit-identical at every setting; only the
    /// measured wall-clock time changes.
    pub threads: usize,
}

impl Default for CsqConfig {
    fn default() -> Self {
        Self {
            variant: Variant::Msc,
            max_candidate_plans: 2_000,
            threads: 0,
        }
    }
}

impl CsqConfig {
    /// This configuration with an explicit execution thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The runtime the configuration selects.
    pub fn runtime(&self) -> Runtime {
        if self.threads == 0 {
            Runtime::from_env()
        } else {
            Runtime::with_threads(self.threads)
        }
    }
}

/// The outcome of running one query end to end.
#[derive(Debug, Clone)]
pub struct CsqReport {
    /// Name of the query (if it had one).
    pub query: String,
    /// Number of candidate plans produced by the optimizer.
    pub candidate_plans: usize,
    /// Wall-clock optimization time in milliseconds.
    pub optimization_ms: f64,
    /// The logical plan chosen by the cost model.
    pub chosen_plan: LogicalPlan,
    /// Height of the chosen plan.
    pub plan_height: usize,
    /// The paper-style job descriptor of the executed plan (`"M"`, `"1"`, …).
    pub job_descriptor: String,
    /// Number of MapReduce jobs executed.
    pub jobs: usize,
    /// Number of distinct query answers.
    pub result_count: usize,
    /// Simulated response time in seconds.
    pub simulated_seconds: f64,
    /// Measured wall-clock execution time in seconds (on `threads` threads).
    pub wall_seconds: f64,
    /// Number of OS threads the execution ran task waves on.
    pub threads: usize,
    /// The full execution output (job log, metrics, results).
    pub execution: ExecutionOutput,
}

/// The CSQ prototype: CliqueSquare optimization + cost-based selection +
/// MapReduce execution (Section 6's "CSQ system").
#[derive(Debug, Clone)]
pub struct Csq {
    cluster: Cluster,
    config: CsqConfig,
}

impl Csq {
    /// Creates a CSQ instance over a loaded cluster.
    pub fn new(cluster: Cluster, config: CsqConfig) -> Self {
        Self { cluster, config }
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The configuration.
    pub fn config(&self) -> &CsqConfig {
        &self.config
    }

    /// Optimizes `query`, returning the candidate plans and the one chosen by
    /// the cost model (without executing it).
    pub fn plan(&self, query: &BgpQuery) -> (Vec<LogicalPlan>, LogicalPlan, f64) {
        let started = Instant::now();
        let optimizer_config = OptimizerConfig::variant(self.config.variant)
            .with_max_plans(self.config.max_candidate_plans);
        let result = Optimizer::new(optimizer_config).optimize(query);
        assert!(
            !result.plans.is_empty(),
            "no plan found for query {:?} (disconnected or empty?)",
            query.name()
        );
        let model = MapReduceCostModel::new(&self.cluster);
        let chosen = model
            .choose_best(&result.plans)
            .expect("at least one plan")
            .clone();
        let elapsed_ms = started.elapsed().as_secs_f64() * 1000.0;
        (result.plans, chosen, elapsed_ms)
    }

    /// Runs `query` end to end and reports what happened. Plan choice is
    /// always made by the deterministic cost model; only the execution of
    /// the chosen plan uses the configured runtime.
    pub fn run(&self, query: &BgpQuery) -> CsqReport {
        let (candidates, chosen, optimization_ms) = self.plan(query);
        let physical = translate(&chosen, self.cluster.graph());
        let execution =
            Executor::with_runtime(&self.cluster, self.config.runtime()).execute(&physical);
        CsqReport {
            query: query.name().to_string(),
            candidate_plans: candidates.len(),
            optimization_ms,
            plan_height: chosen.height(),
            job_descriptor: execution.job_log.descriptor(),
            jobs: execution.job_log.job_count(),
            result_count: execution.distinct_count(),
            simulated_seconds: execution.simulated_seconds,
            wall_seconds: execution.wall_seconds,
            threads: execution.threads,
            chosen_plan: chosen,
            execution,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_count;
    use cliquesquare_mapreduce::ClusterConfig;
    use cliquesquare_rdf::{LubmGenerator, LubmScale};
    use cliquesquare_sparql::parser::parse_query;

    fn csq() -> Csq {
        let graph = LubmGenerator::new(LubmScale::tiny()).generate();
        let cluster = Cluster::load(graph, ClusterConfig::with_nodes(4));
        Csq::new(cluster, CsqConfig::default())
    }

    #[test]
    fn end_to_end_join_query() {
        let csq = csq();
        let q =
            parse_query("SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d }").unwrap();
        let report = csq.run(&q);
        assert!(report.candidate_plans >= 1);
        assert_eq!(report.plan_height, 1);
        assert_eq!(report.jobs, 1);
        assert!(report.result_count > 0);
        assert_eq!(
            report.result_count,
            reference_count(csq.cluster().graph(), &q)
        );
        assert!(report.simulated_seconds > 0.0);
    }

    #[test]
    fn six_pattern_lubm_query_is_correct() {
        let csq = csq();
        let q = parse_query(
            "SELECT ?x ?y ?z WHERE { ?x rdf:type ub:UndergraduateStudent . ?y rdf:type ub:FullProfessor . \
             ?z rdf:type ub:Course . ?x ub:advisor ?y . ?x ub:takesCourse ?z . ?y ub:teacherOf ?z }",
        )
        .unwrap();
        let report = csq.run(&q);
        assert_eq!(
            report.result_count,
            reference_count(csq.cluster().graph(), &q)
        );
        assert!(report.plan_height <= 2);
    }

    #[test]
    fn chosen_plan_is_among_the_flattest() {
        let csq = csq();
        let q = parse_query(
            "SELECT ?x ?z WHERE { ?x ub:advisor ?y . ?y ub:worksFor ?z . ?z ub:subOrganizationOf ?u }",
        )
        .unwrap();
        let (candidates, chosen, _) = csq.plan(&q);
        let min_height = candidates.iter().map(LogicalPlan::height).min().unwrap();
        assert_eq!(chosen.height(), min_height);
    }

    #[test]
    fn parallel_csq_agrees_with_sequential() {
        let graph = LubmGenerator::new(LubmScale::tiny()).generate();
        let cluster = Cluster::load(graph, ClusterConfig::with_nodes(4));
        let q =
            parse_query("SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d }").unwrap();
        let sequential = Csq::new(cluster.clone(), CsqConfig::default().with_threads(1)).run(&q);
        let parallel = Csq::new(cluster, CsqConfig::default().with_threads(4)).run(&q);
        assert_eq!(parallel.threads, 4);
        assert_eq!(sequential.result_count, parallel.result_count);
        assert_eq!(sequential.job_descriptor, parallel.job_descriptor);
        assert_eq!(sequential.simulated_seconds, parallel.simulated_seconds);
        assert_eq!(sequential.execution.results, parallel.execution.results);
        assert!(parallel.wall_seconds > 0.0);
    }

    #[test]
    #[should_panic(expected = "no plan found")]
    fn disconnected_query_panics_with_clear_message() {
        let csq = csq();
        let q = parse_query("SELECT ?a WHERE { ?a ub:p ?b . ?x ub:q ?y }").unwrap();
        let _ = csq.run(&q);
    }
}
