//! A naive reference evaluator for BGP queries.
//!
//! Used as a correctness oracle: the distributed executor must return exactly
//! the same (distinct) answer set as this straightforward pattern-at-a-time
//! evaluation over the in-memory graph. The evaluation is embarrassingly
//! parallel across binding rows, so [`reference_eval_with`] chunks the
//! current binding table over a [`Runtime`]'s OS threads — chunk outputs are
//! concatenated in chunk order, making the result **bit-identical** to the
//! sequential evaluation at any thread count.
//!
//! The binding table is built with `push_row_unordered` (no per-push order
//! bookkeeping — intermediate binding order is scan order, which the final
//! `distinct` re-sorts anyway); the executor's order-elided pipeline is
//! differentially tested against this evaluator precisely because the two
//! take entirely different ordering paths to the same answer set.

use crate::relation::Relation;
use cliquesquare_mapreduce::Runtime;
use cliquesquare_rdf::{Graph, TermId, TriplePosition};
use cliquesquare_sparql::{BgpQuery, PatternTerm, TriplePattern, Variable};

/// Below this many binding rows, chunking across threads costs more than it
/// saves; the pattern is evaluated inline.
const PARALLEL_ROW_THRESHOLD: usize = 256;

/// Resolves a constant pattern term against the graph dictionary; a constant
/// that does not occur in the data can never match.
fn constant_id(graph: &Graph, term: &PatternTerm) -> Option<Option<TermId>> {
    match term {
        PatternTerm::Variable(_) => Some(None),
        PatternTerm::Constant(t) => graph.lookup(t).map(Some),
    }
}

/// The per-pattern evaluation context shared by all binding rows: every
/// position → column mapping is resolved **once** per pattern, so extending
/// a row is a `match_pattern` index probe plus slice copies into a reused
/// scratch row — no per-row heap allocation and no per-triple schema scans.
struct PatternEval<'a> {
    graph: &'a Graph,
    /// Arity of the incoming binding rows (the output row's carried prefix).
    binding_arity: usize,
    /// Output arity (carried prefix + the pattern's new variables).
    out_arity: usize,
    /// Pattern constants resolved against the dictionary, per position.
    consts: [Option<TermId>; 3],
    /// Positions whose variable is already bound: the binding column that
    /// fixes the position's value for the index probe.
    carried: [Option<usize>; 3],
    /// First occurrence of each *new* variable: (position, output slot).
    writes: Vec<(TriplePosition, usize)>,
    /// Repeated occurrences of new variables: the position must agree with
    /// the slot already written from the same triple.
    checks: Vec<(TriplePosition, usize)>,
}

impl PatternEval<'_> {
    /// Extends one binding row with every matching triple, appending the
    /// consistent extensions to `out` (in graph scan order, so processing
    /// rows in order reproduces the sequential output exactly).
    fn extend_row(&self, row: &[TermId], scratch: &mut [TermId], out: &mut Relation) {
        let fixed = [
            self.carried[0].map(|c| row[c]).or(self.consts[0]),
            self.carried[1].map(|c| row[c]).or(self.consts[1]),
            self.carried[2].map(|c| row[c]).or(self.consts[2]),
        ];
        scratch[..self.binding_arity].copy_from_slice(row);
        for triple in self.graph.match_pattern(fixed[0], fixed[1], fixed[2]) {
            // Carried variables are already enforced by the index probe;
            // only the pattern's new variables need writing / checking.
            for &(position, slot) in &self.writes {
                scratch[slot] = triple.get(position);
            }
            let consistent = self
                .checks
                .iter()
                .all(|&(position, slot)| triple.get(position) == scratch[slot]);
            if consistent {
                // The binding table is consumed row-at-a-time (and the final
                // projection re-sorts anyway), so skip the per-push ordering
                // bookkeeping of `push_row`.
                out.push_row_unordered(scratch);
            }
        }
    }
}

/// Evaluates one triple pattern under an existing set of bindings, extending
/// each binding row with the pattern's variables. Binding rows are chunked
/// across the runtime's threads; chunk outputs are concatenated in chunk
/// order, so the output is identical at every thread count.
fn extend(
    graph: &Graph,
    bindings: Relation,
    pattern: &TriplePattern,
    runtime: &Runtime,
) -> Relation {
    // Output schema: existing variables plus the pattern's new ones.
    let mut schema: Vec<Variable> = bindings.schema().to_vec();
    for v in pattern.variables() {
        if !schema.contains(&v) {
            schema.push(v.clone());
        }
    }

    let consts = [
        constant_id(graph, &pattern.subject),
        constant_id(graph, &pattern.property),
        constant_id(graph, &pattern.object),
    ];
    if consts.iter().any(Option::is_none) {
        // A constant absent from the dictionary can never match.
        return Relation::empty(schema);
    }

    let positions = [
        (&pattern.subject, TriplePosition::Subject),
        (&pattern.property, TriplePosition::Property),
        (&pattern.object, TriplePosition::Object),
    ];
    let mut carried: [Option<usize>; 3] = [None; 3];
    let mut writes: Vec<(TriplePosition, usize)> = Vec::new();
    let mut checks: Vec<(TriplePosition, usize)> = Vec::new();
    let mut written = vec![false; schema.len()];
    written[..bindings.schema().len()].fill(true);
    for (index, (term, position)) in positions.iter().enumerate() {
        if let PatternTerm::Variable(v) = term {
            if let Some(column) = bindings.column(v) {
                carried[index] = Some(column);
            } else {
                let slot = schema.iter().position(|s| s == v).expect("in schema");
                if written[slot] {
                    checks.push((*position, slot));
                } else {
                    written[slot] = true;
                    writes.push((*position, slot));
                }
            }
        }
    }

    let eval = PatternEval {
        graph,
        binding_arity: bindings.schema().len(),
        out_arity: schema.len(),
        consts: [
            consts[0].expect("checked"),
            consts[1].expect("checked"),
            consts[2].expect("checked"),
        ],
        carried,
        writes,
        checks,
    };

    if runtime.is_parallel() && bindings.len() >= PARALLEL_ROW_THRESHOLD {
        // Over-split relative to the thread count so the dynamic wave
        // scheduler can balance skewed chunks.
        let chunk_rows = bindings.len().div_ceil(runtime.threads() * 4).max(1);
        let ranges: Vec<(usize, usize)> = (0..bindings.len())
            .step_by(chunk_rows)
            .map(|start| (start, (start + chunk_rows).min(bindings.len())))
            .collect();
        let tasks: Vec<_> = ranges
            .into_iter()
            .map(|(start, end)| {
                let eval = &eval;
                let bindings = &bindings;
                let schema = &schema;
                move || {
                    let mut out = Relation::empty(schema.clone());
                    let mut scratch = vec![TermId(0); eval.out_arity];
                    for index in start..end {
                        eval.extend_row(bindings.row(index), &mut scratch, &mut out);
                    }
                    out
                }
            })
            .collect();
        // Concatenate the chunk outputs in chunk order: identical to the
        // sequential row order at every thread count.
        let mut output = Relation::empty(schema.clone());
        for chunk in runtime.run_wave(tasks) {
            output.concat(chunk);
        }
        output
    } else {
        let mut output = Relation::empty(schema.clone());
        let mut scratch = vec![TermId(0); eval.out_arity];
        for row in bindings.rows() {
            eval.extend_row(row, &mut scratch, &mut output);
        }
        output
    }
}

/// Evaluates a BGP query over the graph and returns the **distinct** set of
/// bindings of its distinguished variables. The thread count is taken from
/// the `CSQ_THREADS` environment variable (sequential when unset); see
/// [`reference_eval_with`] for an explicit runtime.
pub fn reference_eval(graph: &Graph, query: &BgpQuery) -> Relation {
    reference_eval_with(graph, query, &Runtime::from_env())
}

/// Evaluates a BGP query over the graph on the given runtime and returns the
/// **distinct** set of bindings of its distinguished variables. The answer
/// is bit-identical at every thread count.
pub fn reference_eval_with(graph: &Graph, query: &BgpQuery, runtime: &Runtime) -> Relation {
    let mut bindings = Relation::unit();
    for pattern in query.patterns() {
        bindings = extend(graph, bindings, pattern, runtime);
        if bindings.is_empty() {
            break;
        }
    }
    let projected = if query.distinguished().is_empty() {
        bindings
    } else {
        bindings.project(query.distinguished())
    };
    projected.distinct()
}

/// Convenience: the number of distinct answers of a query (`|Q|` in
/// Figure 22).
pub fn reference_count(graph: &Graph, query: &BgpQuery) -> usize {
    reference_eval(graph, query).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesquare_rdf::Term;
    use cliquesquare_rdf::{LubmGenerator, LubmScale};
    use cliquesquare_sparql::parser::parse_query;

    fn tiny_graph() -> Graph {
        let mut g = Graph::new();
        g.insert_terms(Term::iri("alice"), Term::iri("worksFor"), Term::iri("d1"));
        g.insert_terms(Term::iri("bob"), Term::iri("worksFor"), Term::iri("d2"));
        g.insert_terms(Term::iri("carol"), Term::iri("memberOf"), Term::iri("d1"));
        g.insert_terms(Term::iri("dave"), Term::iri("memberOf"), Term::iri("d1"));
        g.insert_terms(Term::iri("erin"), Term::iri("memberOf"), Term::iri("d2"));
        g
    }

    #[test]
    fn join_on_shared_variable() {
        let g = tiny_graph();
        let q = parse_query("SELECT ?p ?s WHERE { ?p <worksFor> ?d . ?s <memberOf> ?d }").unwrap();
        let result = reference_eval(&g, &q);
        // alice-carol, alice-dave (d1) and bob-erin (d2).
        assert_eq!(result.len(), 3);
    }

    #[test]
    fn constants_filter_matches() {
        let g = tiny_graph();
        let q = parse_query("SELECT ?s WHERE { ?s <memberOf> <d1> }").unwrap();
        assert_eq!(reference_eval(&g, &q).len(), 2);
        let q2 = parse_query("SELECT ?s WHERE { ?s <memberOf> <d9> }").unwrap();
        assert_eq!(reference_eval(&g, &q2).len(), 0);
    }

    #[test]
    fn unknown_constant_yields_empty() {
        let g = tiny_graph();
        let q = parse_query("SELECT ?s WHERE { ?s <unknownProperty> ?o }").unwrap();
        assert!(reference_eval(&g, &q).is_empty());
    }

    #[test]
    fn projection_deduplicates() {
        let g = tiny_graph();
        // Two members of d1 ⇒ two bindings, but projected on ?p alone they collapse.
        let q = parse_query("SELECT ?p WHERE { ?p <worksFor> ?d . ?s <memberOf> ?d }").unwrap();
        assert_eq!(reference_eval(&g, &q).len(), 2);
    }

    #[test]
    fn lubm_counts_are_stable() {
        let g = LubmGenerator::new(LubmScale::tiny()).generate();
        let q = parse_query(
            "SELECT ?x ?y WHERE { ?x rdf:type ub:GraduateStudent . ?x ub:memberOf ?y }",
        )
        .unwrap();
        let first = reference_count(&g, &q);
        let second = reference_count(&g, &q);
        assert_eq!(first, second);
        assert!(first > 0);
    }

    #[test]
    fn parallel_reference_is_bit_identical() {
        let g = LubmGenerator::new(LubmScale::tiny()).generate();
        let queries = [
            "SELECT ?x ?y WHERE { ?x rdf:type ub:GraduateStudent . ?x ub:memberOf ?y }",
            "SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d }",
            "SELECT ?x ?z WHERE { ?x ub:advisor ?y . ?y ub:worksFor ?z . ?z ub:subOrganizationOf ?u }",
        ];
        for query in queries {
            let q = parse_query(query).unwrap();
            let sequential = reference_eval_with(&g, &q, &Runtime::sequential());
            for threads in [2, 8] {
                let parallel = reference_eval_with(&g, &q, &Runtime::with_threads(threads));
                assert_eq!(sequential, parallel, "threads={threads} on {query}");
                assert!(sequential.rows().eq(parallel.rows()));
            }
            assert!(!sequential.is_empty());
        }
    }

    #[test]
    fn chunked_parallel_extension_matches_sequential() {
        // Enough binding rows that the second pattern's evaluation crosses
        // PARALLEL_ROW_THRESHOLD and actually runs chunked.
        let mut g = Graph::new();
        for i in 0..(2 * PARALLEL_ROW_THRESHOLD) {
            g.insert_terms(
                Term::iri(format!("s{i}")),
                Term::iri("p"),
                Term::iri(format!("o{}", i % 20)),
            );
        }
        let q = parse_query("SELECT ?a ?b WHERE { ?a <p> ?x . ?b <p> ?x }").unwrap();
        let sequential = reference_eval_with(&g, &q, &Runtime::sequential());
        let parallel = reference_eval_with(&g, &q, &Runtime::with_threads(4));
        assert_eq!(sequential, parallel);
        assert!(sequential.len() > PARALLEL_ROW_THRESHOLD);
    }

    #[test]
    fn repeated_variables_require_equal_bindings() {
        let mut g = tiny_graph();
        g.insert_terms(Term::iri("loop"), Term::iri("worksFor"), Term::iri("loop"));
        let q = parse_query("SELECT ?x WHERE { ?x <worksFor> ?x }").unwrap();
        let result = reference_eval(&g, &q);
        assert_eq!(result.len(), 1);
    }
}
