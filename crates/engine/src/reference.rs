//! A naive, single-node reference evaluator for BGP queries.
//!
//! Used as a correctness oracle: the distributed executor must return exactly
//! the same (distinct) answer set as this straightforward pattern-at-a-time
//! evaluation over the in-memory graph.

use crate::relation::Relation;
use cliquesquare_rdf::{Graph, TermId, TriplePosition};
use cliquesquare_sparql::{BgpQuery, PatternTerm, TriplePattern, Variable};

/// Resolves a constant pattern term against the graph dictionary; a constant
/// that does not occur in the data can never match.
fn constant_id(graph: &Graph, term: &PatternTerm) -> Option<Option<TermId>> {
    match term {
        PatternTerm::Variable(_) => Some(None),
        PatternTerm::Constant(t) => graph.lookup(t).map(Some),
    }
}

/// Evaluates one triple pattern under an existing set of bindings, extending
/// each binding row with the pattern's variables.
fn extend(graph: &Graph, bindings: Relation, pattern: &TriplePattern) -> Relation {
    // Output schema: existing variables plus the pattern's new ones.
    let mut schema: Vec<Variable> = bindings.schema().to_vec();
    for v in pattern.variables() {
        if !schema.contains(&v) {
            schema.push(v.clone());
        }
    }
    let mut output = Relation::empty(schema.clone());

    let Some(subject_const) = constant_id(graph, &pattern.subject) else {
        return output;
    };
    let Some(property_const) = constant_id(graph, &pattern.property) else {
        return output;
    };
    let Some(object_const) = constant_id(graph, &pattern.object) else {
        return output;
    };

    let positions = [
        (&pattern.subject, TriplePosition::Subject),
        (&pattern.property, TriplePosition::Property),
        (&pattern.object, TriplePosition::Object),
    ];

    for row in bindings.rows() {
        // Constants fixed by the pattern or by already-bound variables.
        let mut fixed = [subject_const, property_const, object_const];
        for (index, (term, _)) in positions.iter().enumerate() {
            if let PatternTerm::Variable(v) = term {
                if let Some(col) = bindings.column(v) {
                    fixed[index] = Some(row[col]);
                }
            }
        }
        for triple in graph.match_pattern(fixed[0], fixed[1], fixed[2]) {
            // Bind the pattern's variables, checking repeated occurrences.
            let mut extended: Vec<Option<TermId>> = schema
                .iter()
                .map(|v| bindings.column(v).map(|c| row[c]))
                .collect();
            let mut consistent = true;
            for (term, position) in positions {
                if let PatternTerm::Variable(v) = term {
                    let value = triple.get(position);
                    let slot = schema.iter().position(|s| s == v).expect("in schema");
                    match extended[slot] {
                        None => extended[slot] = Some(value),
                        Some(existing) if existing != value => {
                            consistent = false;
                            break;
                        }
                        Some(_) => {}
                    }
                }
            }
            if consistent {
                output.push(extended.into_iter().map(|v| v.expect("bound")).collect());
            }
        }
    }
    output
}

/// Evaluates a BGP query over the graph and returns the **distinct** set of
/// bindings of its distinguished variables.
pub fn reference_eval(graph: &Graph, query: &BgpQuery) -> Relation {
    let mut bindings = Relation::new(Vec::new(), vec![Vec::new()]);
    for pattern in query.patterns() {
        bindings = extend(graph, bindings, pattern);
        if bindings.is_empty() {
            break;
        }
    }
    let projected = if query.distinguished().is_empty() {
        bindings
    } else {
        bindings.project(query.distinguished())
    };
    projected.distinct()
}

/// Convenience: the number of distinct answers of a query (`|Q|` in
/// Figure 22).
pub fn reference_count(graph: &Graph, query: &BgpQuery) -> usize {
    reference_eval(graph, query).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesquare_rdf::Term;
    use cliquesquare_rdf::{LubmGenerator, LubmScale};
    use cliquesquare_sparql::parser::parse_query;

    fn tiny_graph() -> Graph {
        let mut g = Graph::new();
        g.insert_terms(Term::iri("alice"), Term::iri("worksFor"), Term::iri("d1"));
        g.insert_terms(Term::iri("bob"), Term::iri("worksFor"), Term::iri("d2"));
        g.insert_terms(Term::iri("carol"), Term::iri("memberOf"), Term::iri("d1"));
        g.insert_terms(Term::iri("dave"), Term::iri("memberOf"), Term::iri("d1"));
        g.insert_terms(Term::iri("erin"), Term::iri("memberOf"), Term::iri("d2"));
        g
    }

    #[test]
    fn join_on_shared_variable() {
        let g = tiny_graph();
        let q = parse_query("SELECT ?p ?s WHERE { ?p <worksFor> ?d . ?s <memberOf> ?d }").unwrap();
        let result = reference_eval(&g, &q);
        // alice-carol, alice-dave (d1) and bob-erin (d2).
        assert_eq!(result.len(), 3);
    }

    #[test]
    fn constants_filter_matches() {
        let g = tiny_graph();
        let q = parse_query("SELECT ?s WHERE { ?s <memberOf> <d1> }").unwrap();
        assert_eq!(reference_eval(&g, &q).len(), 2);
        let q2 = parse_query("SELECT ?s WHERE { ?s <memberOf> <d9> }").unwrap();
        assert_eq!(reference_eval(&g, &q2).len(), 0);
    }

    #[test]
    fn unknown_constant_yields_empty() {
        let g = tiny_graph();
        let q = parse_query("SELECT ?s WHERE { ?s <unknownProperty> ?o }").unwrap();
        assert!(reference_eval(&g, &q).is_empty());
    }

    #[test]
    fn projection_deduplicates() {
        let g = tiny_graph();
        // Two members of d1 ⇒ two bindings, but projected on ?p alone they collapse.
        let q = parse_query("SELECT ?p WHERE { ?p <worksFor> ?d . ?s <memberOf> ?d }").unwrap();
        assert_eq!(reference_eval(&g, &q).len(), 2);
    }

    #[test]
    fn lubm_counts_are_stable() {
        let g = LubmGenerator::new(LubmScale::tiny()).generate();
        let q = parse_query(
            "SELECT ?x ?y WHERE { ?x rdf:type ub:GraduateStudent . ?x ub:memberOf ?y }",
        )
        .unwrap();
        let first = reference_count(&g, &q);
        let second = reference_count(&g, &q);
        assert_eq!(first, second);
        assert!(first > 0);
    }

    #[test]
    fn repeated_variables_require_equal_bindings() {
        let mut g = tiny_graph();
        g.insert_terms(Term::iri("loop"), Term::iri("worksFor"), Term::iri("loop"));
        let q = parse_query("SELECT ?x WHERE { ?x <worksFor> ?x }").unwrap();
        let result = reference_eval(&g, &q);
        assert_eq!(result.len(), 1);
    }
}
