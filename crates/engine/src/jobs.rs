//! Grouping physical plans into MapReduce jobs (Section 5.3).
//!
//! The rules of the paper are:
//!
//! * projections and filters run in the same task as their parent operator,
//! * map joins (and all their ancestors in the scan chains) run inside a map
//!   task,
//! * every reduce join needs a shuffle, and a reduce join can only consume
//!   another reduce join's output through a new job (whose map phase re-reads
//!   and re-shuffles the stored intermediate result).
//!
//! Consequently the number of jobs of a plan equals the number of stacked
//! reduce-join levels (independent reduce joins at the same depth share a
//! job), or a single map-only job when the plan has no reduce join at all.

use crate::physical::{PhysId, PhysicalOp, PhysicalPlan};
use cliquesquare_mapreduce::JobKind;
use serde::{Deserialize, Serialize};

/// The job assignment of every operator of a physical plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSchedule {
    /// Number of MapReduce jobs (always at least 1).
    pub job_count: usize,
    /// Kind of each job, indexed by `job - 1`.
    pub kinds: Vec<JobKind>,
    /// 1-based job index each operator executes in, indexed by operator id.
    pub op_jobs: Vec<usize>,
    /// Reduce-join nesting level of each operator (`0` for map-side ops,
    /// `k >= 1` for a reduce join with `k - 1` reduce joins below it).
    pub levels: Vec<usize>,
}

impl JobSchedule {
    /// The job descriptor used in the paper's figures: `"M"` for a single
    /// map-only job, otherwise the number of jobs.
    pub fn descriptor(&self) -> String {
        if self.job_count == 1 && self.kinds.first() == Some(&JobKind::MapOnly) {
            "M".to_string()
        } else {
            self.job_count.to_string()
        }
    }

    /// The 1-based job index of an operator.
    pub fn job_of(&self, id: PhysId) -> usize {
        self.op_jobs[id.index()]
    }
}

/// Computes the job schedule of a physical plan.
pub fn schedule(plan: &PhysicalPlan) -> JobSchedule {
    let n = plan.len();
    // Reduce-join nesting level, bottom-up (operators are stored bottom-up:
    // inputs always have smaller ids than their consumers).
    let mut levels = vec![0usize; n];
    for index in 0..n {
        let op = plan.op(PhysId(index));
        let child_max = op
            .inputs()
            .into_iter()
            .map(|c| levels[c.index()])
            .max()
            .unwrap_or(0);
        levels[index] = child_max + usize::from(matches!(op, PhysicalOp::ReduceJoin { .. }));
    }

    let reduce_levels = levels[plan.root().index()];
    let job_count = reduce_levels.max(1);
    let kinds = if reduce_levels == 0 {
        vec![JobKind::MapOnly]
    } else {
        vec![JobKind::MapReduce; job_count]
    };

    // Assign each operator to a job: a reduce join runs in the job of its own
    // level; a map-side operator runs in the job of its nearest reduce-join
    // ancestor; operators above every reduce join run in the last job.
    let mut op_jobs = vec![job_count; n];
    fn assign(
        plan: &PhysicalPlan,
        levels: &[usize],
        op_jobs: &mut [usize],
        id: PhysId,
        context: usize,
    ) {
        let op = plan.op(id);
        let job = if matches!(op, PhysicalOp::ReduceJoin { .. }) {
            levels[id.index()]
        } else {
            context
        };
        op_jobs[id.index()] = job;
        for input in op.inputs() {
            assign(plan, levels, op_jobs, input, job);
        }
    }
    assign(plan, &levels, &mut op_jobs, plan.root(), job_count);

    JobSchedule {
        job_count,
        kinds,
        op_jobs,
        levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::translate;
    use cliquesquare_core::{Optimizer, Variant};
    use cliquesquare_rdf::{Graph, LubmGenerator, LubmScale};
    use cliquesquare_sparql::parser::parse_query;

    fn graph() -> Graph {
        LubmGenerator::new(LubmScale::tiny()).generate()
    }

    fn physical(query: &str, variant: Variant) -> PhysicalPlan {
        let q = parse_query(query).unwrap();
        let result = Optimizer::with_variant(variant).optimize(&q);
        let logical = result.flattest_plans()[0].clone();
        translate(&logical, &graph())
    }

    #[test]
    fn single_star_join_is_a_map_only_job() {
        let plan = physical(
            "SELECT ?x WHERE { ?x ub:worksFor ?d . ?x ub:emailAddress ?e . ?x rdf:type ub:FullProfessor }",
            Variant::Msc,
        );
        assert_eq!(plan.reduce_join_count(), 0);
        let schedule = schedule(&plan);
        assert_eq!(schedule.job_count, 1);
        assert_eq!(schedule.kinds, vec![JobKind::MapOnly]);
        assert_eq!(schedule.descriptor(), "M");
    }

    #[test]
    fn one_reduce_level_is_one_job() {
        let plan = physical(
            "SELECT ?x ?z WHERE { ?x ub:advisor ?y . ?y ub:worksFor ?z . ?z ub:subOrganizationOf ?u }",
            Variant::Msc,
        );
        let schedule = schedule(&plan);
        assert_eq!(schedule.job_count, 1);
        assert_eq!(schedule.kinds, vec![JobKind::MapReduce]);
        assert_eq!(schedule.descriptor(), "1");
    }

    #[test]
    fn stacked_reduce_joins_need_more_jobs() {
        let plan = physical(
            "SELECT ?a WHERE { ?a ub:p1 ?b . ?b ub:p2 ?c . ?c ub:p3 ?d . ?d ub:p4 ?e . ?e ub:p5 ?f . ?f ub:p6 ?g . ?g ub:p7 ?h . ?h ub:p8 ?i }",
            Variant::Msc,
        );
        let sched = schedule(&plan);
        assert!(
            sched.job_count >= 2,
            "8-pattern chain needs at least 2 jobs"
        );
        assert!(sched.kinds.iter().all(|k| *k == JobKind::MapReduce));
        assert_eq!(sched.descriptor(), sched.job_count.to_string());
    }

    #[test]
    fn map_side_operators_are_assigned_to_their_consuming_job() {
        let plan = physical(
            "SELECT ?x ?z WHERE { ?x ub:advisor ?y . ?y ub:worksFor ?z . ?z ub:subOrganizationOf ?u }",
            Variant::Msc,
        );
        let sched = schedule(&plan);
        for (index, op) in plan.ops().iter().enumerate() {
            let job = sched.op_jobs[index];
            assert!(job >= 1 && job <= sched.job_count);
            if matches!(op, PhysicalOp::ReduceJoin { .. }) {
                assert_eq!(job, sched.levels[index]);
            }
        }
    }

    #[test]
    fn flat_plans_need_fewer_jobs_than_deep_plans() {
        let query = "SELECT ?a WHERE { ?a ub:p1 ?b . ?b ub:p2 ?c . ?c ub:p3 ?d . ?d ub:p4 ?e . ?e ub:p5 ?f . ?f ub:p6 ?g }";
        let flat = physical(query, Variant::Msc);
        let deep = physical(query, Variant::Mxc);
        let flat_jobs = schedule(&flat).job_count;
        let deep_jobs = schedule(&deep).job_count;
        assert!(
            flat_jobs <= deep_jobs,
            "flat plan uses {flat_jobs} jobs, deep one {deep_jobs}"
        );
    }
}
