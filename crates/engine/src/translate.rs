//! Logical → physical plan translation (Section 5.2), plus the
//! interesting-orders pass attaching ordering properties to the plan.
//!
//! * Every *edge* out of a logical Match operator becomes its own MapScan
//!   (plus a Filter for residual subject/object constants), reading the
//!   placement replica of the variable its consumer joins on, so that
//!   first-level joins are co-located.
//! * A logical Join whose inputs are all Match operators becomes a MapJoin;
//!   any other Join becomes a ReduceJoin, with a MapShuffler inserted on top
//!   of inputs that are themselves ReduceJoins (a reduce join cannot consume
//!   another reduce join's output directly).
//! * Select maps to Filter and Project maps to the physical projection.
//! * [`interesting_orders`] (run by [`PhysicalPlan::new`]) propagates each
//!   consumer's *required* ordering down the plan and each operator's
//!   *delivered* ordering up, so the executor only sorts where the two
//!   disagree — the classic interesting-orders reasoning applied to the
//!   sort-merge execution stack.

use crate::physical::{FilterCondition, OpOrdering, PhysId, PhysicalOp, PhysicalPlan, ScanSpec};
use cliquesquare_core::{LogicalOp, LogicalPlan, OpId};
use cliquesquare_rdf::term::vocab;
use cliquesquare_rdf::{Graph, Term, TermId, TriplePosition};
use cliquesquare_sparql::{PatternTerm, TriplePattern, Variable};
use std::collections::BTreeSet;

/// Sentinel id used for constants that do not occur in the dictionary: no
/// stored triple can carry it, so scans and filters using it match nothing.
pub const UNKNOWN_CONSTANT: TermId = TermId(u32::MAX);

/// Resolves a constant pattern term to its dictionary id (or the
/// [`UNKNOWN_CONSTANT`] sentinel when the value is absent from the data).
fn resolve(graph: &Graph, term: &Term) -> TermId {
    graph.lookup(term).unwrap_or(UNKNOWN_CONSTANT)
}

/// Picks the placement replica for a scan feeding a join on `attributes`:
/// the position (subject / property / object) of the placement variable
/// inside the pattern. The placement variable is the smallest join attribute,
/// so every input of the same join picks the same variable and the join is
/// co-located.
fn placement_for(pattern: &TriplePattern, attributes: &BTreeSet<Variable>) -> TriplePosition {
    let placement_var = attributes.iter().next();
    if let Some(var) = placement_var {
        for (term, position) in [
            (&pattern.subject, TriplePosition::Subject),
            (&pattern.property, TriplePosition::Property),
            (&pattern.object, TriplePosition::Object),
        ] {
            if term.as_variable() == Some(var) {
                return position;
            }
        }
    }
    TriplePosition::Subject
}

/// Builds the MapScan (and Filter, if needed) for one outgoing edge of a
/// logical Match operator. Returns the id of the top operator of the chain.
fn build_scan(
    ops: &mut Vec<PhysicalOp>,
    graph: &Graph,
    pattern_index: usize,
    pattern: &TriplePattern,
    output: &BTreeSet<Variable>,
    consumer_attributes: &BTreeSet<Variable>,
) -> PhysId {
    let rdf_type = graph.lookup(&Term::iri(vocab::RDF_TYPE));
    let property = pattern.property.as_constant().map(|t| resolve(graph, t));
    let is_type_scan = property.is_some() && property == rdf_type;
    let type_object = if is_type_scan {
        pattern.object.as_constant().map(|t| resolve(graph, t))
    } else {
        None
    };

    let spec = ScanSpec {
        pattern_index,
        pattern: pattern.clone(),
        placement: placement_for(pattern, consumer_attributes),
        property,
        type_object,
    };
    ops.push(PhysicalOp::MapScan {
        spec,
        output: output.clone(),
    });
    let scan_id = PhysId(ops.len() - 1);

    // Residual constants: the property constant was consumed by the file
    // name, an rdf:type object constant by the type file; anything else
    // becomes an explicit Filter.
    let mut conditions = Vec::new();
    if let Some(constant) = pattern.subject.as_constant() {
        conditions.push(FilterCondition {
            position: TriplePosition::Subject,
            constant: resolve(graph, constant),
        });
    }
    if !is_type_scan {
        if let Some(constant) = pattern.object.as_constant() {
            conditions.push(FilterCondition {
                position: TriplePosition::Object,
                constant: resolve(graph, constant),
            });
        }
    }
    if conditions.is_empty() {
        scan_id
    } else {
        ops.push(PhysicalOp::Filter {
            conditions,
            input: scan_id,
            output: output.clone(),
        });
        PhysId(ops.len() - 1)
    }
}

/// The ordering a MapScan's output rows satisfy, as a variable sequence.
///
/// [`cliquesquare_mapreduce::PartitionedStore::scan_node`] delivers triples
/// placement-major (`scan_order`: the placement position's value first, then
/// subject, property, object), and the executor converts triples to binding
/// rows in that order. Translated to columns: positions bound to constants
/// are equal on every scanned row (the property file restriction, the
/// `rdf:type` object file, and the fused Filter's residual constants) and
/// contribute nothing; a position repeating an already-listed variable is
/// equal to it by the binder's repeated-variable check and is skipped; and a
/// variable the output schema drops ends the claim — later positions only
/// order rows *within* ties of the dropped value, which the output can no
/// longer see.
fn scan_delivered_order(spec: &ScanSpec, output: &BTreeSet<Variable>) -> Vec<Variable> {
    let mut delivered: Vec<Variable> = Vec::new();
    for position in cliquesquare_mapreduce::scan_order(spec.placement) {
        let term = match position {
            TriplePosition::Subject => &spec.pattern.subject,
            TriplePosition::Property => &spec.pattern.property,
            TriplePosition::Object => &spec.pattern.object,
        };
        match term {
            PatternTerm::Constant(_) => continue,
            PatternTerm::Variable(v) => {
                if delivered.contains(v) {
                    continue;
                }
                if !output.contains(v) {
                    break;
                }
                delivered.push(v.clone());
            }
        }
    }
    delivered
}

/// Truncates a delivered ordering to the variables an operator's output
/// keeps: the first dropped variable ends the claim (it broke ties in a way
/// the narrower output can no longer observe).
fn truncate_order(order: &[Variable], output: &BTreeSet<Variable>) -> Vec<Variable> {
    order
        .iter()
        .take_while(|v| output.contains(*v))
        .cloned()
        .collect()
}

/// The **interesting-orders pass**: assigns every operator of a physical
/// plan arena its [`OpOrdering`] — the ordering its consumer requires and
/// the ordering its output delivers.
///
/// The pass runs in two sweeps over the bottom-up arena (inputs always
/// precede consumers):
///
/// 1. **Requirements, top-down** (descending ids): a join requires each of
///    its inputs ordered by its join attributes (so the sort-merge can
///    consume them without re-sorting), a projection requires its input
///    ordered by the projected variable sequence (so the final
///    canonicalization at the root is free), and pass-through operators
///    (Filter, MapShuffler) forward their own requirement to their input.
///    When an operator feeds several consumers (DAG plans), their claims are
///    *split* into prefix-compatible groups ([`resolve_claims`]): each
///    consumer's requirement decomposes into the prefix the producer can
///    serve for the whole group plus a residual the consumer re-sorts
///    locally, and the group satisfying the most consumers wins (ties go to
///    the earliest claimant, which keeps tree-shaped plans byte-identical to
///    the historical first-claim-wins rule). Correctness never depends on
///    the choice because the executor consults the *actual* tracked order of
///    every relation.
/// 2. **Delivered orders, bottom-up** (ascending ids): scans deliver their
///    index order ([`scan_delivered_order`]), joins deliver their natural
///    key order when it satisfies the requirement and otherwise sort their
///    output into the required order, pass-throughs forward their input's
///    order, and projections keep the longest delivered prefix whose
///    variables survive the projection.
pub fn interesting_orders(ops: &[PhysicalOp]) -> Vec<OpOrdering> {
    let n = ops.len();

    // Sweep 1: requirements flow from consumers (higher ids) to inputs.
    // Every consumer's claim is recorded; shared producers resolve the set
    // with [`resolve_claims`]. An operator's own requirement is final by the
    // time the sweep reaches it (all consumers have larger ids).
    let mut claims: Vec<Vec<Vec<Variable>>> = vec![Vec::new(); n];
    let mut required: Vec<Vec<Variable>> = vec![Vec::new(); n];
    for index in (0..n).rev() {
        required[index] = resolve_claims(&claims[index]);
        let own = required[index].clone();
        match &ops[index] {
            PhysicalOp::Project { variables, input } => {
                claims[input.index()].push(variables.clone());
            }
            PhysicalOp::Filter { input, .. } | PhysicalOp::MapShuffler { input, .. } => {
                claims[input.index()].push(own);
            }
            PhysicalOp::MapJoin {
                attributes, inputs, ..
            }
            | PhysicalOp::ReduceJoin {
                attributes, inputs, ..
            } => {
                let attrs: Vec<Variable> = attributes.iter().cloned().collect();
                for &input in inputs {
                    claims[input.index()].push(attrs.clone());
                }
            }
            PhysicalOp::MapScan { .. } => {}
        }
    }

    // Sweep 2: delivered orders flow from inputs to consumers.
    let mut orders: Vec<OpOrdering> = Vec::with_capacity(n);
    for index in 0..n {
        let required_order = required[index].clone();
        let delivered = match &ops[index] {
            PhysicalOp::MapScan { spec, output } => scan_delivered_order(spec, output),
            PhysicalOp::Filter { input, output, .. }
            | PhysicalOp::MapShuffler { input, output, .. } => {
                truncate_order(&orders[input.index()].delivered, output)
            }
            PhysicalOp::MapJoin { attributes, .. } | PhysicalOp::ReduceJoin { attributes, .. } => {
                let natural: Vec<Variable> = attributes.iter().cloned().collect();
                let satisfied = required_order.len() <= natural.len()
                    && natural[..required_order.len()] == required_order[..];
                if required_order.is_empty() || satisfied {
                    natural
                } else {
                    required_order.clone()
                }
            }
            PhysicalOp::Project { variables, input } => orders[input.index()]
                .delivered
                .iter()
                .take_while(|v| variables.contains(v))
                .cloned()
                .collect(),
        };
        orders.push(OpOrdering {
            required: required_order,
            delivered,
        });
    }
    orders
}

/// Resolves the order claims of an operator's consumers into the single
/// ordering the operator should deliver.
///
/// Claims are greedily grouped by *prefix compatibility* (two orders are
/// compatible when one is a prefix of the other; the group keeps the longer
/// one, which serves every member — each consumer that asked for the shorter
/// prefix still sees its requirement satisfied). The group with the most
/// claimants wins; ties go to the earliest-formed group, so an operator with
/// a single consumer — every tree-shaped plan — resolves exactly as the
/// historical first-claim-wins rule did. Consumers outside the winning group
/// re-sort locally, which the executor detects through the tracked order on
/// the relation itself.
fn resolve_claims(claims: &[Vec<Variable>]) -> Vec<Variable> {
    // (representative order, claimant count) per prefix-compatible group.
    let mut groups: Vec<(Vec<Variable>, usize)> = Vec::new();
    for claim in claims {
        if claim.is_empty() {
            continue;
        }
        match groups.iter_mut().find(|(order, _)| {
            let shared = order.len().min(claim.len());
            order[..shared] == claim[..shared]
        }) {
            Some((order, count)) => {
                if claim.len() > order.len() {
                    *order = claim.clone();
                }
                *count += 1;
            }
            None => groups.push((claim.clone(), 1)),
        }
    }
    // Earliest group wins ties, so scan in reverse and let `>=` overwrite.
    groups
        .into_iter()
        .rev()
        .max_by(|a, b| a.1.cmp(&b.1))
        .map(|(order, _)| order)
        .unwrap_or_default()
}

/// Marks the joins whose output may stay **run-length factorized** (see
/// [`crate::factorized`]) instead of materializing cross products eagerly.
/// A join qualifies when
///
/// 1. it has at least two inputs (a single-input join is the identity),
/// 2. its *only* consumer chain — through Filters that are themselves
///    single-consumer — ends at the root Project, so the runs are expanded
///    exactly once, at the final projection boundary, and
/// 3. its inputs pairwise share **only** the join attributes: aligned key
///    groups then combine as pure cross products, with no cross-input
///    equality checks to filter combinations.
///
/// Everything else (joins feeding shufflers or other joins, inputs with
/// shared non-join variables) takes the eager row-major path unchanged.
pub(crate) fn factorized_joins(ops: &[PhysicalOp], root: PhysId) -> Vec<bool> {
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); ops.len()];
    for (index, op) in ops.iter().enumerate() {
        for input in op.inputs() {
            consumers[input.index()].push(index);
        }
    }
    let mut marked = vec![false; ops.len()];
    for (index, op) in ops.iter().enumerate() {
        let (attributes, inputs) = match op {
            PhysicalOp::MapJoin {
                attributes, inputs, ..
            }
            | PhysicalOp::ReduceJoin {
                attributes, inputs, ..
            } => (attributes, inputs),
            _ => continue,
        };
        if inputs.len() < 2 {
            continue;
        }
        // Follow the single-consumer chain through Filters to the root
        // Project.
        let mut current = index;
        let ends_at_root_project = loop {
            match consumers[current].as_slice() {
                [consumer] => match &ops[*consumer] {
                    PhysicalOp::Filter { .. } => current = *consumer,
                    PhysicalOp::Project { .. } => break *consumer == root.index(),
                    _ => break false,
                },
                _ => break false,
            }
        };
        if !ends_at_root_project {
            continue;
        }
        let outputs: Vec<BTreeSet<Variable>> =
            inputs.iter().map(|&i| ops[i.index()].output()).collect();
        let share_only_keys = outputs.iter().enumerate().all(|(i, a)| {
            outputs[i + 1..]
                .iter()
                .all(|b| a.intersection(b).all(|v| attributes.contains(v)))
        });
        marked[index] = share_only_keys;
    }
    marked
}

/// Translates a logical plan into a physical MapReduce plan. The returned
/// plan carries the ordering properties of [`interesting_orders`], which
/// [`crate::executor`] uses to elide redundant sorts.
pub fn translate(plan: &LogicalPlan, graph: &Graph) -> PhysicalPlan {
    let mut ops: Vec<PhysicalOp> = Vec::new();
    // Physical id of each translated non-Match logical operator.
    let mut translated: Vec<Option<PhysId>> = vec![None; plan.len()];

    // Resolves a logical input of `consumer_attributes`-joining operator,
    // creating a dedicated scan chain for Match inputs.
    fn resolve_input(
        plan: &LogicalPlan,
        graph: &Graph,
        ops: &mut Vec<PhysicalOp>,
        translated: &[Option<PhysId>],
        input: OpId,
        consumer_attributes: &BTreeSet<Variable>,
    ) -> PhysId {
        match plan.op(input) {
            LogicalOp::Match {
                pattern_index,
                pattern,
                output,
            } => build_scan(
                ops,
                graph,
                *pattern_index,
                pattern,
                output,
                consumer_attributes,
            ),
            _ => translated[input.index()].expect("inputs are translated before consumers"),
        }
    }

    // The logical arena is bottom-up: inputs always precede consumers.
    for (index, op) in plan.ops().iter().enumerate() {
        let id = OpId(index);
        match op {
            LogicalOp::Match { .. } => {
                // Scans are created lazily, one per outgoing edge.
            }
            LogicalOp::Join {
                attributes,
                inputs,
                output,
            } => {
                let all_matches = inputs.iter().all(|i| plan.op(*i).is_match());
                let mut physical_inputs = Vec::with_capacity(inputs.len());
                for &input in inputs {
                    let mut phys =
                        resolve_input(plan, graph, &mut ops, &translated, input, attributes);
                    if !all_matches && matches!(ops[phys.index()], PhysicalOp::ReduceJoin { .. }) {
                        // A reduce join cannot directly consume another
                        // reduce join's output: repartition it first.
                        ops.push(PhysicalOp::MapShuffler {
                            attributes: attributes.clone(),
                            input: phys,
                            output: ops[phys.index()].output(),
                        });
                        phys = PhysId(ops.len() - 1);
                    }
                    physical_inputs.push(phys);
                }
                let join = if all_matches {
                    PhysicalOp::MapJoin {
                        attributes: attributes.clone(),
                        inputs: physical_inputs,
                        output: output.clone(),
                    }
                } else {
                    PhysicalOp::ReduceJoin {
                        attributes: attributes.clone(),
                        inputs: physical_inputs,
                        output: output.clone(),
                    }
                };
                ops.push(join);
                translated[id.index()] = Some(PhysId(ops.len() - 1));
            }
            LogicalOp::Select {
                condition: _,
                input,
                output,
            } => {
                let phys = resolve_input(plan, graph, &mut ops, &translated, *input, output);
                // Logical selections carry no machine-checkable condition in
                // the BGP fragment (joins enforce all equalities), so they
                // translate to a no-op filter.
                ops.push(PhysicalOp::Filter {
                    conditions: Vec::new(),
                    input: phys,
                    output: output.clone(),
                });
                translated[id.index()] = Some(PhysId(ops.len() - 1));
            }
            LogicalOp::Project { variables, input } => {
                let attrs: BTreeSet<Variable> = variables.iter().cloned().collect();
                let phys = resolve_input(plan, graph, &mut ops, &translated, *input, &attrs);
                ops.push(PhysicalOp::Project {
                    variables: variables.clone(),
                    input: phys,
                });
                translated[id.index()] = Some(PhysId(ops.len() - 1));
            }
        }
    }

    let root = translated[plan.root().index()].expect("root translated");
    PhysicalPlan::new(ops, root)
}

/// Rebinds a cached physical plan to a structurally identical query with
/// (possibly) different constants — the warm path of the template plan
/// cache: the expensive decompose→optimize→translate pipeline ran once for
/// the template, and each repetition only re-resolves its constants.
///
/// The plan's variable names stay those of the template query it was built
/// from (answer rows depend only on pattern structure, constants and the
/// projection's position order, never on variable *names*); constants live
/// in exactly three places and all are rewritten from `query`:
///
/// * each `ScanSpec.pattern`'s constant positions (read by the row binder),
/// * `ScanSpec.property` / `ScanSpec.type_object` (the file restrictions),
/// * residual `FilterCondition.constant`s of the scan's fused filter.
///
/// Returns `None` when `query` does not structurally match the plan (a
/// pattern index out of range, or a constant position that is not constant
/// in `query`) — callers fall back to full planning. A correctly keyed
/// cache never takes that path; it guards against key collisions.
pub fn rebind_constants(
    plan: &PhysicalPlan,
    query: &cliquesquare_sparql::BgpQuery,
    graph: &Graph,
) -> Option<PhysicalPlan> {
    let rdf_type = graph.lookup(&Term::iri(vocab::RDF_TYPE));
    let mut ops = plan.ops().to_vec();
    // Pattern index of each MapScan op, so filters can find the pattern
    // their conditions came from (a residual filter sits directly on its
    // scan — see `build_scan`).
    let mut scan_patterns: Vec<Option<usize>> = vec![None; ops.len()];
    for (index, op) in ops.iter_mut().enumerate() {
        match op {
            PhysicalOp::MapScan { spec, .. } => {
                let new_pattern = query.patterns().get(spec.pattern_index)?;
                scan_patterns[index] = Some(spec.pattern_index);
                for (cached, new) in [
                    (&mut spec.pattern.subject, &new_pattern.subject),
                    (&mut spec.pattern.property, &new_pattern.property),
                    (&mut spec.pattern.object, &new_pattern.object),
                ] {
                    if !cached.is_variable() {
                        *cached = PatternTerm::Constant(new.as_constant()?.clone());
                    }
                }
                spec.property = spec
                    .pattern
                    .property
                    .as_constant()
                    .map(|t| resolve(graph, t));
                let is_type_scan = spec.property.is_some() && spec.property == rdf_type;
                spec.type_object = if is_type_scan {
                    spec.pattern.object.as_constant().map(|t| resolve(graph, t))
                } else {
                    None
                };
            }
            PhysicalOp::Filter {
                conditions, input, ..
            } => {
                if conditions.is_empty() {
                    continue;
                }
                let pattern_index = scan_patterns[input.index()]?;
                let new_pattern = query.patterns().get(pattern_index)?;
                for condition in conditions.iter_mut() {
                    let term = match condition.position {
                        TriplePosition::Subject => &new_pattern.subject,
                        TriplePosition::Property => &new_pattern.property,
                        TriplePosition::Object => &new_pattern.object,
                    };
                    condition.constant = resolve(graph, term.as_constant()?);
                }
            }
            _ => {}
        }
    }
    // `PhysicalPlan::new` re-runs the interesting-orders and factorization
    // passes; both depend only on operator structure and variables, which
    // rebinding leaves untouched, so the rebuilt plan is the cached plan
    // with fresh constants.
    Some(PhysicalPlan::new(ops, plan.root()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesquare_core::{Optimizer, Variant};
    use cliquesquare_rdf::{LubmGenerator, LubmScale};
    use cliquesquare_sparql::parser::parse_query;

    fn lubm_graph() -> Graph {
        LubmGenerator::new(LubmScale::tiny()).generate()
    }

    fn best_plan(query: &str, variant: Variant) -> LogicalPlan {
        let q = parse_query(query).unwrap();
        let result = Optimizer::with_variant(variant).optimize(&q);
        result
            .flattest_plans()
            .first()
            .map(|p| (*p).clone())
            .expect("plan found")
    }

    #[test]
    fn first_level_join_becomes_map_join() {
        let graph = lubm_graph();
        let logical = best_plan(
            "SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d }",
            Variant::Msc,
        );
        let physical = translate(&logical, &graph);
        assert_eq!(physical.map_join_count(), 1);
        assert_eq!(physical.reduce_join_count(), 0);
        // Both scans read the object placement (the join variable d is in
        // object position of both patterns).
        let scans = physical.ops_where(|op| matches!(op, PhysicalOp::MapScan { .. }));
        assert_eq!(scans.len(), 2);
        for id in scans {
            if let PhysicalOp::MapScan { spec, .. } = physical.op(id) {
                assert_eq!(spec.placement, TriplePosition::Object);
                assert!(spec.property.is_some());
            }
        }
    }

    #[test]
    fn type_patterns_use_type_split_files() {
        let graph = lubm_graph();
        let logical = best_plan(
            "SELECT ?x WHERE { ?x rdf:type ub:GraduateStudent . ?x ub:memberOf ?d }",
            Variant::Msc,
        );
        let physical = translate(&logical, &graph);
        let mut saw_type_scan = false;
        for id in physical.ops_where(|op| matches!(op, PhysicalOp::MapScan { .. })) {
            if let PhysicalOp::MapScan { spec, .. } = physical.op(id) {
                if spec.type_object.is_some() {
                    saw_type_scan = true;
                    assert_ne!(spec.type_object, Some(UNKNOWN_CONSTANT));
                }
            }
        }
        assert!(
            saw_type_scan,
            "rdf:type pattern should narrow to a class file"
        );
    }

    #[test]
    fn second_level_joins_become_reduce_joins() {
        let graph = lubm_graph();
        let logical = best_plan(
            "SELECT ?x ?z WHERE { ?x ub:advisor ?y . ?y ub:worksFor ?z . ?z ub:subOrganizationOf ?u }",
            Variant::Msc,
        );
        assert_eq!(logical.height(), 2);
        let physical = translate(&logical, &graph);
        assert!(physical.reduce_join_count() >= 1);
        assert!(physical.map_join_count() >= 1);
    }

    #[test]
    fn reduce_join_over_reduce_join_gets_a_shuffler() {
        let graph = lubm_graph();
        // A long chain forces at least two stacked reduce joins under MXC
        // (binary-ish exact covers give taller plans).
        let logical = best_plan(
            "SELECT ?a WHERE { ?a ub:p1 ?b . ?b ub:p2 ?c . ?c ub:p3 ?d . ?d ub:p4 ?e . ?e ub:p5 ?f . ?f ub:p6 ?g }",
            Variant::Mxc,
        );
        let physical = translate(&logical, &graph);
        if logical.height() >= 3 {
            let shufflers = physical.ops_where(|op| matches!(op, PhysicalOp::MapShuffler { .. }));
            assert!(!shufflers.is_empty());
        }
    }

    #[test]
    fn constants_missing_from_data_map_to_the_sentinel() {
        let graph = lubm_graph();
        let logical = best_plan(
            "SELECT ?x WHERE { ?x ub:nonexistentProperty <http://nowhere.example> . ?x ub:worksFor ?d }",
            Variant::Msc,
        );
        let physical = translate(&logical, &graph);
        let mut saw_sentinel = false;
        for op in physical.ops() {
            if let PhysicalOp::MapScan { spec, .. } = op {
                if spec.property == Some(UNKNOWN_CONSTANT) {
                    saw_sentinel = true;
                }
            }
        }
        assert!(saw_sentinel);
    }

    #[test]
    fn shared_match_gets_one_scan_per_consumer() {
        let graph = lubm_graph();
        let q = parse_query("SELECT ?x WHERE { ?x ub:p1 ?y . ?y ub:p2 ?z . ?y ub:p3 ?w }").unwrap();
        // SC may build DAG plans where one pattern feeds two joins.
        let result = Optimizer::with_variant(Variant::Sc).optimize(&q);
        for logical in &result.plans {
            let physical = translate(logical, &graph);
            let scans = physical.ops_where(|op| matches!(op, PhysicalOp::MapScan { .. }));
            // At least one scan per pattern; shared patterns may scan twice.
            assert!(scans.len() >= q.len());
            assert!(physical.ops().len() >= logical.len());
        }
    }

    /// Every scan's delivered order starts with its placement variable (when
    /// that variable is in the output): the store scans placement-major.
    #[test]
    fn scans_deliver_their_placement_variable_first() {
        let graph = lubm_graph();
        let logical = best_plan(
            "SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d }",
            Variant::Msc,
        );
        let physical = translate(&logical, &graph);
        for id in physical.ops_where(|op| matches!(op, PhysicalOp::MapScan { .. })) {
            let PhysicalOp::MapScan { spec, output } = physical.op(id) else {
                unreachable!()
            };
            let ordering = physical.ordering(id);
            assert!(!ordering.delivered.is_empty(), "scan delivers an order");
            let placement_var = match spec.placement {
                TriplePosition::Subject => spec.pattern.subject.as_variable(),
                TriplePosition::Property => spec.pattern.property.as_variable(),
                TriplePosition::Object => spec.pattern.object.as_variable(),
            };
            if let Some(var) = placement_var {
                if output.contains(var) {
                    assert_eq!(&ordering.delivered[0], var);
                }
            }
        }
    }

    /// Joins require their inputs ordered by the join attributes, and the
    /// scans feeding a first-level join deliver exactly that prefix.
    #[test]
    fn join_inputs_are_required_in_key_order_and_scans_satisfy_it() {
        let graph = lubm_graph();
        let logical = best_plan(
            "SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d }",
            Variant::Msc,
        );
        let physical = translate(&logical, &graph);
        let joins = physical.ops_where(|op| {
            matches!(
                op,
                PhysicalOp::MapJoin { .. } | PhysicalOp::ReduceJoin { .. }
            )
        });
        assert!(!joins.is_empty());
        for id in joins {
            let attrs: Vec<Variable> = match physical.op(id) {
                PhysicalOp::MapJoin { attributes, .. }
                | PhysicalOp::ReduceJoin { attributes, .. } => attributes.iter().cloned().collect(),
                _ => unreachable!(),
            };
            for input in physical.op(id).inputs() {
                let ordering = physical.ordering(input);
                assert_eq!(
                    ordering.required, attrs,
                    "a join input must be required in the join's key order"
                );
                assert!(
                    ordering.is_satisfied(),
                    "a first-level scan input delivers the required prefix: {ordering:?}"
                );
            }
        }
    }

    /// A join below a projection delivers the projection's variable order
    /// (so the final canonicalization is free), unless its natural key order
    /// already satisfies it.
    #[test]
    fn the_projection_requirement_reaches_the_root_join() {
        let graph = lubm_graph();
        let logical = best_plan(
            "SELECT ?p WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d }",
            Variant::Msc,
        );
        let physical = translate(&logical, &graph);
        let PhysicalOp::Project { variables, input } = physical.op(physical.root()) else {
            panic!("root must be a projection");
        };
        // The requirement flows through pass-through operators down to the
        // first order-producing operator.
        let mut id = *input;
        loop {
            assert_eq!(&physical.ordering(id).required, variables);
            match physical.op(id) {
                PhysicalOp::Filter { input, .. } | PhysicalOp::MapShuffler { input, .. } => {
                    id = *input;
                }
                _ => break,
            }
        }
        let delivered = &physical.ordering(id).delivered;
        assert!(
            delivered.len() >= variables.len() && delivered[..variables.len()] == variables[..],
            "the root join delivers the projection's order: {delivered:?} vs {variables:?}"
        );
        // The projection therefore delivers its own variables in order — the
        // plan-level statement that the final canonicalization is elided.
        assert_eq!(&physical.ordering(physical.root()).delivered, variables);
    }

    /// A shuffler forwards its consumer's requirement to the reduce join
    /// below it, which then delivers that order: the multi-job sort elision.
    #[test]
    fn stacked_reduce_joins_propagate_orders_through_the_shuffler() {
        let graph = lubm_graph();
        let logical = best_plan(
            "SELECT ?a WHERE { ?a ub:p1 ?b . ?b ub:p2 ?c . ?c ub:p3 ?d . ?d ub:p4 ?e . ?e ub:p5 ?f . ?f ub:p6 ?g }",
            Variant::Mxc,
        );
        let physical = translate(&logical, &graph);
        let shufflers = physical.ops_where(|op| matches!(op, PhysicalOp::MapShuffler { .. }));
        if shufflers.is_empty() {
            return; // this optimizer variant found a flatter plan
        }
        for id in shufflers {
            let PhysicalOp::MapShuffler { input, .. } = physical.op(id) else {
                unreachable!()
            };
            let own = physical.ordering(id);
            let below = physical.ordering(*input);
            assert_eq!(own.required, below.required, "requirement passes through");
            assert!(
                below.is_satisfied(),
                "the reduce join below the shuffler adopts (or naturally \
                 satisfies) the requirement: {below:?}"
            );
            assert!(
                own.is_satisfied(),
                "the shuffler forwards a satisfied order"
            );
        }
    }

    /// The pass on a hand-built arena: requirements flow top-down, delivered
    /// orders bottom-up, and an unconstrained join keeps its natural order.
    #[test]
    fn interesting_orders_on_a_hand_built_arena() {
        let graph = lubm_graph();
        let logical = best_plan(
            "SELECT ?x ?z WHERE { ?x ub:advisor ?y . ?y ub:worksFor ?z . ?z ub:subOrganizationOf ?u }",
            Variant::Msc,
        );
        let physical = translate(&logical, &graph);
        let orders = interesting_orders(physical.ops());
        assert_eq!(orders.len(), physical.len());
        for (index, ordering) in orders.iter().enumerate() {
            assert_eq!(physical.ordering(PhysId(index)), ordering);
            // Delivered orders never repeat a variable.
            for (i, v) in ordering.delivered.iter().enumerate() {
                assert!(!ordering.delivered[..i].contains(v));
            }
        }
    }

    #[test]
    fn project_is_preserved_at_the_root() {
        let graph = lubm_graph();
        let logical = best_plan(
            "SELECT ?p WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d }",
            Variant::Msc,
        );
        let physical = translate(&logical, &graph);
        assert!(matches!(
            physical.op(physical.root()),
            PhysicalOp::Project { .. }
        ));
    }

    /// [`resolve_claims`] groups prefix-compatible orders, keeps the longest
    /// representative, lets the largest group win, and breaks ties toward
    /// the earliest claimant (the historical first-claim-wins behaviour).
    #[test]
    fn resolve_claims_prefers_the_largest_prefix_compatible_group() {
        let v = |name: &str| Variable::new(name);
        // Single claim: returned as-is.
        assert_eq!(resolve_claims(&[vec![v("a")]]), vec![v("a")]);
        // Empty claim set (or all-empty claims): no requirement.
        assert!(resolve_claims(&[]).is_empty());
        assert!(resolve_claims(&[vec![], vec![]]).is_empty());
        // Prefix-compatible claims merge and keep the longest order.
        assert_eq!(
            resolve_claims(&[vec![v("a")], vec![v("a"), v("b")]]),
            vec![v("a"), v("b")]
        );
        // Two claimants of [a]-prefixed orders beat one claimant of [c].
        assert_eq!(
            resolve_claims(&[vec![v("c")], vec![v("a"), v("b")], vec![v("a")]]),
            vec![v("a"), v("b")]
        );
        // A tie goes to the earliest claimant.
        assert_eq!(resolve_claims(&[vec![v("x")], vec![v("y")]]), vec![v("x")]);
        // Incompatible at the first column → separate groups even if the
        // tails agree.
        assert_eq!(
            resolve_claims(&[vec![v("x"), v("k")], vec![v("y"), v("k")]]),
            vec![v("x"), v("k")]
        );
    }

    #[test]
    fn rebind_to_the_same_query_reproduces_the_plan() {
        let graph = lubm_graph();
        let query = parse_query(
            "SELECT ?x WHERE { ?x rdf:type ub:GraduateStudent . ?x ub:memberOf ?d . ?x ub:advisor ?a }",
        )
        .unwrap();
        let logical = Optimizer::with_variant(Variant::Msc)
            .optimize(&query)
            .flattest_plans()
            .first()
            .map(|p| (*p).clone())
            .expect("plan found");
        let physical = translate(&logical, &graph);
        let rebound = rebind_constants(&physical, &query, &graph).expect("same query rebinds");
        assert_eq!(rebound, physical);
    }

    #[test]
    fn rebind_swaps_constants_and_matches_cold_planning_answers() {
        use crate::executor::Executor;
        use cliquesquare_mapreduce::{Cluster, ClusterConfig};

        let graph = lubm_graph();
        let cluster = Cluster::load(graph, ClusterConfig::with_nodes(2));
        let template = parse_query(
            "SELECT ?x ?d WHERE { ?x rdf:type ub:GraduateStudent . ?x ub:memberOf ?d }",
        )
        .unwrap();
        // Same shape, different class constant.
        let repeat = parse_query(
            "SELECT ?x ?d WHERE { ?x rdf:type ub:UndergraduateStudent . ?x ub:memberOf ?d }",
        )
        .unwrap();

        let plan_for = |q: &cliquesquare_sparql::BgpQuery| {
            let logical = Optimizer::with_variant(Variant::Msc)
                .optimize(q)
                .flattest_plans()
                .first()
                .map(|p| (*p).clone())
                .expect("plan found");
            translate(&logical, cluster.graph())
        };

        let cached = plan_for(&template);
        let rebound =
            rebind_constants(&cached, &repeat, cluster.graph()).expect("template rebinds");
        // The type split must follow the new class constant.
        let new_class = cluster
            .graph()
            .lookup(&Term::iri(vocab::ub("UndergraduateStudent")));
        assert!(rebound.ops().iter().any(|op| matches!(
            op,
            PhysicalOp::MapScan { spec, .. } if spec.type_object == new_class && new_class.is_some()
        )));

        let executor = Executor::sequential(&cluster);
        let warm = executor.execute(&rebound);
        let cold = executor.execute(&plan_for(&repeat));
        assert_eq!(warm.results, cold.results);
        assert!(!cold.results.is_empty(), "repeat query should have answers");
    }

    #[test]
    fn rebind_rejects_structurally_different_queries() {
        let graph = lubm_graph();
        let template =
            parse_query("SELECT ?x WHERE { ?x rdf:type ub:GraduateStudent . ?x ub:memberOf ?d }")
                .unwrap();
        // Constant position became a variable: not the same template.
        let other = parse_query("SELECT ?x WHERE { ?x rdf:type ?c . ?x ub:memberOf ?d }").unwrap();
        let logical = Optimizer::with_variant(Variant::Msc)
            .optimize(&template)
            .flattest_plans()
            .first()
            .map(|p| (*p).clone())
            .expect("plan found");
        let physical = translate(&logical, &graph);
        assert!(rebind_constants(&physical, &other, &graph).is_none());
    }
}
