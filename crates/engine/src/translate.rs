//! Logical → physical plan translation (Section 5.2).
//!
//! * Every *edge* out of a logical Match operator becomes its own MapScan
//!   (plus a Filter for residual subject/object constants), reading the
//!   placement replica of the variable its consumer joins on, so that
//!   first-level joins are co-located.
//! * A logical Join whose inputs are all Match operators becomes a MapJoin;
//!   any other Join becomes a ReduceJoin, with a MapShuffler inserted on top
//!   of inputs that are themselves ReduceJoins (a reduce join cannot consume
//!   another reduce join's output directly).
//! * Select maps to Filter and Project maps to the physical projection.

use crate::physical::{FilterCondition, PhysId, PhysicalOp, PhysicalPlan, ScanSpec};
use cliquesquare_core::{LogicalOp, LogicalPlan, OpId};
use cliquesquare_rdf::term::vocab;
use cliquesquare_rdf::{Graph, Term, TermId, TriplePosition};
use cliquesquare_sparql::{TriplePattern, Variable};
use std::collections::BTreeSet;

/// Sentinel id used for constants that do not occur in the dictionary: no
/// stored triple can carry it, so scans and filters using it match nothing.
pub const UNKNOWN_CONSTANT: TermId = TermId(u32::MAX);

/// Resolves a constant pattern term to its dictionary id (or the
/// [`UNKNOWN_CONSTANT`] sentinel when the value is absent from the data).
fn resolve(graph: &Graph, term: &Term) -> TermId {
    graph.lookup(term).unwrap_or(UNKNOWN_CONSTANT)
}

/// Picks the placement replica for a scan feeding a join on `attributes`:
/// the position (subject / property / object) of the placement variable
/// inside the pattern. The placement variable is the smallest join attribute,
/// so every input of the same join picks the same variable and the join is
/// co-located.
fn placement_for(pattern: &TriplePattern, attributes: &BTreeSet<Variable>) -> TriplePosition {
    let placement_var = attributes.iter().next();
    if let Some(var) = placement_var {
        for (term, position) in [
            (&pattern.subject, TriplePosition::Subject),
            (&pattern.property, TriplePosition::Property),
            (&pattern.object, TriplePosition::Object),
        ] {
            if term.as_variable() == Some(var) {
                return position;
            }
        }
    }
    TriplePosition::Subject
}

/// Builds the MapScan (and Filter, if needed) for one outgoing edge of a
/// logical Match operator. Returns the id of the top operator of the chain.
fn build_scan(
    ops: &mut Vec<PhysicalOp>,
    graph: &Graph,
    pattern_index: usize,
    pattern: &TriplePattern,
    output: &BTreeSet<Variable>,
    consumer_attributes: &BTreeSet<Variable>,
) -> PhysId {
    let rdf_type = graph.lookup(&Term::iri(vocab::RDF_TYPE));
    let property = pattern.property.as_constant().map(|t| resolve(graph, t));
    let is_type_scan = property.is_some() && property == rdf_type;
    let type_object = if is_type_scan {
        pattern.object.as_constant().map(|t| resolve(graph, t))
    } else {
        None
    };

    let spec = ScanSpec {
        pattern_index,
        pattern: pattern.clone(),
        placement: placement_for(pattern, consumer_attributes),
        property,
        type_object,
    };
    ops.push(PhysicalOp::MapScan {
        spec,
        output: output.clone(),
    });
    let scan_id = PhysId(ops.len() - 1);

    // Residual constants: the property constant was consumed by the file
    // name, an rdf:type object constant by the type file; anything else
    // becomes an explicit Filter.
    let mut conditions = Vec::new();
    if let Some(constant) = pattern.subject.as_constant() {
        conditions.push(FilterCondition {
            position: TriplePosition::Subject,
            constant: resolve(graph, constant),
        });
    }
    if !is_type_scan {
        if let Some(constant) = pattern.object.as_constant() {
            conditions.push(FilterCondition {
                position: TriplePosition::Object,
                constant: resolve(graph, constant),
            });
        }
    }
    if conditions.is_empty() {
        scan_id
    } else {
        ops.push(PhysicalOp::Filter {
            conditions,
            input: scan_id,
            output: output.clone(),
        });
        PhysId(ops.len() - 1)
    }
}

/// Translates a logical plan into a physical MapReduce plan.
pub fn translate(plan: &LogicalPlan, graph: &Graph) -> PhysicalPlan {
    let mut ops: Vec<PhysicalOp> = Vec::new();
    // Physical id of each translated non-Match logical operator.
    let mut translated: Vec<Option<PhysId>> = vec![None; plan.len()];

    // Resolves a logical input of `consumer_attributes`-joining operator,
    // creating a dedicated scan chain for Match inputs.
    fn resolve_input(
        plan: &LogicalPlan,
        graph: &Graph,
        ops: &mut Vec<PhysicalOp>,
        translated: &[Option<PhysId>],
        input: OpId,
        consumer_attributes: &BTreeSet<Variable>,
    ) -> PhysId {
        match plan.op(input) {
            LogicalOp::Match {
                pattern_index,
                pattern,
                output,
            } => build_scan(
                ops,
                graph,
                *pattern_index,
                pattern,
                output,
                consumer_attributes,
            ),
            _ => translated[input.index()].expect("inputs are translated before consumers"),
        }
    }

    // The logical arena is bottom-up: inputs always precede consumers.
    for (index, op) in plan.ops().iter().enumerate() {
        let id = OpId(index);
        match op {
            LogicalOp::Match { .. } => {
                // Scans are created lazily, one per outgoing edge.
            }
            LogicalOp::Join {
                attributes,
                inputs,
                output,
            } => {
                let all_matches = inputs.iter().all(|i| plan.op(*i).is_match());
                let mut physical_inputs = Vec::with_capacity(inputs.len());
                for &input in inputs {
                    let mut phys =
                        resolve_input(plan, graph, &mut ops, &translated, input, attributes);
                    if !all_matches && matches!(ops[phys.index()], PhysicalOp::ReduceJoin { .. }) {
                        // A reduce join cannot directly consume another
                        // reduce join's output: repartition it first.
                        ops.push(PhysicalOp::MapShuffler {
                            attributes: attributes.clone(),
                            input: phys,
                            output: ops[phys.index()].output(),
                        });
                        phys = PhysId(ops.len() - 1);
                    }
                    physical_inputs.push(phys);
                }
                let join = if all_matches {
                    PhysicalOp::MapJoin {
                        attributes: attributes.clone(),
                        inputs: physical_inputs,
                        output: output.clone(),
                    }
                } else {
                    PhysicalOp::ReduceJoin {
                        attributes: attributes.clone(),
                        inputs: physical_inputs,
                        output: output.clone(),
                    }
                };
                ops.push(join);
                translated[id.index()] = Some(PhysId(ops.len() - 1));
            }
            LogicalOp::Select {
                condition: _,
                input,
                output,
            } => {
                let phys = resolve_input(plan, graph, &mut ops, &translated, *input, output);
                // Logical selections carry no machine-checkable condition in
                // the BGP fragment (joins enforce all equalities), so they
                // translate to a no-op filter.
                ops.push(PhysicalOp::Filter {
                    conditions: Vec::new(),
                    input: phys,
                    output: output.clone(),
                });
                translated[id.index()] = Some(PhysId(ops.len() - 1));
            }
            LogicalOp::Project { variables, input } => {
                let attrs: BTreeSet<Variable> = variables.iter().cloned().collect();
                let phys = resolve_input(plan, graph, &mut ops, &translated, *input, &attrs);
                ops.push(PhysicalOp::Project {
                    variables: variables.clone(),
                    input: phys,
                });
                translated[id.index()] = Some(PhysId(ops.len() - 1));
            }
        }
    }

    let root = translated[plan.root().index()].expect("root translated");
    PhysicalPlan::new(ops, root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesquare_core::{Optimizer, Variant};
    use cliquesquare_rdf::{LubmGenerator, LubmScale};
    use cliquesquare_sparql::parser::parse_query;

    fn lubm_graph() -> Graph {
        LubmGenerator::new(LubmScale::tiny()).generate()
    }

    fn best_plan(query: &str, variant: Variant) -> LogicalPlan {
        let q = parse_query(query).unwrap();
        let result = Optimizer::with_variant(variant).optimize(&q);
        result
            .flattest_plans()
            .first()
            .map(|p| (*p).clone())
            .expect("plan found")
    }

    #[test]
    fn first_level_join_becomes_map_join() {
        let graph = lubm_graph();
        let logical = best_plan(
            "SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d }",
            Variant::Msc,
        );
        let physical = translate(&logical, &graph);
        assert_eq!(physical.map_join_count(), 1);
        assert_eq!(physical.reduce_join_count(), 0);
        // Both scans read the object placement (the join variable d is in
        // object position of both patterns).
        let scans = physical.ops_where(|op| matches!(op, PhysicalOp::MapScan { .. }));
        assert_eq!(scans.len(), 2);
        for id in scans {
            if let PhysicalOp::MapScan { spec, .. } = physical.op(id) {
                assert_eq!(spec.placement, TriplePosition::Object);
                assert!(spec.property.is_some());
            }
        }
    }

    #[test]
    fn type_patterns_use_type_split_files() {
        let graph = lubm_graph();
        let logical = best_plan(
            "SELECT ?x WHERE { ?x rdf:type ub:GraduateStudent . ?x ub:memberOf ?d }",
            Variant::Msc,
        );
        let physical = translate(&logical, &graph);
        let mut saw_type_scan = false;
        for id in physical.ops_where(|op| matches!(op, PhysicalOp::MapScan { .. })) {
            if let PhysicalOp::MapScan { spec, .. } = physical.op(id) {
                if spec.type_object.is_some() {
                    saw_type_scan = true;
                    assert_ne!(spec.type_object, Some(UNKNOWN_CONSTANT));
                }
            }
        }
        assert!(
            saw_type_scan,
            "rdf:type pattern should narrow to a class file"
        );
    }

    #[test]
    fn second_level_joins_become_reduce_joins() {
        let graph = lubm_graph();
        let logical = best_plan(
            "SELECT ?x ?z WHERE { ?x ub:advisor ?y . ?y ub:worksFor ?z . ?z ub:subOrganizationOf ?u }",
            Variant::Msc,
        );
        assert_eq!(logical.height(), 2);
        let physical = translate(&logical, &graph);
        assert!(physical.reduce_join_count() >= 1);
        assert!(physical.map_join_count() >= 1);
    }

    #[test]
    fn reduce_join_over_reduce_join_gets_a_shuffler() {
        let graph = lubm_graph();
        // A long chain forces at least two stacked reduce joins under MXC
        // (binary-ish exact covers give taller plans).
        let logical = best_plan(
            "SELECT ?a WHERE { ?a ub:p1 ?b . ?b ub:p2 ?c . ?c ub:p3 ?d . ?d ub:p4 ?e . ?e ub:p5 ?f . ?f ub:p6 ?g }",
            Variant::Mxc,
        );
        let physical = translate(&logical, &graph);
        if logical.height() >= 3 {
            let shufflers = physical.ops_where(|op| matches!(op, PhysicalOp::MapShuffler { .. }));
            assert!(!shufflers.is_empty());
        }
    }

    #[test]
    fn constants_missing_from_data_map_to_the_sentinel() {
        let graph = lubm_graph();
        let logical = best_plan(
            "SELECT ?x WHERE { ?x ub:nonexistentProperty <http://nowhere.example> . ?x ub:worksFor ?d }",
            Variant::Msc,
        );
        let physical = translate(&logical, &graph);
        let mut saw_sentinel = false;
        for op in physical.ops() {
            if let PhysicalOp::MapScan { spec, .. } = op {
                if spec.property == Some(UNKNOWN_CONSTANT) {
                    saw_sentinel = true;
                }
            }
        }
        assert!(saw_sentinel);
    }

    #[test]
    fn shared_match_gets_one_scan_per_consumer() {
        let graph = lubm_graph();
        let q = parse_query("SELECT ?x WHERE { ?x ub:p1 ?y . ?y ub:p2 ?z . ?y ub:p3 ?w }").unwrap();
        // SC may build DAG plans where one pattern feeds two joins.
        let result = Optimizer::with_variant(Variant::Sc).optimize(&q);
        for logical in &result.plans {
            let physical = translate(logical, &graph);
            let scans = physical.ops_where(|op| matches!(op, PhysicalOp::MapScan { .. }));
            // At least one scan per pattern; shared patterns may scan twice.
            assert!(scans.len() >= q.len());
            assert!(physical.ops().len() >= logical.len());
        }
    }

    #[test]
    fn project_is_preserved_at_the_root() {
        let graph = lubm_graph();
        let logical = best_plan(
            "SELECT ?p WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d }",
            Variant::Msc,
        );
        let physical = translate(&logical, &graph);
        assert!(matches!(
            physical.op(physical.root()),
            PhysicalOp::Project { .. }
        ));
    }
}
