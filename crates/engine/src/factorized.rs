//! Run-length factorized join outputs.
//!
//! The n-ary sort-merge join receives its inputs grouped by key, so a star
//! join's output is a sequence of *cross products* — one per aligned key
//! group. Materializing them eagerly costs `Π |group_i|` rows per key even
//! though the join itself only has to walk `Σ |group_i|` input rows. A
//! [`RunsRelation`] keeps the output in factorized form instead: one run per
//! aligned key group holding the key tuple plus each input's payload rows,
//! and the cross products are expanded only at the final projection boundary
//! ([`RunsRelation::project_expand`]) — directly into the projected arity,
//! so the full-width intermediate never exists. That makes high-fan-out star
//! joins output-sublinear in intermediate rows: `runs_emitted` stays far
//! below `rows_expanded` in [`crate::relation::stats`].
//!
//! Factorization is only legal when the join's inputs pairwise share
//! **nothing but the join attributes** (otherwise cross-input equality
//! checks filter the cross product and the runs would over-count);
//! `translate::factorized_joins` proves that from the plan, and
//! [`join_runs`] re-asserts it. Expansion reproduces the eager join's
//! emission order exactly and re-establishes the plan's delivered order with
//! the same sort-elision machinery, so results stay bit-identical to the
//! row-major path at every thread count.

use crate::relation::{
    merge_key_groups, stats, InputView, JoinOrder, Relation, SortOrder, TERM_BYTES,
};
use cliquesquare_rdf::TermId;
use cliquesquare_sparql::Variable;

/// The run-length factorized output of one n-ary sort-merge join: one run
/// per aligned key group, holding `(key tuple, per-input payload ranges)`
/// instead of the materialized cross product.
#[derive(Debug, Clone)]
pub struct RunsRelation {
    /// Union of the input schemas in input order (what an eager join of the
    /// same inputs would produce).
    schema: Vec<Variable>,
    /// Output column of each join attribute, in attribute order.
    key_cols: Vec<usize>,
    /// The output order the plan asked the join for; re-established when
    /// the runs are expanded.
    delivered: Vec<Variable>,
    /// One key tuple per run, row-major (`key_cols.len()` ids per run),
    /// ascending in key order.
    keys: Vec<TermId>,
    /// Per join input: the payload columns it contributes and their values,
    /// grouped by run.
    inputs: Vec<RunInput>,
    /// Number of runs (aligned key groups).
    runs: usize,
    /// Total rows an expansion materializes: `Σ_runs Π_inputs |group|`.
    expanded_rows: usize,
}

/// One join input's contribution to every run.
#[derive(Debug, Clone)]
struct RunInput {
    /// Output columns this input alone provides (its non-key variables).
    dst_cols: Vec<usize>,
    /// Payload values, row-major `dst_cols.len()` ids per row, grouped by
    /// run in key order.
    payload: Vec<TermId>,
    /// Prefix offsets into the payload rows: run `g` spans payload rows
    /// `offsets[g]..offsets[g + 1]`.
    offsets: Vec<u32>,
}

/// N-ary sort-merge join emitting run-length factorized output instead of
/// materialized cross products. The merge skeleton (input views, key-chunk
/// comparators, group alignment) is shared with [`Relation::join_ordered`];
/// only the per-group emission differs: each aligned group appends one run —
/// the key tuple plus each input's payload rows — in `O(Σ |group|)` instead
/// of `O(Π |group|)`.
///
/// `delivered` is the output order the plan requires; it is stored on the
/// result and re-established at expansion time.
///
/// # Panics
///
/// Panics if fewer than two inputs are given or if two inputs share a
/// non-join attribute (the planner's legality condition).
pub fn join_runs(
    inputs: &[&Relation],
    attributes: &[Variable],
    delivered: &[Variable],
) -> RunsRelation {
    assert!(
        inputs.len() >= 2,
        "factorized join needs at least two inputs"
    );
    // Output schema: union of schemas, first occurrence wins (identical to
    // the eager join).
    let mut schema: Vec<Variable> = Vec::new();
    for rel in inputs {
        for v in rel.schema() {
            if !schema.contains(v) {
                schema.push(v.clone());
            }
        }
    }
    let key_cols: Vec<usize> = attributes
        .iter()
        .map(|a| {
            schema
                .iter()
                .position(|s| s == a)
                .expect("join attribute in output schema")
        })
        .collect();

    // Per input: the payload (non-key) columns it contributes, as
    // `(src, dst)` column pairs. Inputs must pairwise share only the join
    // attributes, so every non-key output column has exactly one provider
    // and the aligned groups combine as pure cross products.
    let mut provided = vec![false; schema.len()];
    for &c in &key_cols {
        provided[c] = true;
    }
    let mut run_inputs: Vec<RunInput> = Vec::with_capacity(inputs.len());
    let mut src_cols: Vec<Vec<usize>> = Vec::with_capacity(inputs.len());
    for rel in inputs {
        let mut dst_cols: Vec<usize> = Vec::new();
        let mut srcs: Vec<usize> = Vec::new();
        for (src, v) in rel.schema().iter().enumerate() {
            let dst = schema.iter().position(|s| s == v).expect("schema union");
            if key_cols.contains(&dst) {
                continue;
            }
            assert!(
                !provided[dst],
                "factorized join inputs must share only join attributes (duplicate {v})"
            );
            provided[dst] = true;
            dst_cols.push(dst);
            srcs.push(src);
        }
        stats::count_buffer_alloc();
        run_inputs.push(RunInput {
            dst_cols,
            payload: Vec::new(),
            offsets: vec![0],
        });
        src_cols.push(srcs);
    }

    let views: Vec<InputView<'_>> = inputs
        .iter()
        .map(|rel| InputView::new(rel, attributes))
        .collect();
    let mut keys: Vec<TermId> = Vec::new();
    let mut runs = 0usize;
    let mut expanded_rows = 0usize;
    merge_key_groups(&views, |views, cursors, ends| {
        // The aligned group's key tuple, read from the first input's
        // contiguous key chunk.
        for k in 0..views[0].key_arity() {
            keys.push(views[0].key(k, cursors[0]));
        }
        let mut combinations = 1usize;
        for (i, view) in views.iter().enumerate() {
            let input = &mut run_inputs[i];
            for pos in cursors[i]..ends[i] {
                let row = view.row(pos);
                for &src in &src_cols[i] {
                    input.payload.push(row[src]);
                }
            }
            let group = ends[i] - cursors[i];
            combinations *= group;
            let total = input.offsets.last().copied().expect("seeded offsets") + group as u32;
            input.offsets.push(total);
        }
        runs += 1;
        expanded_rows += combinations;
    });
    // The factorized join *is* the join at the accounting level: it reports
    // the logical output volume (what an expansion materializes), so
    // throughput metrics stay comparable with the eager path, plus the run
    // count that makes output-sublinearity measurable.
    stats::count_runs(runs as u64);
    stats::count_join_rows(expanded_rows as u64);
    let held = keys.len() + run_inputs.iter().map(|i| i.payload.len()).sum::<usize>();
    stats::note_intermediate(runs as u64, (held * TERM_BYTES) as u64);
    RunsRelation {
        schema,
        key_cols,
        delivered: delivered.to_vec(),
        keys,
        inputs: run_inputs,
        runs,
        expanded_rows,
    }
}

impl RunsRelation {
    /// The full (eager-equivalent) output schema.
    pub fn schema(&self) -> &[Variable] {
        &self.schema
    }

    /// Number of runs (aligned key groups) held.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Number of rows an expansion materializes.
    pub fn expanded_len(&self) -> usize {
        self.expanded_rows
    }

    /// Materializes the full-width eager join output, bit-identical to
    /// [`Relation::join_ordered`] with `JoinOrder::Columns(delivered)`: runs
    /// expand in key order as cross products nested in input order (exactly
    /// the eager emitter's order), the natural key order is claimed, and the
    /// delivered order is re-established with the same sort-elision path the
    /// eager join's finalize step takes.
    pub fn expand(&self) -> Relation {
        let writes: Vec<Vec<(usize, usize)>> = self
            .inputs
            .iter()
            .map(|input| input.dst_cols.iter().copied().enumerate().collect())
            .collect();
        let key_writes: Vec<(usize, usize)> = self.key_cols.iter().copied().enumerate().collect();
        let out = self.expand_with(
            self.schema.clone(),
            &key_writes,
            &writes,
            SortOrder::by(self.key_cols.iter().copied()),
        );
        debug_assert_eq!(out.len(), self.expanded_rows);
        out
    }

    /// Expands directly into the projected arity: payload values are written
    /// straight into projected rows, so the full-width join output is never
    /// materialized. Inputs none of whose columns survive the projection
    /// still multiply the emission by their group sizes (projection keeps
    /// multiplicities). The result carries the same row multiset as
    /// `self.expand().project(variables)`.
    pub fn project_expand(&self, variables: &[Variable]) -> Relation {
        let kept: Vec<Variable> = variables
            .iter()
            .filter(|v| self.schema.contains(v))
            .cloned()
            .collect();
        // Map each kept output column to its source: a key slot or one
        // input's payload column.
        let mut key_writes: Vec<(usize, usize)> = Vec::new();
        let mut writes: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.inputs.len()];
        for (dst, v) in kept.iter().enumerate() {
            let full = self
                .schema
                .iter()
                .position(|s| s == v)
                .expect("kept column in full schema");
            if let Some(k) = self.key_cols.iter().position(|&c| c == full) {
                key_writes.push((k, dst));
            } else {
                let (i, src) = self
                    .inputs
                    .iter()
                    .enumerate()
                    .find_map(|(i, input)| {
                        input
                            .dst_cols
                            .iter()
                            .position(|&c| c == full)
                            .map(|src| (i, src))
                    })
                    .expect("non-key column has exactly one providing input");
                writes[i].push((src, dst));
            }
        }
        // Runs expand in ascending key order, so the output is sorted by the
        // longest *prefix* of the key attribute sequence that survives the
        // projection (a dropped key column breaks ties the output can no
        // longer see — same reasoning as Relation::project).
        let mut order_cols: Vec<usize> = Vec::new();
        for k in 0..self.key_cols.len() {
            match key_writes.iter().find(|&&(kw, _)| kw == k) {
                Some(&(_, dst)) => order_cols.push(dst),
                None => break,
            }
        }
        self.expand_with(kept, &key_writes, &writes, SortOrder::by(order_cols))
    }

    /// Shared expansion loop: writes `key_writes` once per run and the cross
    /// product of the per-input payload rows through `writes`, claiming
    /// `order` on the raw buffer and then re-establishing the delivered
    /// order (restricted to the surviving columns).
    fn expand_with(
        &self,
        schema: Vec<Variable>,
        key_writes: &[(usize, usize)],
        writes: &[Vec<(usize, usize)>],
        order: SortOrder,
    ) -> Relation {
        let arity = schema.len();
        stats::count_buffer_alloc();
        let mut data: Vec<TermId> = Vec::with_capacity(self.expanded_rows * arity);
        let mut scratch: Vec<TermId> = vec![TermId(0); arity];
        let mut rows = 0usize;
        let key_arity = self.key_cols.len();
        for run in 0..self.runs {
            for &(k, dst) in key_writes {
                scratch[dst] = self.keys[run * key_arity + k];
            }
            self.emit_run(run, 0, writes, &mut scratch, &mut data, &mut rows);
        }
        let mut out = Relation::from_raw(schema, data, rows, order);
        // Re-establish the order the plan asked the join to deliver (elided
        // when the emission order already satisfies it — the exact elision
        // the eager join's finalize step performs).
        let delivered_cols: Vec<usize> =
            self.delivered.iter().map_while(|v| out.column(v)).collect();
        if !delivered_cols.is_empty() {
            out.sort_by_columns(&delivered_cols);
        }
        stats::count_expanded(rows as u64);
        stats::note_intermediate(rows as u64, (out.data().len() * TERM_BYTES) as u64);
        out
    }

    /// Recursive cross-product emitter over the per-input payload ranges of
    /// one run, writing into the single reused scratch row.
    fn emit_run(
        &self,
        run: usize,
        depth: usize,
        writes: &[Vec<(usize, usize)>],
        scratch: &mut Vec<TermId>,
        data: &mut Vec<TermId>,
        rows: &mut usize,
    ) {
        if depth == self.inputs.len() {
            data.extend_from_slice(scratch);
            *rows += 1;
            return;
        }
        let input = &self.inputs[depth];
        let pay = input.dst_cols.len();
        let start = input.offsets[run] as usize;
        let end = input.offsets[run + 1] as usize;
        for pos in start..end {
            for &(src, dst) in &writes[depth] {
                scratch[dst] = input.payload[pos * pay + src];
            }
            self.emit_run(run, depth + 1, writes, scratch, data, rows);
        }
    }
}

/// Equivalent eager join order for differential tests: the expansion must be
/// bit-identical to this call on the same inputs.
pub fn eager_equivalent(
    inputs: &[&Relation],
    attributes: &[Variable],
    delivered: &[Variable],
) -> Relation {
    Relation::join_ordered(inputs, attributes, JoinOrder::Columns(delivered))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(name: &str) -> Variable {
        Variable::new(name)
    }

    fn rel(names: &[&str], rows: &[&[u32]]) -> Relation {
        let schema: Vec<Variable> = names.iter().map(|n| var(n)).collect();
        let mut r = Relation::empty(schema);
        for row in rows {
            let ids: Vec<TermId> = row.iter().map(|&v| TermId(v)).collect();
            r.push_row_unordered(&ids);
        }
        r.canonicalize();
        r
    }

    #[test]
    fn star_join_runs_stay_sublinear_in_the_output() {
        // 3 spokes of 4 rows each on 2 keys: 2 runs, 2 * 4^3 / 4 … the point
        // is runs << expanded rows.
        let mk = |payload: &str| {
            let rows: Vec<Vec<u32>> = (0..8u32).map(|i| vec![i % 2, 100 + i]).collect();
            let slices: Vec<&[u32]> = rows.iter().map(|r| r.as_slice()).collect();
            rel(&["x", payload], &slices)
        };
        let (a, b, c) = (mk("a"), mk("b"), mk("c"));
        let attrs = [var("x")];
        stats::reset();
        let runs = join_runs(&[&a, &b, &c], &attrs, &[]);
        assert_eq!(runs.runs(), 2);
        assert_eq!(runs.expanded_len(), 2 * 4 * 4 * 4);
        let after = stats::snapshot();
        assert_eq!(after.runs_emitted, 2);
        assert_eq!(after.join_rows_out, 128);
        assert!(after.runs_emitted < runs.expanded_len() as u64);
    }

    #[test]
    fn expansion_is_bit_identical_to_the_eager_join() {
        let a = rel(&["x", "a"], &[&[1, 10], &[1, 11], &[2, 12], &[3, 13]]);
        let b = rel(&["x", "b"], &[&[1, 20], &[2, 21], &[2, 22], &[4, 23]]);
        let attrs = [var("x")];
        for delivered in [
            Vec::new(),
            vec![var("x"), var("a")],
            vec![var("a"), var("b")],
        ] {
            let runs = join_runs(&[&a, &b], &attrs, &delivered);
            let eager = eager_equivalent(&[&a, &b], &attrs, &delivered);
            assert_eq!(runs.expand(), eager, "delivered {delivered:?}");
        }
    }

    #[test]
    fn project_expand_matches_expand_then_project() {
        let a = rel(&["x", "a"], &[&[1, 10], &[1, 11], &[2, 12]]);
        let b = rel(&["x", "b"], &[&[1, 20], &[1, 21], &[2, 22]]);
        let attrs = [var("x")];
        let runs = join_runs(&[&a, &b], &attrs, &[var("x"), var("a")]);
        for projection in [
            vec![var("x"), var("a"), var("b")],
            vec![var("a"), var("b")],
            vec![var("b")],
            vec![var("x")],
        ] {
            let direct = runs.project_expand(&projection).sorted();
            let via_full = runs.expand().project(&projection).sorted();
            assert_eq!(direct, via_full, "projection {projection:?}");
        }
    }

    #[test]
    fn rows_expanded_counts_materialized_rows() {
        let a = rel(&["x", "a"], &[&[1, 10], &[1, 11]]);
        let b = rel(&["x", "b"], &[&[1, 20], &[1, 21]]);
        let runs = join_runs(&[&a, &b], &[var("x")], &[]);
        stats::reset();
        let expanded = runs.project_expand(&[var("a"), var("b")]);
        assert_eq!(expanded.len(), 4);
        assert_eq!(stats::snapshot().rows_expanded, 4);
    }

    #[test]
    #[should_panic(expected = "share only join attributes")]
    fn shared_non_join_attributes_are_rejected() {
        let a = rel(&["x", "s"], &[&[1, 10]]);
        let b = rel(&["x", "s"], &[&[1, 10]]);
        join_runs(&[&a, &b], &[var("x")], &[]);
    }
}
