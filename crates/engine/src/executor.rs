//! Simulated execution of physical plans against the partitioned cluster.
//!
//! Execution is faithful at the data level (it produces the exact query
//! answers) and at the accounting level (every tuple scanned, shuffled,
//! joined or written is charged to the job that processes it), but it runs
//! in-process: "nodes" are partitions of the store and "shuffles" move rows
//! between in-memory buckets while charging network cost.

use crate::jobs::{schedule, JobSchedule};
use crate::physical::{FilterCondition, PhysId, PhysicalOp, PhysicalPlan, ScanSpec};
use crate::relation::Relation;
use crate::translate::translate;
use cliquesquare_core::LogicalPlan;
use cliquesquare_mapreduce::{
    Cluster, ExecutionMetrics, JobExecution, JobKind, JobLog, TaskExecution,
};
use cliquesquare_rdf::{TermId, Triple, TriplePosition};
use cliquesquare_sparql::{PatternTerm, Variable};
use std::collections::BTreeSet;

/// The result of executing one plan.
#[derive(Debug, Clone)]
pub struct ExecutionOutput {
    /// The final (projected) result relation, with duplicates preserved.
    pub results: Relation,
    /// Per-job execution records.
    pub job_log: JobLog,
    /// Aggregated work counters.
    pub metrics: ExecutionMetrics,
    /// Simulated response time on the cluster.
    pub simulated_seconds: f64,
    /// The job schedule the plan was executed under.
    pub schedule: JobSchedule,
}

impl ExecutionOutput {
    /// Number of distinct result rows (BGP answers are sets of bindings).
    pub fn distinct_count(&self) -> usize {
        self.results.clone().distinct().len()
    }
}

/// Intermediate operator results: either one relation per compute node
/// (map-side, co-located data) or a single cluster-wide relation (the output
/// of a reduce phase).
#[derive(Debug, Clone)]
enum Intermediate {
    Local(Vec<Relation>),
    Global(Relation),
}

impl Intermediate {
    fn cardinality(&self) -> u64 {
        match self {
            Intermediate::Local(parts) => parts.iter().map(|r| r.len() as u64).sum(),
            Intermediate::Global(rel) => rel.len() as u64,
        }
    }

    fn into_global(self) -> Relation {
        match self {
            Intermediate::Global(rel) => rel,
            Intermediate::Local(mut parts) => {
                let mut global = parts.pop().unwrap_or_else(|| Relation::empty(Vec::new()));
                for part in parts {
                    // All per-node parts share the same schema by construction.
                    let mut merged = part;
                    merged.union_in_place(global);
                    global = merged;
                }
                global
            }
        }
    }
}

/// Executes physical plans against a [`Cluster`].
#[derive(Debug, Clone)]
pub struct Executor<'a> {
    cluster: &'a Cluster,
}

impl<'a> Executor<'a> {
    /// Creates an executor over the given cluster.
    pub fn new(cluster: &'a Cluster) -> Self {
        Self { cluster }
    }

    /// Translates a logical plan and executes it.
    pub fn execute_logical(&self, logical: &LogicalPlan) -> ExecutionOutput {
        let physical = translate(logical, self.cluster.graph());
        self.execute(&physical)
    }

    /// Executes a physical plan.
    pub fn execute(&self, plan: &PhysicalPlan) -> ExecutionOutput {
        let sched = schedule(plan);
        let mut state = ExecState {
            plan,
            cluster: self.cluster,
            schedule: &sched,
            per_job: vec![ExecutionMetrics::default(); sched.job_count],
            memo: vec![None; plan.len()],
        };
        let root = state.eval(plan.root());
        let results = root.into_global();

        // Per-job fixed counters: one map wave per job, one reduce wave for
        // map+reduce jobs.
        for (index, metrics) in state.per_job.iter_mut().enumerate() {
            metrics.jobs = 1;
            metrics.map_tasks = 1;
            metrics.reduce_tasks = u64::from(sched.kinds[index] == JobKind::MapReduce);
        }

        let nodes = self.cluster.nodes();
        let mut job_log = JobLog::new();
        for (index, metrics) in state.per_job.iter().enumerate() {
            let kind = sched.kinds[index];
            job_log.push(JobExecution {
                label: format!("job {}", index + 1),
                kind,
                map_tasks: vec![TaskExecution {
                    node: 0,
                    input_tuples: metrics.tuples_read,
                    output_tuples: metrics.tuples_written,
                }],
                reduce_tasks: if kind == JobKind::MapReduce {
                    vec![TaskExecution {
                        node: 0,
                        input_tuples: metrics.tuples_shuffled,
                        output_tuples: metrics.join_output_tuples,
                    }]
                } else {
                    Vec::new()
                },
                shuffled_tuples: metrics.tuples_shuffled,
                metrics: *metrics,
            });
        }
        let metrics = job_log.total_metrics();
        let simulated_seconds = metrics.simulated_seconds(&self.cluster.config().cost, nodes);
        ExecutionOutput {
            results,
            job_log,
            metrics,
            simulated_seconds,
            schedule: sched,
        }
    }
}

/// Mutable execution state threaded through the recursive evaluation.
struct ExecState<'a> {
    plan: &'a PhysicalPlan,
    cluster: &'a Cluster,
    schedule: &'a JobSchedule,
    per_job: Vec<ExecutionMetrics>,
    memo: Vec<Option<Intermediate>>,
}

impl ExecState<'_> {
    fn job_metrics(&mut self, id: PhysId) -> &mut ExecutionMetrics {
        let job = self.schedule.job_of(id);
        &mut self.per_job[job - 1]
    }

    fn eval(&mut self, id: PhysId) -> Intermediate {
        if let Some(cached) = &self.memo[id.index()] {
            return cached.clone();
        }
        let result = match self.plan.op(id).clone() {
            PhysicalOp::MapScan { spec, output } => self.eval_scan(id, &spec, &output, &[]),
            PhysicalOp::Filter {
                conditions,
                input,
                output,
            } => self.eval_filter(id, &conditions, input, &output),
            PhysicalOp::MapJoin {
                attributes, inputs, ..
            } => self.eval_map_join(id, &attributes, &inputs),
            PhysicalOp::MapShuffler { input, .. } => self.eval_shuffler(id, input),
            PhysicalOp::ReduceJoin {
                attributes, inputs, ..
            } => self.eval_reduce_join(id, &attributes, &inputs),
            PhysicalOp::Project { variables, input } => self.eval_project(id, &variables, input),
        };
        self.memo[id.index()] = Some(result.clone());
        result
    }

    /// Scans the partition files selected by `spec` and converts the raw
    /// triples to binding rows, applying `extra_conditions` (residual
    /// constants pushed down from an enclosing Filter) and the pattern's own
    /// repeated-variable equalities.
    fn eval_scan(
        &mut self,
        id: PhysId,
        spec: &ScanSpec,
        output: &BTreeSet<Variable>,
        extra_conditions: &[FilterCondition],
    ) -> Intermediate {
        let store = self.cluster.store();
        let per_node = store.scan(spec.placement, spec.property, spec.type_object);
        let scanned: u64 = per_node.iter().map(|v| v.len() as u64).sum();
        let checks = extra_conditions.len() as u64;
        {
            let metrics = self.job_metrics(id);
            metrics.tuples_read += scanned;
            metrics.comparisons += scanned * checks.max(1);
        }

        let schema: Vec<Variable> = output.iter().cloned().collect();
        let mut parts = Vec::with_capacity(per_node.len());
        let mut produced: u64 = 0;
        for triples in per_node {
            let mut relation = Relation::empty(schema.clone());
            'triples: for triple in triples {
                for condition in extra_conditions {
                    if triple.get(condition.position) != condition.constant {
                        continue 'triples;
                    }
                }
                if let Some(row) = bind_triple(&triple, spec, &schema) {
                    relation.push(row);
                }
            }
            produced += relation.len() as u64;
            parts.push(relation);
        }
        self.job_metrics(id).tuples_written += produced;
        Intermediate::Local(parts)
    }

    fn eval_filter(
        &mut self,
        id: PhysId,
        conditions: &[FilterCondition],
        input: PhysId,
        output: &BTreeSet<Variable>,
    ) -> Intermediate {
        // A Filter directly above a MapScan is evaluated together with the
        // scan, because the constant checks apply to the raw triple rather
        // than to the binding rows.
        if let PhysicalOp::MapScan { spec, .. } = self.plan.op(input).clone() {
            return self.eval_scan(id, &spec, output, conditions);
        }
        let value = self.eval(input);
        let rows = value.cardinality();
        self.job_metrics(id).comparisons += rows * (conditions.len() as u64).max(1);
        // Filters over non-scan inputs carry no residual conditions in the
        // BGP fragment (joins enforce every equality), so they pass through.
        value
    }

    fn eval_map_join(
        &mut self,
        id: PhysId,
        attributes: &BTreeSet<Variable>,
        inputs: &[PhysId],
    ) -> Intermediate {
        let attrs: Vec<Variable> = attributes.iter().cloned().collect();
        let evaluated: Vec<Intermediate> = inputs.iter().map(|&i| self.eval(i)).collect();
        let nodes = self.cluster.nodes();
        let all_local = evaluated
            .iter()
            .all(|value| matches!(value, Intermediate::Local(parts) if parts.len() == nodes));
        if !all_local {
            // Defensive path: a map join over non-co-located inputs degrades
            // to a cluster-wide join (well-formed translations never hit it).
            let relations: Vec<Relation> = evaluated
                .into_iter()
                .map(Intermediate::into_global)
                .collect();
            let refs: Vec<&Relation> = relations.iter().collect();
            let joined = Relation::join(&refs, &attrs);
            let metrics = self.job_metrics(id);
            metrics.join_output_tuples += joined.len() as u64;
            metrics.tuples_written += joined.len() as u64;
            return Intermediate::Global(joined);
        }
        let locals: Vec<Vec<Relation>> = evaluated
            .into_iter()
            .map(|value| match value {
                Intermediate::Local(parts) => parts,
                Intermediate::Global(_) => unreachable!("checked above"),
            })
            .collect();
        let mut parts = Vec::with_capacity(nodes);
        let mut produced: u64 = 0;
        for node in 0..nodes {
            let node_inputs: Vec<&Relation> =
                locals.iter().map(|per_node| &per_node[node]).collect();
            let joined = Relation::join(&node_inputs, &attrs);
            produced += joined.len() as u64;
            parts.push(joined);
        }
        let metrics = self.job_metrics(id);
        metrics.join_output_tuples += produced;
        metrics.tuples_written += produced;
        Intermediate::Local(parts)
    }

    fn eval_shuffler(&mut self, id: PhysId, input: PhysId) -> Intermediate {
        let value = self.eval(input);
        let rows = value.cardinality();
        let metrics = self.job_metrics(id);
        metrics.tuples_read += rows;
        metrics.tuples_written += rows;
        value
    }

    fn eval_reduce_join(
        &mut self,
        id: PhysId,
        attributes: &BTreeSet<Variable>,
        inputs: &[PhysId],
    ) -> Intermediate {
        let attrs: Vec<Variable> = attributes.iter().cloned().collect();
        let mut relations = Vec::with_capacity(inputs.len());
        let mut shuffled: u64 = 0;
        for &input in inputs {
            let value = self.eval(input);
            shuffled += value.cardinality();
            relations.push(value.into_global());
        }
        let refs: Vec<&Relation> = relations.iter().collect();
        let joined = Relation::join(&refs, &attrs);
        let metrics = self.job_metrics(id);
        metrics.tuples_shuffled += shuffled;
        metrics.join_output_tuples += joined.len() as u64;
        metrics.tuples_written += joined.len() as u64;
        Intermediate::Global(joined)
    }

    fn eval_project(&mut self, id: PhysId, variables: &[Variable], input: PhysId) -> Intermediate {
        let value = self.eval(input);
        let rows = value.cardinality();
        self.job_metrics(id).comparisons += rows;
        match value {
            Intermediate::Local(parts) => {
                Intermediate::Local(parts.into_iter().map(|r| r.project(variables)).collect())
            }
            Intermediate::Global(rel) => Intermediate::Global(rel.project(variables)),
        }
    }
}

/// Converts a raw triple matched by `spec` into a binding row over `schema`,
/// or `None` when repeated variables in the pattern bind to different values.
fn bind_triple(triple: &Triple, spec: &ScanSpec, schema: &[Variable]) -> Option<Vec<TermId>> {
    let positions = [
        (&spec.pattern.subject, TriplePosition::Subject),
        (&spec.pattern.property, TriplePosition::Property),
        (&spec.pattern.object, TriplePosition::Object),
    ];
    let mut row = Vec::with_capacity(schema.len());
    for variable in schema {
        let mut value: Option<TermId> = None;
        for (term, position) in positions {
            if let PatternTerm::Variable(v) = term {
                if v == variable {
                    let candidate = triple.get(position);
                    match value {
                        None => value = Some(candidate),
                        Some(existing) if existing != candidate => return None,
                        Some(_) => {}
                    }
                }
            }
        }
        row.push(value?);
    }
    Some(row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_eval;
    use cliquesquare_core::{Optimizer, Variant};
    use cliquesquare_mapreduce::ClusterConfig;
    use cliquesquare_rdf::{LubmGenerator, LubmScale};
    use cliquesquare_sparql::parser::parse_query;

    fn cluster() -> Cluster {
        let graph = LubmGenerator::new(LubmScale::tiny()).generate();
        Cluster::load(graph, ClusterConfig::with_nodes(4))
    }

    fn run(cluster: &Cluster, query: &str, variant: Variant) -> ExecutionOutput {
        let q = parse_query(query).unwrap();
        let result = Optimizer::with_variant(variant).optimize(&q);
        let logical = result.flattest_plans()[0].clone();
        Executor::new(cluster).execute_logical(&logical)
    }

    #[test]
    fn two_pattern_join_matches_reference() {
        let cluster = cluster();
        let query = "SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d }";
        let output = run(&cluster, query, Variant::Msc);
        let reference = reference_eval(cluster.graph(), &parse_query(query).unwrap());
        assert!(output.distinct_count() > 0);
        assert_eq!(output.distinct_count(), reference.len());
        assert_eq!(
            output.results.clone().distinct().sorted(),
            reference.sorted()
        );
    }

    #[test]
    fn star_query_runs_as_single_map_only_job() {
        let cluster = cluster();
        let output = run(
            &cluster,
            "SELECT ?x ?d ?e WHERE { ?x ub:worksFor ?d . ?x ub:emailAddress ?e . ?x rdf:type ub:FullProfessor }",
            Variant::Msc,
        );
        assert_eq!(output.job_log.job_count(), 1);
        assert_eq!(output.job_log.descriptor(), "M");
        assert_eq!(output.metrics.tuples_shuffled, 0);
        assert!(output.distinct_count() > 0);
    }

    #[test]
    fn selective_constant_query_matches_reference() {
        let cluster = cluster();
        let query = "SELECT ?x ?y WHERE { ?x rdf:type ub:Lecturer . ?y rdf:type ub:Department . \
                     ?x ub:worksFor ?y . ?y ub:subOrganizationOf <http://www.University0.edu> }";
        let output = run(&cluster, query, Variant::Msc);
        let reference = reference_eval(cluster.graph(), &parse_query(query).unwrap());
        assert_eq!(output.distinct_count(), reference.len());
        assert!(output.distinct_count() > 0);
    }

    #[test]
    fn chain_query_matches_reference_for_flat_and_deep_plans() {
        let cluster = cluster();
        let query = "SELECT ?x ?z WHERE { ?x ub:advisor ?y . ?y ub:worksFor ?z . ?z ub:subOrganizationOf ?u }";
        let reference = reference_eval(cluster.graph(), &parse_query(query).unwrap());
        for variant in [Variant::Msc, Variant::Mxc, Variant::MscPlus] {
            let output = run(&cluster, query, variant);
            assert_eq!(
                output.distinct_count(),
                reference.len(),
                "variant {variant} returned wrong answers"
            );
        }
    }

    #[test]
    fn all_msc_plans_of_a_query_agree() {
        let cluster = cluster();
        let query = "SELECT ?x ?y ?z WHERE { ?x rdf:type ub:UndergraduateStudent . ?y rdf:type ub:FullProfessor . \
                     ?z rdf:type ub:Course . ?x ub:advisor ?y . ?x ub:takesCourse ?z . ?y ub:teacherOf ?z }";
        let q = parse_query(query).unwrap();
        let plans = Optimizer::with_variant(Variant::Msc).optimize(&q).plans;
        let reference = reference_eval(cluster.graph(), &q);
        let executor = Executor::new(&cluster);
        for plan in plans.iter().take(8) {
            let output = executor.execute_logical(plan);
            assert_eq!(output.distinct_count(), reference.len());
        }
        assert!(!reference.is_empty());
    }

    #[test]
    fn empty_answer_queries_execute_cleanly() {
        let cluster = cluster();
        let output = run(
            &cluster,
            "SELECT ?x WHERE { ?x ub:noSuchProperty ?y . ?y ub:worksFor ?z }",
            Variant::Msc,
        );
        assert_eq!(output.distinct_count(), 0);
        assert!(output.simulated_seconds > 0.0);
    }

    #[test]
    fn deeper_plans_cost_more_simulated_time() {
        let cluster = cluster();
        let query = "SELECT ?a WHERE { ?a ub:p1 ?b . ?b ub:p2 ?c . ?c ub:p3 ?d . ?d ub:p4 ?e . ?e ub:p5 ?f . ?f ub:p6 ?g }";
        let flat = run(&cluster, query, Variant::Msc);
        let deep = run(&cluster, query, Variant::Mxc);
        assert!(flat.job_log.job_count() <= deep.job_log.job_count());
        if flat.job_log.job_count() < deep.job_log.job_count() {
            assert!(flat.simulated_seconds < deep.simulated_seconds);
        }
    }

    #[test]
    fn metrics_account_for_scans_and_joins() {
        let cluster = cluster();
        let output = run(
            &cluster,
            "SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d }",
            Variant::Msc,
        );
        assert!(output.metrics.tuples_read > 0);
        assert!(output.metrics.join_output_tuples > 0);
        assert_eq!(output.metrics.jobs, output.job_log.job_count() as u64);
    }

    #[test]
    fn repeated_variable_pattern_binds_consistently() {
        // A pattern like { ?x ub:advisor ?x } only matches triples whose
        // subject equals their object; none exist in the LUBM data.
        let cluster = cluster();
        let output = run(
            &cluster,
            "SELECT ?x WHERE { ?x ub:advisor ?x . ?x ub:memberOf ?d }",
            Variant::Msc,
        );
        assert_eq!(output.distinct_count(), 0);
    }
}
