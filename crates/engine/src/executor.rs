//! Execution of physical plans against the partitioned cluster.
//!
//! Execution is faithful at the data level (it produces the exact query
//! answers) and at the accounting level (every tuple scanned, shuffled,
//! joined or written is charged to the job that processes it). Jobs run as
//! *task waves* on a [`Runtime`]: every map-side operator does its per-node
//! work as one task per compute node, and every reduce join hash-partitions
//! its inputs across the nodes (the shuffle) and joins each partition as one
//! reduce task per node. With `Runtime::sequential()` (the deterministic
//! default) the tasks run inline on the driver thread; with more threads the
//! waves execute concurrently on scoped OS threads, producing
//! **bit-identical results**: every step — scan order, hash routing, k-way
//! merges with ties resolved by node order, and the sorts the
//! interesting-orders pass leaves in place — is a deterministic function of
//! the per-node inputs, which do not depend on the thread count.
//!
//! Operators do **not** canonicalize their outputs. Leaf scans are tagged
//! with the index order the partitioned store already delivers, joins emit
//! their output in the order the plan's [`crate::physical::OpOrdering`]
//! demands (eliding the sort when their natural key order satisfies it),
//! shuffle buckets and per-node parts are combined with k-way ordered merges
//! that preserve the tracked order, and a single canonicalization at the
//! final projection makes the result relation bit-identical at every thread
//! count.
//!
//! Two clocks are reported: `simulated_seconds` (the Section 5.4 cost model
//! applied to the work counters — unchanged by the thread count) and
//! `wall_seconds` (real time measured around the task waves).

use crate::factorized::{self, RunsRelation};
use crate::jobs::{schedule, JobSchedule};
use crate::physical::{FilterCondition, PhysId, PhysicalOp, PhysicalPlan, ScanSpec};
use crate::relation::{self, stats::RelationStats, JoinOrder, Relation, SortOrder};
use crate::translate::translate;
use cliquesquare_core::LogicalPlan;
use cliquesquare_mapreduce::{
    Cluster, ExecutionMetrics, JobExecution, JobKind, JobLog, Runtime, TaskExecution,
};
use cliquesquare_obs::{SpanNode, TaskSpan};
use cliquesquare_rdf::{TermId, Triple, TriplePosition};
use cliquesquare_sparql::{PatternTerm, Variable};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::thread::ThreadId;
use std::time::Instant;

/// The result of executing one plan.
#[derive(Debug, Clone)]
pub struct ExecutionOutput {
    /// The final (projected) result relation in canonical (sorted) order,
    /// with duplicates preserved.
    pub results: Relation,
    /// Per-job execution records.
    pub job_log: JobLog,
    /// Aggregated work counters.
    pub metrics: ExecutionMetrics,
    /// Simulated response time on the cluster (cost model; independent of
    /// the runtime's thread count).
    pub simulated_seconds: f64,
    /// Measured wall-clock time of the whole execution on this machine.
    pub wall_seconds: f64,
    /// Number of OS threads the runtime executed task waves on.
    pub threads: usize,
    /// The job schedule the plan was executed under.
    pub schedule: JobSchedule,
    /// The `execute` span subtree — one node per evaluated operator,
    /// grouped by job, each carrying wall time, rows in/out, sort/run
    /// counters and the per-task walls of its wave. `None` unless the
    /// plan ran through [`Executor::execute_profiled`]; recording is pure
    /// observation, so results are bit-identical either way.
    pub profile: Option<SpanNode>,
}

impl ExecutionOutput {
    /// Number of distinct result rows (BGP answers are sets of bindings).
    pub fn distinct_count(&self) -> usize {
        self.results.distinct_len()
    }
}

/// Intermediate operator results: one relation per compute node (map-side,
/// co-located data), a single cluster-wide relation (the output of a reduce
/// phase), or one **run-length factorized** join output per node — cross
/// products held as `(key, payload ranges)` runs, expanded only at the final
/// projection boundary (see [`crate::factorized`]). Shared between consumers
/// via `Arc` — a memo hit costs a reference-count bump, not a relation
/// clone.
#[derive(Debug)]
enum Intermediate {
    Local(Vec<Relation>),
    Global(Relation),
    LocalRuns(Vec<RunsRelation>),
}

impl Intermediate {
    /// Logical row count: factorized parts report the rows an expansion
    /// materializes, so every job counter (and the cost model on top) sees
    /// the same tuple volume as the eager path.
    fn cardinality(&self) -> u64 {
        match self {
            Intermediate::Local(parts) => parts.iter().map(|r| r.len() as u64).sum(),
            Intermediate::Global(rel) => rel.len() as u64,
            Intermediate::LocalRuns(parts) => parts.iter().map(|r| r.expanded_len() as u64).sum(),
        }
    }

    fn schema(&self) -> &[Variable] {
        match self {
            Intermediate::Local(parts) => parts.first().map(Relation::schema).unwrap_or(&[]),
            Intermediate::Global(rel) => rel.schema(),
            Intermediate::LocalRuns(parts) => {
                parts.first().map(RunsRelation::schema).unwrap_or(&[])
            }
        }
    }

    /// Materializes the cluster-wide relation, cloning per-node parts.
    fn to_global(&self) -> Relation {
        match self {
            Intermediate::Global(rel) => rel.clone(),
            Intermediate::Local(parts) => merge_parts(parts.iter().cloned()),
            Intermediate::LocalRuns(parts) => merge_parts(parts.iter().map(RunsRelation::expand)),
        }
    }

    /// Materializes the cluster-wide relation, consuming the intermediate.
    fn into_global(self) -> Relation {
        match self {
            Intermediate::Global(rel) => rel,
            Intermediate::Local(parts) => merge_parts(parts.into_iter()),
            Intermediate::LocalRuns(parts) => merge_parts(parts.iter().map(RunsRelation::expand)),
        }
    }
}

/// Combines per-node parts (same schema by construction) with one k-way
/// merge that interleaves rows by the parts' shared tracked order (ties go
/// to the lower node, so the result is deterministic in node order and
/// independent of the thread count). Parts are drained into an incremental
/// [`relation::MergeStack`] — bit-identical to collecting them all and
/// calling [`Relation::merge_ordered`], but holding only `O(log k)` partial
/// merges.
fn merge_parts(parts: impl Iterator<Item = Relation>) -> Relation {
    let mut stack = relation::MergeStack::new();
    for part in parts {
        stack.push(part);
    }
    stack
        .finish()
        .unwrap_or_else(|| Relation::empty(Vec::new()))
}

/// Executes physical plans against a [`Cluster`] on a [`Runtime`].
///
/// The executor holds an owned [`Cluster`] handle (two `Arc` bumps — the
/// graph and the store stay shared) rather than a borrow, and its task
/// waves capture `Arc` snapshots of everything they touch. That makes every
/// wave `'static`: on a [`Runtime::serving`] runtime the waves go to the
/// persistent multi-job scheduler and interleave with concurrently running
/// queries, with results bit-identical to a solo run.
#[derive(Debug, Clone)]
pub struct Executor {
    cluster: Cluster,
    runtime: Runtime,
}

impl Executor {
    /// Creates an executor over the given cluster. The runtime is taken from
    /// the `CSQ_THREADS` environment variable (sequential when unset), so
    /// results are bit-identical either way.
    pub fn new(cluster: &Cluster) -> Self {
        Self::with_runtime(cluster, Runtime::from_env())
    }

    /// Creates a sequential (single-threaded) executor.
    pub fn sequential(cluster: &Cluster) -> Self {
        Self::with_runtime(cluster, Runtime::sequential())
    }

    /// Creates an executor with an explicit task runtime.
    pub fn with_runtime(cluster: &Cluster, runtime: Runtime) -> Self {
        Self {
            cluster: cluster.clone(),
            runtime,
        }
    }

    /// The task runtime executing the job waves.
    pub fn runtime(&self) -> Runtime {
        self.runtime.clone()
    }

    /// Translates a logical plan and executes it.
    pub fn execute_logical(&self, logical: &LogicalPlan) -> ExecutionOutput {
        let physical = translate(logical, self.cluster.graph());
        self.execute(&physical)
    }

    /// Executes a physical plan.
    pub fn execute(&self, plan: &PhysicalPlan) -> ExecutionOutput {
        self.execute_inner(plan, false, None)
    }

    /// Executes a physical plan, recording the per-operator span tree into
    /// [`ExecutionOutput::profile`]. Profiling only brackets the existing
    /// waves with clocks and counter snapshots — it never changes what the
    /// tasks compute, so answers are bit-identical to [`Executor::execute`]
    /// at every thread count (asserted in `tests/observability.rs`).
    pub fn execute_profiled(&self, plan: &PhysicalPlan) -> ExecutionOutput {
        self.execute_inner(plan, true, None)
    }

    /// Like [`execute_profiled`](Self::execute_profiled), but additionally
    /// attaches the cost model's per-operator estimated cardinalities
    /// (`estimates[i]` for operator `i`, as produced by
    /// `MapReduceCostModel::estimate_cards`) as `est_rows` span attributes
    /// next to the measured `rows_out`, and observes each operator's
    /// q-error — `max(est/actual, actual/est)` — into the process-wide
    /// `csq_plan_qerror` histogram. Pure observation: answers stay
    /// bit-identical to [`Executor::execute`] at every thread count.
    pub fn execute_profiled_with_estimates(
        &self,
        plan: &PhysicalPlan,
        estimates: &[u64],
    ) -> ExecutionOutput {
        self.execute_inner(plan, true, Some(estimates))
    }

    fn execute_inner(
        &self,
        plan: &PhysicalPlan,
        profiled: bool,
        estimates: Option<&[u64]>,
    ) -> ExecutionOutput {
        let started = Instant::now();
        let sched = schedule(plan);
        let nodes = self.cluster.nodes();
        let mut state = ExecState {
            plan,
            cluster: &self.cluster,
            schedule: &sched,
            runtime: &self.runtime,
            job_id: self.runtime.begin_job(),
            jobs: (0..sched.job_count).map(|_| JobState::new(nodes)).collect(),
            memo: vec![None; plan.len()],
            prof: profiled.then(|| ProfCtx::new(started)),
            estimates,
        };

        // Operators are stored bottom-up (inputs have smaller ids than their
        // consumers), so one in-order pass over the arena evaluates every
        // operator after its inputs — no recursion, no re-evaluation.
        let needed = evaluated_ops(plan);
        for (index, _) in needed.iter().enumerate().filter(|(_, needed)| **needed) {
            // With profiling on, bracket the operator with a driver-side
            // clock and relation-stats snapshot; the wave wrapper in
            // `run_timed_wave` adds what ran on worker threads.
            let observing = state
                .prof
                .as_ref()
                .map(|p| (p.epoch.elapsed().as_secs_f64(), Instant::now()))
                .map(|(start, clock)| (start, clock, relation::stats::snapshot()));
            let result = state.eval_op(PhysId(index));
            if let Some((start, clock, before)) = observing {
                let wall = clock.elapsed().as_secs_f64();
                let driver_delta = relation::stats::snapshot().since(&before);
                state.record_node(PhysId(index), &result, start, wall, driver_delta);
            }
            state.memo[index] = Some(result);
        }
        let root = state.memo[plan.root().index()]
            .take()
            .expect("root evaluated");
        let mut results = match Arc::try_unwrap(root) {
            Ok(value) => value.into_global(),
            Err(shared) => shared.to_global(),
        };
        // The single canonicalization of the whole execution: elided for
        // free when the interesting-orders pass already ordered the final
        // projection canonically.
        results.canonicalize();

        // Per-job fixed counters: one map wave per job, one reduce wave for
        // map+reduce jobs (the *wave* count drives the cost model's task
        // start-up charge; the job log lists the per-node tasks of a wave).
        let mut job_log = JobLog::new();
        for (index, job) in state.jobs.iter().enumerate() {
            let kind = sched.kinds[index];
            let mut metrics = job.metrics;
            metrics.jobs = 1;
            metrics.map_tasks = 1;
            metrics.reduce_tasks = u64::from(kind == JobKind::MapReduce);
            job_log.push(JobExecution {
                label: format!("job {}", index + 1),
                kind,
                map_tasks: (0..nodes)
                    .map(|node| TaskExecution {
                        node,
                        input_tuples: job.map_in[node],
                        output_tuples: job.map_out[node],
                    })
                    .collect(),
                reduce_tasks: if kind == JobKind::MapReduce {
                    (0..nodes)
                        .map(|node| TaskExecution {
                            node,
                            input_tuples: job.reduce_in[node],
                            output_tuples: job.reduce_out[node],
                        })
                        .collect()
                } else {
                    Vec::new()
                },
                shuffled_tuples: job.metrics.tuples_shuffled,
                map_wall_seconds: job.map_wall,
                reduce_wall_seconds: job.reduce_wall,
                metrics,
            });
        }
        let metrics = job_log.total_metrics();
        let simulated_seconds = metrics.simulated_seconds(&self.cluster.config().cost, nodes);
        let profile = state
            .prof
            .take()
            .map(|prof| prof.into_execute_node(started));
        ExecutionOutput {
            results,
            job_log,
            metrics,
            simulated_seconds,
            wall_seconds: started.elapsed().as_secs_f64(),
            threads: self.runtime.threads(),
            schedule: sched,
            profile,
        }
    }
}

/// Histogram bucket bounds for per-operator q-error: 1.0 is a perfect
/// estimate, each bucket doubles (roughly) the tolerated mis-estimation.
const QERROR_BUCKETS: &[f64] = &[1.0, 1.5, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0, 1024.0];

/// Observes one operator's estimation quality into the process-wide
/// `csq_plan_qerror` histogram (q-error = `max(est/actual, actual/est)`).
fn observe_q_error(estimated: u64, actual: u64) {
    cliquesquare_obs::global()
        .histogram(
            "csq_plan_qerror",
            "Per-operator cardinality estimation q-error (max of est/actual, actual/est)",
            &[],
            QERROR_BUCKETS,
        )
        .observe(crate::cost::q_error(estimated, actual));
}

/// Profiling state threaded through one `execute_profiled` run: the
/// epoch every span offset is measured from, the finished per-operator
/// nodes, and the observations of the operator currently evaluating
/// (drained into its node by the driver loop).
struct ProfCtx {
    /// The execution's start — span offsets are seconds since this.
    epoch: Instant,
    /// The driver thread: wave tasks the submitter ran inline are already
    /// inside the driver-side stats delta, so the wrapper skips re-adding
    /// their deltas (see [`ExecState::run_timed_wave`]).
    driver: ThreadId,
    /// `(job, node)` per evaluated operator, in arena order.
    nodes: Vec<(usize, SpanNode)>,
    /// Per-task spans of the current operator's waves.
    tasks: Vec<TaskSpan>,
    /// Relation-stats increments observed on worker threads by the
    /// current operator's waves.
    worker_stats: RelationStats,
    /// Extra attributes pushed by the current operator (shuffle volume).
    attrs: Vec<(&'static str, u64)>,
    /// Override for the current operator's input tuple count (scans read
    /// raw triples, which no memoized input reports).
    rows_in: Option<u64>,
}

impl ProfCtx {
    fn new(epoch: Instant) -> Self {
        Self {
            epoch,
            driver: std::thread::current().id(),
            nodes: Vec::new(),
            tasks: Vec::new(),
            worker_stats: RelationStats::default(),
            attrs: Vec::new(),
            rows_in: None,
        }
    }

    /// Assembles the finished operator nodes into the `execute` span:
    /// one child per job, whose children are that job's operators.
    fn into_execute_node(self, started: Instant) -> SpanNode {
        let mut execute = SpanNode::new("execute");
        let job_count = self.nodes.iter().map(|(job, _)| *job).max().unwrap_or(0);
        let mut jobs: Vec<SpanNode> = (1..=job_count)
            .map(|job| SpanNode::new(format!("job {job}")))
            .collect();
        for (job, node) in self.nodes {
            jobs[job - 1].children.push(node);
        }
        for mut job_node in jobs {
            if job_node.children.is_empty() {
                continue;
            }
            job_node.start_seconds = job_node
                .children
                .iter()
                .map(|c| c.start_seconds)
                .fold(f64::INFINITY, f64::min);
            let end = job_node
                .children
                .iter()
                .map(|c| c.start_seconds + c.wall_seconds)
                .fold(0.0, f64::max);
            job_node.wall_seconds = end - job_node.start_seconds;
            job_node.rows_in = job_node.children.first().map(|c| c.rows_in).unwrap_or(0);
            job_node.rows_out = job_node.children.last().map(|c| c.rows_out).unwrap_or(0);
            execute.children.push(job_node);
        }
        execute.wall_seconds = started.elapsed().as_secs_f64();
        execute.rows_out = execute.children.last().map(|job| job.rows_out).unwrap_or(0);
        execute
    }
}

/// Marks the operators the executor evaluates: everything reachable from the
/// root, except MapScans that are consumed through the Filter directly above
/// them (those are evaluated fused into the filter, against the raw triples).
fn evaluated_ops(plan: &PhysicalPlan) -> Vec<bool> {
    let mut needed = vec![false; plan.len()];
    let mut stack = vec![plan.root()];
    while let Some(id) = stack.pop() {
        if needed[id.index()] {
            continue;
        }
        needed[id.index()] = true;
        let op = plan.op(id);
        if let PhysicalOp::Filter { input, .. } = op {
            if matches!(plan.op(*input), PhysicalOp::MapScan { .. }) {
                continue;
            }
        }
        for input in op.inputs() {
            stack.push(input);
        }
    }
    needed
}

/// Field-wise sum of two relation-stats deltas (peaks combine as maxima).
fn add_stats(a: &RelationStats, b: &RelationStats) -> RelationStats {
    RelationStats {
        row_allocs: a.row_allocs + b.row_allocs,
        buffer_allocs: a.buffer_allocs + b.buffer_allocs,
        join_rows_out: a.join_rows_out + b.join_rows_out,
        join_inputs_presorted: a.join_inputs_presorted + b.join_inputs_presorted,
        join_inputs_resorted: a.join_inputs_resorted + b.join_inputs_resorted,
        sorts_performed: a.sorts_performed + b.sorts_performed,
        sorts_elided: a.sorts_elided + b.sorts_elided,
        runs_emitted: a.runs_emitted + b.runs_emitted,
        rows_expanded: a.rows_expanded + b.rows_expanded,
        peak_rows: a.peak_rows.max(b.peak_rows),
        peak_bytes: a.peak_bytes.max(b.peak_bytes),
        shuffle_peak_bytes: a.shuffle_peak_bytes.max(b.shuffle_peak_bytes),
    }
}

/// Per-job accounting: per-node task tuple counts plus measured wave times.
struct JobState {
    map_in: Vec<u64>,
    map_out: Vec<u64>,
    reduce_in: Vec<u64>,
    reduce_out: Vec<u64>,
    map_wall: f64,
    reduce_wall: f64,
    metrics: ExecutionMetrics,
}

impl JobState {
    fn new(nodes: usize) -> Self {
        Self {
            map_in: vec![0; nodes],
            map_out: vec![0; nodes],
            reduce_in: vec![0; nodes],
            reduce_out: vec![0; nodes],
            map_wall: 0.0,
            reduce_wall: 0.0,
            metrics: ExecutionMetrics::default(),
        }
    }
}

/// Distributes a cluster-wide tuple count over per-node task counters
/// (intermediate results live in the distributed file system, so re-reading
/// them is spread across the nodes).
fn spread(counters: &mut [u64], total: u64) {
    if counters.is_empty() {
        return;
    }
    let nodes = counters.len() as u64;
    for (index, counter) in counters.iter_mut().enumerate() {
        *counter += total / nodes + u64::from((index as u64) < total % nodes);
    }
}

/// Hash-partitions an intermediate's rows on the join attributes into one
/// bucket per compute node: the simulated shuffle. Each bucket's flat
/// buffer is built directly by [`relation::hash_partition`] — no per-row
/// heap allocation — and inherits its source's tracked order; the per-part
/// buckets of a node are then combined with a k-way ordered merge, so a
/// shuffle of key-ordered inputs hands the reduce join key-ordered buckets
/// and the join's merge consumes them without re-sorting.
///
/// When the source does **not** arrive in key order — a producer shared by
/// consumers with incompatible requirements serves one group, and this
/// consumer carries the residual (see `translate::resolve_claims`) — the
/// shuffle establishes the key order here, sorting each routed bucket
/// *before* the per-node merge: a planned local sort on the smallest pieces,
/// not a join-input re-sort on the assembled bucket.
fn partition_rows(value: &Intermediate, attributes: &[Variable], nodes: usize) -> Vec<Relation> {
    match value {
        Intermediate::Global(rel) => {
            let mut buckets = relation::hash_partition(rel, attributes, nodes);
            for bucket in &mut buckets {
                establish_key_order(bucket, attributes);
            }
            relation::stats::note_shuffle(buckets.iter().map(Relation::buffer_bytes).sum());
            buckets
        }
        Intermediate::Local(parts) => {
            if parts.is_empty() {
                return (0..nodes)
                    .map(|_| Relation::empty(value.schema().to_vec()))
                    .collect();
            }
            // Stream: route one part at a time and drain its buckets into
            // one incremental merge per node, so the shuffle holds
            // O(log parts) partial merges per node instead of every routed
            // bucket at once. The [`relation::MergeStack`] fold is
            // bit-identical to collecting all buckets and merge-ordering
            // them (ties resolved in part order, deterministic at every
            // thread count); `stats::shuffle_peak_bytes` records the
            // high-water footprint the streaming actually held.
            let mut stacks: Vec<relation::MergeStack> =
                (0..nodes).map(|_| relation::MergeStack::new()).collect();
            for part in parts {
                let routed = relation::hash_partition(part, attributes, nodes);
                for (node, mut bucket) in routed.into_iter().enumerate() {
                    establish_key_order(&mut bucket, attributes);
                    stacks[node].push(bucket);
                }
                relation::stats::note_shuffle(
                    stacks.iter().map(relation::MergeStack::held_bytes).sum(),
                );
            }
            stacks
                .into_iter()
                .map(|stack| stack.finish().expect("every node saw one bucket per part"))
                .collect()
        }
        Intermediate::LocalRuns(parts) => {
            // Defensive: runs never feed a shuffle in well-formed plans
            // (their sole consumer is the root projection). Expand and
            // route like any local parts.
            let expanded = Intermediate::Local(parts.iter().map(RunsRelation::expand).collect());
            partition_rows(&expanded, attributes, nodes)
        }
    }
}

/// Sorts a shuffle bucket into join-key order when its tracked order does
/// not already deliver it. No-op (and no counter traffic) on the planned
/// path where the interesting-orders pass ordered the producer by this key.
/// Buckets of at most one row adopt the key descriptor outright (every
/// ordering holds on them), so a node's per-part buckets keep a shared
/// order and their k-way merge stays key-ordered.
fn establish_key_order(bucket: &mut Relation, attributes: &[Variable]) {
    let key_cols: Vec<usize> = attributes.iter().filter_map(|a| bucket.column(a)).collect();
    if key_cols.len() < attributes.len() || bucket.order().satisfies(&key_cols) {
        return;
    }
    if bucket.len() <= 1 {
        bucket.assume_order(SortOrder::by(key_cols.iter().copied()));
    } else {
        bucket.sort_by_columns(&key_cols);
    }
}

/// Mutable execution state threaded through the arena-order evaluation.
struct ExecState<'a> {
    plan: &'a PhysicalPlan,
    cluster: &'a Cluster,
    schedule: &'a JobSchedule,
    runtime: &'a Runtime,
    /// This execution's job identity on the (shared, multi-job) scheduler.
    job_id: cliquesquare_mapreduce::JobId,
    jobs: Vec<JobState>,
    memo: Vec<Option<Arc<Intermediate>>>,
    /// Span recording; `None` on the default (unprofiled) path.
    prof: Option<ProfCtx>,
    /// Cost-model estimated cardinalities per operator (arena-indexed),
    /// attached as `est_rows` span attributes when profiling.
    estimates: Option<&'a [u64]>,
}

impl<'a> ExecState<'a> {
    fn job_mut(&mut self, id: PhysId) -> &mut JobState {
        let job = self.schedule.job_of(id);
        &mut self.jobs[job - 1]
    }

    /// Runs one wave of this job's tasks, timing the whole wave. With
    /// profiling on, every task is additionally bracketed with its start
    /// offset, wall clock, and relation-stats delta — pure observations
    /// that cannot change task results. A task the submitter ran inline
    /// (sequential runtime, or the scheduler's submitter-helping) already
    /// has its stats inside the driver-side bracket of the evaluation
    /// loop, so only deltas observed on *other* threads accumulate here.
    fn run_timed_wave<T, F>(&mut self, tasks: Vec<F>) -> (Vec<T>, f64)
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let Some(prof) = &self.prof else {
            return self.runtime.run_job_timed_wave(self.job_id, tasks);
        };
        let epoch = prof.epoch;
        let wrapped: Vec<_> = tasks
            .into_iter()
            .map(|task| {
                move || {
                    let start = epoch.elapsed().as_secs_f64();
                    let before = relation::stats::snapshot();
                    let clock = Instant::now();
                    let result = task();
                    let wall = clock.elapsed().as_secs_f64();
                    let delta = relation::stats::snapshot().since(&before);
                    (result, start, wall, delta, std::thread::current().id())
                }
            })
            .collect();
        let (outcomes, wave_wall) = self.runtime.run_job_timed_wave(self.job_id, wrapped);
        let prof = self.prof.as_mut().expect("profiling stays on");
        let mut results = Vec::with_capacity(outcomes.len());
        for (index, (result, start, wall, delta, thread)) in outcomes.into_iter().enumerate() {
            prof.tasks.push(TaskSpan {
                index,
                start_seconds: start,
                wall_seconds: wall,
            });
            if thread != prof.driver {
                prof.worker_stats = add_stats(&prof.worker_stats, &delta);
            }
            results.push(result);
        }
        (results, wave_wall)
    }

    /// Finishes the span node of one evaluated operator: the driver-side
    /// bracket plus whatever its waves observed on worker threads.
    fn record_node(
        &mut self,
        id: PhysId,
        result: &Intermediate,
        start_seconds: f64,
        wall_seconds: f64,
        driver_delta: RelationStats,
    ) {
        let job = self.schedule.job_of(id);
        let rows_in_from_inputs: u64 = self
            .plan
            .op(id)
            .inputs()
            .iter()
            .filter_map(|input| self.memo[input.index()].as_ref())
            .map(|value| value.cardinality())
            .sum();
        let prof = self.prof.as_mut().expect("record_node requires profiling");
        let mut node = SpanNode::new(format!("{}#{}", self.plan.op(id).name(), id.index()));
        node.start_seconds = start_seconds;
        node.wall_seconds = wall_seconds;
        node.rows_in = prof.rows_in.take().unwrap_or(rows_in_from_inputs);
        node.rows_out = result.cardinality();
        node.tasks = std::mem::take(&mut prof.tasks);
        let stats = add_stats(&driver_delta, &std::mem::take(&mut prof.worker_stats));
        for (name, value) in [
            ("sorts_performed", stats.sorts_performed),
            ("sorts_elided", stats.sorts_elided),
            ("join_inputs_presorted", stats.join_inputs_presorted),
            ("join_inputs_resorted", stats.join_inputs_resorted),
            ("runs_emitted", stats.runs_emitted),
            ("rows_expanded", stats.rows_expanded),
        ] {
            if value > 0 {
                node.add_attr(name, value);
            }
        }
        for (name, value) in std::mem::take(&mut prof.attrs) {
            node.add_attr(name, value);
        }
        if let Some(&estimated) = self.estimates.and_then(|cards| cards.get(id.index())) {
            node.add_attr("est_rows", estimated);
            observe_q_error(estimated, node.rows_out);
        }
        prof.nodes.push((job, node));
    }

    /// An already-evaluated input (arena order guarantees inputs come first).
    fn input(&self, id: PhysId) -> Arc<Intermediate> {
        self.memo[id.index()]
            .clone()
            .expect("inputs evaluated before consumers")
    }

    fn eval_op(&mut self, id: PhysId) -> Arc<Intermediate> {
        let plan = self.plan;
        match plan.op(id) {
            PhysicalOp::MapScan { spec, output } => self.eval_scan(id, spec, output, &[]),
            PhysicalOp::Filter {
                conditions,
                input,
                output,
            } => {
                // A Filter directly above a MapScan is evaluated together
                // with the scan, because the constant checks apply to the raw
                // triple rather than to the binding rows.
                if let PhysicalOp::MapScan { spec, .. } = plan.op(*input) {
                    self.eval_scan(id, spec, output, conditions)
                } else {
                    self.eval_filter(id, conditions, *input)
                }
            }
            PhysicalOp::MapJoin {
                attributes, inputs, ..
            } => self.eval_map_join(id, attributes, inputs),
            PhysicalOp::MapShuffler { input, .. } => self.eval_shuffler(id, *input),
            PhysicalOp::ReduceJoin {
                attributes, inputs, ..
            } => self.eval_reduce_join(id, attributes, inputs),
            PhysicalOp::Project { variables, input } => self.eval_project(id, variables, *input),
        }
    }

    /// Scans the partition files selected by `spec` and converts the raw
    /// triples to binding rows, applying `extra_conditions` (residual
    /// constants pushed down from an enclosing Filter) and the pattern's own
    /// repeated-variable equalities. One map task per node. The store scans
    /// placement-major, so each node's relation starts pre-ordered: it is
    /// tagged with the index order the interesting-orders pass derived for
    /// this operator (verified in debug builds), and a scan feeding a join
    /// on the placement variable needs no re-sort at all.
    fn eval_scan(
        &mut self,
        id: PhysId,
        spec: &ScanSpec,
        output: &BTreeSet<Variable>,
        extra_conditions: &[FilterCondition],
    ) -> Arc<Intermediate> {
        let plan = self.plan;
        let nodes = self.cluster.nodes();
        let schema: Vec<Variable> = output.iter().cloned().collect();
        // Columns of the delivered index order. The pass keeps delivered
        // orders inside the output schema, but truncate at the first missing
        // variable anyway: a dropped order column breaks ties invisibly, so
        // claiming the columns after it would be unsound.
        let order_cols: Vec<usize> = plan
            .ordering(id)
            .delivered
            .iter()
            .map_while(|v| schema.iter().position(|s| s == v))
            .collect();
        // One `'static` snapshot shared by the wave's tasks: the store stays
        // behind its `Arc`, everything else is this scan's own small state.
        let ctx = Arc::new(ScanWave {
            store: self.cluster.store_arc(),
            spec: spec.clone(),
            binder: TripleBinder::new(spec, &schema),
            schema,
            order_cols,
            extra_conditions: extra_conditions.to_vec(),
        });
        let tasks: Vec<_> = (0..nodes)
            .map(|node| {
                let ctx = Arc::clone(&ctx);
                move || -> (Relation, u64) {
                    let spec = &ctx.spec;
                    let triples =
                        ctx.store
                            .scan_node(node, spec.placement, spec.property, spec.type_object);
                    let scanned = triples.len() as u64;
                    let mut relation = Relation::empty(ctx.schema.clone());
                    let mut scratch = vec![TermId(0); ctx.binder.arity()];
                    'triples: for triple in triples {
                        for condition in &ctx.extra_conditions {
                            if triple.get(condition.position) != condition.constant {
                                continue 'triples;
                            }
                        }
                        if ctx.binder.bind(&triple, &mut scratch) {
                            relation.push_row_unordered(&scratch);
                        }
                    }
                    relation.assume_order(SortOrder::by(ctx.order_cols.iter().copied()));
                    (relation, scanned)
                }
            })
            .collect();
        let (results, wall) = self.run_timed_wave(tasks);

        let checks = (extra_conditions.len() as u64).max(1);
        let mut scanned_total: u64 = 0;
        let mut produced: u64 = 0;
        let job = self.job_mut(id);
        job.map_wall += wall;
        let mut parts = Vec::with_capacity(results.len());
        for (node, (relation, scanned)) in results.into_iter().enumerate() {
            job.map_in[node] += scanned;
            job.map_out[node] += relation.len() as u64;
            scanned_total += scanned;
            produced += relation.len() as u64;
            parts.push(relation);
        }
        job.metrics.tuples_read += scanned_total;
        job.metrics.comparisons += scanned_total * checks;
        job.metrics.tuples_written += produced;
        if let Some(prof) = &mut self.prof {
            // The scan's true input is the raw triples it read, which no
            // memoized intermediate reports.
            prof.rows_in = Some(scanned_total);
        }
        Arc::new(Intermediate::Local(parts))
    }

    fn eval_filter(
        &mut self,
        id: PhysId,
        conditions: &[FilterCondition],
        input: PhysId,
    ) -> Arc<Intermediate> {
        let value = self.input(input);
        let rows = value.cardinality();
        self.job_mut(id).metrics.comparisons += rows * (conditions.len() as u64).max(1);
        // Filters over non-scan inputs carry no residual conditions in the
        // BGP fragment (joins enforce every equality), so they pass through
        // sharing the input's Arc.
        value
    }

    fn eval_map_join(
        &mut self,
        id: PhysId,
        attributes: &BTreeSet<Variable>,
        inputs: &[PhysId],
    ) -> Arc<Intermediate> {
        let plan = self.plan;
        let attrs: Vec<Variable> = attributes.iter().cloned().collect();
        // The interesting-orders pass picked this operator's output order to
        // satisfy its consumer; the join sorts only when its natural key
        // order does not already deliver it.
        let delivered: &[Variable] = &plan.ordering(id).delivered;
        let evaluated: Vec<Arc<Intermediate>> = inputs.iter().map(|&i| self.input(i)).collect();
        let nodes = self.cluster.nodes();
        let all_local = evaluated
            .iter()
            .all(|value| matches!(&**value, Intermediate::Local(parts) if parts.len() == nodes));
        if !all_local {
            // Defensive path: a map join over non-co-located inputs degrades
            // to a cluster-wide join (well-formed translations never hit it).
            let relations: Vec<Relation> = evaluated.iter().map(|v| v.to_global()).collect();
            let refs: Vec<&Relation> = relations.iter().collect();
            let joined = Relation::join_ordered(&refs, &attrs, JoinOrder::Columns(delivered));
            let produced = joined.len() as u64;
            let job = self.job_mut(id);
            job.metrics.join_output_tuples += produced;
            job.metrics.tuples_written += produced;
            spread(&mut job.map_out, produced);
            return Arc::new(Intermediate::Global(joined));
        }
        // `'static` wave context: the inputs' `Arc`s plus this join's key
        // and output order.
        let ctx = Arc::new(JoinWave {
            attrs,
            delivered: delivered.to_vec(),
            evaluated,
        });
        if plan.factorized(id) {
            // Factorized path: emit `(key, payload ranges)` runs per node
            // instead of materializing the cross product. Counters report the
            // rows an expansion yields, so the job totals (and the cost model
            // on top) match the eager path exactly.
            let tasks: Vec<_> = (0..nodes)
                .map(|node| {
                    let ctx = Arc::clone(&ctx);
                    move || {
                        let node_inputs: Vec<&Relation> = ctx
                            .evaluated
                            .iter()
                            .map(|value| match &**value {
                                Intermediate::Local(parts) => &parts[node],
                                _ => unreachable!("checked above"),
                            })
                            .collect();
                        factorized::join_runs(&node_inputs, &ctx.attrs, &ctx.delivered)
                    }
                })
                .collect();
            let (parts, wall) = self.run_timed_wave(tasks);
            let mut produced: u64 = 0;
            let job = self.job_mut(id);
            job.map_wall += wall;
            for (node, part) in parts.iter().enumerate() {
                job.map_out[node] += part.expanded_len() as u64;
                produced += part.expanded_len() as u64;
            }
            job.metrics.join_output_tuples += produced;
            job.metrics.tuples_written += produced;
            return Arc::new(Intermediate::LocalRuns(parts));
        }
        let tasks: Vec<_> = (0..nodes)
            .map(|node| {
                let ctx = Arc::clone(&ctx);
                move || {
                    let node_inputs: Vec<&Relation> = ctx
                        .evaluated
                        .iter()
                        .map(|value| match &**value {
                            Intermediate::Local(parts) => &parts[node],
                            _ => unreachable!("checked above"),
                        })
                        .collect();
                    Relation::join_ordered(
                        &node_inputs,
                        &ctx.attrs,
                        JoinOrder::Columns(&ctx.delivered),
                    )
                }
            })
            .collect();
        let (parts, wall) = self.run_timed_wave(tasks);
        let mut produced: u64 = 0;
        let job = self.job_mut(id);
        job.map_wall += wall;
        for (node, part) in parts.iter().enumerate() {
            job.map_out[node] += part.len() as u64;
            produced += part.len() as u64;
        }
        job.metrics.join_output_tuples += produced;
        job.metrics.tuples_written += produced;
        Arc::new(Intermediate::Local(parts))
    }

    fn eval_shuffler(&mut self, id: PhysId, input: PhysId) -> Arc<Intermediate> {
        let value = self.input(input);
        let rows = value.cardinality();
        let job = self.job_mut(id);
        job.metrics.tuples_read += rows;
        job.metrics.tuples_written += rows;
        match &*value {
            Intermediate::Local(parts) => {
                for (node, part) in parts.iter().enumerate() {
                    job.map_in[node] += part.len() as u64;
                    job.map_out[node] += part.len() as u64;
                }
            }
            Intermediate::Global(_) => {
                // A previous job's stored output: re-read from the
                // distributed file system by this job's map tasks.
                spread(&mut job.map_in, rows);
                spread(&mut job.map_out, rows);
            }
            Intermediate::LocalRuns(parts) => {
                // Defensive: the planner only factorizes joins whose sole
                // consumer is the root projection, so runs never reach a
                // shuffler in well-formed plans. Account expanded volumes.
                for (node, part) in parts.iter().enumerate() {
                    job.map_in[node] += part.expanded_len() as u64;
                    job.map_out[node] += part.expanded_len() as u64;
                }
            }
        }
        value
    }

    fn eval_reduce_join(
        &mut self,
        id: PhysId,
        attributes: &BTreeSet<Variable>,
        inputs: &[PhysId],
    ) -> Arc<Intermediate> {
        let plan = self.plan;
        let attrs: Vec<Variable> = attributes.iter().cloned().collect();
        let delivered: &[Variable] = &plan.ordering(id).delivered;
        let evaluated: Vec<Arc<Intermediate>> = inputs.iter().map(|&i| self.input(i)).collect();
        let nodes = self.cluster.nodes();
        let shuffled: u64 = evaluated.iter().map(|v| v.cardinality()).sum();

        let phase_started = Instant::now();
        // Shuffle: hash-partition every input's rows on the join attributes,
        // so all rows agreeing on the key meet on the same node. Buckets
        // keep their input's key order (ordered merges, no re-sorting), so
        // inputs the pass ordered by this join's attributes arrive on the
        // reduce side pre-sorted.
        let buckets: Vec<Vec<Relation>> = evaluated
            .iter()
            .map(|value| partition_rows(value, &attrs, nodes))
            .collect();
        if let Some(prof) = &mut self.prof {
            let shuffle_bytes: u64 = buckets.iter().flatten().map(Relation::buffer_bytes).sum();
            prof.attrs.push(("shuffle_bytes", shuffle_bytes));
            prof.attrs.push(("tuples_shuffled", shuffled));
        }
        // One reduce task per node joins the co-partitioned buckets; the
        // `'static` wave shares the shuffled buckets behind one `Arc`.
        let ctx = Arc::new(ReduceWave {
            attrs,
            delivered: delivered.to_vec(),
            buckets,
        });
        if plan.factorized(id) {
            // Factorized path: each reduce task emits runs over its
            // co-partitioned buckets; no cluster-wide merge — the runs stay
            // per-node and expand at the projection boundary. The hash
            // partition gives nodes disjoint key sets, so expanding and
            // merging later yields exactly the eager join's rows.
            let tasks: Vec<_> = (0..nodes)
                .map(|node| {
                    let ctx = Arc::clone(&ctx);
                    move || {
                        let node_inputs: Vec<&Relation> = ctx
                            .buckets
                            .iter()
                            .map(|per_input| &per_input[node])
                            .collect();
                        factorized::join_runs(&node_inputs, &ctx.attrs, &ctx.delivered)
                    }
                })
                .collect();
            let (parts, _wave_wall) = self.run_timed_wave(tasks);
            let buckets = &ctx.buckets;
            let mut produced: u64 = 0;
            let job = self.job_mut(id);
            for (node, part) in parts.iter().enumerate() {
                let received: u64 = buckets
                    .iter()
                    .map(|per_input| per_input[node].len() as u64)
                    .sum();
                job.reduce_in[node] += received;
                job.reduce_out[node] += part.expanded_len() as u64;
                produced += part.expanded_len() as u64;
            }
            job.reduce_wall += phase_started.elapsed().as_secs_f64();
            job.metrics.tuples_shuffled += shuffled;
            job.metrics.join_output_tuples += produced;
            job.metrics.tuples_written += produced;
            return Arc::new(Intermediate::LocalRuns(parts));
        }
        let tasks: Vec<_> = (0..nodes)
            .map(|node| {
                let ctx = Arc::clone(&ctx);
                move || {
                    let node_inputs: Vec<&Relation> = ctx
                        .buckets
                        .iter()
                        .map(|per_input| &per_input[node])
                        .collect();
                    Relation::join_ordered(
                        &node_inputs,
                        &ctx.attrs,
                        JoinOrder::Columns(&ctx.delivered),
                    )
                }
            })
            .collect();
        // `phase_started` spans shuffle + join wave + merge; the per-wave
        // wall the helper returns is only kept by the profiler.
        let (parts, _wave_wall) = self.run_timed_wave(tasks);
        let buckets = &ctx.buckets;

        let mut produced: u64 = 0;
        let job = self.job_mut(id);
        for (node, part) in parts.iter().enumerate() {
            let received: u64 = buckets
                .iter()
                .map(|per_input| per_input[node].len() as u64)
                .sum();
            job.reduce_in[node] += received;
            job.reduce_out[node] += part.len() as u64;
            produced += part.len() as u64;
        }
        // K-way merge of the per-node join outputs by their shared delivered
        // order (the hash partition gives the nodes disjoint key sets, so
        // the merge interleaves whole key groups). Deterministic in node
        // order, so identical at every thread count — and identical to a
        // cluster-wide join of the inputs (a hash partition on the key never
        // separates joinable rows). No canonicalization here: the root
        // performs the single final sort.
        let joined = merge_parts(parts.into_iter());
        job.reduce_wall += phase_started.elapsed().as_secs_f64();
        job.metrics.tuples_shuffled += shuffled;
        job.metrics.join_output_tuples += produced;
        job.metrics.tuples_written += produced;
        Arc::new(Intermediate::Global(joined))
    }

    fn eval_project(
        &mut self,
        id: PhysId,
        variables: &[Variable],
        input: PhysId,
    ) -> Arc<Intermediate> {
        let value = self.input(input);
        let rows = value.cardinality();
        match &*value {
            Intermediate::Local(parts) => {
                let vars = Arc::new(variables.to_vec());
                let tasks: Vec<_> = (0..parts.len())
                    .map(|index| {
                        let value = Arc::clone(&value);
                        let vars = Arc::clone(&vars);
                        move || match &*value {
                            Intermediate::Local(parts) => parts[index].project(&vars),
                            _ => unreachable!("matched Local above"),
                        }
                    })
                    .collect();
                let (projected, wall) = self.run_timed_wave(tasks);
                let job = self.job_mut(id);
                job.map_wall += wall;
                job.metrics.comparisons += rows;
                Arc::new(Intermediate::Local(projected))
            }
            Intermediate::Global(rel) => {
                let projected = rel.project(variables);
                self.job_mut(id).metrics.comparisons += rows;
                Arc::new(Intermediate::Global(projected))
            }
            Intermediate::LocalRuns(parts) => {
                // Expansion boundary: runs materialize here, directly at the
                // projected arity — the full-width cross product never
                // exists.
                let vars = Arc::new(variables.to_vec());
                let tasks: Vec<_> = (0..parts.len())
                    .map(|index| {
                        let value = Arc::clone(&value);
                        let vars = Arc::clone(&vars);
                        move || match &*value {
                            Intermediate::LocalRuns(parts) => parts[index].project_expand(&vars),
                            _ => unreachable!("matched LocalRuns above"),
                        }
                    })
                    .collect();
                let (projected, wall) = self.run_timed_wave(tasks);
                let job = self.job_mut(id);
                job.map_wall += wall;
                job.metrics.comparisons += rows;
                Arc::new(Intermediate::Local(projected))
            }
        }
    }
}

/// The shared `'static` context of one scan wave: the store snapshot plus
/// this scan's own small state, behind a single `Arc`.
struct ScanWave {
    store: Arc<cliquesquare_mapreduce::PartitionedStore>,
    spec: ScanSpec,
    binder: TripleBinder,
    schema: Vec<Variable>,
    order_cols: Vec<usize>,
    extra_conditions: Vec<FilterCondition>,
}

/// The shared `'static` context of one map-join wave: the evaluated inputs'
/// `Arc`s plus the join key and output order.
struct JoinWave {
    attrs: Vec<Variable>,
    delivered: Vec<Variable>,
    evaluated: Vec<Arc<Intermediate>>,
}

/// The shared `'static` context of one reduce-join wave: the shuffled
/// per-input, per-node buckets plus the join key and output order.
struct ReduceWave {
    attrs: Vec<Variable>,
    delivered: Vec<Variable>,
    buckets: Vec<Vec<Relation>>,
}

/// Converts raw triples matched by a scan spec into binding rows over a
/// fixed schema, with the position → column mapping computed **once** per
/// scan instead of per triple. [`TripleBinder::bind`] writes into a caller
/// scratch row, so the scan performs no per-row heap allocation.
struct TripleBinder {
    arity: usize,
    /// First occurrence of each schema variable in the pattern: the triple
    /// position that provides the column's value.
    writes: Vec<(TriplePosition, usize)>,
    /// Repeated occurrences: positions that must agree with an already
    /// written column (repeated-variable consistency).
    checks: Vec<(TriplePosition, usize)>,
    /// `true` when some schema variable does not occur in the pattern: no
    /// triple can bind it, so the scan produces no rows (mirrors the
    /// row-by-row `None` of the historical binder).
    unbound_column: bool,
}

impl TripleBinder {
    fn new(spec: &ScanSpec, schema: &[Variable]) -> Self {
        let positions = [
            (&spec.pattern.subject, TriplePosition::Subject),
            (&spec.pattern.property, TriplePosition::Property),
            (&spec.pattern.object, TriplePosition::Object),
        ];
        let mut writes: Vec<(TriplePosition, usize)> = Vec::new();
        let mut checks: Vec<(TriplePosition, usize)> = Vec::new();
        let mut written = vec![false; schema.len()];
        for (term, position) in positions {
            if let PatternTerm::Variable(v) = term {
                if let Some(slot) = schema.iter().position(|s| s == v) {
                    if written[slot] {
                        checks.push((position, slot));
                    } else {
                        written[slot] = true;
                        writes.push((position, slot));
                    }
                }
            }
        }
        Self {
            arity: schema.len(),
            writes,
            checks,
            unbound_column: written.iter().any(|w| !w),
        }
    }

    fn arity(&self) -> usize {
        self.arity
    }

    /// Fills `row` with the triple's bindings; returns `false` when the
    /// triple binds a repeated variable to different values (or a schema
    /// column has no source position).
    fn bind(&self, triple: &Triple, row: &mut [TermId]) -> bool {
        if self.unbound_column {
            return false;
        }
        for &(position, slot) in &self.writes {
            row[slot] = triple.get(position);
        }
        self.checks
            .iter()
            .all(|&(position, slot)| triple.get(position) == row[slot])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_eval;
    use cliquesquare_core::{Optimizer, Variant};
    use cliquesquare_mapreduce::ClusterConfig;
    use cliquesquare_rdf::{LubmGenerator, LubmScale};
    use cliquesquare_sparql::parser::parse_query;

    fn cluster() -> Cluster {
        let graph = LubmGenerator::new(LubmScale::tiny()).generate();
        Cluster::load(graph, ClusterConfig::with_nodes(4))
    }

    fn run(cluster: &Cluster, query: &str, variant: Variant) -> ExecutionOutput {
        let q = parse_query(query).unwrap();
        let result = Optimizer::with_variant(variant).optimize(&q);
        let logical = result.flattest_plans()[0].clone();
        Executor::sequential(cluster).execute_logical(&logical)
    }

    #[test]
    fn two_pattern_join_matches_reference() {
        let cluster = cluster();
        let query = "SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d }";
        let output = run(&cluster, query, Variant::Msc);
        let reference = reference_eval(cluster.graph(), &parse_query(query).unwrap());
        assert!(output.distinct_count() > 0);
        assert_eq!(output.distinct_count(), reference.len());
        assert_eq!(
            output.results.clone().distinct().sorted(),
            reference.sorted()
        );
    }

    #[test]
    fn star_query_runs_as_single_map_only_job() {
        let cluster = cluster();
        let output = run(
            &cluster,
            "SELECT ?x ?d ?e WHERE { ?x ub:worksFor ?d . ?x ub:emailAddress ?e . ?x rdf:type ub:FullProfessor }",
            Variant::Msc,
        );
        assert_eq!(output.job_log.job_count(), 1);
        assert_eq!(output.job_log.descriptor(), "M");
        assert_eq!(output.metrics.tuples_shuffled, 0);
        assert!(output.distinct_count() > 0);
    }

    #[test]
    fn estimates_attach_as_span_attrs_without_changing_answers() {
        let cluster = cluster();
        let query = "SELECT ?x ?z WHERE { ?x ub:advisor ?y . ?y ub:worksFor ?z }";
        let q = parse_query(query).unwrap();
        let logical = Optimizer::with_variant(Variant::Msc)
            .optimize(&q)
            .flattest_plans()[0]
            .clone();
        let physical = crate::translate::translate(&logical, cluster.graph());
        let estimates = crate::cost::MapReduceCostModel::new(&cluster).estimate_cards(&physical);
        let executor = Executor::sequential(&cluster);
        let plain = executor.execute(&physical);
        let with_estimates = executor.execute_profiled_with_estimates(&physical, &estimates);
        assert_eq!(
            plain.results.clone().distinct().sorted(),
            with_estimates.results.clone().distinct().sorted(),
            "estimate attachment is pure observation"
        );
        let profile = with_estimates
            .profile
            .expect("profiled run has a span tree");
        let mut est_attrs = 0usize;
        let mut stack = vec![&profile];
        while let Some(node) = stack.pop() {
            if node.attrs.iter().any(|(name, _)| name == "est_rows") {
                est_attrs += 1;
            }
            stack.extend(node.children.iter());
        }
        assert!(
            est_attrs >= 2,
            "every evaluated operator carries est_rows (got {est_attrs})"
        );
    }

    #[test]
    fn selective_constant_query_matches_reference() {
        let cluster = cluster();
        let query = "SELECT ?x ?y WHERE { ?x rdf:type ub:Lecturer . ?y rdf:type ub:Department . \
                     ?x ub:worksFor ?y . ?y ub:subOrganizationOf <http://www.University0.edu> }";
        let output = run(&cluster, query, Variant::Msc);
        let reference = reference_eval(cluster.graph(), &parse_query(query).unwrap());
        assert_eq!(output.distinct_count(), reference.len());
        assert!(output.distinct_count() > 0);
    }

    #[test]
    fn chain_query_matches_reference_for_flat_and_deep_plans() {
        let cluster = cluster();
        let query = "SELECT ?x ?z WHERE { ?x ub:advisor ?y . ?y ub:worksFor ?z . ?z ub:subOrganizationOf ?u }";
        let reference = reference_eval(cluster.graph(), &parse_query(query).unwrap());
        for variant in [Variant::Msc, Variant::Mxc, Variant::MscPlus] {
            let output = run(&cluster, query, variant);
            assert_eq!(
                output.distinct_count(),
                reference.len(),
                "variant {variant} returned wrong answers"
            );
        }
    }

    #[test]
    fn all_msc_plans_of_a_query_agree() {
        let cluster = cluster();
        let query = "SELECT ?x ?y ?z WHERE { ?x rdf:type ub:UndergraduateStudent . ?y rdf:type ub:FullProfessor . \
                     ?z rdf:type ub:Course . ?x ub:advisor ?y . ?x ub:takesCourse ?z . ?y ub:teacherOf ?z }";
        let q = parse_query(query).unwrap();
        let plans = Optimizer::with_variant(Variant::Msc).optimize(&q).plans;
        let reference = reference_eval(cluster.graph(), &q);
        let executor = Executor::sequential(&cluster);
        for plan in plans.iter().take(8) {
            let output = executor.execute_logical(plan);
            assert_eq!(output.distinct_count(), reference.len());
        }
        assert!(!reference.is_empty());
    }

    #[test]
    fn empty_answer_queries_execute_cleanly() {
        let cluster = cluster();
        let output = run(
            &cluster,
            "SELECT ?x WHERE { ?x ub:noSuchProperty ?y . ?y ub:worksFor ?z }",
            Variant::Msc,
        );
        assert_eq!(output.distinct_count(), 0);
        assert!(output.simulated_seconds > 0.0);
    }

    #[test]
    fn deeper_plans_cost_more_simulated_time() {
        let cluster = cluster();
        let query = "SELECT ?a WHERE { ?a ub:p1 ?b . ?b ub:p2 ?c . ?c ub:p3 ?d . ?d ub:p4 ?e . ?e ub:p5 ?f . ?f ub:p6 ?g }";
        let flat = run(&cluster, query, Variant::Msc);
        let deep = run(&cluster, query, Variant::Mxc);
        assert!(flat.job_log.job_count() <= deep.job_log.job_count());
        if flat.job_log.job_count() < deep.job_log.job_count() {
            assert!(flat.simulated_seconds < deep.simulated_seconds);
        }
    }

    #[test]
    fn metrics_account_for_scans_and_joins() {
        let cluster = cluster();
        let output = run(
            &cluster,
            "SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d }",
            Variant::Msc,
        );
        assert!(output.metrics.tuples_read > 0);
        assert!(output.metrics.join_output_tuples > 0);
        assert_eq!(output.metrics.jobs, output.job_log.job_count() as u64);
    }

    #[test]
    fn repeated_variable_pattern_binds_consistently() {
        // A pattern like { ?x ub:advisor ?x } only matches triples whose
        // subject equals their object; none exist in the LUBM data.
        let cluster = cluster();
        let output = run(
            &cluster,
            "SELECT ?x WHERE { ?x ub:advisor ?x . ?x ub:memberOf ?d }",
            Variant::Msc,
        );
        assert_eq!(output.distinct_count(), 0);
    }

    #[test]
    fn parallel_execution_is_bit_identical_to_sequential() {
        let cluster = cluster();
        let queries = [
            "SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d }",
            "SELECT ?x ?z WHERE { ?x ub:advisor ?y . ?y ub:worksFor ?z . ?z ub:subOrganizationOf ?u }",
            "SELECT ?x ?y ?z WHERE { ?x rdf:type ub:UndergraduateStudent . ?y rdf:type ub:FullProfessor . \
             ?z rdf:type ub:Course . ?x ub:advisor ?y . ?x ub:takesCourse ?z . ?y ub:teacherOf ?z }",
        ];
        for query in queries {
            let q = parse_query(query).unwrap();
            let result = Optimizer::with_variant(Variant::Msc).optimize(&q);
            let logical = result.flattest_plans()[0].clone();
            let sequential = Executor::sequential(&cluster).execute_logical(&logical);
            for threads in [2, 4, 8] {
                let parallel = Executor::with_runtime(&cluster, Runtime::with_threads(threads))
                    .execute_logical(&logical);
                assert_eq!(sequential.results, parallel.results, "threads={threads}");
                assert_eq!(parallel.threads, threads);
                assert_eq!(
                    sequential.job_log.descriptor(),
                    parallel.job_log.descriptor()
                );
                assert_eq!(sequential.metrics, parallel.metrics);
                assert_eq!(
                    sequential.simulated_seconds, parallel.simulated_seconds,
                    "the cost model must not depend on the thread count"
                );
            }
        }
    }

    #[test]
    fn job_log_records_per_node_tasks_and_wall_time() {
        let cluster = cluster();
        let output = run(
            &cluster,
            "SELECT ?x ?z WHERE { ?x ub:advisor ?y . ?y ub:worksFor ?z . ?z ub:subOrganizationOf ?u }",
            Variant::Msc,
        );
        assert!(output.wall_seconds > 0.0);
        assert!(output.job_log.wall_seconds() >= 0.0);
        for job in &output.job_log.jobs {
            assert_eq!(job.map_tasks.len(), cluster.nodes());
            if job.kind == JobKind::MapReduce {
                assert_eq!(job.reduce_tasks.len(), cluster.nodes());
            }
            // Per-node map task inputs add up to the job's read counter.
            assert_eq!(
                job.map_tasks.iter().map(|t| t.input_tuples).sum::<u64>(),
                job.metrics.tuples_read
            );
        }
    }

    #[test]
    fn results_are_canonical() {
        let cluster = cluster();
        let output = run(
            &cluster,
            "SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d }",
            Variant::Msc,
        );
        assert!(output.results.is_canonical());
        let mut sorted = output.results.clone();
        sorted.canonicalize();
        assert_eq!(sorted, output.results);
    }

    /// Leaf scans start pre-ordered: a first-level join consumes every scan
    /// through the tracked-order fast path, so a map-only plan re-sorts no
    /// join input at all.
    #[test]
    fn map_only_plans_resort_no_join_input() {
        use crate::relation::stats;
        let cluster = cluster();
        let query = "SELECT ?x ?d ?e WHERE { ?x ub:worksFor ?d . ?x ub:emailAddress ?e . ?x rdf:type ub:FullProfessor }";
        let q = parse_query(query).unwrap();
        let result = Optimizer::with_variant(Variant::Msc).optimize(&q);
        let logical = result.flattest_plans()[0].clone();
        let physical = translate(&logical, cluster.graph());
        assert_eq!(physical.reduce_join_count(), 0, "star query is map-only");
        stats::reset();
        let output = Executor::sequential(&cluster).execute(&physical);
        let after = stats::snapshot();
        assert!(output.distinct_count() > 0);
        assert_eq!(
            after.join_inputs_resorted, 0,
            "every scan of a first-level join starts in key order"
        );
        assert!(after.join_inputs_presorted > 0);
    }

    /// The interesting-orders pass elides sorts end to end: over the whole
    /// execution of a two-level plan, requirements satisfied by tracked
    /// orders outnumber the sorts that actually run.
    #[test]
    fn order_propagation_elides_more_sorts_than_it_performs() {
        use crate::relation::stats;
        let cluster = cluster();
        let query = "SELECT ?x ?z WHERE { ?x ub:advisor ?y . ?y ub:worksFor ?z . ?z ub:subOrganizationOf ?u }";
        let q = parse_query(query).unwrap();
        let result = Optimizer::with_variant(Variant::Msc).optimize(&q);
        let logical = result.flattest_plans()[0].clone();
        let physical = translate(&logical, cluster.graph());
        stats::reset();
        let output = Executor::sequential(&cluster).execute(&physical);
        let after = stats::snapshot();
        assert!(output.distinct_count() > 0);
        assert!(
            after.sorts_elided > after.sorts_performed,
            "elided {} vs performed {}",
            after.sorts_elided,
            after.sorts_performed
        );
    }
}
