//! Differential tests for the n-ary **sort-merge** join: on random
//! relations, [`Relation::join`] must produce exactly the multiset of rows
//! that a naive nested-loop oracle produces — covering duplicate keys,
//! empty inputs, shared non-join attributes, cross products (no join
//! attributes), and single-input identity joins, on both the
//! sorted-leading-key fast path and the column-permuted re-sort path.

use cliquesquare_engine::Relation;
use cliquesquare_rdf::TermId;
use cliquesquare_sparql::Variable;
use proptest::prelude::*;

fn v(name: &str) -> Variable {
    Variable::new(name)
}

fn relation(schema: &[&str], rows: Vec<Vec<u32>>) -> Relation {
    Relation::new(
        schema.iter().map(|s| v(s)).collect(),
        rows.into_iter()
            .map(|r| r.into_iter().map(TermId).collect())
            .collect(),
    )
}

/// Nested-loop n-ary join oracle: enumerates every combination of one row
/// per input, keeps the combinations that agree on every shared variable
/// (join attributes and incidental shared columns alike), and merges them
/// into output rows over the union schema. Returns the sorted multiset.
fn oracle_join(inputs: &[&Relation], attributes: &[Variable]) -> Vec<Vec<TermId>> {
    let mut schema: Vec<Variable> = Vec::new();
    for rel in inputs {
        for var in rel.schema() {
            if !schema.contains(var) {
                schema.push(var.clone());
            }
        }
    }
    // Every input must contain every join attribute (the J_A contract).
    for rel in inputs {
        for attr in attributes {
            assert!(rel.column(attr).is_some());
        }
    }
    let mut out: Vec<Vec<TermId>> = Vec::new();
    let seed: Vec<Option<TermId>> = vec![None; schema.len()];
    fn recurse(
        inputs: &[&Relation],
        schema: &[Variable],
        depth: usize,
        partial: &[Option<TermId>],
        out: &mut Vec<Vec<TermId>>,
    ) {
        if depth == inputs.len() {
            out.push(partial.iter().map(|c| c.expect("all bound")).collect());
            return;
        }
        'rows: for row in inputs[depth].rows() {
            let mut next = partial.to_vec();
            for (src, var) in inputs[depth].schema().iter().enumerate() {
                let dst = schema.iter().position(|s| s == var).expect("union");
                match next[dst] {
                    None => next[dst] = Some(row[src]),
                    Some(existing) if existing != row[src] => continue 'rows,
                    Some(_) => {}
                }
            }
            recurse(inputs, schema, depth + 1, &next, out);
        }
    }
    recurse(inputs, &schema, 0, &seed, &mut out);
    out.sort_unstable();
    out
}

/// The engine join's rows as a sorted multiset (it is canonical already,
/// but sort defensively so the comparison never depends on that).
fn joined_rows(inputs: &[&Relation], attributes: &[Variable]) -> Vec<Vec<TermId>> {
    let joined = Relation::join(inputs, attributes).sorted();
    joined.rows().map(<[TermId]>::to_vec).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Binary join on one attribute, tiny domain → lots of duplicate keys,
    /// plus the empty-input edge (0-row vectors are generated).
    #[test]
    fn binary_join_matches_oracle(
        left_rows in proptest::collection::vec((0u32..4, 0u32..4), 0..20),
        right_rows in proptest::collection::vec((0u32..4, 0u32..4), 0..20),
    ) {
        let left = relation(&["x", "a"], left_rows.iter().map(|&(x, a)| vec![x, a]).collect());
        let right = relation(&["x", "b"], right_rows.iter().map(|&(x, b)| vec![x, b]).collect());
        let attrs = vec![v("x")];
        prop_assert_eq!(
            joined_rows(&[&left, &right], &attrs),
            oracle_join(&[&left, &right], &attrs)
        );
    }

    /// The key column placed *last* forces the column-permuted re-sort path;
    /// the result must be identical to the leading-key layout.
    #[test]
    fn trailing_key_resort_path_matches_oracle(
        left_rows in proptest::collection::vec((0u32..4, 0u32..4), 0..20),
        right_rows in proptest::collection::vec((0u32..4, 0u32..4), 0..20),
    ) {
        let trailing = relation(&["a", "x"], left_rows.iter().map(|&(x, a)| vec![a, x]).collect());
        let right = relation(&["x", "b"], right_rows.iter().map(|&(x, b)| vec![x, b]).collect());
        let attrs = vec![v("x")];
        prop_assert_eq!(
            joined_rows(&[&trailing, &right], &attrs),
            oracle_join(&[&trailing, &right], &attrs)
        );
    }

    /// Three-way join on `x` where two inputs also share the non-join
    /// attribute `z`: combinations disagreeing on `z` must be rejected.
    #[test]
    fn shared_non_join_attributes_match_oracle(
        r1 in proptest::collection::vec((0u32..3, 0u32..3), 0..12),
        r2 in proptest::collection::vec((0u32..3, 0u32..3, 0u32..3), 0..12),
        r3 in proptest::collection::vec((0u32..3, 0u32..3), 0..12),
    ) {
        let a = relation(&["x", "z"], r1.iter().map(|&(x, z)| vec![x, z]).collect());
        let b = relation(&["x", "z", "b"], r2.iter().map(|&(x, z, c)| vec![x, z, c]).collect());
        let c = relation(&["x", "c"], r3.iter().map(|&(x, y)| vec![x, y]).collect());
        let attrs = vec![v("x")];
        prop_assert_eq!(
            joined_rows(&[&a, &b, &c], &attrs),
            oracle_join(&[&a, &b, &c], &attrs)
        );
    }

    /// Multi-attribute keys: join on (x, y) with duplicates in both columns.
    #[test]
    fn multi_attribute_keys_match_oracle(
        left_rows in proptest::collection::vec((0u32..3, 0u32..3, 0u32..3), 0..15),
        right_rows in proptest::collection::vec((0u32..3, 0u32..3, 0u32..3), 0..15),
    ) {
        let left = relation(&["x", "y", "a"], left_rows.iter().map(|&(x, y, a)| vec![x, y, a]).collect());
        let right = relation(&["y", "x", "b"], right_rows.iter().map(|&(x, y, b)| vec![y, x, b]).collect());
        let attrs = vec![v("x"), v("y")];
        prop_assert_eq!(
            joined_rows(&[&left, &right], &attrs),
            oracle_join(&[&left, &right], &attrs)
        );
    }

    /// No join attributes at all: the join degrades to a consistency-checked
    /// cross product (used by the SHAPE baseline on disconnected fragments).
    #[test]
    fn cross_product_matches_oracle(
        left_rows in proptest::collection::vec(0u32..5, 0..10),
        right_rows in proptest::collection::vec(0u32..5, 0..10),
    ) {
        let left = relation(&["a"], left_rows.iter().map(|&a| vec![a]).collect());
        let right = relation(&["b"], right_rows.iter().map(|&b| vec![b]).collect());
        prop_assert_eq!(
            joined_rows(&[&left, &right], &[]),
            oracle_join(&[&left, &right], &[])
        );
    }

    /// A single-input join is the identity up to canonical order — and the
    /// oracle agrees.
    #[test]
    fn single_input_identity_matches_oracle(
        rows in proptest::collection::vec((0u32..6, 0u32..6), 0..20),
    ) {
        let r = relation(&["x", "a"], rows.iter().map(|&(x, a)| vec![x, a]).collect());
        let attrs = vec![v("x")];
        prop_assert_eq!(joined_rows(&[&r], &attrs), oracle_join(&[&r], &attrs));
        let identity = Relation::join(&[&r], &attrs);
        prop_assert_eq!(identity.len(), r.len());
    }
}
