//! Property-based tests for the execution layer: the n-ary hash join of
//! [`Relation`] against a brute-force nested-loop oracle, and partition/scan
//! invariants of the simulated store.

use cliquesquare_engine::Relation;
use cliquesquare_mapreduce::PartitionedStore;
use cliquesquare_rdf::{Graph, Term, TermId, TriplePosition};
use cliquesquare_sparql::Variable;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn v(name: &str) -> Variable {
    Variable::new(name)
}

fn relation(schema: &[&str], rows: Vec<Vec<u32>>) -> Relation {
    Relation::new(
        schema.iter().map(|s| v(s)).collect(),
        rows.into_iter()
            .map(|r| r.into_iter().map(TermId).collect())
            .collect(),
    )
}

/// Brute-force binary join used as an oracle.
fn oracle_join(left: &Relation, right: &Relation, attrs: &[Variable]) -> usize {
    let mut count = 0usize;
    for l in left.rows() {
        'rows: for r in right.rows() {
            for attr in attrs {
                let lc = left.column(attr).unwrap();
                let rc = right.column(attr).unwrap();
                if l[lc] != r[rc] {
                    continue 'rows;
                }
            }
            // Shared non-join attributes must also agree.
            for (ci, var) in right.schema().iter().enumerate() {
                if attrs.contains(var) {
                    continue;
                }
                if let Some(lc) = left.column(var) {
                    if l[lc] != r[ci] {
                        continue 'rows;
                    }
                }
            }
            count += 1;
        }
    }
    count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The hash join returns exactly the rows the nested-loop oracle returns,
    /// regardless of input order.
    #[test]
    fn hash_join_matches_nested_loop(
        left_rows in proptest::collection::vec((0u32..6, 0u32..6), 0..25),
        right_rows in proptest::collection::vec((0u32..6, 0u32..6), 0..25),
    ) {
        let left = relation(&["x", "a"], left_rows.iter().map(|&(x, a)| vec![x, a]).collect());
        let right = relation(&["x", "b"], right_rows.iter().map(|&(x, b)| vec![x, b]).collect());
        let attrs = vec![v("x")];
        let joined = Relation::join(&[&left, &right], &attrs);
        prop_assert_eq!(joined.len(), oracle_join(&left, &right, &attrs));
        let swapped = Relation::join(&[&right, &left], &attrs);
        prop_assert_eq!(swapped.len(), joined.len());
    }

    /// A three-way star join equals joining twice pairwise.
    #[test]
    fn nary_join_equals_cascaded_binary_joins(
        r1 in proptest::collection::vec((0u32..5, 0u32..5), 0..15),
        r2 in proptest::collection::vec((0u32..5, 0u32..5), 0..15),
        r3 in proptest::collection::vec((0u32..5, 0u32..5), 0..15),
    ) {
        let a = relation(&["x", "a"], r1.iter().map(|&(x, y)| vec![x, y]).collect());
        let b = relation(&["x", "b"], r2.iter().map(|&(x, y)| vec![x, y]).collect());
        let c = relation(&["x", "c"], r3.iter().map(|&(x, y)| vec![x, y]).collect());
        let attrs = vec![v("x")];
        let nary = Relation::join(&[&a, &b, &c], &attrs);
        let ab = Relation::join(&[&a, &b], &attrs);
        let cascaded = Relation::join(&[&ab, &c], &attrs);
        prop_assert_eq!(nary.len(), cascaded.len());
        prop_assert_eq!(
            nary.clone().distinct().sorted().len(),
            cascaded.clone().distinct().sorted().len()
        );
    }

    /// Projection never increases the row count and keeps only requested
    /// columns; distinct never increases it further.
    #[test]
    fn project_and_distinct_shrink(
        rows in proptest::collection::vec((0u32..4, 0u32..4, 0u32..4), 0..30),
    ) {
        let rel = relation(&["a", "b", "c"], rows.iter().map(|&(a, b, c)| vec![a, b, c]).collect());
        let projected = rel.project(&[v("a"), v("c")]);
        prop_assert_eq!(projected.len(), rel.len());
        prop_assert_eq!(projected.schema().len(), 2);
        prop_assert!(projected.clone().distinct().len() <= projected.len());
    }

    /// Partitioning any graph over any cluster size stores every triple three
    /// times, and a per-property scan returns exactly the property's triples
    /// no matter which placement replica is read.
    #[test]
    fn partitioning_preserves_all_triples(
        raw in proptest::collection::vec((0u32..15, 0u32..4, 0u32..15), 1..120),
        nodes in 1usize..9,
    ) {
        let mut graph = Graph::new();
        for (s, p, o) in &raw {
            graph.insert_terms(
                Term::iri(format!("s{s}")),
                Term::iri(format!("p{p}")),
                Term::iri(format!("o{o}")),
            );
        }
        let store = PartitionedStore::build(&graph, nodes);
        let stats = store.stats();
        prop_assert_eq!(stats.stored_triples, graph.len() * 3);
        prop_assert_eq!(stats.nodes, nodes.max(1));
        let properties: BTreeSet<TermId> = graph.triples().iter().map(|t| t.property).collect();
        for property in properties {
            let expected = graph
                .triples_with(TriplePosition::Property, property)
                .count();
            for placement in TriplePosition::ALL {
                prop_assert_eq!(
                    store.scan_cardinality(placement, Some(property), None),
                    expected
                );
            }
        }
    }
}
