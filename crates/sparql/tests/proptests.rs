//! Property-based tests for the BGP query model and parser.

use cliquesquare_sparql::parser::parse_query;
use cliquesquare_sparql::{BgpQuery, PatternTerm, TriplePattern, Variable};
use proptest::prelude::*;

fn pattern_term_strategy() -> impl Strategy<Value = PatternTerm> {
    prop_oneof![
        3 => "[a-z]{1,4}".prop_map(PatternTerm::variable),
        1 => "[a-z]{1,6}".prop_map(|s| PatternTerm::iri(format!("http://ex.org/{s}"))),
        1 => "[A-Za-z0-9]{1,8}".prop_map(PatternTerm::literal),
    ]
}

fn pattern_strategy() -> impl Strategy<Value = TriplePattern> {
    (
        pattern_term_strategy(),
        "[a-z]{1,6}".prop_map(|s| PatternTerm::iri(format!("http://ex.org/p/{s}"))),
        pattern_term_strategy(),
    )
        .prop_map(|(s, p, o)| TriplePattern::new(s, p, o))
}

fn query_strategy() -> impl Strategy<Value = BgpQuery> {
    proptest::collection::vec(pattern_strategy(), 1..8).prop_map(|patterns| {
        let vars: Vec<Variable> = patterns
            .iter()
            .flat_map(TriplePattern::variables)
            .take(3)
            .collect();
        BgpQuery::new(vars, patterns)
    })
}

proptest! {
    /// Printing a query and parsing it back yields the same patterns and the
    /// same distinguished variables (when the query has any variables).
    #[test]
    fn display_parse_round_trip(query in query_strategy()) {
        prop_assume!(!query.variables().is_empty());
        prop_assume!(!query.distinguished().is_empty());
        let text = query.to_string();
        let reparsed = parse_query(&text).expect("rendered query parses");
        prop_assert_eq!(reparsed.patterns(), query.patterns());
        prop_assert_eq!(reparsed.distinguished(), query.distinguished());
    }

    /// Join variables are exactly the variables occurring in at least two
    /// patterns, and they are a subset of all variables.
    #[test]
    fn join_variables_are_shared_variables(query in query_strategy()) {
        let all = query.variables();
        let join = query.join_variables();
        for v in &join {
            prop_assert!(all.contains(v));
            let occurrences = query.patterns().iter().filter(|p| p.mentions(v)).count();
            prop_assert!(occurrences >= 2);
        }
        for v in &all {
            let occurrences = query.patterns().iter().filter(|p| p.mentions(v)).count();
            prop_assert_eq!(occurrences >= 2, join.contains(v));
        }
    }

    /// Connected components partition the patterns, each component is
    /// connected, and a query is connected iff it has at most one component.
    #[test]
    fn connected_components_partition_the_query(query in query_strategy()) {
        let components = query.connected_components();
        let total: usize = components.iter().map(BgpQuery::len).sum();
        prop_assert_eq!(total, query.len());
        for component in &components {
            prop_assert!(component.is_connected());
        }
        prop_assert_eq!(query.is_connected(), components.len() <= 1);
    }
}
