//! Triple patterns: the atoms of Basic Graph Pattern queries.

use cliquesquare_rdf::Term;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A SPARQL variable, e.g. `?x`. The stored name excludes the leading `?`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Variable(pub String);

impl Variable {
    /// Creates a variable from its name (without the `?` sigil).
    pub fn new(name: impl Into<String>) -> Self {
        Variable(name.into())
    }

    /// Returns the variable's name without the `?` sigil.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

impl From<&str> for Variable {
    fn from(s: &str) -> Self {
        Variable::new(s.trim_start_matches('?'))
    }
}

/// A term of a triple pattern: either a variable or an RDF constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PatternTerm {
    /// A variable to be bound by query evaluation.
    Variable(Variable),
    /// A constant IRI or literal that must match exactly.
    Constant(Term),
}

impl PatternTerm {
    /// Creates a variable pattern term.
    pub fn variable(name: impl Into<String>) -> Self {
        PatternTerm::Variable(Variable::new(name))
    }

    /// Creates a constant IRI pattern term.
    pub fn iri(value: impl Into<String>) -> Self {
        PatternTerm::Constant(Term::iri(value))
    }

    /// Creates a constant literal pattern term.
    pub fn literal(value: impl Into<String>) -> Self {
        PatternTerm::Constant(Term::literal(value))
    }

    /// Returns the variable if the term is one.
    pub fn as_variable(&self) -> Option<&Variable> {
        match self {
            PatternTerm::Variable(v) => Some(v),
            PatternTerm::Constant(_) => None,
        }
    }

    /// Returns the constant if the term is one.
    pub fn as_constant(&self) -> Option<&Term> {
        match self {
            PatternTerm::Variable(_) => None,
            PatternTerm::Constant(t) => Some(t),
        }
    }

    /// Returns `true` if the term is a variable.
    pub fn is_variable(&self) -> bool {
        matches!(self, PatternTerm::Variable(_))
    }
}

impl fmt::Display for PatternTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternTerm::Variable(v) => write!(f, "{v}"),
            PatternTerm::Constant(t) => write!(f, "{t}"),
        }
    }
}

/// A triple pattern `(s p o)` where each position is a variable or constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TriplePattern {
    /// The subject position.
    pub subject: PatternTerm,
    /// The property position.
    pub property: PatternTerm,
    /// The object position.
    pub object: PatternTerm,
}

impl TriplePattern {
    /// Creates a triple pattern from its three positions.
    pub fn new(subject: PatternTerm, property: PatternTerm, object: PatternTerm) -> Self {
        Self {
            subject,
            property,
            object,
        }
    }

    /// Returns the three positions in `s, p, o` order.
    pub fn terms(&self) -> [&PatternTerm; 3] {
        [&self.subject, &self.property, &self.object]
    }

    /// Returns the distinct variables occurring in the pattern, in first
    /// occurrence order.
    pub fn variables(&self) -> Vec<Variable> {
        let mut vars = Vec::new();
        for term in self.terms() {
            if let Some(v) = term.as_variable() {
                if !vars.contains(v) {
                    vars.push(v.clone());
                }
            }
        }
        vars
    }

    /// Returns `true` if the pattern mentions `variable`.
    pub fn mentions(&self, variable: &Variable) -> bool {
        self.terms()
            .iter()
            .any(|t| t.as_variable() == Some(variable))
    }

    /// Returns the variables shared between `self` and `other`.
    pub fn shared_variables(&self, other: &TriplePattern) -> Vec<Variable> {
        self.variables()
            .into_iter()
            .filter(|v| other.mentions(v))
            .collect()
    }

    /// Number of constant positions (a crude selectivity indicator).
    pub fn constant_count(&self) -> usize {
        self.terms().iter().filter(|t| !t.is_variable()).count()
    }
}

impl fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.subject, self.property, self.object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp(s: &str, p: &str, o: &str) -> TriplePattern {
        let parse = |t: &str| {
            if let Some(name) = t.strip_prefix('?') {
                PatternTerm::variable(name)
            } else if let Some(lit) = t.strip_prefix('"') {
                PatternTerm::literal(lit.trim_end_matches('"'))
            } else {
                PatternTerm::iri(t)
            }
        };
        TriplePattern::new(parse(s), parse(p), parse(o))
    }

    #[test]
    fn variable_display_and_from() {
        assert_eq!(Variable::new("x").to_string(), "?x");
        assert_eq!(Variable::from("?y"), Variable::new("y"));
        assert_eq!(Variable::from("z").name(), "z");
    }

    #[test]
    fn pattern_term_accessors() {
        let v = PatternTerm::variable("a");
        let c = PatternTerm::iri("http://x");
        assert!(v.is_variable());
        assert!(!c.is_variable());
        assert_eq!(v.as_variable().unwrap().name(), "a");
        assert!(v.as_constant().is_none());
        assert!(c.as_variable().is_none());
        assert_eq!(c.as_constant().unwrap().value(), "http://x");
    }

    #[test]
    fn triple_pattern_variables_deduplicated_in_order() {
        let p = tp("?a", "?a", "?b");
        assert_eq!(p.variables(), vec![Variable::new("a"), Variable::new("b")]);
        assert_eq!(p.constant_count(), 0);
    }

    #[test]
    fn shared_variables() {
        let p1 = tp("?a", "p1", "?b");
        let p2 = tp("?b", "p2", "?c");
        let p3 = tp("?x", "p3", "?y");
        assert_eq!(p1.shared_variables(&p2), vec![Variable::new("b")]);
        assert!(p1.shared_variables(&p3).is_empty());
        assert!(p1.mentions(&Variable::new("a")));
        assert!(!p1.mentions(&Variable::new("c")));
    }

    #[test]
    fn constant_count_and_display() {
        let p = tp("?a", "p", "\"C1\"");
        assert_eq!(p.constant_count(), 2);
        assert_eq!(p.to_string(), "?a <p> \"C1\"");
    }
}
