//! Conjunctive (BGP) queries.

use crate::pattern::{TriplePattern, Variable};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A Basic Graph Pattern query: `SELECT ?v1 … ?vm WHERE { t1 … tn }`.
///
/// Following the paper we consider queries without cartesian products: a
/// query whose variable graph is disconnected can be split into ×-free
/// subqueries with [`BgpQuery::connected_components`], processed separately,
/// and recombined at the end.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BgpQuery {
    name: String,
    distinguished: Vec<Variable>,
    patterns: Vec<TriplePattern>,
}

impl BgpQuery {
    /// Creates a query from its distinguished variables and triple patterns.
    pub fn new(distinguished: Vec<Variable>, patterns: Vec<TriplePattern>) -> Self {
        Self {
            name: String::new(),
            distinguished,
            patterns,
        }
    }

    /// Creates a named query (names label rows in benchmark reports).
    pub fn named(
        name: impl Into<String>,
        distinguished: Vec<Variable>,
        patterns: Vec<TriplePattern>,
    ) -> Self {
        Self {
            name: name.into(),
            distinguished,
            patterns,
        }
    }

    /// Returns the query name (possibly empty).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the query name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Returns the distinguished (projected) variables.
    pub fn distinguished(&self) -> &[Variable] {
        &self.distinguished
    }

    /// Returns the triple patterns.
    pub fn patterns(&self) -> &[TriplePattern] {
        &self.patterns
    }

    /// Returns the number of triple patterns (`#tps` in Figure 22).
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Returns `true` if the query has no triple patterns.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Returns all distinct variables of the query, in first occurrence order.
    pub fn variables(&self) -> Vec<Variable> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for p in &self.patterns {
            for v in p.variables() {
                if seen.insert(v.clone()) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Returns the *join variables*: variables occurring in at least two
    /// distinct triple patterns (`#jv` in Figure 22).
    pub fn join_variables(&self) -> Vec<Variable> {
        let mut counts: BTreeMap<Variable, usize> = BTreeMap::new();
        for p in &self.patterns {
            for v in p.variables() {
                *counts.entry(v).or_default() += 1;
            }
        }
        self.variables()
            .into_iter()
            .filter(|v| counts.get(v).copied().unwrap_or(0) >= 2)
            .collect()
    }

    /// Returns, for each join variable, the indexes of the patterns using it.
    pub fn join_variable_occurrences(&self) -> BTreeMap<Variable, Vec<usize>> {
        let mut occ: BTreeMap<Variable, Vec<usize>> = BTreeMap::new();
        for (i, p) in self.patterns.iter().enumerate() {
            for v in p.variables() {
                occ.entry(v).or_default().push(i);
            }
        }
        occ.retain(|_, idxs| idxs.len() >= 2);
        occ
    }

    /// Returns `true` if the query's variable graph is connected (no
    /// cartesian product between its triple patterns).
    pub fn is_connected(&self) -> bool {
        self.connected_components().len() <= 1
    }

    /// Splits the query into connected (×-free) sub-queries.
    ///
    /// Each component keeps the distinguished variables it mentions.
    pub fn connected_components(&self) -> Vec<BgpQuery> {
        if self.patterns.is_empty() {
            return Vec::new();
        }
        let n = self.patterns.len();
        let mut component = vec![usize::MAX; n];
        let mut next = 0usize;
        for start in 0..n {
            if component[start] != usize::MAX {
                continue;
            }
            let id = next;
            next += 1;
            let mut stack = vec![start];
            component[start] = id;
            while let Some(i) = stack.pop() {
                #[allow(clippy::needless_range_loop)]
                for j in 0..n {
                    if component[j] == usize::MAX
                        && !self.patterns[i]
                            .shared_variables(&self.patterns[j])
                            .is_empty()
                    {
                        component[j] = id;
                        stack.push(j);
                    }
                }
            }
        }
        (0..next)
            .map(|id| {
                let patterns: Vec<_> = self
                    .patterns
                    .iter()
                    .zip(&component)
                    .filter(|(_, &c)| c == id)
                    .map(|(p, _)| p.clone())
                    .collect();
                let vars: BTreeSet<_> = patterns.iter().flat_map(|p| p.variables()).collect();
                let distinguished = self
                    .distinguished
                    .iter()
                    .filter(|v| vars.contains(*v))
                    .cloned()
                    .collect();
                BgpQuery::named(format!("{}#{id}", self.name), distinguished, patterns)
            })
            .collect()
    }
}

impl fmt::Display for BgpQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT")?;
        for v in &self.distinguished {
            write!(f, " {v}")?;
        }
        writeln!(f, " WHERE {{")?;
        for p in &self.patterns {
            writeln!(f, "  {p} .")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternTerm;

    fn tp(s: &str, p: &str, o: &str) -> TriplePattern {
        let parse = |t: &str| {
            if let Some(name) = t.strip_prefix('?') {
                PatternTerm::variable(name)
            } else {
                PatternTerm::iri(t)
            }
        };
        TriplePattern::new(parse(s), parse(p), parse(o))
    }

    fn chain3() -> BgpQuery {
        BgpQuery::new(
            vec![Variable::new("a"), Variable::new("c")],
            vec![
                tp("?a", "p1", "?b"),
                tp("?b", "p2", "?c"),
                tp("?c", "p3", "?d"),
            ],
        )
    }

    #[test]
    fn variables_and_join_variables() {
        let q = chain3();
        assert_eq!(q.len(), 3);
        assert_eq!(q.variables().len(), 4);
        let jv = q.join_variables();
        assert_eq!(jv, vec![Variable::new("b"), Variable::new("c")]);
    }

    #[test]
    fn join_variable_occurrences() {
        let q = chain3();
        let occ = q.join_variable_occurrences();
        assert_eq!(occ.len(), 2);
        assert_eq!(occ[&Variable::new("b")], vec![0, 1]);
        assert_eq!(occ[&Variable::new("c")], vec![1, 2]);
    }

    #[test]
    fn connectivity() {
        let q = chain3();
        assert!(q.is_connected());
        let disconnected = BgpQuery::new(
            vec![Variable::new("a"), Variable::new("x")],
            vec![tp("?a", "p1", "?b"), tp("?x", "p2", "?y")],
        );
        assert!(!disconnected.is_connected());
        let comps = disconnected.connected_components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 1);
        assert_eq!(comps[0].distinguished(), &[Variable::new("a")]);
        assert_eq!(comps[1].distinguished(), &[Variable::new("x")]);
    }

    #[test]
    fn empty_query() {
        let q = BgpQuery::new(vec![], vec![]);
        assert!(q.is_empty());
        assert!(q.connected_components().is_empty());
        assert!(q.join_variables().is_empty());
    }

    #[test]
    fn display_round_trip_shape() {
        let q = chain3();
        let text = q.to_string();
        assert!(text.starts_with("SELECT ?a ?c WHERE {"));
        assert!(text.contains("?a <p1> ?b ."));
        assert!(text.ends_with('}'));
    }

    #[test]
    fn star_query_has_single_join_variable() {
        let q = BgpQuery::new(
            vec![Variable::new("x")],
            vec![
                tp("?x", "p1", "?a"),
                tp("?x", "p2", "?b"),
                tp("?x", "p3", "?c"),
            ],
        );
        assert_eq!(q.join_variables(), vec![Variable::new("x")]);
        assert!(q.is_connected());
    }
}
