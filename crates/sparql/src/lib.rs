//! Basic Graph Pattern (conjunctive SPARQL) query model for CliqueSquare.
//!
//! The paper works on the BGP dialect of SPARQL: `SELECT ?v1 … ?vm WHERE
//! { t1 … tn }` where each `ti` is a triple pattern over IRIs, literals and
//! variables. This crate provides:
//!
//! * [`Variable`], [`PatternTerm`], [`TriplePattern`] — the pattern algebra,
//! * [`BgpQuery`] — a conjunctive query with distinguished variables,
//! * [`parser`] — a pragmatic text parser for the SPARQL subset used by the
//!   LUBM workload (`PREFIX`, `SELECT`, `WHERE`, `a` as `rdf:type`),
//! * [`analysis`] — query-shape classification and summary statistics.
//!
//! # Example
//!
//! ```
//! use cliquesquare_sparql::parser::parse_query;
//!
//! let q = parse_query(
//!     "SELECT ?p ?s WHERE { ?p <ub:worksFor> ?d . ?s <ub:memberOf> ?d . }",
//! ).unwrap();
//! assert_eq!(q.patterns().len(), 2);
//! assert_eq!(q.join_variables().len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod parser;
pub mod pattern;
pub mod query;

pub use analysis::{QueryShape, QueryStats};
pub use pattern::{PatternTerm, TriplePattern, Variable};
pub use query::BgpQuery;
