//! A pragmatic parser for the SPARQL BGP subset used by the benchmark
//! workloads.
//!
//! Supported syntax:
//!
//! ```text
//! PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
//! SELECT ?x ?y WHERE {
//!   ?x rdf:type ub:Lecturer .
//!   ?x ub:worksFor ?y .
//!   ?y ub:name "University3"
//! }
//! ```
//!
//! * `PREFIX pfx: <iri>` declarations (the `ub:` and `rdf:` prefixes are
//!   pre-declared),
//! * `a` as a shorthand for `rdf:type`,
//! * `<full-iri>`, `pfx:local`, `"literal"` and `?variable` terms,
//! * triple patterns separated by `.`.

use crate::pattern::{PatternTerm, TriplePattern, Variable};
use crate::query::BgpQuery;
use cliquesquare_rdf::term::vocab;
use std::collections::HashMap;
use std::fmt;

/// An error raised while parsing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err(msg: impl Into<String>) -> ParseError {
    ParseError(msg.into())
}

/// Splits query text into tokens, keeping `<…>` and `"…"` intact.
fn tokenize(text: &str) -> Result<Vec<String>, ParseError> {
    let mut tokens = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '{' | '}' | '.' => {
                tokens.push(c.to_string());
                chars.next();
            }
            '<' => {
                let mut tok = String::new();
                for ch in chars.by_ref() {
                    tok.push(ch);
                    if ch == '>' {
                        break;
                    }
                }
                if !tok.ends_with('>') {
                    return Err(err("unterminated IRI"));
                }
                tokens.push(tok);
            }
            '"' => {
                let mut tok = String::new();
                tok.push(chars.next().unwrap());
                let mut closed = false;
                for ch in chars.by_ref() {
                    tok.push(ch);
                    if ch == '"' {
                        closed = true;
                        break;
                    }
                }
                if !closed {
                    return Err(err("unterminated literal"));
                }
                tokens.push(tok);
            }
            _ => {
                let mut tok = String::new();
                while let Some(&ch) = chars.peek() {
                    if ch.is_whitespace() || matches!(ch, '{' | '}') {
                        break;
                    }
                    // A '.' terminates a token only if it is a pattern
                    // separator (followed by whitespace/end/brace), so that
                    // IRIs written without angle brackets keep their dots.
                    if ch == '.' {
                        let mut ahead = chars.clone();
                        ahead.next();
                        match ahead.peek() {
                            None => break,
                            Some(&next) if next.is_whitespace() || next == '}' => break,
                            _ => {}
                        }
                    }
                    tok.push(ch);
                    chars.next();
                }
                if !tok.is_empty() {
                    tokens.push(tok);
                }
            }
        }
    }
    Ok(tokens)
}

fn default_prefixes() -> HashMap<String, String> {
    let mut prefixes = HashMap::new();
    prefixes.insert("ub".to_string(), vocab::UB.to_string());
    prefixes.insert(
        "rdf".to_string(),
        "http://www.w3.org/1999/02/22-rdf-syntax-ns#".to_string(),
    );
    prefixes
}

fn parse_term(token: &str, prefixes: &HashMap<String, String>) -> Result<PatternTerm, ParseError> {
    if let Some(name) = token.strip_prefix('?') {
        if name.is_empty() {
            return Err(err("empty variable name"));
        }
        return Ok(PatternTerm::Variable(Variable::new(name)));
    }
    if token == "a" {
        return Ok(PatternTerm::iri(vocab::RDF_TYPE));
    }
    if let Some(inner) = token.strip_prefix('<').and_then(|t| t.strip_suffix('>')) {
        // Expand a prefixed name written inside angle brackets too
        // (`<ub:worksFor>`), which keeps hand-written test queries terse.
        if let Some((pfx, local)) = inner.split_once(':') {
            if let Some(base) = prefixes.get(pfx) {
                return Ok(PatternTerm::iri(format!("{base}{local}")));
            }
        }
        return Ok(PatternTerm::iri(inner));
    }
    if let Some(inner) = token.strip_prefix('"').and_then(|t| t.strip_suffix('"')) {
        return Ok(PatternTerm::literal(inner));
    }
    if let Some((pfx, local)) = token.split_once(':') {
        if let Some(base) = prefixes.get(pfx) {
            return Ok(PatternTerm::iri(format!("{base}{local}")));
        }
        return Err(err(format!("unknown prefix {pfx:?} in token {token:?}")));
    }
    Err(err(format!("cannot parse term {token:?}")))
}

/// Parses a BGP query from text.
pub fn parse_query(text: &str) -> Result<BgpQuery, ParseError> {
    let tokens = tokenize(text)?;
    let mut prefixes = default_prefixes();
    let mut pos = 0usize;

    // PREFIX declarations.
    while pos < tokens.len() && tokens[pos].eq_ignore_ascii_case("prefix") {
        let pfx = tokens
            .get(pos + 1)
            .ok_or_else(|| err("PREFIX missing name"))?
            .trim_end_matches(':')
            .to_string();
        let iri_tok = tokens
            .get(pos + 2)
            .ok_or_else(|| err("PREFIX missing IRI"))?;
        let iri = iri_tok
            .strip_prefix('<')
            .and_then(|t| t.strip_suffix('>'))
            .ok_or_else(|| err("PREFIX IRI must be enclosed in <>"))?;
        prefixes.insert(pfx, iri.to_string());
        pos += 3;
    }

    if pos >= tokens.len() || !tokens[pos].eq_ignore_ascii_case("select") {
        return Err(err("expected SELECT"));
    }
    pos += 1;

    let mut distinguished = Vec::new();
    while pos < tokens.len() && !tokens[pos].eq_ignore_ascii_case("where") {
        let tok = &tokens[pos];
        if tok == "*" {
            // `SELECT *` projects every variable; resolved after parsing.
            pos += 1;
            continue;
        }
        let name = tok
            .strip_prefix('?')
            .ok_or_else(|| err(format!("expected variable in SELECT clause, found {tok:?}")))?;
        distinguished.push(Variable::new(name));
        pos += 1;
    }

    if pos >= tokens.len() {
        return Err(err("expected WHERE"));
    }
    pos += 1; // skip WHERE
    if tokens.get(pos).map(String::as_str) != Some("{") {
        return Err(err("expected '{' after WHERE"));
    }
    pos += 1;

    let mut patterns = Vec::new();
    let mut current: Vec<PatternTerm> = Vec::new();
    while pos < tokens.len() && tokens[pos] != "}" {
        let tok = &tokens[pos];
        if tok == "." {
            pos += 1;
            continue;
        }
        current.push(parse_term(tok, &prefixes)?);
        if current.len() == 3 {
            let mut drain = current.drain(..);
            patterns.push(TriplePattern::new(
                drain.next().unwrap(),
                drain.next().unwrap(),
                drain.next().unwrap(),
            ));
        }
        pos += 1;
    }
    if pos >= tokens.len() {
        return Err(err("expected '}'"));
    }
    if !current.is_empty() {
        return Err(err(format!(
            "dangling triple pattern with {} term(s)",
            current.len()
        )));
    }
    if patterns.is_empty() {
        return Err(err("query has no triple patterns"));
    }

    let query = BgpQuery::new(distinguished, patterns);
    if query.distinguished().is_empty() {
        // SELECT * (or an empty projection): project all variables.
        let vars = query.variables();
        return Ok(BgpQuery::new(vars, query.patterns().to_vec()));
    }
    Ok(query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesquare_rdf::Term;

    #[test]
    fn parses_simple_two_pattern_query() {
        let q =
            parse_query("SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d . }").unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.distinguished().len(), 2);
        assert_eq!(q.join_variables(), vec![Variable::new("d")]);
        assert_eq!(
            q.patterns()[0].property,
            PatternTerm::Constant(Term::iri(vocab::ub("worksFor")))
        );
    }

    #[test]
    fn a_expands_to_rdf_type() {
        let q = parse_query("SELECT ?x WHERE { ?x a ub:GraduateStudent }").unwrap();
        assert_eq!(
            q.patterns()[0].property,
            PatternTerm::Constant(Term::iri(vocab::RDF_TYPE))
        );
    }

    #[test]
    fn rdf_type_prefix_expansion() {
        let q = parse_query("SELECT ?x WHERE { ?x rdf:type ub:Lecturer }").unwrap();
        assert_eq!(
            q.patterns()[0].property,
            PatternTerm::Constant(Term::iri(vocab::RDF_TYPE))
        );
        assert_eq!(
            q.patterns()[0].object,
            PatternTerm::Constant(Term::iri(vocab::ub("Lecturer")))
        );
    }

    #[test]
    fn parses_literals_and_full_iris() {
        let q = parse_query(
            "SELECT ?x WHERE { ?x ub:doctoralDegreeFrom <http://www.University0.edu> . ?x ub:name \"University3\" }",
        )
        .unwrap();
        assert_eq!(
            q.patterns()[0].object,
            PatternTerm::Constant(Term::iri("http://www.University0.edu"))
        );
        assert_eq!(
            q.patterns()[1].object,
            PatternTerm::Constant(Term::literal("University3"))
        );
    }

    #[test]
    fn custom_prefix_declarations() {
        let q = parse_query("PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x ex:knows ?y }")
            .unwrap();
        assert_eq!(
            q.patterns()[0].property,
            PatternTerm::Constant(Term::iri("http://example.org/knows"))
        );
    }

    #[test]
    fn select_star_projects_all_variables() {
        let q = parse_query("SELECT * WHERE { ?x ub:advisor ?y . ?y ub:worksFor ?z }").unwrap();
        assert_eq!(q.distinguished().len(), 3);
    }

    #[test]
    fn literal_with_spaces_survives() {
        let q = parse_query("SELECT ?x WHERE { ?x ub:name \"University 3\" }").unwrap();
        assert_eq!(
            q.patterns()[0].object,
            PatternTerm::Constant(Term::literal("University 3"))
        );
    }

    #[test]
    fn angle_bracketed_prefixed_names_expand() {
        let q = parse_query("SELECT ?x WHERE { ?x <ub:worksFor> ?y }").unwrap();
        assert_eq!(
            q.patterns()[0].property,
            PatternTerm::Constant(Term::iri(vocab::ub("worksFor")))
        );
    }

    #[test]
    fn error_cases() {
        assert!(parse_query("WHERE { ?x ub:p ?y }").is_err());
        assert!(parse_query("SELECT ?x { ?x ub:p ?y }").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x ub:p }").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x ub:p ?y").is_err());
        assert!(parse_query("SELECT ?x WHERE { }").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x unknown:p ?y }").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x ub:p \"unterminated }").is_err());
    }

    #[test]
    fn multi_line_lubm_query_parses() {
        let text = "
            SELECT ?X ?Y ?Z WHERE {
              ?X rdf:type ub:GraduateStudent .
              ?X ub:undergraduateDegreeFrom ?Y .
              ?Z ub:subOrganizationOf ?Y .
              ?X ub:memberOf ?Z .
              ?Z rdf:type ub:Department .
              ?Y rdf:type ub:University .
            }";
        let q = parse_query(text).unwrap();
        assert_eq!(q.len(), 6);
        assert_eq!(q.join_variables().len(), 3);
    }
}
