//! Query shape classification and summary statistics.
//!
//! Section 6.2 of the paper evaluates the optimizer variants on synthetic
//! queries whose shape is *chain*, *star*, or *random* (with *thin* and
//! *dense* sub-variants). This module provides the inverse facility: given a
//! query, classify its shape and compute the statistics reported in
//! Figure 22 (#tps, #jv).

use crate::pattern::Variable;
use crate::query::BgpQuery;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The structural shape of a BGP query's join graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryShape {
    /// A single triple pattern (no joins).
    Single,
    /// Every join variable connects exactly two patterns and the patterns
    /// form a path.
    Chain,
    /// A single join variable shared by all patterns.
    Star,
    /// Connected, but neither a chain nor a star.
    Mixed,
    /// The variable graph is disconnected (contains a cartesian product).
    Disconnected,
}

impl fmt::Display for QueryShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            QueryShape::Single => "single",
            QueryShape::Chain => "chain",
            QueryShape::Star => "star",
            QueryShape::Mixed => "mixed",
            QueryShape::Disconnected => "disconnected",
        };
        f.write_str(s)
    }
}

/// Summary statistics of a query (the first two columns of Figure 22).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryStats {
    /// Query name.
    pub name: String,
    /// Number of triple patterns (`#tps`).
    pub triple_patterns: usize,
    /// Number of join variables (`#jv`).
    pub join_variables: usize,
    /// Number of constant positions across all patterns.
    pub constants: usize,
    /// The classified shape of the query.
    pub shape: QueryShape,
}

/// Classifies the shape of a query's variable graph.
pub fn classify(query: &BgpQuery) -> QueryShape {
    let n = query.len();
    if n <= 1 {
        return QueryShape::Single;
    }
    if !query.is_connected() {
        return QueryShape::Disconnected;
    }
    let occurrences: BTreeMap<Variable, Vec<usize>> = query.join_variable_occurrences();
    if occurrences.len() == 1 {
        let patterns_covered = occurrences.values().next().map(Vec::len).unwrap_or(0);
        if patterns_covered == n {
            return QueryShape::Star;
        }
    }
    // A chain: every join variable links exactly two patterns, and pattern
    // degrees (number of join variables per pattern) are at most 2 with
    // exactly two endpoint patterns of degree 1.
    let all_binary = occurrences.values().all(|occ| occ.len() == 2);
    if all_binary {
        let mut degree = vec![0usize; n];
        for occ in occurrences.values() {
            for &i in occ {
                degree[i] += 1;
            }
        }
        let endpoints = degree.iter().filter(|&&d| d == 1).count();
        let middles = degree.iter().filter(|&&d| d == 2).count();
        if endpoints == 2 && endpoints + middles == n {
            return QueryShape::Chain;
        }
    }
    QueryShape::Mixed
}

/// Computes the summary statistics of a query.
pub fn stats(query: &BgpQuery) -> QueryStats {
    QueryStats {
        name: query.name().to_string(),
        triple_patterns: query.len(),
        join_variables: query.join_variables().len(),
        constants: query.patterns().iter().map(|p| p.constant_count()).sum(),
        shape: classify(query),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    #[test]
    fn single_pattern_is_single() {
        let q = parse_query("SELECT ?x WHERE { ?x ub:worksFor ?y }").unwrap();
        assert_eq!(classify(&q), QueryShape::Single);
    }

    #[test]
    fn chain_classification() {
        let q = parse_query(
            "SELECT ?a WHERE { ?a ub:p1 ?b . ?b ub:p2 ?c . ?c ub:p3 ?d . ?d ub:p4 ?e }",
        )
        .unwrap();
        assert_eq!(classify(&q), QueryShape::Chain);
    }

    #[test]
    fn star_classification() {
        let q = parse_query(
            "SELECT ?x WHERE { ?x ub:p1 ?a . ?x ub:p2 ?b . ?x ub:p3 ?c . ?x ub:p4 ?d }",
        )
        .unwrap();
        assert_eq!(classify(&q), QueryShape::Star);
    }

    #[test]
    fn two_pattern_query_is_both_chain_and_star_resolved_as_star() {
        // With exactly one join variable covering both patterns, the query is
        // classified as a star (the star check runs first).
        let q = parse_query("SELECT ?a WHERE { ?a ub:p1 ?b . ?b ub:p2 ?c }").unwrap();
        assert_eq!(classify(&q), QueryShape::Star);
    }

    #[test]
    fn mixed_classification() {
        let q = parse_query(
            "SELECT ?a WHERE { ?a ub:p1 ?b . ?a ub:p2 ?c . ?c ub:p3 ?d . ?d ub:p4 ?b }",
        )
        .unwrap();
        assert_eq!(classify(&q), QueryShape::Mixed);
    }

    #[test]
    fn disconnected_classification() {
        let q = parse_query("SELECT ?a WHERE { ?a ub:p1 ?b . ?x ub:p2 ?y }").unwrap();
        assert_eq!(classify(&q), QueryShape::Disconnected);
    }

    #[test]
    fn stats_counts_match_figure_22_style() {
        let q = parse_query(
            "SELECT ?X ?Y WHERE { ?X rdf:type ub:Lecturer . ?Y rdf:type ub:Department . \
             ?X ub:worksFor ?Y . ?Y ub:subOrganizationOf <http://www.University0.edu> }",
        )
        .unwrap();
        let s = stats(&q);
        assert_eq!(s.triple_patterns, 4);
        assert_eq!(s.join_variables, 2);
        // Each rdf:type pattern has 2 constants, worksFor has 1, subOrg has 2.
        assert_eq!(s.constants, 7);
    }

    #[test]
    fn shape_display() {
        assert_eq!(QueryShape::Chain.to_string(), "chain");
        assert_eq!(QueryShape::Disconnected.to_string(), "disconnected");
    }
}
