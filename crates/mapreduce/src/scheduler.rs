//! The persistent multi-job task scheduler behind concurrent query serving.
//!
//! The scoped-thread runtime ([`crate::runtime::Runtime::run_wave`]) spawns
//! a fresh set of OS threads for every wave and — more importantly — serves
//! exactly one job at a time: while one query's wave is running, a second
//! query's tasks cannot make progress. This module supplies the serving-side
//! alternative: a fixed pool of worker threads that outlives any single
//! query and drains task waves from **multiple concurrent jobs**, taking
//! tasks round-robin across the jobs' queues so a cheap query interleaves
//! with (instead of queueing behind) an expensive one.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism** — a wave's results are keyed by task index and
//!    returned in submission order, so a job's output is a pure function of
//!    its inputs: bit-identical at any worker count and any number of
//!    concurrently running jobs.
//! 2. **Fairness** — each job has its own FIFO queue and workers rotate
//!    over the queues (one task per visit), so the scheduler interleaves
//!    jobs at task granularity: the work-stealing that keeps a 2-pattern
//!    query's latency flat while an 8-pattern query is in flight.
//! 3. **Containment** — a panicking task never takes a worker down: the
//!    panic is caught on the worker, the wave's remaining tasks are
//!    cancelled, and the payload is re-raised on the *submitting* thread,
//!    where the serving layer turns it into an error response.
//!
//! The submitting thread does not idle while its wave runs: it helps drain
//! its own job's queue first, then blocks on the wave's condvar. Workers
//! park on a shared condvar when every queue is empty, so an idle scheduler
//! costs nothing but memory.

use cliquesquare_obs::{Counter, Gauge, Histogram, LATENCY_SECONDS_BUCKETS};
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Identifies one job (one query execution) to the scheduler. Obtained from
/// [`Scheduler::begin_job`]; waves submitted under the same id share a queue
/// and are drained FIFO relative to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobId(u64);

impl JobId {
    /// The job id used by contexts that never run concurrently (the
    /// plain wave API without a scheduler).
    pub const SOLO: JobId = JobId(0);
}

/// A queued, type-erased task: runs the user closure and records the result
/// into its wave.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// A queued task stamped with its enqueue instant, so dequeuing can
/// observe how long it waited.
type Queued = (Instant, Task);

/// Registry handles for the scheduler's live metrics. All schedulers in a
/// process share the global series (registration is idempotent), so
/// `/metrics` and `report_serving` read one coherent queue picture.
struct SchedMetrics {
    /// Tasks currently queued (across all jobs).
    queue_depth: Arc<Gauge>,
    /// High-water mark of `queue_depth`.
    queue_depth_peak: Arc<Gauge>,
    /// Enqueue → dequeue wait per task.
    task_wait: Arc<Histogram>,
    jobs_total: Arc<Counter>,
    waves_total: Arc<Counter>,
    tasks_total: Arc<Counter>,
}

impl SchedMetrics {
    fn register() -> Self {
        let registry = cliquesquare_obs::global();
        Self {
            queue_depth: registry.gauge(
                "csq_scheduler_queue_depth",
                "Tasks currently queued across all jobs",
                &[],
            ),
            queue_depth_peak: registry.gauge(
                "csq_scheduler_queue_depth_peak",
                "High-water mark of the scheduler queue depth",
                &[],
            ),
            task_wait: registry.histogram(
                "csq_scheduler_task_wait_seconds",
                "Seconds a task waited between enqueue and dequeue",
                &[],
                LATENCY_SECONDS_BUCKETS,
            ),
            jobs_total: registry.counter(
                "csq_scheduler_jobs_total",
                "Jobs registered with the scheduler",
                &[],
            ),
            waves_total: registry.counter(
                "csq_scheduler_waves_total",
                "Task waves submitted to the scheduler",
                &[],
            ),
            tasks_total: registry.counter(
                "csq_scheduler_tasks_total",
                "Individual tasks submitted to the scheduler",
                &[],
            ),
        }
    }

    /// Records one dequeue: the task is off the queue and about to run.
    fn note_dequeue(&self, enqueued: Instant) {
        self.queue_depth.sub(1);
        self.task_wait.observe(enqueued.elapsed().as_secs_f64());
    }
}

/// Aggregate counters over the scheduler's lifetime (monotone).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Jobs registered via [`Scheduler::begin_job`].
    pub jobs_started: u64,
    /// Task waves submitted.
    pub waves: u64,
    /// Individual tasks executed (including cancelled no-ops).
    pub tasks: u64,
}

struct SchedState {
    /// One FIFO task queue per job with work outstanding. Queues are
    /// created on first submission and dropped once drained, so the vector
    /// only ever holds jobs that actually have queued tasks.
    queues: Vec<(JobId, VecDeque<Queued>)>,
    /// Round-robin cursor over `queues` (by position, wrapping).
    next: usize,
    shutdown: bool,
}

impl SchedState {
    /// Pops the next task, rotating across job queues: one task per queue
    /// visit, so concurrent jobs interleave at task granularity.
    fn pop_any(&mut self) -> Option<Queued> {
        while !self.queues.is_empty() {
            let index = self.next % self.queues.len();
            let (_, queue) = &mut self.queues[index];
            if let Some(task) = queue.pop_front() {
                self.next = index + 1;
                return Some(task);
            }
            // Drained queue: drop it and retry from the same position.
            self.queues.remove(index);
        }
        None
    }

    /// Pops the next task of one specific job (the submitter helping its
    /// own wave).
    fn pop_job(&mut self, job: JobId) -> Option<Queued> {
        let index = self.queues.iter().position(|(id, _)| *id == job)?;
        let task = self.queues[index].1.pop_front();
        if self.queues[index].1.is_empty() {
            self.queues.remove(index);
        }
        task
    }

    fn enqueue(&mut self, job: JobId, tasks: impl Iterator<Item = Queued>) {
        match self.queues.iter_mut().find(|(id, _)| *id == job) {
            Some((_, queue)) => queue.extend(tasks),
            None => self.queues.push((job, tasks.collect())),
        }
    }
}

struct Inner {
    state: Mutex<SchedState>,
    /// Signalled when tasks are enqueued (or on shutdown); workers park here.
    work_ready: Condvar,
    /// Live queue gauges and wait histogram (global registry handles).
    metrics: SchedMetrics,
}

/// Everything one in-flight wave shares between its tasks and its submitter.
struct WaveState<T> {
    slots: Mutex<WaveSlots<T>>,
    /// Signalled when the wave's last task completes.
    done: Condvar,
}

struct WaveSlots<T> {
    /// One result slot per task, filled by task index: submission order is
    /// restored regardless of which worker ran what when.
    results: Vec<Option<T>>,
    /// Tasks not yet finished (completed, panicked or cancelled).
    remaining: usize,
    /// The first panic payload, re-raised on the submitting thread.
    panic: Option<Box<dyn Any + Send>>,
    /// Set on the first panic: queued siblings skip their work and count
    /// straight down, cancelling the wave cleanly.
    cancelled: bool,
}

/// A persistent pool of worker threads draining task waves from multiple
/// concurrent jobs. See the module docs for the scheduling discipline.
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    next_job: AtomicU64,
    jobs_started: AtomicU64,
    waves: AtomicU64,
    tasks: AtomicU64,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl Scheduler {
    /// Starts a scheduler with `threads` worker threads (`0` is clamped
    /// to 1). The workers live until the scheduler is dropped.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(SchedState {
                queues: Vec::new(),
                next: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            metrics: SchedMetrics::register(),
        });
        let workers = (0..threads)
            .map(|index| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("csq-worker-{index}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn scheduler worker")
            })
            .collect();
        Self {
            inner,
            workers,
            threads,
            // Job 0 is JobId::SOLO; real jobs start at 1.
            next_job: AtomicU64::new(1),
            jobs_started: AtomicU64::new(0),
            waves: AtomicU64::new(0),
            tasks: AtomicU64::new(0),
        }
    }

    /// The number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Registers a new job and returns its id. Cheap (one atomic add): jobs
    /// hold no scheduler resources until they submit a wave.
    pub fn begin_job(&self) -> JobId {
        self.jobs_started.fetch_add(1, Ordering::Relaxed);
        self.inner.metrics.jobs_total.inc();
        JobId(self.next_job.fetch_add(1, Ordering::Relaxed))
    }

    /// Lifetime counters (jobs, waves, tasks).
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            jobs_started: self.jobs_started.load(Ordering::Relaxed),
            waves: self.waves.load(Ordering::Relaxed),
            tasks: self.tasks.load(Ordering::Relaxed),
        }
    }

    /// Runs one wave of tasks under `job` and returns the results in
    /// submission order. Blocks until the wave completes; while blocked, the
    /// submitting thread helps drain its own job's queue. If any task
    /// panics, the remaining queued tasks of the wave are cancelled and the
    /// first panic payload is re-raised **here**, on the submitting thread —
    /// the workers survive and keep serving other jobs.
    pub fn run_wave<T, F>(&self, job: JobId, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let count = tasks.len();
        self.waves.fetch_add(1, Ordering::Relaxed);
        self.tasks.fetch_add(count as u64, Ordering::Relaxed);
        self.inner.metrics.waves_total.inc();
        self.inner.metrics.tasks_total.add(count as u64);
        if count == 0 {
            return Vec::new();
        }
        let wave = Arc::new(WaveState {
            slots: Mutex::new(WaveSlots {
                results: std::iter::repeat_with(|| None).take(count).collect(),
                remaining: count,
                panic: None,
                cancelled: false,
            }),
            done: Condvar::new(),
        });
        {
            let enqueued_at = Instant::now();
            let mut state = self.inner.state.lock().expect("scheduler state");
            let wrapped = tasks.into_iter().enumerate().map(|(index, task)| {
                let wave = Arc::clone(&wave);
                (
                    enqueued_at,
                    Box::new(move || run_task(&wave, index, task)) as Task,
                )
            });
            state.enqueue(job, wrapped);
        }
        let metrics = &self.inner.metrics;
        metrics.queue_depth.add(count as i64);
        metrics
            .queue_depth_peak
            .record_max(metrics.queue_depth.get());
        self.inner.work_ready.notify_all();

        // Help: drain this job's own queue on the submitting thread, so a
        // wave makes progress even when every worker is busy elsewhere.
        loop {
            let task = {
                let mut state = self.inner.state.lock().expect("scheduler state");
                state.pop_job(job)
            };
            match task {
                Some((enqueued, task)) => {
                    self.inner.metrics.note_dequeue(enqueued);
                    task()
                }
                None => break,
            }
        }

        let mut slots = wave.slots.lock().expect("wave slots");
        while slots.remaining > 0 {
            slots = wave.done.wait(slots).expect("wave slots");
        }
        if let Some(payload) = slots.panic.take() {
            drop(slots);
            resume_unwind(payload);
        }
        slots
            .results
            .iter_mut()
            .map(|slot| slot.take().expect("every task filled its slot"))
            .collect()
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        {
            let mut state = self.inner.state.lock().expect("scheduler state");
            state.shutdown = true;
        }
        self.inner.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            // Worker closures catch task panics, so join only fails if the
            // scheduler itself is broken — propagate that loudly.
            worker.join().expect("scheduler worker panicked");
        }
    }
}

/// Runs one wrapped task: executes the user closure under `catch_unwind`,
/// records the outcome, and wakes the submitter when the wave completes.
/// Tasks of a cancelled wave skip the closure and count straight down.
fn run_task<T>(wave: &WaveState<T>, index: usize, task: impl FnOnce() -> T) {
    let cancelled = wave.slots.lock().expect("wave slots").cancelled;
    let outcome = if cancelled {
        None
    } else {
        Some(catch_unwind(AssertUnwindSafe(task)))
    };
    let mut slots = wave.slots.lock().expect("wave slots");
    match outcome {
        Some(Ok(value)) => slots.results[index] = Some(value),
        Some(Err(payload)) => {
            slots.cancelled = true;
            if slots.panic.is_none() {
                slots.panic = Some(payload);
            }
        }
        None => {}
    }
    slots.remaining -= 1;
    if slots.remaining == 0 {
        wave.done.notify_all();
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let (enqueued, task) = {
            let mut state = inner.state.lock().expect("scheduler state");
            loop {
                if let Some(task) = state.pop_any() {
                    break task;
                }
                if state.shutdown {
                    return;
                }
                state = inner.work_ready.wait(state).expect("scheduler state");
            }
        };
        inner.metrics.note_dequeue(enqueued);
        // The wrapper contains its own catch_unwind; a worker never dies.
        task();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_job_wave_returns_results_in_submission_order() {
        let scheduler = Scheduler::new(4);
        let job = scheduler.begin_job();
        let tasks: Vec<_> = (0..64usize).map(|i| move || i * i).collect();
        let results = scheduler.run_wave(job, tasks);
        assert_eq!(results, (0..64usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_wave_completes_immediately() {
        let scheduler = Scheduler::new(2);
        let job = scheduler.begin_job();
        let results: Vec<u32> = scheduler.run_wave(job, Vec::<fn() -> u32>::new());
        assert!(results.is_empty());
    }

    #[test]
    fn concurrent_jobs_from_many_threads_all_complete_correctly() {
        let scheduler = Arc::new(Scheduler::new(3));
        std::thread::scope(|scope| {
            for client in 0..6u64 {
                let scheduler = Arc::clone(&scheduler);
                scope.spawn(move || {
                    for round in 0..4u64 {
                        let job = scheduler.begin_job();
                        let tasks: Vec<_> = (0..8u64)
                            .map(|i| move || client * 1000 + round * 10 + i)
                            .collect();
                        let results = scheduler.run_wave(job, tasks);
                        let expected: Vec<u64> =
                            (0..8u64).map(|i| client * 1000 + round * 10 + i).collect();
                        assert_eq!(results, expected);
                    }
                });
            }
        });
        let stats = scheduler.stats();
        assert_eq!(stats.jobs_started, 24);
        assert_eq!(stats.waves, 24);
        assert_eq!(stats.tasks, 24 * 8);
    }

    #[test]
    fn panicking_task_cancels_the_wave_and_spares_the_workers() {
        let scheduler = Scheduler::new(2);
        let job = scheduler.begin_job();
        let ran = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16usize)
            .map(|i| {
                let ran = Arc::clone(&ran);
                Box::new(move || {
                    if i == 3 {
                        panic!("task boom");
                    }
                    ran.fetch_add(1, Ordering::Relaxed);
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let outcome = catch_unwind(AssertUnwindSafe(|| scheduler.run_wave(job, tasks)));
        assert!(outcome.is_err(), "the panic reaches the submitter");

        // The pool survives: the next job runs to completion.
        let job = scheduler.begin_job();
        let results = scheduler.run_wave(job, (0..4usize).map(|i| move || i).collect::<Vec<_>>());
        assert_eq!(results, vec![0, 1, 2, 3]);
    }

    #[test]
    fn a_cheap_job_completes_while_an_expensive_job_is_in_flight() {
        use std::time::{Duration, Instant};
        // One worker serves both queues: round-robin draining interleaves
        // the cheap job's single task between the expensive job's tasks
        // instead of running the expensive wave to completion first.
        let scheduler = Arc::new(Scheduler::new(1));
        let gate = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            let expensive = {
                let scheduler = Arc::clone(&scheduler);
                let gate = Arc::clone(&gate);
                scope.spawn(move || {
                    let job = scheduler.begin_job();
                    let tasks: Vec<_> = (0..20usize)
                        .map(|i| {
                            let gate = Arc::clone(&gate);
                            move || {
                                gate.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_millis(5));
                                i
                            }
                        })
                        .collect();
                    scheduler.run_wave(job, tasks).len()
                })
            };
            // Wait until the expensive job is actually running.
            while gate.load(Ordering::Relaxed) == 0 {
                std::thread::yield_now();
            }
            let started = Instant::now();
            let job = scheduler.begin_job();
            let results = scheduler.run_wave(job, vec![|| 42usize]);
            let cheap_latency = started.elapsed();
            assert_eq!(results, vec![42]);
            // Strictly less than the expensive wave's full 20 * 5ms span:
            // generous slack, but failing requires the cheap task to have
            // queued behind (nearly) the whole expensive wave.
            assert!(
                cheap_latency < Duration::from_millis(80),
                "cheap job waited {cheap_latency:?} behind the expensive wave"
            );
            assert_eq!(expensive.join().unwrap(), 20);
        });
    }

    #[test]
    fn results_are_identical_at_any_worker_count() {
        let work = |i: usize| (0..50).fold(i as u64, |acc, k| acc.wrapping_mul(31).wrapping_add(k));
        let expected: Vec<u64> = (0..23usize).map(work).collect();
        for threads in [1, 2, 8] {
            let scheduler = Scheduler::new(threads);
            let job = scheduler.begin_job();
            let tasks: Vec<_> = (0..23usize).map(|i| move || work(i)).collect();
            assert_eq!(
                scheduler.run_wave(job, tasks),
                expected,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn drop_joins_the_workers() {
        let scheduler = Scheduler::new(4);
        let job = scheduler.begin_job();
        let _ = scheduler.run_wave(job, (0..8usize).map(|i| move || i).collect::<Vec<_>>());
        drop(scheduler); // must not hang or panic
    }
}
