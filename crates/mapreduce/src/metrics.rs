//! Cost parameters and execution metrics (the cost model of Section 5.4).

use serde::{Deserialize, Serialize};

/// Per-tuple and per-job cost parameters of the simulated cluster.
///
/// These mirror the constants of the paper's cost model: `cread` / `cwrite`
/// (disk I/O per tuple), `cshuffle` (network transfer per tuple), `ccheck`
/// (a comparison) and the per-tuple join cost, plus the MapReduce job
/// start-up overhead that the paper repeatedly identifies as a dominant
/// factor for multi-job plans.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParameters {
    /// Time to read one tuple from disk (seconds).
    pub read: f64,
    /// Time to write one tuple to disk (seconds).
    pub write: f64,
    /// Time to transfer one tuple across the network (seconds).
    pub shuffle: f64,
    /// Time to perform one comparison / filter check (seconds).
    pub check: f64,
    /// Time to produce one join output tuple (seconds).
    pub join: f64,
    /// Fixed start-up overhead charged for every MapReduce job (seconds).
    pub job_startup: f64,
    /// Fixed overhead charged for every task wave within a job (seconds).
    pub task_startup: f64,
}

impl Default for CostParameters {
    fn default() -> Self {
        Self {
            read: 2.0e-6,
            write: 4.0e-6,
            shuffle: 8.0e-6,
            check: 0.2e-6,
            join: 1.0e-6,
            job_startup: 8.0,
            task_startup: 0.5,
        }
    }
}

impl CostParameters {
    /// Parameters for a faster, lower-latency cluster (useful in tests).
    pub fn fast() -> Self {
        Self {
            read: 1.0e-7,
            write: 2.0e-7,
            shuffle: 4.0e-7,
            check: 1.0e-8,
            join: 5.0e-8,
            job_startup: 1.0,
            task_startup: 0.1,
        }
    }
}

/// Raw work counters accumulated while executing a plan.
///
/// Counters are totals across the cluster; [`ExecutionMetrics::simulated_seconds`]
/// divides the per-tuple work by the number of compute nodes (intra-operator
/// parallelism) and adds the sequential per-job overheads.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionMetrics {
    /// Tuples read from the distributed store or from intermediate files.
    pub tuples_read: u64,
    /// Tuples written to disk (intermediate or final results).
    pub tuples_written: u64,
    /// Tuples transferred across the network during shuffles.
    pub tuples_shuffled: u64,
    /// Comparisons performed by filters and projections.
    pub comparisons: u64,
    /// Join output tuples produced.
    pub join_output_tuples: u64,
    /// Number of MapReduce jobs executed.
    pub jobs: u64,
    /// Number of map task waves executed.
    pub map_tasks: u64,
    /// Number of reduce task waves executed.
    pub reduce_tasks: u64,
}

impl ExecutionMetrics {
    /// Merges another metrics record into this one.
    pub fn merge(&mut self, other: &ExecutionMetrics) {
        self.tuples_read += other.tuples_read;
        self.tuples_written += other.tuples_written;
        self.tuples_shuffled += other.tuples_shuffled;
        self.comparisons += other.comparisons;
        self.join_output_tuples += other.join_output_tuples;
        self.jobs += other.jobs;
        self.map_tasks += other.map_tasks;
        self.reduce_tasks += other.reduce_tasks;
    }

    /// Total per-tuple work in seconds, before dividing by cluster parallelism.
    pub fn total_work_seconds(&self, params: &CostParameters) -> f64 {
        self.tuples_read as f64 * params.read
            + self.tuples_written as f64 * params.write
            + self.tuples_shuffled as f64 * params.shuffle
            + self.comparisons as f64 * params.check
            + self.join_output_tuples as f64 * params.join
    }

    /// Simulated response time on a cluster of `nodes` compute nodes.
    ///
    /// Per-tuple work benefits from intra-operator parallelism (divided by
    /// the node count, assuming balanced partitions); job and task start-up
    /// overheads are sequential because successive jobs depend on each other.
    pub fn simulated_seconds(&self, params: &CostParameters, nodes: usize) -> f64 {
        let parallelism = nodes.max(1) as f64;
        let overhead = self.jobs as f64 * params.job_startup
            + (self.map_tasks + self.reduce_tasks) as f64 * params.task_startup;
        overhead + self.total_work_seconds(params) / parallelism
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExecutionMetrics {
        ExecutionMetrics {
            tuples_read: 1_000,
            tuples_written: 500,
            tuples_shuffled: 200,
            comparisons: 2_000,
            join_output_tuples: 300,
            jobs: 2,
            map_tasks: 3,
            reduce_tasks: 2,
        }
    }

    #[test]
    fn merge_accumulates_all_counters() {
        let mut a = sample();
        a.merge(&sample());
        assert_eq!(a.tuples_read, 2_000);
        assert_eq!(a.jobs, 4);
        assert_eq!(a.reduce_tasks, 4);
    }

    #[test]
    fn simulated_time_decreases_with_more_nodes_but_keeps_overhead() {
        let m = ExecutionMetrics {
            tuples_read: 10_000_000,
            ..sample()
        };
        let params = CostParameters::default();
        let t1 = m.simulated_seconds(&params, 1);
        let t7 = m.simulated_seconds(&params, 7);
        assert!(t7 < t1);
        // Job overhead is not parallelizable: with huge node counts the time
        // converges to the sequential overhead.
        let t_many = m.simulated_seconds(&params, 1_000_000);
        let overhead = 2.0 * params.job_startup + 5.0 * params.task_startup;
        assert!((t_many - overhead).abs() / overhead < 0.05);
    }

    #[test]
    fn more_jobs_cost_more_time() {
        let params = CostParameters::default();
        let one_job = ExecutionMetrics {
            jobs: 1,
            ..Default::default()
        };
        let three_jobs = ExecutionMetrics {
            jobs: 3,
            ..Default::default()
        };
        assert!(three_jobs.simulated_seconds(&params, 7) > one_job.simulated_seconds(&params, 7));
    }

    #[test]
    fn total_work_matches_hand_computation() {
        let m = sample();
        let params = CostParameters {
            read: 1.0,
            write: 2.0,
            shuffle: 3.0,
            check: 4.0,
            join: 5.0,
            job_startup: 0.0,
            task_startup: 0.0,
        };
        let expected = 1_000.0 + 500.0 * 2.0 + 200.0 * 3.0 + 2_000.0 * 4.0 + 300.0 * 5.0;
        assert_eq!(m.total_work_seconds(&params), expected);
        assert_eq!(m.simulated_seconds(&params, 1), expected);
    }

    #[test]
    fn zero_node_cluster_is_treated_as_one() {
        let m = sample();
        let params = CostParameters::default();
        assert_eq!(
            m.simulated_seconds(&params, 0),
            m.simulated_seconds(&params, 1)
        );
    }
}
