//! The parallel bulk-load pipeline: raw triples in, ready-to-query
//! [`Graph`] + [`PartitionedStore`] out.
//!
//! Sequential ingest funnels every triple through one dictionary, then one
//! index builder, then one partitioner — so load time, not query time,
//! bounds the dataset scales the benchmarks can reach. [`BulkLoader`] runs
//! the same pipeline as waves of per-chunk tasks on the existing
//! [`Runtime`]:
//!
//! 1. **input wave** — N-Triples chunks are parsed (or LUBM universities
//!    generated) independently per worker;
//! 2. **encode wave** — each chunk is dictionary-encoded against its own
//!    shard dictionary ([`cliquesquare_rdf::load::encode_shard`]);
//! 3. **merge + remap** — shard dictionaries merge into the global
//!    dictionary in first-occurrence order (sequential over *distinct*
//!    terms, pre-sized so it never rehashes), then every shard rewrites its
//!    triples to final ids in parallel;
//! 4. **index wave** — the graph's three positional indexes are built
//!    concurrently (one task per position);
//! 5. **partition wave** — the Section 5.1 replicated store is built as a
//!    map wave (route chunks) plus a reduce wave (merge per node), see
//!    [`PartitionedStore::build_with`].
//!
//! **Determinism contract** (mirroring the execution runtime's): the loaded
//! graph and store are **bit-identical** to the sequential path —
//! [`cliquesquare_rdf::ntriples::parse_into_graph`] /
//! [`cliquesquare_rdf::LubmGenerator::generate`] followed by
//! [`PartitionedStore::build`] — at any thread count and any chunking.
//! Same [`cliquesquare_rdf::TermId`] assignment, same index order, same
//! file placement; `tests/bulk_load.rs` enforces it at threads 1, 2 and 8.

use crate::partition::PartitionedStore;
use crate::runtime::Runtime;
use cliquesquare_rdf::load as shard;
use cliquesquare_rdf::ntriples::ParseError;
use cliquesquare_rdf::{Graph, LubmGenerator, LubmScale, Term, TriplePosition};
use std::time::Instant;

/// How many chunks each worker thread gets by default: a few per thread so
/// the wave's dynamic pickup can balance uneven chunks.
const CHUNKS_PER_THREAD: usize = 4;

/// Configuration of a bulk load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadOptions {
    /// Compute nodes of the partitioned store (the paper's testbed has 7).
    pub nodes: usize,
    /// Number of input chunks (shards). `None` sizes the chunking from the
    /// runtime: one chunk on the sequential runtime (the loader then *is*
    /// the sequential path), a few per thread otherwise. LUBM loads cap the
    /// count at one university per chunk. The loaded result is bit-identical
    /// either way; chunking only affects balance.
    pub chunks: Option<usize>,
}

impl Default for LoadOptions {
    fn default() -> Self {
        Self {
            nodes: 7,
            chunks: None,
        }
    }
}

impl LoadOptions {
    /// Options with the given node count and default chunking.
    pub fn with_nodes(nodes: usize) -> Self {
        Self {
            nodes,
            ..Self::default()
        }
    }
}

/// Wall-clock and size accounting of one bulk load, per pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadReport {
    /// Worker threads of the loading runtime.
    pub threads: usize,
    /// Input chunks (= dictionary shards) the load used.
    pub chunks: usize,
    /// Compute nodes of the partitioned store.
    pub nodes: usize,
    /// Triples loaded.
    pub triples: usize,
    /// Distinct terms in the merged dictionary.
    pub distinct_terms: usize,
    /// Seconds spent parsing N-Triples text / generating LUBM data.
    pub input_seconds: f64,
    /// Seconds spent in the per-shard dictionary-encoding wave.
    pub encode_seconds: f64,
    /// Seconds spent merging shard dictionaries and remapping shard triples
    /// to final ids (sequential merge + parallel remap wave).
    pub merge_seconds: f64,
    /// Seconds spent building the graph's three positional indexes.
    pub index_seconds: f64,
    /// Seconds spent building the replicated partitioned store.
    pub partition_seconds: f64,
}

impl LoadReport {
    /// End-to-end load seconds (sum of all stages).
    pub fn total_seconds(&self) -> f64 {
        self.input_seconds
            + self.encode_seconds
            + self.merge_seconds
            + self.index_seconds
            + self.partition_seconds
    }

    /// End-to-end load throughput in triples per second.
    pub fn triples_per_second(&self) -> f64 {
        let total = self.total_seconds();
        if total > 0.0 {
            self.triples as f64 / total
        } else {
            0.0
        }
    }
}

/// The result of a bulk load: the indexed graph, the partitioned store, and
/// the per-stage timing report.
#[derive(Debug, Clone)]
pub struct LoadOutput {
    /// The dictionary-encoded, indexed graph.
    pub graph: Graph,
    /// The Section 5.1 replicated, property-grouped store.
    pub store: PartitionedStore,
    /// Per-stage wall-clock and size accounting.
    pub report: LoadReport,
}

/// The parallel bulk loader (see the module docs for the pipeline).
#[derive(Debug, Clone, Default)]
pub struct BulkLoader {
    runtime: Runtime,
}

impl BulkLoader {
    /// A loader running its waves on `runtime`.
    pub fn new(runtime: Runtime) -> Self {
        Self { runtime }
    }

    /// A loader on the sequential runtime: every stage runs inline, which
    /// is exactly the historical single-threaded ingest path.
    pub fn sequential() -> Self {
        Self::new(Runtime::sequential())
    }

    /// The loader's runtime.
    pub fn runtime(&self) -> Runtime {
        self.runtime.clone()
    }

    /// The number of input chunks a load will use.
    fn chunk_count(&self, options: &LoadOptions) -> usize {
        options
            .chunks
            .unwrap_or_else(|| {
                if self.runtime.is_parallel() {
                    self.runtime.threads() * CHUNKS_PER_THREAD
                } else {
                    1
                }
            })
            .max(1)
    }

    /// Parses and loads an N-Triples document.
    ///
    /// The text is split at line boundaries into chunks parsed on separate
    /// workers; parse errors report the document-global line number of the
    /// offending line, and the *earliest* failing line wins — exactly the
    /// error a sequential parse would have reported.
    pub fn load_ntriples(
        &self,
        text: &str,
        options: &LoadOptions,
    ) -> Result<LoadOutput, ParseError> {
        let started = Instant::now();
        let chunks = shard::split_ntriples(text, self.chunk_count(options));
        let parsed = self.runtime.run_wave(
            chunks
                .into_iter()
                .map(|chunk| move || shard::parse_chunk(chunk))
                .collect(),
        );
        // Chunks are in document order, so the first error is the earliest.
        let term_chunks = parsed.into_iter().collect::<Result<Vec<_>, _>>()?;
        let input_seconds = started.elapsed().as_secs_f64();
        Ok(self.assemble(term_chunks, options, input_seconds))
    }

    /// Generates and loads the LUBM-like dataset at `scale`. The unit of
    /// generation is the university (universities draw from independent RNG
    /// streams, see [`LubmGenerator::university_triples`]); universities are
    /// grouped into [`LoadOptions::chunks`] contiguous batches — capped at
    /// one university per batch — each generated and encoded as one shard.
    pub fn load_lubm(&self, scale: LubmScale, options: &LoadOptions) -> LoadOutput {
        let started = Instant::now();
        let generator = LubmGenerator::new(scale);
        let generator = &generator;
        let batches = self.chunk_count(options).min(scale.universities.max(1));
        let per_batch = scale.universities.div_ceil(batches.max(1)).max(1);
        let term_chunks = self.runtime.run_wave(
            (0..scale.universities)
                .step_by(per_batch)
                .map(|first| {
                    let last = (first + per_batch).min(scale.universities);
                    move || {
                        let mut terms = Vec::new();
                        for u in first..last {
                            terms.append(&mut generator.university_triples(u));
                        }
                        terms
                    }
                })
                .collect(),
        );
        let input_seconds = started.elapsed().as_secs_f64();
        self.assemble(term_chunks, options, input_seconds)
    }

    /// Stages 2–5: encode shards, merge + remap, index, partition.
    fn assemble(
        &self,
        term_chunks: Vec<Vec<(Term, Term, Term)>>,
        options: &LoadOptions,
        input_seconds: f64,
    ) -> LoadOutput {
        let chunks = term_chunks.len().max(1);

        // Encode wave: one shard dictionary per chunk.
        let (shards, encode_seconds) = self.runtime.run_timed_wave(
            term_chunks
                .into_iter()
                .map(|terms| move || shard::encode_shard(terms))
                .collect(),
        );

        // Merge pass (sequential over distinct terms) + parallel remap.
        let started = Instant::now();
        let (dictionaries, local_triples): (Vec<_>, Vec<_>) = shards
            .into_iter()
            .map(|s| (s.dictionary, s.triples))
            .unzip();
        let (dictionary, remaps) = shard::merge_dictionaries(dictionaries);
        let remapped = self.runtime.run_wave(
            local_triples
                .into_iter()
                .zip(remaps)
                .map(|(triples, remap)| move || shard::remap_triples(&triples, &remap))
                .collect(),
        );
        let merge_seconds = started.elapsed().as_secs_f64();

        // Index wave: concatenate in chunk order, then one task per
        // positional index.
        let started = Instant::now();
        let mut triples = Vec::with_capacity(remapped.iter().map(Vec::len).sum());
        for chunk in remapped {
            triples.extend(chunk);
        }
        let triples_ref = &triples;
        let mut indexes = self.runtime.run_wave(
            TriplePosition::ALL
                .into_iter()
                .map(|position| move || Graph::position_index(triples_ref, position))
                .collect(),
        );
        let by_object = indexes.pop().expect("object index");
        let by_property = indexes.pop().expect("property index");
        let by_subject = indexes.pop().expect("subject index");
        let graph =
            Graph::from_parts_with_indexes(dictionary, triples, by_subject, by_property, by_object);
        let index_seconds = started.elapsed().as_secs_f64();

        // Partition wave(s): the Section 5.1 replicated store.
        let started = Instant::now();
        let store = PartitionedStore::build_with(&graph, options.nodes, &self.runtime);
        let partition_seconds = started.elapsed().as_secs_f64();

        let report = LoadReport {
            threads: self.runtime.threads(),
            chunks,
            nodes: store.nodes(),
            triples: graph.len(),
            distinct_terms: graph.dictionary().len(),
            input_seconds,
            encode_seconds,
            merge_seconds,
            index_seconds,
            partition_seconds,
        };
        LoadOutput {
            graph,
            store,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesquare_rdf::ntriples;

    fn sequential_baseline(text: &str, nodes: usize) -> (Graph, PartitionedStore) {
        let graph = ntriples::parse_into_graph(text).expect("baseline parses");
        let store = PartitionedStore::build(&graph, nodes);
        (graph, store)
    }

    #[test]
    fn ntriples_load_matches_sequential_path() {
        let graph = LubmGenerator::new(LubmScale::tiny()).generate();
        let text = ntriples::serialize(&graph);
        let (expected_graph, expected_store) = sequential_baseline(&text, 4);
        for threads in [1, 2, 8] {
            let loader = BulkLoader::new(Runtime::with_threads(threads));
            let output = loader
                .load_ntriples(&text, &LoadOptions::with_nodes(4))
                .expect("load succeeds");
            assert_eq!(output.graph, expected_graph, "threads={threads}");
            assert_eq!(output.store, expected_store, "threads={threads}");
            assert_eq!(output.report.triples, expected_graph.len());
        }
    }

    #[test]
    fn lubm_load_matches_sequential_generate() {
        let scale = LubmScale::tiny();
        let expected = LubmGenerator::new(scale).generate();
        let loader = BulkLoader::new(Runtime::with_threads(4));
        let output = loader.load_lubm(scale, &LoadOptions::with_nodes(3));
        assert_eq!(output.graph, expected);
        assert_eq!(output.store, PartitionedStore::build(&expected, 3));
        assert_eq!(output.report.chunks, scale.universities);
    }

    #[test]
    fn lubm_load_honors_the_chunk_option() {
        let scale = LubmScale::default(); // 3 universities
        let expected = LubmGenerator::new(scale).generate();
        for (chunks, expected_batches) in [(1, 1), (2, 2), (100, scale.universities)] {
            let loader = BulkLoader::new(Runtime::with_threads(2));
            let output = loader.load_lubm(
                scale,
                &LoadOptions {
                    nodes: 3,
                    chunks: Some(chunks),
                },
            );
            assert_eq!(output.graph, expected, "chunks={chunks}");
            assert_eq!(output.report.chunks, expected_batches, "chunks={chunks}");
        }
    }

    #[test]
    fn parse_errors_keep_global_line_numbers() {
        let good = "<a> <p> <b> .\n";
        let mut text = good.repeat(10);
        text.push_str("broken line\n");
        text.push_str(&good.repeat(5));
        text.push_str("also broken\n");
        let loader = BulkLoader::new(Runtime::with_threads(2));
        let err = loader
            .load_ntriples(
                &text,
                &LoadOptions {
                    nodes: 2,
                    chunks: Some(4),
                },
            )
            .unwrap_err();
        // The earliest failing line wins, exactly like a sequential parse.
        assert_eq!(err.line, 11);
    }

    #[test]
    fn empty_input_loads_an_empty_graph() {
        let loader = BulkLoader::new(Runtime::with_threads(2));
        let output = loader
            .load_ntriples("", &LoadOptions::default())
            .expect("empty input is fine");
        assert!(output.graph.is_empty());
        assert_eq!(output.report.triples, 0);
        assert_eq!(output.report.triples_per_second(), 0.0);
    }

    #[test]
    fn report_accounts_every_stage() {
        let loader = BulkLoader::sequential();
        let output = loader.load_lubm(LubmScale::tiny(), &LoadOptions::default());
        let r = output.report;
        assert_eq!(r.threads, 1);
        assert_eq!(r.chunks, 1);
        assert_eq!(r.nodes, 7);
        assert!(r.triples > 100);
        assert!(r.distinct_terms > 50);
        for stage in [
            r.input_seconds,
            r.encode_seconds,
            r.merge_seconds,
            r.index_seconds,
            r.partition_seconds,
        ] {
            assert!(stage >= 0.0 && stage.is_finite());
        }
        assert!(r.total_seconds() > 0.0);
        assert!(r.triples_per_second() > 0.0);
    }

    #[test]
    fn chunk_count_is_configurable_and_harmless() {
        let scale = LubmScale::tiny();
        let text = ntriples::serialize(&LubmGenerator::new(scale).generate());
        let (expected_graph, expected_store) = sequential_baseline(&text, 5);
        for chunks in [1, 3, 17] {
            let loader = BulkLoader::new(Runtime::with_threads(2));
            let output = loader
                .load_ntriples(
                    &text,
                    &LoadOptions {
                        nodes: 5,
                        chunks: Some(chunks),
                    },
                )
                .expect("load succeeds");
            assert_eq!(output.graph, expected_graph, "chunks={chunks}");
            assert_eq!(output.store, expected_store, "chunks={chunks}");
            assert!(output.report.chunks <= chunks.max(1));
        }
    }
}
