//! The parallel bulk-load pipeline: raw triples in, ready-to-query
//! [`Graph`] + [`PartitionedStore`] out.
//!
//! Sequential ingest funnels every triple through one dictionary, then one
//! index builder, then one partitioner — so load time, not query time,
//! bounds the dataset scales the benchmarks can reach. [`BulkLoader`] runs
//! the same pipeline as waves of per-chunk tasks on the existing
//! [`Runtime`]:
//!
//! 1. **fused input + encode wave** — each N-Triples chunk is parsed (or
//!    each LUBM university batch / SP²Bench unit generated) and immediately
//!    dictionary-encoded against its own shard dictionary, **in the same
//!    task**: the decoded `(Term, Term, Term)` buffer of a chunk lives only
//!    between its parse and its encode, so at most one buffer per worker is
//!    in flight at a time instead of one per chunk — peak term-buffer bytes
//!    are bounded by the worker count, not the input size. The buffers
//!    themselves come from a recycled scratch pool that persists across
//!    waves *and* across loads ([`LoadReport::scratch_allocations`] counts
//!    the cold allocations; a warm reload makes zero);
//! 2. **merge + remap** — shard dictionaries merge into the global
//!    dictionary in first-occurrence order. On a parallel runtime the merge
//!    is **partitioned**: the term space is hash-split across
//!    [`LoadReport::merge_partitions`] independent partition scans (one task
//!    each), per-shard id blocks are prefix-summed, and final ids are
//!    assigned per shard in parallel — bit-identical to the sequential
//!    first-occurrence walk (see `cliquesquare_rdf::load`). Then every
//!    shard rewrites its triples to final ids in parallel;
//! 3. **index wave** — the graph's three positional indexes are built
//!    concurrently (one task per position);
//! 4. **partition wave** — the Section 5.1 replicated store is built as a
//!    map wave (route chunks) plus a reduce wave (merge per node), see
//!    [`PartitionedStore::build_with`].
//!
//! **Determinism contract** (mirroring the execution runtime's): the loaded
//! graph and store are **bit-identical** to the sequential path —
//! [`cliquesquare_rdf::ntriples::parse_into_graph`] /
//! [`cliquesquare_rdf::LubmGenerator::generate`] followed by
//! [`PartitionedStore::build`] — at any thread count and any chunking.
//! Same [`cliquesquare_rdf::TermId`] assignment, same index order, same
//! file placement; `tests/bulk_load.rs` enforces it at threads 1, 2 and 8.

use crate::partition::PartitionedStore;
use crate::runtime::Runtime;
use cliquesquare_rdf::load as shard;
use cliquesquare_rdf::ntriples::ParseError;
use cliquesquare_rdf::{
    Dictionary, Graph, LubmGenerator, LubmScale, Sp2bGenerator, Sp2bScale, Term, TermId,
    TriplePosition,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How many chunks each worker thread gets by default: a few per thread so
/// the wave's dynamic pickup can balance uneven chunks.
const CHUNKS_PER_THREAD: usize = 4;

/// Configuration of a bulk load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadOptions {
    /// Compute nodes of the partitioned store (the paper's testbed has 7).
    pub nodes: usize,
    /// Number of input chunks (shards). `None` sizes the chunking from the
    /// runtime: one chunk on the sequential runtime (the loader then *is*
    /// the sequential path), a few per thread otherwise. LUBM loads cap the
    /// count at one university per chunk. The loaded result is bit-identical
    /// either way; chunking only affects balance.
    pub chunks: Option<usize>,
}

impl Default for LoadOptions {
    fn default() -> Self {
        Self {
            nodes: 7,
            chunks: None,
        }
    }
}

impl LoadOptions {
    /// Options with the given node count and default chunking.
    pub fn with_nodes(nodes: usize) -> Self {
        Self {
            nodes,
            ..Self::default()
        }
    }
}

/// Wall-clock and size accounting of one bulk load, per pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadReport {
    /// Worker threads of the loading runtime.
    pub threads: usize,
    /// Input chunks (= dictionary shards) the load used.
    pub chunks: usize,
    /// Compute nodes of the partitioned store.
    pub nodes: usize,
    /// Triples loaded.
    pub triples: usize,
    /// Distinct terms in the merged dictionary.
    pub distinct_terms: usize,
    /// Seconds spent parsing N-Triples text / generating synthetic data
    /// (the parse/generate share of the fused input+encode wave, attributed
    /// pro-rata by measured per-task time).
    pub input_seconds: f64,
    /// Seconds spent dictionary-encoding chunks against shard dictionaries
    /// (the encode share of the fused wave).
    pub encode_seconds: f64,
    /// Seconds spent merging shard dictionaries and remapping shard triples
    /// to final ids (partitioned merge waves + parallel remap wave).
    pub merge_seconds: f64,
    /// Seconds spent building the graph's three positional indexes.
    pub index_seconds: f64,
    /// Seconds spent building the replicated partitioned store.
    pub partition_seconds: f64,
    /// High-water mark of decoded term-buffer bytes held concurrently by
    /// the fused input+encode wave. Bounded by the worker count × chunk
    /// size — *not* by the input size — which is what keeps a 10M-triple
    /// load from materializing every parsed chunk at once.
    pub peak_inflight_bytes: u64,
    /// Total decoded term-buffer bytes produced across all chunks: the
    /// bytes the historical all-chunks-in-memory pipeline would have held
    /// simultaneously. `peak_inflight_bytes / parsed_bytes` is the
    /// streaming win.
    pub parsed_bytes: u64,
    /// Scratch term buffers allocated because the recycle pool was empty.
    /// At most one per concurrent worker on a cold loader; zero on a warm
    /// reload.
    pub scratch_allocations: u64,
    /// Partitions of the dictionary merge (1 = the sequential
    /// first-occurrence walk; >1 = the parallel partitioned merge).
    pub merge_partitions: usize,
}

impl LoadReport {
    /// End-to-end load seconds (sum of all stages).
    pub fn total_seconds(&self) -> f64 {
        self.input_seconds
            + self.encode_seconds
            + self.merge_seconds
            + self.index_seconds
            + self.partition_seconds
    }

    /// End-to-end load throughput in triples per second.
    pub fn triples_per_second(&self) -> f64 {
        let total = self.total_seconds();
        if total > 0.0 {
            self.triples as f64 / total
        } else {
            0.0
        }
    }
}

/// The result of a bulk load: the indexed graph, the partitioned store, and
/// the per-stage timing report.
#[derive(Debug, Clone)]
pub struct LoadOutput {
    /// The dictionary-encoded, indexed graph.
    pub graph: Graph,
    /// The Section 5.1 replicated, property-grouped store.
    pub store: PartitionedStore,
    /// Per-stage wall-clock and size accounting.
    pub report: LoadReport,
}

/// Live counters of the fused input+encode wave, shared across its tasks.
#[derive(Debug, Default)]
struct StreamGauges {
    /// Nanoseconds spent parsing / generating, summed over tasks.
    input_nanos: AtomicU64,
    /// Nanoseconds spent dictionary-encoding, summed over tasks.
    encode_nanos: AtomicU64,
    /// Decoded term-buffer bytes currently in flight (parsed, not yet
    /// encoded).
    inflight_bytes: AtomicU64,
    /// High-water mark of `inflight_bytes`.
    peak_inflight_bytes: AtomicU64,
    /// Total decoded bytes across all chunks.
    parsed_bytes: AtomicU64,
    /// Scratch buffers allocated because the pool was empty.
    scratch_allocations: AtomicU64,
}

impl StreamGauges {
    /// Marks `bytes` of decoded terms as in flight and bumps the peak.
    fn note_parsed(&self, bytes: u64) {
        let held = self.inflight_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_inflight_bytes.fetch_max(held, Ordering::Relaxed);
        self.parsed_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Marks `bytes` of decoded terms as consumed by the encode step.
    fn note_encoded(&self, bytes: u64) {
        self.inflight_bytes.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Splits the fused wave's wall-clock seconds into (input, encode)
    /// pro-rata by the measured per-task time of each half.
    fn split_wall(&self, wall: f64) -> (f64, f64) {
        let input = self.input_nanos.load(Ordering::Relaxed) as f64;
        let encode = self.encode_nanos.load(Ordering::Relaxed) as f64;
        if input + encode <= 0.0 {
            return (wall, 0.0);
        }
        let input_share = wall * input / (input + encode);
        (input_share, wall - input_share)
    }
}

/// A decoded-triple scratch buffer of the fused input+encode wave.
type TripleBuffer = Vec<(Term, Term, Term)>;

/// Estimated heap bytes of a decoded term buffer: the tuple slots plus the
/// term text (the dominant cost at RDF's IRI lengths).
fn buffer_bytes(terms: &[(Term, Term, Term)]) -> u64 {
    let slots = std::mem::size_of_val(terms);
    let text: usize = terms
        .iter()
        .map(|(s, p, o)| s.value().len() + p.value().len() + o.value().len())
        .sum();
    (slots + text) as u64
}

/// The parallel bulk loader (see the module docs for the pipeline).
#[derive(Debug, Clone, Default)]
pub struct BulkLoader {
    runtime: Runtime,
    /// Recycled decoded-term buffers for the fused input+encode wave. The
    /// pool is shared by clones and survives across loads, so a warm loader
    /// parses arbitrarily many chunks without a single fresh triple-buffer
    /// allocation (`tests/load_allocations.rs` pins this down).
    scratch: Arc<Mutex<Vec<TripleBuffer>>>,
}

impl BulkLoader {
    /// A loader running its waves on `runtime`.
    pub fn new(runtime: Runtime) -> Self {
        Self {
            runtime,
            scratch: Arc::default(),
        }
    }

    /// A loader on the sequential runtime: every stage runs inline, which
    /// is exactly the historical single-threaded ingest path.
    pub fn sequential() -> Self {
        Self::new(Runtime::sequential())
    }

    /// The loader's runtime.
    pub fn runtime(&self) -> Runtime {
        self.runtime.clone()
    }

    /// The number of recycled scratch buffers currently pooled.
    pub fn pooled_scratch_buffers(&self) -> usize {
        self.scratch.lock().expect("scratch pool poisoned").len()
    }

    /// Pops a pooled scratch buffer, allocating (and counting) a fresh one
    /// only when every pooled buffer is already in flight.
    fn take_scratch(&self, gauges: &StreamGauges) -> TripleBuffer {
        let pooled = self.scratch.lock().expect("scratch pool poisoned").pop();
        pooled.unwrap_or_else(|| {
            gauges.scratch_allocations.fetch_add(1, Ordering::Relaxed);
            Vec::new()
        })
    }

    /// Returns a drained scratch buffer to the pool, keeping its capacity.
    fn recycle_scratch(&self, mut buffer: TripleBuffer) {
        buffer.clear();
        self.scratch
            .lock()
            .expect("scratch pool poisoned")
            .push(buffer);
    }

    /// The number of input chunks a load will use.
    fn chunk_count(&self, options: &LoadOptions) -> usize {
        options
            .chunks
            .unwrap_or_else(|| {
                if self.runtime.is_parallel() {
                    self.runtime.threads() * CHUNKS_PER_THREAD
                } else {
                    1
                }
            })
            .max(1)
    }

    /// Parses and loads an N-Triples document.
    ///
    /// The text is split at line boundaries into chunks parsed on separate
    /// workers; parse errors report the document-global line number of the
    /// offending line, and the *earliest* failing line wins — exactly the
    /// error a sequential parse would have reported.
    pub fn load_ntriples(
        &self,
        text: &str,
        options: &LoadOptions,
    ) -> Result<LoadOutput, ParseError> {
        let started = Instant::now();
        let chunks = shard::split_ntriples(text, self.chunk_count(options));
        let gauges = StreamGauges::default();
        let gauges = &gauges;
        // Fused parse+encode: a chunk's decoded terms live only inside its
        // own task, so in-flight bytes stay bounded by the worker count.
        let encoded = self.runtime.run_wave(
            chunks
                .into_iter()
                .map(|chunk| {
                    move || -> Result<shard::EncodedShard, ParseError> {
                        let mut buffer = self.take_scratch(gauges);
                        let parse_started = Instant::now();
                        let parsed = shard::parse_chunk_into(chunk, &mut buffer);
                        gauges.input_nanos.fetch_add(
                            parse_started.elapsed().as_nanos() as u64,
                            Ordering::Relaxed,
                        );
                        if let Err(error) = parsed {
                            self.recycle_scratch(buffer);
                            return Err(error);
                        }
                        let bytes = buffer_bytes(&buffer);
                        gauges.note_parsed(bytes);
                        let encode_started = Instant::now();
                        let encoded = shard::encode_shard_from(&mut buffer);
                        gauges.encode_nanos.fetch_add(
                            encode_started.elapsed().as_nanos() as u64,
                            Ordering::Relaxed,
                        );
                        gauges.note_encoded(bytes);
                        self.recycle_scratch(buffer);
                        Ok(encoded)
                    }
                })
                .collect(),
        );
        // Chunks are in document order, so the first error is the earliest.
        let shards = encoded.into_iter().collect::<Result<Vec<_>, _>>()?;
        let (input_seconds, encode_seconds) = gauges.split_wall(started.elapsed().as_secs_f64());
        Ok(self.assemble(shards, options, input_seconds, encode_seconds, gauges))
    }

    /// Generates and loads the LUBM-like dataset at `scale`. The unit of
    /// generation is the university (universities draw from independent RNG
    /// streams, see [`LubmGenerator::university_triples`]); universities are
    /// grouped into [`LoadOptions::chunks`] contiguous batches — capped at
    /// one university per batch — each generated and encoded as one shard.
    pub fn load_lubm(&self, scale: LubmScale, options: &LoadOptions) -> LoadOutput {
        let generator = LubmGenerator::new(scale);
        let generator = &generator;
        let batches = self.chunk_count(options).min(scale.universities.max(1));
        let per_batch = scale.universities.div_ceil(batches.max(1)).max(1);
        self.load_generated(scale.universities, per_batch, options, &|u, buffer| {
            generator.university_triples_into(u, buffer)
        })
    }

    /// Generates and loads the SP²Bench/DBLP-like dataset at `scale`. The
    /// unit of generation is the [`Sp2bGenerator`] unit (author or article
    /// batch); units are grouped into [`LoadOptions::chunks`] contiguous
    /// batches, each generated and encoded as one shard.
    pub fn load_sp2b(&self, scale: Sp2bScale, options: &LoadOptions) -> LoadOutput {
        let generator = Sp2bGenerator::new(scale);
        let units = generator.units();
        let generator = &generator;
        let batches = self.chunk_count(options).min(units.max(1));
        let per_batch = units.div_ceil(batches.max(1)).max(1);
        self.load_generated(units, per_batch, options, &|unit, buffer| {
            generator.unit_triples_into(unit, buffer)
        })
    }

    /// The fused generate+encode wave shared by the synthetic loaders:
    /// `units` generation units grouped `per_batch` to a shard, each batch
    /// generated into a recycled scratch buffer and encoded in the same
    /// task.
    fn load_generated(
        &self,
        units: usize,
        per_batch: usize,
        options: &LoadOptions,
        generate: &(dyn Fn(usize, &mut TripleBuffer) + Sync),
    ) -> LoadOutput {
        let started = Instant::now();
        let gauges = StreamGauges::default();
        let gauges = &gauges;
        let shards = self.runtime.run_wave(
            (0..units)
                .step_by(per_batch.max(1))
                .map(|first| {
                    let last = (first + per_batch).min(units);
                    move || {
                        let mut buffer = self.take_scratch(gauges);
                        let generate_started = Instant::now();
                        for unit in first..last {
                            generate(unit, &mut buffer);
                        }
                        gauges.input_nanos.fetch_add(
                            generate_started.elapsed().as_nanos() as u64,
                            Ordering::Relaxed,
                        );
                        let bytes = buffer_bytes(&buffer);
                        gauges.note_parsed(bytes);
                        let encode_started = Instant::now();
                        let encoded = shard::encode_shard_from(&mut buffer);
                        gauges.encode_nanos.fetch_add(
                            encode_started.elapsed().as_nanos() as u64,
                            Ordering::Relaxed,
                        );
                        gauges.note_encoded(bytes);
                        self.recycle_scratch(buffer);
                        encoded
                    }
                })
                .collect(),
        );
        let (input_seconds, encode_seconds) = gauges.split_wall(started.elapsed().as_secs_f64());
        self.assemble(shards, options, input_seconds, encode_seconds, gauges)
    }

    /// The dictionary-merge partition count: a couple of partition scans
    /// per worker so the wave balances, and never more than there could be
    /// distinct terms to split.
    fn merge_partition_count(&self, shard_count: usize) -> usize {
        if self.runtime.is_parallel() && shard_count > 1 {
            (self.runtime.threads() * 2).max(2)
        } else {
            1
        }
    }

    /// The parallel partitioned dictionary merge: every phase of
    /// `cliquesquare_rdf::load::merge_dictionaries_partitioned` run as its
    /// own task wave (hash per shard → scan per partition → prefix-sum →
    /// assign per shard → resolve per shard), bit-identical to
    /// [`shard::merge_dictionaries`] at any thread and partition count.
    fn merge_partitioned(
        &self,
        shards: Vec<Dictionary>,
        partitions: usize,
    ) -> (Dictionary, Vec<Vec<TermId>>) {
        let shard_refs = &shards;
        let hashes: Vec<Vec<u64>> = self.runtime.run_wave(
            (0..shards.len())
                .map(|s| move || shard::shard_term_hashes(&shard_refs[s]))
                .collect(),
        );
        let hashes_ref = &hashes;
        let plans: Vec<shard::MergePartition> = self.runtime.run_wave(
            (0..partitions)
                .map(|p| move || shard::partition_merge_plan(shard_refs, hashes_ref, partitions, p))
                .collect(),
        );
        let (bases, distinct) = shard::merge_bases(&plans, shards.len());
        let plans_ref = &plans;
        let finals: Vec<Vec<TermId>> = self.runtime.run_wave(
            (0..shards.len())
                .map(|s| {
                    let base = bases[s];
                    move || shard::assign_final_ids(s, shard_refs[s].len(), plans_ref, base)
                })
                .collect(),
        );
        let finals_ref = &finals;
        let remaps: Vec<Vec<TermId>> = self.runtime.run_wave(
            (0..shards.len())
                .map(|s| move || shard::resolve_shard_remap(s, finals_ref, plans_ref))
                .collect(),
        );
        let (terms, term_hashes) = shard::merged_term_table(shards, &hashes, &finals, distinct);
        let dictionary = Dictionary::from_id_ordered_terms_with_hashes(terms, &term_hashes);
        (dictionary, remaps)
    }

    /// Stages 2–4: merge + remap, index, partition.
    fn assemble(
        &self,
        shards: Vec<shard::EncodedShard>,
        options: &LoadOptions,
        input_seconds: f64,
        encode_seconds: f64,
        gauges: &StreamGauges,
    ) -> LoadOutput {
        let chunks = shards.len().max(1);

        // Merge (partitioned task waves on a parallel runtime, the
        // sequential first-occurrence walk otherwise) + parallel remap.
        let started = Instant::now();
        let (dictionaries, local_triples): (Vec<_>, Vec<_>) = shards
            .into_iter()
            .map(|s| (s.dictionary, s.triples))
            .unzip();
        let merge_partitions = self.merge_partition_count(dictionaries.len());
        let (dictionary, remaps) = if merge_partitions > 1 {
            self.merge_partitioned(dictionaries, merge_partitions)
        } else {
            shard::merge_dictionaries(dictionaries)
        };
        let remapped = self.runtime.run_wave(
            local_triples
                .into_iter()
                .zip(remaps)
                .map(|(triples, remap)| move || shard::remap_triples(&triples, &remap))
                .collect(),
        );
        let merge_seconds = started.elapsed().as_secs_f64();

        // Index wave: concatenate in chunk order, then one task per
        // positional index.
        let started = Instant::now();
        let mut triples = Vec::with_capacity(remapped.iter().map(Vec::len).sum());
        for chunk in remapped {
            triples.extend(chunk);
        }
        let triples_ref = &triples;
        let mut indexes = self.runtime.run_wave(
            TriplePosition::ALL
                .into_iter()
                .map(|position| move || Graph::position_index(triples_ref, position))
                .collect(),
        );
        let by_object = indexes.pop().expect("object index");
        let by_property = indexes.pop().expect("property index");
        let by_subject = indexes.pop().expect("subject index");
        let graph =
            Graph::from_parts_with_indexes(dictionary, triples, by_subject, by_property, by_object);
        let index_seconds = started.elapsed().as_secs_f64();

        // Partition wave(s): the Section 5.1 replicated store.
        let started = Instant::now();
        let store = PartitionedStore::build_with(&graph, options.nodes, &self.runtime);
        let partition_seconds = started.elapsed().as_secs_f64();

        let report = LoadReport {
            threads: self.runtime.threads(),
            chunks,
            nodes: store.nodes(),
            triples: graph.len(),
            distinct_terms: graph.dictionary().len(),
            input_seconds,
            encode_seconds,
            merge_seconds,
            index_seconds,
            partition_seconds,
            peak_inflight_bytes: gauges.peak_inflight_bytes.load(Ordering::Relaxed),
            parsed_bytes: gauges.parsed_bytes.load(Ordering::Relaxed),
            scratch_allocations: gauges.scratch_allocations.load(Ordering::Relaxed),
            merge_partitions,
        };
        // Mirror the streaming gauges into the process-wide registry so a
        // live `/metrics` scrape sees loader behavior; the `LoadReport`
        // stays the authoritative per-load record.
        let registry = cliquesquare_obs::global();
        registry
            .counter(
                "csq_load_parsed_bytes_total",
                "Decoded N-Triples bytes parsed across all loads",
                &[],
            )
            .add(report.parsed_bytes);
        registry
            .counter(
                "csq_load_scratch_allocations_total",
                "Fresh triple-buffer allocations (pool misses) across all loads",
                &[],
            )
            .add(report.scratch_allocations);
        registry
            .gauge(
                "csq_load_peak_inflight_bytes",
                "High-water decoded bytes in flight during a load",
                &[],
            )
            .record_max(report.peak_inflight_bytes as i64);
        registry
            .counter(
                "csq_load_triples_total",
                "Triples loaded across all loads",
                &[],
            )
            .add(report.triples as u64);
        LoadOutput {
            graph,
            store,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesquare_rdf::ntriples;

    fn sequential_baseline(text: &str, nodes: usize) -> (Graph, PartitionedStore) {
        let graph = ntriples::parse_into_graph(text).expect("baseline parses");
        let store = PartitionedStore::build(&graph, nodes);
        (graph, store)
    }

    #[test]
    fn ntriples_load_matches_sequential_path() {
        let graph = LubmGenerator::new(LubmScale::tiny()).generate();
        let text = ntriples::serialize(&graph);
        let (expected_graph, expected_store) = sequential_baseline(&text, 4);
        for threads in [1, 2, 8] {
            let loader = BulkLoader::new(Runtime::with_threads(threads));
            let output = loader
                .load_ntriples(&text, &LoadOptions::with_nodes(4))
                .expect("load succeeds");
            assert_eq!(output.graph, expected_graph, "threads={threads}");
            assert_eq!(output.store, expected_store, "threads={threads}");
            assert_eq!(output.report.triples, expected_graph.len());
        }
    }

    #[test]
    fn lubm_load_matches_sequential_generate() {
        let scale = LubmScale::tiny();
        let expected = LubmGenerator::new(scale).generate();
        let loader = BulkLoader::new(Runtime::with_threads(4));
        let output = loader.load_lubm(scale, &LoadOptions::with_nodes(3));
        assert_eq!(output.graph, expected);
        assert_eq!(output.store, PartitionedStore::build(&expected, 3));
        assert_eq!(output.report.chunks, scale.universities);
    }

    #[test]
    fn lubm_load_honors_the_chunk_option() {
        let scale = LubmScale::default(); // 3 universities
        let expected = LubmGenerator::new(scale).generate();
        for (chunks, expected_batches) in [(1, 1), (2, 2), (100, scale.universities)] {
            let loader = BulkLoader::new(Runtime::with_threads(2));
            let output = loader.load_lubm(
                scale,
                &LoadOptions {
                    nodes: 3,
                    chunks: Some(chunks),
                },
            );
            assert_eq!(output.graph, expected, "chunks={chunks}");
            assert_eq!(output.report.chunks, expected_batches, "chunks={chunks}");
        }
    }

    #[test]
    fn parse_errors_keep_global_line_numbers() {
        let good = "<a> <p> <b> .\n";
        let mut text = good.repeat(10);
        text.push_str("broken line\n");
        text.push_str(&good.repeat(5));
        text.push_str("also broken\n");
        let loader = BulkLoader::new(Runtime::with_threads(2));
        let err = loader
            .load_ntriples(
                &text,
                &LoadOptions {
                    nodes: 2,
                    chunks: Some(4),
                },
            )
            .unwrap_err();
        // The earliest failing line wins, exactly like a sequential parse.
        assert_eq!(err.line, 11);
    }

    #[test]
    fn empty_input_loads_an_empty_graph() {
        let loader = BulkLoader::new(Runtime::with_threads(2));
        let output = loader
            .load_ntriples("", &LoadOptions::default())
            .expect("empty input is fine");
        assert!(output.graph.is_empty());
        assert_eq!(output.report.triples, 0);
        assert_eq!(output.report.triples_per_second(), 0.0);
    }

    #[test]
    fn report_accounts_every_stage() {
        let loader = BulkLoader::sequential();
        let output = loader.load_lubm(LubmScale::tiny(), &LoadOptions::default());
        let r = output.report;
        assert_eq!(r.threads, 1);
        assert_eq!(r.chunks, 1);
        assert_eq!(r.nodes, 7);
        assert!(r.triples > 100);
        assert!(r.distinct_terms > 50);
        for stage in [
            r.input_seconds,
            r.encode_seconds,
            r.merge_seconds,
            r.index_seconds,
            r.partition_seconds,
        ] {
            assert!(stage >= 0.0 && stage.is_finite());
        }
        assert!(r.total_seconds() > 0.0);
        assert!(r.triples_per_second() > 0.0);
        assert!(r.parsed_bytes > 0);
        assert!(r.peak_inflight_bytes > 0);
        assert!(r.peak_inflight_bytes <= r.parsed_bytes);
        assert_eq!(r.merge_partitions, 1, "sequential loads merge serially");
    }

    #[test]
    fn sp2b_load_matches_sequential_generate() {
        let scale = Sp2bScale::tiny();
        let expected = Sp2bGenerator::new(scale).generate();
        let expected_store = PartitionedStore::build(&expected, 3);
        for threads in [1, 2, 8] {
            let loader = BulkLoader::new(Runtime::with_threads(threads));
            let output = loader.load_sp2b(scale, &LoadOptions::with_nodes(3));
            assert_eq!(output.graph, expected, "threads={threads}");
            assert_eq!(output.store, expected_store, "threads={threads}");
        }
    }

    #[test]
    fn parallel_loads_use_the_partitioned_merge() {
        let scale = LubmScale::default(); // 3 universities → 3 shards
        let sequential = BulkLoader::sequential().load_lubm(scale, &LoadOptions::default());
        assert_eq!(sequential.report.merge_partitions, 1);
        let loader = BulkLoader::new(Runtime::with_threads(2));
        let parallel = loader.load_lubm(
            scale,
            &LoadOptions {
                nodes: 7,
                chunks: Some(3),
            },
        );
        assert!(parallel.report.merge_partitions > 1);
        assert_eq!(parallel.graph, sequential.graph);
        assert_eq!(parallel.store, sequential.store);
    }

    /// The fused parse+encode wave holds at most a worker's worth of
    /// decoded chunks at a time: with 16 chunks on 2 workers, peak in-flight
    /// bytes stay well under the all-chunks-at-once total.
    #[test]
    fn streaming_keeps_inflight_bytes_bounded() {
        let text = ntriples::serialize(&LubmGenerator::new(LubmScale::default()).generate());
        let loader = BulkLoader::new(Runtime::with_threads(2));
        let output = loader
            .load_ntriples(
                &text,
                &LoadOptions {
                    nodes: 4,
                    chunks: Some(16),
                },
            )
            .expect("load succeeds");
        let r = output.report;
        assert!(r.parsed_bytes > 0);
        assert!(r.peak_inflight_bytes > 0);
        assert!(
            r.peak_inflight_bytes * 4 <= r.parsed_bytes,
            "streaming window did not bound memory: peak {} of {} total bytes",
            r.peak_inflight_bytes,
            r.parsed_bytes
        );
    }

    /// Scratch buffers are pooled: a cold load allocates at most one buffer
    /// per worker, and a warm reload allocates none.
    #[test]
    fn scratch_pool_recycles_across_loads() {
        let text = ntriples::serialize(&LubmGenerator::new(LubmScale::tiny()).generate());
        let loader = BulkLoader::new(Runtime::with_threads(2));
        let options = LoadOptions {
            nodes: 3,
            chunks: Some(8),
        };
        let cold = loader.load_ntriples(&text, &options).expect("cold load");
        assert!(cold.report.scratch_allocations >= 1);
        assert!(
            cold.report.scratch_allocations <= 2,
            "more scratch buffers than workers: {}",
            cold.report.scratch_allocations
        );
        assert_eq!(
            loader.pooled_scratch_buffers() as u64,
            cold.report.scratch_allocations,
            "every buffer returns to the pool"
        );
        let warm = loader.load_ntriples(&text, &options).expect("warm load");
        assert_eq!(warm.report.scratch_allocations, 0);
        assert_eq!(warm.graph, cold.graph);
    }

    #[test]
    fn chunk_count_is_configurable_and_harmless() {
        let scale = LubmScale::tiny();
        let text = ntriples::serialize(&LubmGenerator::new(scale).generate());
        let (expected_graph, expected_store) = sequential_baseline(&text, 5);
        for chunks in [1, 3, 17] {
            let loader = BulkLoader::new(Runtime::with_threads(2));
            let output = loader
                .load_ntriples(
                    &text,
                    &LoadOptions {
                        nodes: 5,
                        chunks: Some(chunks),
                    },
                )
                .expect("load succeeds");
            assert_eq!(output.graph, expected_graph, "chunks={chunks}");
            assert_eq!(output.store, expected_store, "chunks={chunks}");
            assert!(output.report.chunks <= chunks.max(1));
        }
    }
}
