//! The simulated compute cluster.

use crate::metrics::CostParameters;
use crate::partition::PartitionedStore;
use crate::runtime::Runtime;
use cliquesquare_rdf::{Graph, GraphStatistics, StatsFragment, Term};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide counter stamping each loaded cluster with a distinct,
/// monotonically increasing statistics epoch. A plan cached against one
/// epoch is invalid against any other: different data, different statistics,
/// possibly a different best plan.
static STATS_EPOCH: AtomicU64 = AtomicU64::new(0);

/// Computes the catalog statistics of `graph` on `runtime`'s task waves:
/// a map wave folds one [`StatsFragment`] per triple chunk, and the merge
/// finalizes them into [`GraphStatistics`]. Fragments are order-independent
/// partials, so the result is identical to the sequential computation at
/// any thread count.
pub fn compute_statistics(graph: &Graph, runtime: &Runtime) -> GraphStatistics {
    let rdf_type = graph.lookup(&Term::iri(cliquesquare_rdf::term::vocab::RDF_TYPE));
    let triples = graph.triples();
    let fragments = if !runtime.is_parallel() || triples.len() < 2 {
        vec![StatsFragment::from_triples(triples, rdf_type)]
    } else {
        let chunk_size = triples.len().div_ceil(runtime.threads());
        runtime.run_wave(
            triples
                .chunks(chunk_size)
                .map(|chunk| move || StatsFragment::from_triples(chunk, rdf_type))
                .collect(),
        )
    };
    GraphStatistics::from_fragments(fragments, rdf_type)
}

/// Static configuration of the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of compute nodes (the paper's testbed has 7).
    pub nodes: usize,
    /// Cost parameters used to turn work counters into simulated time.
    pub cost: CostParameters,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            nodes: 7,
            cost: CostParameters::default(),
        }
    }
}

impl ClusterConfig {
    /// A configuration with the given node count and default costs.
    pub fn with_nodes(nodes: usize) -> Self {
        Self {
            nodes,
            ..Self::default()
        }
    }
}

/// A loaded cluster: the partitioned store plus the source graph (whose
/// dictionary is needed to resolve query constants into term ids).
#[derive(Debug, Clone)]
pub struct Cluster {
    config: ClusterConfig,
    graph: Arc<Graph>,
    store: Arc<PartitionedStore>,
    statistics: Arc<GraphStatistics>,
    stats_epoch: u64,
}

impl Cluster {
    /// Partitions `graph` across the configured nodes and returns the
    /// ready-to-query cluster.
    pub fn load(graph: Graph, config: ClusterConfig) -> Self {
        Self::load_with(graph, config, &Runtime::sequential())
    }

    /// Partitions `graph` and computes its catalog statistics on
    /// `runtime`'s task waves. Bit-identical to [`load`](Self::load) at any
    /// thread count (both the store build and the statistics fold are
    /// order-independent).
    pub fn load_with(graph: Graph, config: ClusterConfig, runtime: &Runtime) -> Self {
        let store = PartitionedStore::build_with(&graph, config.nodes, runtime);
        let statistics = compute_statistics(&graph, runtime);
        Self {
            config,
            graph: Arc::new(graph),
            store: Arc::new(store),
            statistics: Arc::new(statistics),
            stats_epoch: STATS_EPOCH.fetch_add(1, Ordering::Relaxed) + 1,
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Number of compute nodes.
    pub fn nodes(&self) -> usize {
        self.config.nodes
    }

    /// The source graph (dictionary, statistics, reference evaluation).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The partitioned triple store.
    pub fn store(&self) -> &PartitionedStore {
        &self.store
    }

    /// An owned snapshot handle to the (immutable) source graph: what
    /// concurrent queries and `'static` task waves hold instead of a
    /// borrow. Cloning bumps a reference count.
    pub fn graph_arc(&self) -> Arc<Graph> {
        Arc::clone(&self.graph)
    }

    /// An owned snapshot handle to the (immutable) partitioned store.
    pub fn store_arc(&self) -> Arc<PartitionedStore> {
        Arc::clone(&self.store)
    }

    /// The catalog statistics computed when the cluster was loaded.
    pub fn statistics(&self) -> &GraphStatistics {
        &self.statistics
    }

    /// An owned snapshot handle to the (immutable) statistics.
    pub fn statistics_arc(&self) -> Arc<GraphStatistics> {
        Arc::clone(&self.statistics)
    }

    /// The statistics epoch of this snapshot: distinct per load, so plans
    /// cached against one loaded dataset never serve another.
    pub fn stats_epoch(&self) -> u64 {
        self.stats_epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesquare_rdf::{LubmGenerator, LubmScale};

    #[test]
    fn default_config_matches_paper_testbed() {
        let config = ClusterConfig::default();
        assert_eq!(config.nodes, 7);
    }

    #[test]
    fn load_partitions_the_graph() {
        let graph = LubmGenerator::new(LubmScale::tiny()).generate();
        let triples = graph.len();
        let cluster = Cluster::load(graph, ClusterConfig::with_nodes(4));
        assert_eq!(cluster.nodes(), 4);
        assert_eq!(cluster.graph().len(), triples);
        assert_eq!(cluster.store().stats().stored_triples, triples * 3);
    }

    #[test]
    fn cluster_is_cheap_to_clone() {
        let graph = LubmGenerator::new(LubmScale::tiny()).generate();
        let cluster = Cluster::load(graph, ClusterConfig::default());
        let clone = cluster.clone();
        assert!(Arc::ptr_eq(&cluster.graph, &clone.graph));
        assert!(Arc::ptr_eq(&cluster.store, &clone.store));
        assert!(Arc::ptr_eq(&cluster.statistics, &clone.statistics));
        assert_eq!(cluster.stats_epoch(), clone.stats_epoch());
    }

    #[test]
    fn parallel_statistics_match_sequential_at_any_thread_count() {
        let graph = LubmGenerator::new(LubmScale::tiny()).generate();
        let sequential = compute_statistics(&graph, &Runtime::sequential());
        assert_eq!(sequential.triples(), graph.len());
        for threads in [1, 2, 8] {
            let parallel = compute_statistics(&graph, &Runtime::with_threads(threads));
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    #[test]
    fn loaded_cluster_carries_statistics_and_a_fresh_epoch() {
        let graph = LubmGenerator::new(LubmScale::tiny()).generate();
        let first = Cluster::load(graph.clone(), ClusterConfig::with_nodes(4));
        let second = Cluster::load_with(
            graph,
            ClusterConfig::with_nodes(4),
            &Runtime::with_threads(4),
        );
        assert_eq!(first.statistics(), second.statistics());
        assert_eq!(first.statistics().triples(), first.graph().len());
        assert!(
            second.stats_epoch() > first.stats_epoch(),
            "every load gets a fresh epoch"
        );
    }
}
