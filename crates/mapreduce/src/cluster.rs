//! The simulated compute cluster.

use crate::metrics::CostParameters;
use crate::partition::PartitionedStore;
use cliquesquare_rdf::Graph;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Static configuration of the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of compute nodes (the paper's testbed has 7).
    pub nodes: usize,
    /// Cost parameters used to turn work counters into simulated time.
    pub cost: CostParameters,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            nodes: 7,
            cost: CostParameters::default(),
        }
    }
}

impl ClusterConfig {
    /// A configuration with the given node count and default costs.
    pub fn with_nodes(nodes: usize) -> Self {
        Self {
            nodes,
            ..Self::default()
        }
    }
}

/// A loaded cluster: the partitioned store plus the source graph (whose
/// dictionary is needed to resolve query constants into term ids).
#[derive(Debug, Clone)]
pub struct Cluster {
    config: ClusterConfig,
    graph: Arc<Graph>,
    store: Arc<PartitionedStore>,
}

impl Cluster {
    /// Partitions `graph` across the configured nodes and returns the
    /// ready-to-query cluster.
    pub fn load(graph: Graph, config: ClusterConfig) -> Self {
        let store = PartitionedStore::build(&graph, config.nodes);
        Self {
            config,
            graph: Arc::new(graph),
            store: Arc::new(store),
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Number of compute nodes.
    pub fn nodes(&self) -> usize {
        self.config.nodes
    }

    /// The source graph (dictionary, statistics, reference evaluation).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The partitioned triple store.
    pub fn store(&self) -> &PartitionedStore {
        &self.store
    }

    /// An owned snapshot handle to the (immutable) source graph: what
    /// concurrent queries and `'static` task waves hold instead of a
    /// borrow. Cloning bumps a reference count.
    pub fn graph_arc(&self) -> Arc<Graph> {
        Arc::clone(&self.graph)
    }

    /// An owned snapshot handle to the (immutable) partitioned store.
    pub fn store_arc(&self) -> Arc<PartitionedStore> {
        Arc::clone(&self.store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesquare_rdf::{LubmGenerator, LubmScale};

    #[test]
    fn default_config_matches_paper_testbed() {
        let config = ClusterConfig::default();
        assert_eq!(config.nodes, 7);
    }

    #[test]
    fn load_partitions_the_graph() {
        let graph = LubmGenerator::new(LubmScale::tiny()).generate();
        let triples = graph.len();
        let cluster = Cluster::load(graph, ClusterConfig::with_nodes(4));
        assert_eq!(cluster.nodes(), 4);
        assert_eq!(cluster.graph().len(), triples);
        assert_eq!(cluster.store().stats().stored_triples, triples * 3);
    }

    #[test]
    fn cluster_is_cheap_to_clone() {
        let graph = LubmGenerator::new(LubmScale::tiny()).generate();
        let cluster = Cluster::load(graph, ClusterConfig::default());
        let clone = cluster.clone();
        assert!(Arc::ptr_eq(&cluster.graph, &clone.graph));
        assert!(Arc::ptr_eq(&cluster.store, &clone.store));
    }
}
