//! The parallel task runtime: executes map/reduce task waves on OS threads.
//!
//! A MapReduce job runs as a sequence of *task waves*: one map task per
//! compute node, then (for jobs with a reduce phase) one reduce task per
//! node. The simulator historically evaluated every "node" sequentially on
//! the driver thread; this module supplies a real runtime so that a wave's
//! per-node tasks execute concurrently on a scoped pool of OS threads
//! ([`std::thread::scope`] — no dependencies, no `unsafe`).
//!
//! Design constraints, in order:
//!
//! 1. **Determinism** — wave results are returned in task-submission order
//!    and every task is a pure function of its inputs, so a wave produces
//!    bit-identical output at any thread count (including `1`).
//! 2. **Balance** — tasks are picked up dynamically (a shared atomic cursor
//!    over the task list), so a skewed node does not stall the whole wave
//!    behind a static assignment.
//! 3. **Honest timing** — [`Runtime::run_timed_wave`] measures the wave's
//!    wall-clock span, which the engine surfaces next to the simulated
//!    seconds of the cost model.

use crate::scheduler::{JobId, Scheduler};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

/// Environment variable overriding the default thread count
/// (`auto` selects the machine's available parallelism).
pub const THREADS_ENV: &str = "CSQ_THREADS";

/// A task-wave executor with a fixed degree of parallelism.
///
/// `threads == 1` is the *sequential* runtime: every task runs inline on the
/// caller's thread, which keeps the default execution path deterministic,
/// allocation-light and easy to debug. Any larger count spawns that many
/// scoped OS threads per wave — unless the runtime is *serving*-backed
/// ([`Runtime::serving`]), in which case `'static` waves run on the
/// persistent multi-job [`Scheduler`] shared by every clone of the runtime,
/// interleaved with the waves of concurrently running queries.
#[derive(Debug, Clone)]
pub struct Runtime {
    threads: usize,
    scheduler: Option<Arc<Scheduler>>,
}

impl PartialEq for Runtime {
    fn eq(&self, other: &Self) -> bool {
        self.threads == other.threads
            && match (&self.scheduler, &other.scheduler) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
    }
}

impl Eq for Runtime {}

impl Default for Runtime {
    fn default() -> Self {
        Self::sequential()
    }
}

impl Runtime {
    /// The sequential runtime: tasks run inline on the caller's thread.
    pub fn sequential() -> Self {
        Self {
            threads: 1,
            scheduler: None,
        }
    }

    /// A runtime with the given degree of parallelism (`0` is clamped to 1).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            scheduler: None,
        }
    }

    /// A runtime backed by a persistent multi-job [`Scheduler`] with
    /// `threads` workers. Clones share the scheduler, so queries executed on
    /// the clones interleave their task waves on the one worker pool. Use
    /// [`Runtime::begin_job`] + [`Runtime::run_job_wave`] to submit work.
    pub fn serving(threads: usize) -> Self {
        let threads = threads.max(1);
        Self {
            threads,
            scheduler: Some(Arc::new(Scheduler::new(threads))),
        }
    }

    /// A runtime sized by the machine's available parallelism.
    pub fn available() -> Self {
        Self::with_threads(
            thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1),
        )
    }

    /// Reads the thread count from the `CSQ_THREADS` environment variable:
    /// a positive number selects that many threads, `auto` selects the
    /// machine's available parallelism, and an unset variable keeps the
    /// deterministic sequential default.
    ///
    /// # Panics
    /// Panics with a clear message when the variable is set to `0` or
    /// unparseable garbage — a misconfigured thread count should stop the
    /// process, not silently degrade to one thread.
    pub fn from_env() -> Self {
        match std::env::var(THREADS_ENV) {
            Ok(value) => match Self::try_from_option(&value) {
                Ok(runtime) => runtime,
                Err(error) => panic!("invalid {THREADS_ENV}: {error}"),
            },
            Err(_) => Self::sequential(),
        }
    }

    /// Parses a user-supplied thread-count option (CLI flag or env value):
    /// `"auto"` selects the available parallelism and a positive number
    /// selects that many threads. `"0"` and anything unparseable are
    /// rejected with a message naming the offending value.
    pub fn try_from_option(value: &str) -> Result<Self, String> {
        let value = value.trim();
        if value.eq_ignore_ascii_case("auto") {
            return Ok(Self::available());
        }
        match value.parse::<usize>() {
            Ok(0) => Err(format!(
                "thread count must be at least 1 (got \"{value}\"; use \"auto\" for all cores)"
            )),
            Ok(n) => Ok(Self::with_threads(n)),
            Err(_) => Err(format!(
                "thread count must be a positive integer or \"auto\" (got \"{value}\")"
            )),
        }
    }

    /// Parses like [`Runtime::try_from_option`].
    ///
    /// # Panics
    /// Panics with the parse error on invalid input (`0`, garbage).
    pub fn from_option(value: &str) -> Self {
        match Self::try_from_option(value) {
            Ok(runtime) => runtime,
            Err(error) => panic!("invalid thread count: {error}"),
        }
    }

    /// The configured degree of parallelism (always at least 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Returns `true` when waves run on more than one OS thread.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// The persistent scheduler behind a [`Runtime::serving`] runtime.
    pub fn scheduler(&self) -> Option<&Arc<Scheduler>> {
        self.scheduler.as_ref()
    }

    /// Registers a new job with the persistent scheduler. On non-serving
    /// runtimes every wave belongs to the single implicit [`JobId::SOLO`]
    /// job.
    pub fn begin_job(&self) -> JobId {
        match &self.scheduler {
            Some(scheduler) => scheduler.begin_job(),
            None => JobId::SOLO,
        }
    }

    /// Runs one wave of `'static` tasks under `job` and returns the results
    /// in submission order. On a serving runtime the wave is drained by the
    /// shared worker pool, interleaved with other jobs' waves; otherwise it
    /// falls back to [`Runtime::run_wave`]. Results are bit-identical either
    /// way: waves are keyed by task index, and every task is a pure function
    /// of its inputs.
    pub fn run_job_wave<T, F>(&self, job: JobId, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        match &self.scheduler {
            Some(scheduler) => scheduler.run_wave(job, tasks),
            None => self.run_wave(tasks),
        }
    }

    /// Runs one `'static` wave under `job` and additionally reports its
    /// wall-clock span in seconds.
    pub fn run_job_timed_wave<T, F>(&self, job: JobId, tasks: Vec<F>) -> (Vec<T>, f64)
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let started = Instant::now();
        let results = self.run_job_wave(job, tasks);
        (results, started.elapsed().as_secs_f64())
    }

    /// Runs one wave of tasks and returns their results in task order.
    ///
    /// On the sequential runtime (or for waves of at most one task) the
    /// tasks run inline. Otherwise the caller's thread plus
    /// `min(threads, tasks) - 1` scoped OS threads drain the task list
    /// through a shared atomic cursor (the caller working too keeps the
    /// per-wave spawn cost at `workers - 1` threads). A panicking task
    /// panics the wave (the payload is resumed on the caller's thread).
    pub fn run_wave<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let count = tasks.len();
        if !self.is_parallel() || count <= 1 {
            return tasks.into_iter().map(|task| task()).collect();
        }
        let workers = self.threads.min(count);
        // Each slot is taken exactly once; the Mutex makes hand-off between
        // the submitting thread and the picking worker safe without unsafe.
        let slots: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let cursor = AtomicUsize::new(0);
        let drain = |produced: &mut Vec<(usize, T)>| loop {
            let index = cursor.fetch_add(1, Ordering::Relaxed);
            if index >= count {
                break;
            }
            let task = slots[index]
                .lock()
                .expect("task slot poisoned")
                .take()
                .expect("task picked twice");
            produced.push((index, task()));
        };
        let mut results: Vec<Option<T>> = std::iter::repeat_with(|| None).take(count).collect();
        thread::scope(|scope| {
            let handles: Vec<_> = (1..workers)
                .map(|_| {
                    let drain = &drain;
                    scope.spawn(move || {
                        let mut produced = Vec::new();
                        drain(&mut produced);
                        produced
                    })
                })
                .collect();
            let mut own = Vec::new();
            drain(&mut own);
            for (index, value) in own {
                results[index] = Some(value);
            }
            for handle in handles {
                match handle.join() {
                    Ok(produced) => {
                        for (index, value) in produced {
                            results[index] = Some(value);
                        }
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        results
            .into_iter()
            .map(|slot| slot.expect("every task ran"))
            .collect()
    }

    /// Runs one wave and additionally reports its wall-clock span in seconds.
    pub fn run_timed_wave<T, F>(&self, tasks: Vec<F>) -> (Vec<T>, f64)
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let started = Instant::now();
        let results = self.run_wave(tasks);
        (results, started.elapsed().as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_wave_runs_inline_in_order() {
        let runtime = Runtime::sequential();
        assert_eq!(runtime.threads(), 1);
        assert!(!runtime.is_parallel());
        let order = Mutex::new(Vec::new());
        let tasks: Vec<_> = (0..5)
            .map(|i| {
                let order = &order;
                move || {
                    order.lock().unwrap().push(i);
                    i * 10
                }
            })
            .collect();
        let results = runtime.run_wave(tasks);
        assert_eq!(results, vec![0, 10, 20, 30, 40]);
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn parallel_wave_preserves_task_order_of_results() {
        let runtime = Runtime::with_threads(4);
        assert!(runtime.is_parallel());
        let tasks: Vec<_> = (0..64usize).map(|i| move || i * i).collect();
        let results = runtime.run_wave(tasks);
        assert_eq!(results, (0..64usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_and_sequential_waves_agree() {
        let work =
            |i: usize| (0..100).fold(i as u64, |acc, k| acc.wrapping_mul(31).wrapping_add(k));
        for threads in [1, 2, 8] {
            let runtime = Runtime::with_threads(threads);
            let tasks: Vec<_> = (0..17usize).map(|i| move || work(i)).collect();
            let expected: Vec<u64> = (0..17usize).map(work).collect();
            assert_eq!(runtime.run_wave(tasks), expected, "threads={threads}");
        }
    }

    #[test]
    fn zero_threads_clamps_to_sequential() {
        // The *programmatic* constructor clamps; the user-facing parsers
        // reject (see below).
        assert_eq!(Runtime::with_threads(0).threads(), 1);
    }

    #[test]
    fn option_parsing_accepts_positive_counts_and_auto() {
        assert_eq!(Runtime::from_option("3").threads(), 3);
        assert_eq!(Runtime::from_option(" 5 ").threads(), 5);
        assert!(Runtime::from_option("auto").threads() >= 1);
        assert!(Runtime::from_option("AUTO").threads() >= 1);
    }

    /// Regression test: `0` and garbage used to silently select "auto" and
    /// "sequential" respectively; both must now be rejected with an error
    /// naming the offending value.
    #[test]
    fn option_parsing_rejects_zero_and_garbage() {
        let zero = Runtime::try_from_option("0").unwrap_err();
        assert!(zero.contains("at least 1"), "unhelpful error: {zero}");
        assert!(zero.contains('0'), "error must name the value: {zero}");
        let garbage = Runtime::try_from_option("bogus").unwrap_err();
        assert!(
            garbage.contains("bogus"),
            "error must name the value: {garbage}"
        );
        assert!(Runtime::try_from_option("-2").is_err());
        assert!(Runtime::try_from_option("").is_err());
        assert!(Runtime::try_from_option("2.5").is_err());
        // The panicking wrapper carries the same message.
        let panic = std::panic::catch_unwind(|| Runtime::from_option("0"));
        assert!(panic.is_err());
    }

    #[test]
    fn serving_runtime_runs_job_waves_on_the_shared_scheduler() {
        let runtime = Runtime::serving(2);
        assert!(runtime.scheduler().is_some());
        let clone = runtime.clone();
        assert_eq!(runtime, clone, "clones share the scheduler");
        let job = clone.begin_job();
        let results =
            clone.run_job_wave(job, (0..9usize).map(|i| move || i * 3).collect::<Vec<_>>());
        assert_eq!(results, (0..9usize).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(runtime.scheduler().unwrap().stats().waves, 1);
    }

    #[test]
    fn job_waves_fall_back_to_scoped_waves_without_a_scheduler() {
        let runtime = Runtime::with_threads(4);
        assert!(runtime.scheduler().is_none());
        let job = runtime.begin_job();
        let (results, seconds) =
            runtime.run_job_timed_wave(job, (0..5usize).map(|i| move || i + 1).collect::<Vec<_>>());
        assert_eq!(results, vec![1, 2, 3, 4, 5]);
        assert!(seconds >= 0.0);
    }

    #[test]
    fn empty_wave_is_fine() {
        let runtime = Runtime::with_threads(4);
        let results: Vec<u32> = runtime.run_wave(Vec::<fn() -> u32>::new());
        assert!(results.is_empty());
    }

    #[test]
    fn timed_wave_reports_a_duration() {
        let runtime = Runtime::with_threads(2);
        let tasks: Vec<_> = (0..4usize).map(|i| move || i + 1).collect();
        let (results, seconds) = runtime.run_timed_wave(tasks);
        assert_eq!(results, vec![1, 2, 3, 4]);
        assert!(seconds >= 0.0);
    }

    #[test]
    fn panicking_task_panics_the_wave() {
        let runtime = Runtime::with_threads(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> =
                vec![Box::new(|| 1), Box::new(|| panic!("boom")), Box::new(|| 3)];
            runtime.run_wave(tasks)
        }));
        assert!(result.is_err());
    }
}
