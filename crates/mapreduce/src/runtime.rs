//! The parallel task runtime: executes map/reduce task waves on OS threads.
//!
//! A MapReduce job runs as a sequence of *task waves*: one map task per
//! compute node, then (for jobs with a reduce phase) one reduce task per
//! node. The simulator historically evaluated every "node" sequentially on
//! the driver thread; this module supplies a real runtime so that a wave's
//! per-node tasks execute concurrently on a scoped pool of OS threads
//! ([`std::thread::scope`] — no dependencies, no `unsafe`).
//!
//! Design constraints, in order:
//!
//! 1. **Determinism** — wave results are returned in task-submission order
//!    and every task is a pure function of its inputs, so a wave produces
//!    bit-identical output at any thread count (including `1`).
//! 2. **Balance** — tasks are picked up dynamically (a shared atomic cursor
//!    over the task list), so a skewed node does not stall the whole wave
//!    behind a static assignment.
//! 3. **Honest timing** — [`Runtime::run_timed_wave`] measures the wave's
//!    wall-clock span, which the engine surfaces next to the simulated
//!    seconds of the cost model.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::Instant;

/// Environment variable overriding the default thread count
/// (`0` or `auto` selects the machine's available parallelism).
pub const THREADS_ENV: &str = "CSQ_THREADS";

/// A task-wave executor with a fixed degree of parallelism.
///
/// `threads == 1` is the *sequential* runtime: every task runs inline on the
/// caller's thread, which keeps the default execution path deterministic,
/// allocation-light and easy to debug. Any larger count spawns that many
/// scoped OS threads per wave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runtime {
    threads: usize,
}

impl Default for Runtime {
    fn default() -> Self {
        Self::sequential()
    }
}

impl Runtime {
    /// The sequential runtime: tasks run inline on the caller's thread.
    pub fn sequential() -> Self {
        Self { threads: 1 }
    }

    /// A runtime with the given degree of parallelism (`0` is clamped to 1).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A runtime sized by the machine's available parallelism.
    pub fn available() -> Self {
        Self::with_threads(
            thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1),
        )
    }

    /// Reads the thread count from the `CSQ_THREADS` environment variable:
    /// a number selects that many threads, `0` or `auto` selects the
    /// machine's available parallelism, and an unset/invalid value keeps the
    /// deterministic sequential default.
    pub fn from_env() -> Self {
        match std::env::var(THREADS_ENV) {
            Ok(value) => Self::from_option(&value),
            Err(_) => Self::sequential(),
        }
    }

    /// Parses a user-supplied thread-count option (CLI flag or env value):
    /// `"0"` or `"auto"` selects the available parallelism, a number selects
    /// that many threads, anything else falls back to sequential.
    pub fn from_option(value: &str) -> Self {
        let value = value.trim();
        if value.eq_ignore_ascii_case("auto") {
            return Self::available();
        }
        match value.parse::<usize>() {
            Ok(0) => Self::available(),
            Ok(n) => Self::with_threads(n),
            Err(_) => Self::sequential(),
        }
    }

    /// The configured degree of parallelism (always at least 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Returns `true` when waves run on more than one OS thread.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Runs one wave of tasks and returns their results in task order.
    ///
    /// On the sequential runtime (or for waves of at most one task) the
    /// tasks run inline. Otherwise the caller's thread plus
    /// `min(threads, tasks) - 1` scoped OS threads drain the task list
    /// through a shared atomic cursor (the caller working too keeps the
    /// per-wave spawn cost at `workers - 1` threads). A panicking task
    /// panics the wave (the payload is resumed on the caller's thread).
    pub fn run_wave<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let count = tasks.len();
        if !self.is_parallel() || count <= 1 {
            return tasks.into_iter().map(|task| task()).collect();
        }
        let workers = self.threads.min(count);
        // Each slot is taken exactly once; the Mutex makes hand-off between
        // the submitting thread and the picking worker safe without unsafe.
        let slots: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let cursor = AtomicUsize::new(0);
        let drain = |produced: &mut Vec<(usize, T)>| loop {
            let index = cursor.fetch_add(1, Ordering::Relaxed);
            if index >= count {
                break;
            }
            let task = slots[index]
                .lock()
                .expect("task slot poisoned")
                .take()
                .expect("task picked twice");
            produced.push((index, task()));
        };
        let mut results: Vec<Option<T>> = std::iter::repeat_with(|| None).take(count).collect();
        thread::scope(|scope| {
            let handles: Vec<_> = (1..workers)
                .map(|_| {
                    let drain = &drain;
                    scope.spawn(move || {
                        let mut produced = Vec::new();
                        drain(&mut produced);
                        produced
                    })
                })
                .collect();
            let mut own = Vec::new();
            drain(&mut own);
            for (index, value) in own {
                results[index] = Some(value);
            }
            for handle in handles {
                match handle.join() {
                    Ok(produced) => {
                        for (index, value) in produced {
                            results[index] = Some(value);
                        }
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        results
            .into_iter()
            .map(|slot| slot.expect("every task ran"))
            .collect()
    }

    /// Runs one wave and additionally reports its wall-clock span in seconds.
    pub fn run_timed_wave<T, F>(&self, tasks: Vec<F>) -> (Vec<T>, f64)
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let started = Instant::now();
        let results = self.run_wave(tasks);
        (results, started.elapsed().as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_wave_runs_inline_in_order() {
        let runtime = Runtime::sequential();
        assert_eq!(runtime.threads(), 1);
        assert!(!runtime.is_parallel());
        let order = Mutex::new(Vec::new());
        let tasks: Vec<_> = (0..5)
            .map(|i| {
                let order = &order;
                move || {
                    order.lock().unwrap().push(i);
                    i * 10
                }
            })
            .collect();
        let results = runtime.run_wave(tasks);
        assert_eq!(results, vec![0, 10, 20, 30, 40]);
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn parallel_wave_preserves_task_order_of_results() {
        let runtime = Runtime::with_threads(4);
        assert!(runtime.is_parallel());
        let tasks: Vec<_> = (0..64usize).map(|i| move || i * i).collect();
        let results = runtime.run_wave(tasks);
        assert_eq!(results, (0..64usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_and_sequential_waves_agree() {
        let work =
            |i: usize| (0..100).fold(i as u64, |acc, k| acc.wrapping_mul(31).wrapping_add(k));
        for threads in [1, 2, 8] {
            let runtime = Runtime::with_threads(threads);
            let tasks: Vec<_> = (0..17usize).map(|i| move || work(i)).collect();
            let expected: Vec<u64> = (0..17usize).map(work).collect();
            assert_eq!(runtime.run_wave(tasks), expected, "threads={threads}");
        }
    }

    #[test]
    fn zero_threads_clamps_to_sequential() {
        assert_eq!(Runtime::with_threads(0).threads(), 1);
    }

    #[test]
    fn option_parsing() {
        assert_eq!(Runtime::from_option("3").threads(), 3);
        assert_eq!(Runtime::from_option(" 5 ").threads(), 5);
        assert!(Runtime::from_option("auto").threads() >= 1);
        assert!(Runtime::from_option("0").threads() >= 1);
        assert_eq!(Runtime::from_option("bogus").threads(), 1);
    }

    #[test]
    fn empty_wave_is_fine() {
        let runtime = Runtime::with_threads(4);
        let results: Vec<u32> = runtime.run_wave(Vec::<fn() -> u32>::new());
        assert!(results.is_empty());
    }

    #[test]
    fn timed_wave_reports_a_duration() {
        let runtime = Runtime::with_threads(2);
        let tasks: Vec<_> = (0..4usize).map(|i| move || i + 1).collect();
        let (results, seconds) = runtime.run_timed_wave(tasks);
        assert_eq!(results, vec![1, 2, 3, 4]);
        assert!(seconds >= 0.0);
    }

    #[test]
    fn panicking_task_panics_the_wave() {
        let runtime = Runtime::with_threads(2);
        let result = std::panic::catch_unwind(|| {
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> =
                vec![Box::new(|| 1), Box::new(|| panic!("boom")), Box::new(|| 3)];
            runtime.run_wave(tasks)
        });
        assert!(result.is_err());
    }
}
