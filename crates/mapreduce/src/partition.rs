//! The CliqueSquare RDF partitioner (Section 5.1).
//!
//! The partitioner exploits the 3× replication of distributed file systems:
//! every triple is stored three times, placed on a compute node according to
//! its **subject**, **property** and **object** value respectively, so that
//! triples sharing a value in any position are co-located. Within a node,
//! triples are grouped into a *subject*, *property* and *object* partition
//! (according to the attribute that placed them), and each partition is
//! further split into one file per property value. Because most RDF datasets
//! have a very large `rdf:type` property, its file is additionally split by
//! object value.
//!
//! The net effect is that every first-level join of a plan (s-s, s-o, p-o, …)
//! can be evaluated locally on each node (PWOC / co-located joins), and a
//! Match operator for a triple pattern with a constant property only reads
//! the files named after that property.

use crate::runtime::Runtime;
use cliquesquare_rdf::{Graph, Term, TermId, Triple, TriplePosition};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifies one HDFS-style file within a compute node's local storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FileKey {
    /// The placement attribute of the replica this file belongs to.
    pub placement: TriplePosition,
    /// The property value the file groups.
    pub property: TermId,
    /// For `rdf:type` files only: the object (class) value splitting the file.
    pub type_object: Option<TermId>,
}

impl FileKey {
    /// A file for a regular property.
    pub fn property(placement: TriplePosition, property: TermId) -> Self {
        Self {
            placement,
            property,
            type_object: None,
        }
    }

    /// A file for an `rdf:type` property split by class.
    pub fn typed(placement: TriplePosition, property: TermId, class: TermId) -> Self {
        Self {
            placement,
            property,
            type_object: Some(class),
        }
    }
}

/// Summary statistics of a partitioned store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementStats {
    /// Number of compute nodes.
    pub nodes: usize,
    /// Triples in the source graph.
    pub source_triples: usize,
    /// Stored triples across all replicas (3× the source).
    pub stored_triples: usize,
    /// Total number of files across all nodes and placements.
    pub files: usize,
    /// Largest number of stored triples on any single node.
    pub max_node_load: usize,
    /// Smallest number of stored triples on any single node.
    pub min_node_load: usize,
}

impl PlacementStats {
    /// Load imbalance: max node load divided by the ideal (average) load.
    pub fn skew(&self) -> f64 {
        if self.stored_triples == 0 || self.nodes == 0 {
            return 1.0;
        }
        let ideal = self.stored_triples as f64 / self.nodes as f64;
        self.max_node_load as f64 / ideal
    }
}

/// The replicated, property-grouped triple store of the simulated cluster.
///
/// Equality compares the full per-node file maps (each file's triples in
/// stored order), which is what the bulk-load bit-identity tests assert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionedStore {
    nodes: usize,
    rdf_type: Option<TermId>,
    source_triples: usize,
    /// `files[node]` maps a file key to the triples stored in that file.
    files: Vec<HashMap<FileKey, Vec<Triple>>>,
}

/// Deterministic placement hash (Fibonacci hashing on the term id), so that
/// simulation results are reproducible across runs and platforms.
fn placement_hash(id: TermId) -> u64 {
    (u64::from(id.0)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The index order [`PartitionedStore::scan_node`] delivers triples in for a
/// replica of `placement`: the placement position first (the value the
/// partition is grouped by), then the remaining positions in subject,
/// property, object order. Later positions repeat the placement position
/// harmlessly — ordering by an already-ordered position adds nothing.
///
/// The engine's interesting-orders pass reads this to tag leaf-scan outputs
/// with the ordering they already satisfy, so scans feeding a join on the
/// placement variable start pre-ordered for free.
pub fn scan_order(placement: TriplePosition) -> [TriplePosition; 4] {
    [
        placement,
        TriplePosition::Subject,
        TriplePosition::Property,
        TriplePosition::Object,
    ]
}

/// Routes one slice of triples into per-node file maps (the map-side task of
/// the parallel partition build). Appending the resulting maps in chunk
/// order reproduces the sequential build's per-file triple order exactly.
fn partition_chunk(
    triples: &[Triple],
    nodes: usize,
    rdf_type: Option<TermId>,
) -> Vec<HashMap<FileKey, Vec<Triple>>> {
    let mut files: Vec<HashMap<FileKey, Vec<Triple>>> = vec![HashMap::new(); nodes];
    for &triple in triples {
        for placement in TriplePosition::ALL {
            let placed_on = (placement_hash(triple.get(placement)) % nodes as u64) as usize;
            let key = if Some(triple.property) == rdf_type {
                FileKey::typed(placement, triple.property, triple.object)
            } else {
                FileKey::property(placement, triple.property)
            };
            files[placed_on].entry(key).or_default().push(triple);
        }
    }
    files
}

impl PartitionedStore {
    /// Partitions `graph` across `nodes` compute nodes.
    pub fn build(graph: &Graph, nodes: usize) -> Self {
        Self::build_with(graph, nodes, &Runtime::sequential())
    }

    /// Partitions `graph` across `nodes` compute nodes, building the store
    /// on `runtime`'s task waves.
    ///
    /// On a parallel runtime the build runs as a miniature MapReduce job:
    /// a *map wave* routes triple chunks into per-node file maps, and a
    /// *reduce wave* (one task per node) concatenates each node's chunk
    /// maps in chunk order. Because chunk order equals graph order, every
    /// file receives its triples in exactly the sequential order and the
    /// result is bit-identical to [`build`](Self::build) at any thread
    /// count.
    pub fn build_with(graph: &Graph, nodes: usize, runtime: &Runtime) -> Self {
        let nodes = nodes.max(1);
        let rdf_type = graph.lookup(&Term::iri(cliquesquare_rdf::term::vocab::RDF_TYPE));
        let triples = graph.triples();
        let files = if !runtime.is_parallel() || triples.len() < 2 {
            partition_chunk(triples, nodes, rdf_type)
        } else {
            // Map wave: one routing task per chunk.
            let chunk_size = triples.len().div_ceil(runtime.threads());
            let chunk_maps = runtime.run_wave(
                triples
                    .chunks(chunk_size)
                    .map(|chunk| move || partition_chunk(chunk, nodes, rdf_type))
                    .collect(),
            );
            // Transpose chunk-major → node-major (cheap map moves).
            let mut per_node: Vec<Vec<HashMap<FileKey, Vec<Triple>>>> = (0..nodes)
                .map(|_| Vec::with_capacity(chunk_maps.len()))
                .collect();
            for chunk in chunk_maps {
                for (node, map) in chunk.into_iter().enumerate() {
                    per_node[node].push(map);
                }
            }
            // Reduce wave: one merge task per node, chunk order preserved.
            runtime.run_wave(
                per_node
                    .into_iter()
                    .map(|maps| {
                        move || {
                            let mut merged: HashMap<FileKey, Vec<Triple>> = HashMap::new();
                            for map in maps {
                                for (key, mut triples) in map {
                                    merged.entry(key).or_default().append(&mut triples);
                                }
                            }
                            merged
                        }
                    })
                    .collect(),
            )
        };
        Self {
            nodes,
            rdf_type,
            source_triples: graph.len(),
            files,
        }
    }

    /// Number of compute nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The dictionary id of `rdf:type` in the source graph, if present.
    pub fn rdf_type(&self) -> Option<TermId> {
        self.rdf_type
    }

    /// Returns the triples of one file on one node (empty if absent).
    pub fn file(&self, node: usize, key: &FileKey) -> &[Triple] {
        self.files
            .get(node)
            .and_then(|m| m.get(key))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Scans the files matching a triple-pattern access path.
    ///
    /// * `placement` selects which replica to read (chosen from the join
    ///   variable position of the pattern, so the scan is co-located with
    ///   the first-level join).
    /// * `property = Some(p)` reads only the files named after `p`
    ///   (all files of the placement partition otherwise).
    /// * `type_object = Some(c)` additionally narrows an `rdf:type` scan to
    ///   the file of class `c`.
    ///
    /// Returns one vector of triples per compute node, preserving locality
    /// information for the co-located first-level joins. Each node's triples
    /// come back in the replica's index order — see [`scan_order`].
    pub fn scan(
        &self,
        placement: TriplePosition,
        property: Option<TermId>,
        type_object: Option<TermId>,
    ) -> Vec<Vec<Triple>> {
        (0..self.nodes)
            .map(|node| self.scan_node(node, placement, property, type_object))
            .collect()
    }

    /// Scans the matching files of a single compute node (the per-node unit
    /// of work of a map task wave). See [`scan`](Self::scan).
    ///
    /// Triples are returned sorted placement-major — by the value of the
    /// `placement` position first, then by `(subject, property, object)` —
    /// i.e. in [`scan_order`]. This is the natural order of the replica (its
    /// files group triples by the placement attribute), and it is what lets
    /// a scan feeding a join on the placement variable start pre-ordered.
    pub fn scan_node(
        &self,
        node: usize,
        placement: TriplePosition,
        property: Option<TermId>,
        type_object: Option<TermId>,
    ) -> Vec<Triple> {
        let Some(node_files) = self.files.get(node) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (key, triples) in node_files {
            if key.placement != placement {
                continue;
            }
            if let Some(p) = property {
                if key.property != p {
                    continue;
                }
            }
            if let Some(class) = type_object {
                if key.type_object != Some(class) {
                    continue;
                }
            }
            out.extend_from_slice(triples);
        }
        if placement == TriplePosition::Subject {
            // Subject-major equals plain triple order.
            out.sort_unstable();
        } else {
            out.sort_unstable_by_key(|triple| (triple.get(placement), *triple));
        }
        out
    }

    /// Total number of tuples that [`scan`](Self::scan) would read.
    pub fn scan_cardinality(
        &self,
        placement: TriplePosition,
        property: Option<TermId>,
        type_object: Option<TermId>,
    ) -> usize {
        self.scan(placement, property, type_object)
            .iter()
            .map(Vec::len)
            .sum()
    }

    /// Computes summary statistics of the placement.
    pub fn stats(&self) -> PlacementStats {
        let loads: Vec<usize> = self
            .files
            .iter()
            .map(|m| m.values().map(Vec::len).sum())
            .collect();
        PlacementStats {
            nodes: self.nodes,
            source_triples: self.source_triples,
            stored_triples: loads.iter().sum(),
            files: self.files.iter().map(HashMap::len).sum(),
            max_node_load: loads.iter().copied().max().unwrap_or(0),
            min_node_load: loads.iter().copied().min().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesquare_rdf::term::vocab;
    use cliquesquare_rdf::{LubmGenerator, LubmScale};

    fn store(nodes: usize) -> (Graph, PartitionedStore) {
        let graph = LubmGenerator::new(LubmScale::tiny()).generate();
        let store = PartitionedStore::build(&graph, nodes);
        (graph, store)
    }

    #[test]
    fn every_triple_is_stored_three_times() {
        let (graph, store) = store(4);
        let stats = store.stats();
        assert_eq!(stats.source_triples, graph.len());
        assert_eq!(stats.stored_triples, graph.len() * 3);
        assert_eq!(stats.nodes, 4);
        assert!(stats.files > 0);
        assert!(stats.skew() >= 1.0);
    }

    #[test]
    fn property_scan_matches_graph_cardinality() {
        let (graph, store) = store(4);
        let works_for = graph.lookup(&Term::iri(vocab::ub("worksFor"))).unwrap();
        let expected = graph
            .triples_with(TriplePosition::Property, works_for)
            .count();
        for placement in TriplePosition::ALL {
            let scanned = store.scan_cardinality(placement, Some(works_for), None);
            assert_eq!(scanned, expected, "placement {placement}");
        }
    }

    #[test]
    fn rdf_type_files_are_split_by_class() {
        let (graph, store) = store(3);
        let rdf_type = store.rdf_type().unwrap();
        let grad = graph
            .lookup(&Term::iri(vocab::ub("GraduateStudent")))
            .unwrap();
        let narrowed = store.scan_cardinality(TriplePosition::Subject, Some(rdf_type), Some(grad));
        let all_types = store.scan_cardinality(TriplePosition::Subject, Some(rdf_type), None);
        assert!(narrowed > 0);
        assert!(narrowed < all_types);
        let expected = graph
            .match_pattern(None, Some(rdf_type), Some(grad))
            .count();
        assert_eq!(narrowed, expected);
    }

    #[test]
    fn subject_placement_colocates_subject_joins() {
        // All triples sharing a subject land on the same node in the
        // subject-placement replica: a subject-subject join is PWOC.
        let (graph, store) = store(5);
        let mut subject_to_node: HashMap<TermId, usize> = HashMap::new();
        for node in 0..store.nodes() {
            for (key, triples) in &store.files[node] {
                if key.placement != TriplePosition::Subject {
                    continue;
                }
                for t in triples {
                    let prev = subject_to_node.insert(t.subject, node);
                    if let Some(prev_node) = prev {
                        assert_eq!(prev_node, node, "subject split across nodes");
                    }
                }
            }
        }
        assert!(!subject_to_node.is_empty());
        assert_eq!(subject_to_node.len(), graph.stats().distinct_subjects);
    }

    #[test]
    fn object_placement_colocates_object_joins() {
        let (_, store) = store(5);
        let mut object_to_node: HashMap<TermId, usize> = HashMap::new();
        for node in 0..store.nodes() {
            for (key, triples) in &store.files[node] {
                if key.placement != TriplePosition::Object {
                    continue;
                }
                for t in triples {
                    let prev = object_to_node.insert(t.object, node);
                    if let Some(prev_node) = prev {
                        assert_eq!(prev_node, node, "object split across nodes");
                    }
                }
            }
        }
        assert!(!object_to_node.is_empty());
    }

    #[test]
    fn full_scan_reads_everything_once_per_placement() {
        let (graph, store) = store(2);
        for placement in TriplePosition::ALL {
            assert_eq!(store.scan_cardinality(placement, None, None), graph.len());
        }
    }

    #[test]
    fn unknown_property_scan_is_empty() {
        let (_, store) = store(2);
        assert_eq!(
            store.scan_cardinality(TriplePosition::Subject, Some(TermId(999_999)), None),
            0
        );
    }

    #[test]
    fn single_node_store_is_supported() {
        let (graph, store) = store(1);
        assert_eq!(store.nodes(), 1);
        assert_eq!(store.stats().stored_triples, graph.len() * 3);
    }

    /// `scan_node` delivers triples placement-major: sorted by the value at
    /// the replica's placement position first, then by the full triple.
    #[test]
    fn scan_node_delivers_placement_major_order() {
        let (_, store) = store(3);
        for placement in TriplePosition::ALL {
            assert_eq!(scan_order(placement)[0], placement);
            for node in 0..store.nodes() {
                let triples = store.scan_node(node, placement, None, None);
                assert!(
                    triples
                        .windows(2)
                        .all(|w| (w[0].get(placement), w[0]) <= (w[1].get(placement), w[1])),
                    "node {node} scan of {placement} replica not placement-major sorted"
                );
            }
        }
    }

    #[test]
    fn placement_is_deterministic() {
        let graph = LubmGenerator::new(LubmScale::tiny()).generate();
        let a = PartitionedStore::build(&graph, 4);
        let b = PartitionedStore::build(&graph, 4);
        for placement in TriplePosition::ALL {
            assert_eq!(a.scan(placement, None, None), b.scan(placement, None, None));
        }
    }

    /// The parallel build (map wave routing chunks + reduce wave merging
    /// per node) is bit-identical to the sequential build: same file keys,
    /// same triples per file, in the same stored order.
    #[test]
    fn parallel_build_is_bit_identical() {
        let graph = LubmGenerator::new(LubmScale::tiny()).generate();
        let sequential = PartitionedStore::build(&graph, 5);
        for threads in [1, 2, 8] {
            let parallel = PartitionedStore::build_with(&graph, 5, &Runtime::with_threads(threads));
            assert_eq!(parallel, sequential, "threads={threads}");
            assert_eq!(parallel.stats(), sequential.stats(), "threads={threads}");
        }
    }

    #[test]
    fn parallel_build_of_tiny_graphs_is_supported() {
        let mut graph = Graph::new();
        graph.insert_terms(Term::iri("a"), Term::iri("p"), Term::iri("b"));
        let parallel = PartitionedStore::build_with(&graph, 3, &Runtime::with_threads(4));
        assert_eq!(parallel, PartitionedStore::build(&graph, 3));
        let empty = Graph::new();
        let store = PartitionedStore::build_with(&empty, 3, &Runtime::with_threads(4));
        assert_eq!(store.stats().stored_triples, 0);
    }
}
