//! MapReduce jobs, tasks and execution logs.
//!
//! A physical CliqueSquare plan is grouped bottom-up into MapReduce jobs
//! (Section 5.3): map-only jobs evaluate co-located first-level joins, while
//! jobs with a reduce phase shuffle their inputs on the join attributes.
//! The engine crate performs that grouping; this module records what was
//! executed so that simulated response times and the per-plan job strings of
//! Figures 20–21 can be derived.

use crate::metrics::{CostParameters, ExecutionMetrics};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether a job has a reduce phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobKind {
    /// A map-only job: all its work is co-located, nothing is shuffled.
    MapOnly,
    /// A full map + shuffle + reduce job.
    MapReduce,
}

impl fmt::Display for JobKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobKind::MapOnly => f.write_str("map-only"),
            JobKind::MapReduce => f.write_str("map-reduce"),
        }
    }
}

/// Work performed by one task wave on one compute node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskExecution {
    /// The compute node the task ran on.
    pub node: usize,
    /// Tuples read by the task.
    pub input_tuples: u64,
    /// Tuples produced by the task.
    pub output_tuples: u64,
}

/// The record of one executed MapReduce job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobExecution {
    /// Human-readable label (e.g. the join attributes it evaluates).
    pub label: String,
    /// Map-only or map+reduce.
    pub kind: JobKind,
    /// Per-node map tasks.
    pub map_tasks: Vec<TaskExecution>,
    /// Per-node reduce tasks (empty for map-only jobs).
    pub reduce_tasks: Vec<TaskExecution>,
    /// Tuples shuffled between the map and reduce phases.
    pub shuffled_tuples: u64,
    /// Measured wall-clock seconds spent in this job's map task waves
    /// (real time on the runtime's OS threads, not simulated time).
    pub map_wall_seconds: f64,
    /// Measured wall-clock seconds spent in this job's shuffle + reduce
    /// task waves.
    pub reduce_wall_seconds: f64,
    /// Work counters charged to this job.
    pub metrics: ExecutionMetrics,
}

impl JobExecution {
    /// Total tuples read by the job's map tasks.
    pub fn input_tuples(&self) -> u64 {
        self.map_tasks.iter().map(|t| t.input_tuples).sum()
    }

    /// Total tuples produced by the job (reduce output, or map output for
    /// map-only jobs).
    pub fn output_tuples(&self) -> u64 {
        if self.reduce_tasks.is_empty() {
            self.map_tasks.iter().map(|t| t.output_tuples).sum()
        } else {
            self.reduce_tasks.iter().map(|t| t.output_tuples).sum()
        }
    }
}

/// The ordered list of jobs executed for one query plan.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct JobLog {
    /// Executed jobs, in execution order.
    pub jobs: Vec<JobExecution>,
}

impl JobLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a job to the log.
    pub fn push(&mut self, job: JobExecution) {
        self.jobs.push(job);
    }

    /// Number of jobs executed.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Number of map-only jobs.
    pub fn map_only_count(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.kind == JobKind::MapOnly)
            .count()
    }

    /// The job descriptor used in the paper's figures: `"M"` when the whole
    /// plan runs as a single map-only job, otherwise the number of jobs.
    pub fn descriptor(&self) -> String {
        if self.jobs.len() == 1 && self.jobs[0].kind == JobKind::MapOnly {
            "M".to_string()
        } else {
            self.jobs.len().to_string()
        }
    }

    /// Measured wall-clock seconds across all jobs' task waves.
    pub fn wall_seconds(&self) -> f64 {
        self.jobs
            .iter()
            .map(|j| j.map_wall_seconds + j.reduce_wall_seconds)
            .sum()
    }

    /// Aggregated work counters over all jobs.
    pub fn total_metrics(&self) -> ExecutionMetrics {
        let mut total = ExecutionMetrics::default();
        for job in &self.jobs {
            total.merge(&job.metrics);
        }
        total
    }

    /// Simulated response time of the whole job sequence.
    pub fn simulated_seconds(&self, params: &CostParameters, nodes: usize) -> f64 {
        self.total_metrics().simulated_seconds(params, nodes)
    }
}

impl fmt::Display for JobLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, job) in self.jobs.iter().enumerate() {
            writeln!(
                f,
                "job {}: {} [{}] in={} shuffled={} out={}",
                i + 1,
                job.label,
                job.kind,
                job.input_tuples(),
                job.shuffled_tuples,
                job.output_tuples()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(kind: JobKind, input: u64, output: u64, shuffled: u64) -> JobExecution {
        JobExecution {
            label: "test".to_string(),
            kind,
            map_tasks: vec![
                TaskExecution {
                    node: 0,
                    input_tuples: input / 2,
                    output_tuples: output / 2,
                },
                TaskExecution {
                    node: 1,
                    input_tuples: input - input / 2,
                    output_tuples: output - output / 2,
                },
            ],
            reduce_tasks: if kind == JobKind::MapReduce {
                vec![TaskExecution {
                    node: 0,
                    input_tuples: shuffled,
                    output_tuples: output,
                }]
            } else {
                Vec::new()
            },
            shuffled_tuples: shuffled,
            map_wall_seconds: 0.0,
            reduce_wall_seconds: 0.0,
            metrics: ExecutionMetrics {
                tuples_read: input,
                tuples_written: output,
                tuples_shuffled: shuffled,
                jobs: 1,
                map_tasks: 2,
                reduce_tasks: u64::from(kind == JobKind::MapReduce),
                ..Default::default()
            },
        }
    }

    #[test]
    fn descriptor_matches_paper_notation() {
        let mut map_only = JobLog::new();
        map_only.push(job(JobKind::MapOnly, 100, 10, 0));
        assert_eq!(map_only.descriptor(), "M");

        let mut two_jobs = JobLog::new();
        two_jobs.push(job(JobKind::MapReduce, 100, 50, 80));
        two_jobs.push(job(JobKind::MapReduce, 50, 5, 40));
        assert_eq!(two_jobs.descriptor(), "2");
        assert_eq!(two_jobs.job_count(), 2);
        assert_eq!(two_jobs.map_only_count(), 0);
    }

    #[test]
    fn totals_accumulate_across_jobs() {
        let mut log = JobLog::new();
        log.push(job(JobKind::MapOnly, 100, 20, 0));
        log.push(job(JobKind::MapReduce, 20, 5, 20));
        let total = log.total_metrics();
        assert_eq!(total.jobs, 2);
        assert_eq!(total.tuples_read, 120);
        assert_eq!(total.tuples_shuffled, 20);
        assert!(log.simulated_seconds(&CostParameters::default(), 7) > 0.0);
    }

    #[test]
    fn job_tuple_accessors() {
        let mr = job(JobKind::MapReduce, 100, 40, 60);
        assert_eq!(mr.input_tuples(), 100);
        assert_eq!(mr.output_tuples(), 40);
        let mo = job(JobKind::MapOnly, 10, 4, 0);
        assert_eq!(mo.output_tuples(), 4);
    }

    #[test]
    fn display_lists_jobs_in_order() {
        let mut log = JobLog::new();
        log.push(job(JobKind::MapOnly, 10, 2, 0));
        log.push(job(JobKind::MapReduce, 2, 1, 2));
        let text = log.to_string();
        assert!(text.contains("job 1"));
        assert!(text.contains("job 2"));
        assert!(text.contains("map-only"));
        assert!(text.contains("map-reduce"));
    }
}
