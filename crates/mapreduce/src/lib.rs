//! Deterministic MapReduce cluster simulator for CliqueSquare.
//!
//! The paper evaluates its plans on a 7-node Hadoop cluster. This crate
//! replaces that infrastructure with a deterministic simulator that preserves
//! the behaviours the evaluation depends on:
//!
//! * **Replicated, co-located partitioning** ([`partition`]): every triple is
//!   stored three times — placed by its subject, property and object value —
//!   and locally grouped per placement attribute and per property value
//!   (with `rdf:type` further split by object), exactly as in Section 5.1.
//!   This makes all first-level joins of a plan evaluable without
//!   communication (PWOC / co-located joins).
//! * **A cluster of compute nodes** ([`cluster`]) across which partitions are
//!   spread by hashing.
//! * **A MapReduce job model** ([`job`]) with map and reduce tasks, per-job
//!   startup overhead, intermediate result materialization and shuffling.
//! * **Cost accounting** ([`metrics`]): scan, CPU, I/O and network costs in
//!   the style of Section 5.4, turned into a simulated response time.
//! * **A parallel task runtime** ([`runtime`]): per-node map and reduce
//!   tasks of a job wave execute concurrently on scoped OS threads, so the
//!   engine reports *measured* wall-clock times next to the simulated ones.
//! * **A persistent multi-job scheduler** ([`scheduler`]): for concurrent
//!   query serving, a fixed worker pool drains task waves from many jobs at
//!   once, round-robin across per-job queues, with worker panics contained
//!   and re-raised on the submitting thread.
//! * **A parallel bulk loader** ([`load`]): raw triples (N-Triples text or
//!   the LUBM generator) are parsed, dictionary-encoded through per-thread
//!   shard dictionaries, merged, indexed and partitioned as task waves on
//!   the same runtime — bit-identical to the sequential ingest path at any
//!   thread count.
//!
//! The simulator never moves real bytes across machines: "shuffling" a tuple
//! charges network cost and re-buckets it, which is sufficient to reproduce
//! the relative performance of flat versus deep plans.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod job;
pub mod load;
pub mod metrics;
pub mod partition;
pub mod runtime;
pub mod scheduler;

pub use cluster::{compute_statistics, Cluster, ClusterConfig};
pub use job::{JobExecution, JobKind, JobLog, TaskExecution};
pub use load::{BulkLoader, LoadOptions, LoadOutput, LoadReport};
pub use metrics::{CostParameters, ExecutionMetrics};
pub use partition::{scan_order, FileKey, PartitionedStore, PlacementStats};
pub use runtime::{Runtime, THREADS_ENV};
pub use scheduler::{JobId, Scheduler, SchedulerStats};
