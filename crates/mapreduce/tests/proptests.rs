//! Property-based tests for the simulated cluster's cost accounting.

use cliquesquare_mapreduce::{CostParameters, ExecutionMetrics};
use proptest::prelude::*;

fn metrics_strategy() -> impl Strategy<Value = ExecutionMetrics> {
    (
        0u64..1_000_000,
        0u64..1_000_000,
        0u64..1_000_000,
        0u64..1_000_000,
        0u64..1_000_000,
        0u64..20,
        0u64..40,
        0u64..40,
    )
        .prop_map(
            |(read, written, shuffled, comparisons, join, jobs, map, reduce)| ExecutionMetrics {
                tuples_read: read,
                tuples_written: written,
                tuples_shuffled: shuffled,
                comparisons,
                join_output_tuples: join,
                jobs,
                map_tasks: map,
                reduce_tasks: reduce,
            },
        )
}

proptest! {
    /// Merging metrics is commutative and adds every counter.
    #[test]
    fn merge_is_commutative_and_additive(a in metrics_strategy(), b in metrics_strategy()) {
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(ab.tuples_read, a.tuples_read + b.tuples_read);
        prop_assert_eq!(ab.jobs, a.jobs + b.jobs);
    }

    /// Simulated time never increases when more nodes are added, and never
    /// drops below the sequential job/task overhead.
    #[test]
    fn more_nodes_never_slow_things_down(m in metrics_strategy(), nodes in 1usize..64) {
        let params = CostParameters::default();
        let with_nodes = m.simulated_seconds(&params, nodes);
        let with_more = m.simulated_seconds(&params, nodes * 2);
        prop_assert!(with_more <= with_nodes + 1e-9);
        let overhead = m.jobs as f64 * params.job_startup
            + (m.map_tasks + m.reduce_tasks) as f64 * params.task_startup;
        prop_assert!(with_nodes + 1e-9 >= overhead);
    }

    /// Total work scales linearly with the cost parameters.
    #[test]
    fn total_work_is_linear_in_parameters(m in metrics_strategy(), factor in 1u32..10) {
        let base = CostParameters {
            read: 1.0,
            write: 1.0,
            shuffle: 1.0,
            check: 1.0,
            join: 1.0,
            job_startup: 0.0,
            task_startup: 0.0,
        };
        let scaled = CostParameters {
            read: factor as f64,
            write: factor as f64,
            shuffle: factor as f64,
            check: factor as f64,
            join: factor as f64,
            ..base
        };
        let a = m.total_work_seconds(&base);
        let b = m.total_work_seconds(&scaled);
        prop_assert!((b - a * factor as f64).abs() < 1e-6 * b.max(1.0));
    }
}
