//! Property-based tests for the RDF substrate: dictionary encoding,
//! N-Triples round-tripping (including escape sequences), sharded
//! bulk-load encoding and graph index consistency.

use cliquesquare_rdf::load::{
    encode_shard, merge_dictionaries, merge_dictionaries_partitioned, remap_triples,
};
use cliquesquare_rdf::{ntriples, Dictionary, Graph, Term, TriplePosition};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        "[a-z]{1,8}".prop_map(|s| Term::iri(format!("http://example.org/{s}"))),
        "[A-Za-z0-9 ]{0,12}".prop_map(Term::literal),
    ]
}

/// Literals drawing from the characters the N-Triples escapes cover:
/// quotes, backslashes, newlines, carriage returns, tabs, control
/// characters and non-ASCII text.
fn spiky_literal_strategy() -> impl Strategy<Value = Term> {
    "[a-zA-Z\"\\\\\n\r\t\u{1}\u{7f}éλ ]{0,16}".prop_map(Term::literal)
}

proptest! {
    /// Encoding then decoding any sequence of terms returns the same terms,
    /// and equal terms always receive equal identifiers.
    #[test]
    fn dictionary_round_trips(terms in proptest::collection::vec(term_strategy(), 1..60)) {
        let mut dictionary = Dictionary::new();
        let ids: Vec<_> = terms.iter().cloned().map(|t| dictionary.encode(t)).collect();
        for (term, id) in terms.iter().zip(&ids) {
            prop_assert_eq!(dictionary.decode(*id), Some(term));
            prop_assert_eq!(dictionary.lookup(term), Some(*id));
        }
        for (i, a) in terms.iter().enumerate() {
            for (j, b) in terms.iter().enumerate() {
                prop_assert_eq!(a == b, ids[i] == ids[j]);
            }
        }
        prop_assert!(dictionary.len() <= terms.len());
    }

    /// Serializing a graph to N-Triples and parsing it back preserves every
    /// triple (in order).
    #[test]
    fn ntriples_round_trips(
        triples in proptest::collection::vec(
            (term_strategy(), "[a-z]{1,6}", term_strategy()),
            1..40,
        )
    ) {
        let mut graph = Graph::new();
        for (s, p, o) in &triples {
            // Subjects and properties must be IRIs in RDF; literals generated
            // by the strategy are coerced.
            let subject = Term::iri(format!("http://example.org/s/{}", s.value().replace(' ', "_")));
            let property = Term::iri(format!("http://example.org/p/{p}"));
            graph.insert_terms(subject, property, o.clone());
        }
        let text = ntriples::serialize(&graph);
        let reparsed = ntriples::parse_into_graph(&text).expect("serialized output parses");
        prop_assert_eq!(reparsed.len(), graph.len());
        prop_assert_eq!(ntriples::serialize(&reparsed), text);
    }

    /// `Graph → write_ntriples → parse_ntriples → Graph` preserves the term
    /// set and the triple set even when literals contain every character the
    /// escape rules cover (quotes, backslashes, newlines, tabs, control
    /// characters, non-ASCII).
    #[test]
    fn graph_round_trips_through_ntriples_with_escapes(
        triples in proptest::collection::vec(
            ("[a-z]{1,6}", "[a-z]{1,4}", spiky_literal_strategy()),
            1..30,
        )
    ) {
        let mut graph = Graph::new();
        for (s, p, o) in &triples {
            graph.insert_terms(
                Term::iri(format!("http://example.org/s/{s}")),
                Term::iri(format!("http://example.org/p/{p}")),
                o.clone(),
            );
        }
        let text = ntriples::serialize(&graph);
        let reparsed = ntriples::parse_into_graph(&text).expect("escaped output parses");

        // Term-set equality.
        let terms = |g: &Graph| -> BTreeSet<Term> {
            g.dictionary().iter().map(|(_, t)| t.clone()).collect()
        };
        prop_assert_eq!(terms(&reparsed), terms(&graph));

        // Triple-set equality (decoded, so ids don't have to match).
        let decoded = |g: &Graph| -> Vec<(Term, Term, Term)> {
            g.triples()
                .iter()
                .map(|t| {
                    (
                        g.decode(t.subject).unwrap().clone(),
                        g.decode(t.property).unwrap().clone(),
                        g.decode(t.object).unwrap().clone(),
                    )
                })
                .collect()
        };
        prop_assert_eq!(decoded(&reparsed), decoded(&graph));

        // In fact the loader contract is stronger: same insertion order means
        // the whole graph (ids, indexes) round-trips bit-identically.
        prop_assert_eq!(&reparsed, &graph);
    }

    /// Sharded encoding (split → per-shard dictionaries → ordered merge →
    /// remap) assigns exactly the ids the sequential single-dictionary
    /// encode assigns, for every split of the input.
    #[test]
    fn sharded_encode_matches_sequential(
        triples in proptest::collection::vec(
            (term_strategy(), term_strategy(), term_strategy()),
            1..40,
        ),
        splits in proptest::collection::vec(1usize..40, 0..4),
    ) {
        // Sequential baseline: one dictionary over the whole stream.
        let mut sequential = Dictionary::new();
        let sequential_triples: Vec<_> = triples
            .iter()
            .map(|(s, p, o)| {
                (
                    sequential.encode(s.clone()),
                    sequential.encode(p.clone()),
                    sequential.encode(o.clone()),
                )
            })
            .collect();

        // Sharded: split at the (sorted, deduped, clamped) positions.
        let mut cuts: Vec<usize> = splits.iter().map(|&c| c % triples.len()).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut chunks: Vec<Vec<(Term, Term, Term)>> = Vec::new();
        let mut rest = triples.as_slice();
        let mut consumed = 0;
        for cut in cuts {
            let (head, tail) = rest.split_at(cut - consumed);
            if !head.is_empty() {
                chunks.push(head.to_vec());
            }
            rest = tail;
            consumed = cut;
        }
        if !rest.is_empty() {
            chunks.push(rest.to_vec());
        }

        let shards: Vec<_> = chunks.into_iter().map(encode_shard).collect();
        let (dictionaries, locals): (Vec<_>, Vec<_>) =
            shards.into_iter().map(|s| (s.dictionary, s.triples)).unzip();
        let (merged, remaps) = merge_dictionaries(dictionaries);
        prop_assert_eq!(&merged, &sequential);

        let remapped: Vec<_> = locals
            .iter()
            .zip(&remaps)
            .flat_map(|(t, r)| remap_triples(t, r))
            .map(|t| (t.subject, t.property, t.object))
            .collect();
        prop_assert_eq!(remapped, sequential_triples);
    }

    /// The partitioned dictionary merge assigns ids bit-identically to the
    /// sequential first-occurrence merge for any shard split and any
    /// partition count (thread-count invariance is tested on the parallel
    /// orchestration in the workspace `bulk_load` suite).
    #[test]
    fn partitioned_merge_matches_sequential(
        terms in proptest::collection::vec(term_strategy(), 1..120),
        splits in proptest::collection::vec(1usize..120, 0..6),
        partitions in 1usize..16,
    ) {
        let mut cuts: Vec<usize> = splits.iter().map(|&c| c % terms.len()).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut shards = Vec::new();
        let mut start = 0;
        for cut in cuts.into_iter().chain(std::iter::once(terms.len())) {
            let mut shard = Dictionary::new();
            for term in &terms[start..cut] {
                shard.encode(term.clone());
            }
            shards.push(shard);
            start = cut;
        }

        let (expected_dict, expected_remaps) = merge_dictionaries(shards.clone());
        let (dict, remaps) = merge_dictionaries_partitioned(shards, partitions);
        prop_assert_eq!(&dict, &expected_dict);
        prop_assert_eq!(remaps, expected_remaps);
        for (id, term) in expected_dict.iter() {
            prop_assert_eq!(dict.lookup(term), Some(id));
        }
    }

    /// Every positional index returns exactly the triples carrying the value
    /// at that position.
    #[test]
    fn graph_indexes_are_consistent(
        raw in proptest::collection::vec((0u32..20, 0u32..5, 0u32..20), 1..80)
    ) {
        let mut graph = Graph::new();
        for (s, p, o) in &raw {
            graph.insert_terms(
                Term::iri(format!("s{s}")),
                Term::iri(format!("p{p}")),
                Term::iri(format!("o{o}")),
            );
        }
        for position in TriplePosition::ALL {
            for (id, _) in graph.dictionary().iter() {
                let indexed: Vec<_> = graph.triples_with(position, id).collect();
                let scanned: Vec<_> = graph
                    .triples()
                    .iter()
                    .filter(|t| t.get(position) == id)
                    .copied()
                    .collect();
                prop_assert_eq!(indexed.len(), scanned.len());
            }
        }
        let stats = graph.stats();
        prop_assert_eq!(stats.triples, raw.len());
        prop_assert!(stats.distinct_terms >= stats.distinct_properties);
    }
}
