//! Property-based tests for the RDF substrate: dictionary encoding,
//! N-Triples round-tripping and graph index consistency.

use cliquesquare_rdf::{ntriples, Dictionary, Graph, Term, TriplePosition};
use proptest::prelude::*;

fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        "[a-z]{1,8}".prop_map(|s| Term::iri(format!("http://example.org/{s}"))),
        "[A-Za-z0-9 ]{0,12}".prop_map(Term::literal),
    ]
}

proptest! {
    /// Encoding then decoding any sequence of terms returns the same terms,
    /// and equal terms always receive equal identifiers.
    #[test]
    fn dictionary_round_trips(terms in proptest::collection::vec(term_strategy(), 1..60)) {
        let mut dictionary = Dictionary::new();
        let ids: Vec<_> = terms.iter().cloned().map(|t| dictionary.encode(t)).collect();
        for (term, id) in terms.iter().zip(&ids) {
            prop_assert_eq!(dictionary.decode(*id), Some(term));
            prop_assert_eq!(dictionary.lookup(term), Some(*id));
        }
        for (i, a) in terms.iter().enumerate() {
            for (j, b) in terms.iter().enumerate() {
                prop_assert_eq!(a == b, ids[i] == ids[j]);
            }
        }
        prop_assert!(dictionary.len() <= terms.len());
    }

    /// Serializing a graph to N-Triples and parsing it back preserves every
    /// triple (in order).
    #[test]
    fn ntriples_round_trips(
        triples in proptest::collection::vec(
            (term_strategy(), "[a-z]{1,6}", term_strategy()),
            1..40,
        )
    ) {
        let mut graph = Graph::new();
        for (s, p, o) in &triples {
            // Subjects and properties must be IRIs in RDF; literals generated
            // by the strategy are coerced.
            let subject = Term::iri(format!("http://example.org/s/{}", s.value().replace(' ', "_")));
            let property = Term::iri(format!("http://example.org/p/{p}"));
            graph.insert_terms(subject, property, o.clone());
        }
        let text = ntriples::serialize(&graph);
        let reparsed = ntriples::parse_into_graph(&text).expect("serialized output parses");
        prop_assert_eq!(reparsed.len(), graph.len());
        prop_assert_eq!(ntriples::serialize(&reparsed), text);
    }

    /// Every positional index returns exactly the triples carrying the value
    /// at that position.
    #[test]
    fn graph_indexes_are_consistent(
        raw in proptest::collection::vec((0u32..20, 0u32..5, 0u32..20), 1..80)
    ) {
        let mut graph = Graph::new();
        for (s, p, o) in &raw {
            graph.insert_terms(
                Term::iri(format!("s{s}")),
                Term::iri(format!("p{p}")),
                Term::iri(format!("o{o}")),
            );
        }
        for position in TriplePosition::ALL {
            for (id, _) in graph.dictionary().iter() {
                let indexed: Vec<_> = graph.triples_with(position, id).collect();
                let scanned: Vec<_> = graph
                    .triples()
                    .iter()
                    .filter(|t| t.get(position) == id)
                    .copied()
                    .collect();
                prop_assert_eq!(indexed.len(), scanned.len());
            }
        }
        let stats = graph.stats();
        prop_assert_eq!(stats.triples, raw.len());
        prop_assert!(stats.distinct_terms >= stats.distinct_properties);
    }
}
