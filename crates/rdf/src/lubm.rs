//! Deterministic LUBM-like synthetic data generator.
//!
//! The paper evaluates on LUBM10k (~1 billion triples on a 7-node Hadoop
//! cluster). Regenerating a billion triples is neither feasible nor necessary
//! to reproduce the paper's claims, which are about *relative* plan quality.
//! This module generates a scaled-down dataset with the same schema and join
//! structure as LUBM: universities contain departments, departments employ
//! professors and lecturers, students are members of departments, take
//! courses, and have advisors; professors teach courses and hold degrees from
//! universities. All properties referenced by the paper's 14 evaluation
//! queries (Appendix A) are produced, so every query has a non-empty answer.
//!
//! The generator is fully deterministic given its [`LubmScale`] and seed.
//! Each university is generated from its **own RNG stream** (seeded from the
//! scale seed and the university number), which makes a university the unit
//! of parallel generation: [`LubmGenerator::university_triples`] can run for
//! different universities on different worker threads, and concatenating the
//! per-university outputs in university order reproduces
//! [`LubmGenerator::generate`] bit for bit (see
//! `cliquesquare_mapreduce::load::BulkLoader::load_lubm`).

use crate::graph::Graph;
use crate::term::{vocab, Term};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Scale parameters of the LUBM-like generator.
///
/// The defaults produce on the order of 50–60 thousand triples, which keeps
/// test runtimes short. Benchmarks use larger scales via
/// [`LubmScale::with_universities`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LubmScale {
    /// Number of universities.
    pub universities: usize,
    /// Departments per university.
    pub departments_per_university: usize,
    /// Full professors per department.
    pub full_professors: usize,
    /// Assistant professors per department.
    pub assistant_professors: usize,
    /// Lecturers per department.
    pub lecturers: usize,
    /// Undergraduate students per department.
    pub undergraduate_students: usize,
    /// Graduate students per department.
    pub graduate_students: usize,
    /// Undergraduate courses per department.
    pub courses: usize,
    /// Graduate courses per department.
    pub graduate_courses: usize,
    /// Courses taken by each undergraduate student.
    pub courses_per_undergrad: usize,
    /// Graduate courses taken by each graduate student.
    pub courses_per_grad: usize,
    /// Random seed controlling all probabilistic choices.
    pub seed: u64,
}

impl Default for LubmScale {
    fn default() -> Self {
        Self {
            universities: 3,
            departments_per_university: 4,
            full_professors: 4,
            assistant_professors: 4,
            lecturers: 3,
            undergraduate_students: 40,
            graduate_students: 12,
            courses: 10,
            graduate_courses: 6,
            courses_per_undergrad: 2,
            courses_per_grad: 2,
            seed: 0x5eed_cafe,
        }
    }
}

impl LubmScale {
    /// A small scale suitable for unit tests (a few thousand triples).
    pub fn tiny() -> Self {
        Self {
            universities: 1,
            departments_per_university: 2,
            full_professors: 2,
            assistant_professors: 2,
            lecturers: 1,
            undergraduate_students: 8,
            graduate_students: 4,
            courses: 4,
            graduate_courses: 2,
            courses_per_undergrad: 2,
            courses_per_grad: 1,
            seed: 7,
        }
    }

    /// Returns the default scale with the given number of universities.
    pub fn with_universities(universities: usize) -> Self {
        Self {
            universities,
            ..Self::default()
        }
    }

    /// A rough upper bound on the number of triples the scale will generate.
    pub fn estimated_triples(&self) -> usize {
        let depts = self.universities * self.departments_per_university;
        let per_dept = 3
            + (self.full_professors + self.assistant_professors + self.lecturers) * 7
            + self.undergraduate_students * (4 + self.courses_per_undergrad)
            + self.graduate_students * (6 + self.courses_per_grad)
            + (self.courses + self.graduate_courses) * 2;
        self.universities * 2 + depts * per_dept
    }
}

/// Deterministic LUBM-like data generator.
#[derive(Debug, Clone)]
pub struct LubmGenerator {
    scale: LubmScale,
}

impl LubmGenerator {
    /// Creates a generator with the given scale.
    pub fn new(scale: LubmScale) -> Self {
        Self { scale }
    }

    /// Returns the generator's scale.
    pub fn scale(&self) -> &LubmScale {
        &self.scale
    }

    /// Generates the dataset into a fresh [`Graph`].
    pub fn generate(&self) -> Graph {
        let mut graph = Graph::new();
        self.generate_into(&mut graph);
        graph
    }

    /// Generates the dataset into an existing graph.
    pub fn generate_into(&self, graph: &mut Graph) {
        for u in 0..self.scale.universities {
            for (s, p, o) in self.university_triples(u) {
                graph.insert_terms(s, p, o);
            }
        }
    }

    /// The RNG seed of university `u`: a splitmix64-style mix of the scale
    /// seed and the university number, so every university draws from an
    /// independent, platform-stable stream.
    fn university_seed(&self, u: usize) -> u64 {
        let mut z = self
            .scale
            .seed
            .wrapping_add((u as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Generates all triples of university `u` (types, departments, faculty,
    /// students, courses), in deterministic emission order.
    ///
    /// This is the unit of parallel generation: universities draw from
    /// independent RNG streams, so any subset can be generated on any worker
    /// and the concatenation over `u = 0..universities` equals
    /// [`generate`](Self::generate).
    pub fn university_triples(&self, u: usize) -> Vec<(Term, Term, Term)> {
        let mut out = Vec::new();
        self.university_triples_into(u, &mut out);
        out
    }

    /// Like [`university_triples`](Self::university_triples), but appends
    /// into a caller-supplied buffer so the streaming bulk loader can
    /// recycle one generation buffer per worker across university waves.
    pub fn university_triples_into(&self, u: usize, out: &mut Vec<(Term, Term, Term)>) {
        let mut rng = StdRng::seed_from_u64(self.university_seed(u));
        let s = &self.scale;
        let mut emit = |s: Term, p: Term, o: Term| out.push((s, p, o));

        let rdf_type = Term::iri(vocab::RDF_TYPE);
        let p_works_for = Term::iri(vocab::ub("worksFor"));
        let p_member_of = Term::iri(vocab::ub("memberOf"));
        let p_sub_org = Term::iri(vocab::ub("subOrganizationOf"));
        let p_takes = Term::iri(vocab::ub("takesCourse"));
        let p_teacher = Term::iri(vocab::ub("teacherOf"));
        let p_advisor = Term::iri(vocab::ub("advisor"));
        let p_doctoral = Term::iri(vocab::ub("doctoralDegreeFrom"));
        let p_undergrad_from = Term::iri(vocab::ub("undergraduateDegreeFrom"));
        let p_email = Term::iri(vocab::ub("emailAddress"));
        let p_name = Term::iri(vocab::ub("name"));

        let c_university = Term::iri(vocab::ub("University"));
        let c_department = Term::iri(vocab::ub("Department"));
        let c_full_prof = Term::iri(vocab::ub("FullProfessor"));
        let c_assistant_prof = Term::iri(vocab::ub("AssistantProfessor"));
        let c_lecturer = Term::iri(vocab::ub("Lecturer"));
        let c_undergrad = Term::iri(vocab::ub("UndergraduateStudent"));
        let c_grad = Term::iri(vocab::ub("GraduateStudent"));
        let c_course = Term::iri(vocab::ub("Course"));
        let c_grad_course = Term::iri(vocab::ub("GraduateCourse"));

        // University IRIs are constructed on demand from a drawn index, so
        // generating one university stays O(its own triples) instead of
        // allocating the full U-element IRI table per call.
        let university_iri = |i: usize| Term::iri(format!("http://www.University{i}.edu"));

        let univ = &university_iri(u);
        emit(univ.clone(), rdf_type.clone(), c_university.clone());
        emit(
            univ.clone(),
            p_name.clone(),
            Term::literal(format!("University{u}")),
        );

        for d in 0..s.departments_per_university {
            let dept = Term::iri(format!("http://www.Department{d}.University{u}.edu"));
            emit(dept.clone(), rdf_type.clone(), c_department.clone());
            emit(dept.clone(), p_sub_org.clone(), univ.clone());
            emit(
                dept.clone(),
                p_name.clone(),
                Term::literal(format!("Department{d}")),
            );

            // Courses.
            let mut courses = Vec::with_capacity(s.courses);
            for c in 0..s.courses {
                let course = Term::iri(format!(
                    "http://www.Department{d}.University{u}.edu/Course{c}"
                ));
                emit(course.clone(), rdf_type.clone(), c_course.clone());
                emit(
                    course.clone(),
                    p_name.clone(),
                    Term::literal(format!("Course{c}")),
                );
                courses.push(course);
            }
            let mut grad_courses = Vec::with_capacity(s.graduate_courses);
            for c in 0..s.graduate_courses {
                let course = Term::iri(format!(
                    "http://www.Department{d}.University{u}.edu/GraduateCourse{c}"
                ));
                emit(course.clone(), rdf_type.clone(), c_grad_course.clone());
                emit(
                    course.clone(),
                    p_name.clone(),
                    Term::literal(format!("GraduateCourse{c}")),
                );
                grad_courses.push(course);
            }

            // Faculty: full professors, assistant professors, lecturers.
            let mut faculty = Vec::new();
            let mut full_professors = Vec::new();
            let faculty_groups: [(usize, &Term, &str); 3] = [
                (s.full_professors, &c_full_prof, "FullProfessor"),
                (
                    s.assistant_professors,
                    &c_assistant_prof,
                    "AssistantProfessor",
                ),
                (s.lecturers, &c_lecturer, "Lecturer"),
            ];
            for (count, class, label) in faculty_groups {
                for i in 0..count {
                    let person = Term::iri(format!(
                        "http://www.Department{d}.University{u}.edu/{label}{i}"
                    ));
                    emit(person.clone(), rdf_type.clone(), class.clone());
                    emit(person.clone(), p_works_for.clone(), dept.clone());
                    emit(
                        person.clone(),
                        p_name.clone(),
                        Term::literal(format!("{label}{i}")),
                    );
                    emit(
                        person.clone(),
                        p_email.clone(),
                        Term::literal(format!("{label}{i}@Department{d}.University{u}.edu")),
                    );
                    let degree_univ = university_iri(rng.gen_range(0..s.universities));
                    emit(person.clone(), p_doctoral.clone(), degree_univ);
                    // Each faculty member teaches one undergraduate and one
                    // graduate course (round-robin over the department's
                    // courses), so teacherOf joins are well populated.
                    if !courses.is_empty() {
                        let course = &courses[i % courses.len()];
                        emit(person.clone(), p_teacher.clone(), course.clone());
                    }
                    if !grad_courses.is_empty() {
                        let course = &grad_courses[i % grad_courses.len()];
                        emit(person.clone(), p_teacher.clone(), course.clone());
                    }
                    if *class == c_full_prof {
                        full_professors.push(person.clone());
                    }
                    faculty.push(person);
                }
            }

            // Undergraduate students.
            for i in 0..s.undergraduate_students {
                let student = Term::iri(format!(
                    "http://www.Department{d}.University{u}.edu/UndergraduateStudent{i}"
                ));
                emit(student.clone(), rdf_type.clone(), c_undergrad.clone());
                emit(student.clone(), p_member_of.clone(), dept.clone());
                emit(
                    student.clone(),
                    p_name.clone(),
                    Term::literal(format!("UndergraduateStudent{i}")),
                );
                if !full_professors.is_empty() {
                    let advisor = &full_professors[rng.gen_range(0..full_professors.len())];
                    emit(student.clone(), p_advisor.clone(), advisor.clone());
                }
                for k in 0..s.courses_per_undergrad.min(courses.len()) {
                    let start = rng.gen_range(0..courses.len());
                    let course = &courses[(start + k) % courses.len()];
                    emit(student.clone(), p_takes.clone(), course.clone());
                }
            }

            // Graduate students.
            for i in 0..s.graduate_students {
                let student = Term::iri(format!(
                    "http://www.Department{d}.University{u}.edu/GraduateStudent{i}"
                ));
                emit(student.clone(), rdf_type.clone(), c_grad.clone());
                emit(student.clone(), p_member_of.clone(), dept.clone());
                emit(
                    student.clone(),
                    p_email.clone(),
                    Term::literal(format!(
                        "GraduateStudent{i}@Department{d}.University{u}.edu"
                    )),
                );
                // A fraction of graduate students hold their undergraduate
                // degree from the university of their current department,
                // which is what makes Q8/Q9 selective joins non-empty.
                let from = if rng.gen_bool(0.3) {
                    univ.clone()
                } else {
                    university_iri(rng.gen_range(0..s.universities))
                };
                emit(student.clone(), p_undergrad_from.clone(), from);
                if !faculty.is_empty() {
                    let advisor = &faculty[rng.gen_range(0..faculty.len())];
                    emit(student.clone(), p_advisor.clone(), advisor.clone());
                }
                for k in 0..s.courses_per_grad.min(grad_courses.len()) {
                    let start = rng.gen_range(0..grad_courses.len());
                    let course = &grad_courses[(start + k) % grad_courses.len()];
                    emit(student.clone(), p_takes.clone(), course.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::vocab;

    #[test]
    fn generation_is_deterministic() {
        let g1 = LubmGenerator::new(LubmScale::tiny()).generate();
        let g2 = LubmGenerator::new(LubmScale::tiny()).generate();
        assert_eq!(g1.len(), g2.len());
        assert_eq!(g1.triples(), g2.triples());
    }

    #[test]
    fn university_chunks_concatenate_to_generate() {
        let generator = LubmGenerator::new(LubmScale::default());
        let mut chunked = Graph::new();
        for u in 0..generator.scale().universities {
            for (s, p, o) in generator.university_triples(u) {
                chunked.insert_terms(s, p, o);
            }
        }
        assert_eq!(chunked, generator.generate());
    }

    #[test]
    fn universities_draw_from_distinct_streams() {
        let generator = LubmGenerator::new(LubmScale::with_universities(2));
        let a = generator.university_triples(0);
        let b = generator.university_triples(1);
        assert_eq!(a.len(), b.len());
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut scale = LubmScale::tiny();
        let g1 = LubmGenerator::new(scale).generate();
        scale.seed = 8;
        let g2 = LubmGenerator::new(scale).generate();
        assert_eq!(g1.len(), g2.len());
        assert_ne!(g1.triples(), g2.triples());
    }

    #[test]
    fn all_query_properties_are_present() {
        let g = LubmGenerator::new(LubmScale::default()).generate();
        for prop in [
            "worksFor",
            "memberOf",
            "subOrganizationOf",
            "takesCourse",
            "teacherOf",
            "advisor",
            "doctoralDegreeFrom",
            "undergraduateDegreeFrom",
            "emailAddress",
            "name",
        ] {
            let term = Term::iri(vocab::ub(prop));
            assert!(
                g.lookup(&term).is_some(),
                "property {prop} missing from generated data"
            );
        }
        assert!(g.lookup(&Term::iri(vocab::RDF_TYPE)).is_some());
    }

    #[test]
    fn all_query_classes_are_present() {
        let g = LubmGenerator::new(LubmScale::default()).generate();
        let rdf_type = g.lookup(&Term::iri(vocab::RDF_TYPE)).unwrap();
        for class in [
            "University",
            "Department",
            "FullProfessor",
            "AssistantProfessor",
            "Lecturer",
            "UndergraduateStudent",
            "GraduateStudent",
            "Course",
            "GraduateCourse",
        ] {
            let class_id = g
                .lookup(&Term::iri(vocab::ub(class)))
                .unwrap_or_else(|| panic!("class {class} missing"));
            let instances = g
                .match_pattern(None, Some(rdf_type), Some(class_id))
                .count();
            assert!(instances > 0, "class {class} has no instances");
        }
    }

    #[test]
    fn scale_estimate_is_close() {
        let scale = LubmScale::default();
        let g = LubmGenerator::new(scale).generate();
        let estimate = scale.estimated_triples();
        let actual = g.len();
        assert!(
            actual <= estimate && actual * 2 >= estimate,
            "estimate {estimate} too far from actual {actual}"
        );
    }

    #[test]
    fn university_constants_match_query_constants() {
        let g = LubmGenerator::new(LubmScale::default()).generate();
        assert!(g.lookup(&Term::iri("http://www.University0.edu")).is_some());
        assert!(g.lookup(&Term::literal("University0")).is_some());
    }

    #[test]
    fn larger_scale_generates_more_triples() {
        let small = LubmGenerator::new(LubmScale::with_universities(1)).generate();
        let big = LubmGenerator::new(LubmScale::with_universities(3)).generate();
        assert!(big.len() > 2 * small.len());
    }
}
