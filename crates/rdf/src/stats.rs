//! Data statistics backing the cost model's selectivity estimates.
//!
//! [`GraphStatistics`] summarizes a loaded graph the way a relational
//! optimizer's catalog would: per-predicate triple counts, per-predicate
//! distinct subject/object counts (the denominators of distinct-count join
//! estimation), per-class `rdf:type` counts (mirroring the store's split
//! type files), and *characteristic sets* — the distinct predicate
//! combinations subjects exhibit, with how many subjects and triples each
//! combination covers (Neumann & Moerkotte's structure summary for
//! star-shaped selectivity).
//!
//! The computation is expressed as order-independent *fragments* so a task
//! runtime can build it as a map wave (one [`StatsFragment`] per triple
//! chunk) followed by a merge: [`StatsFragment::absorb`] is commutative and
//! associative, and [`GraphStatistics::from_fragments`] finalizes sets into
//! counts deterministically. The parallel orchestration lives in
//! `cliquesquare_mapreduce` next to the partition build; any merge order at
//! any thread count yields the same statistics.

use crate::graph::Graph;
use crate::term::{vocab, Term, TermId};
use crate::triple::{Triple, TriplePosition};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Statistics of one predicate (property value).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredicateStats {
    /// Number of triples with this property.
    pub triples: usize,
    /// Number of distinct subject values among those triples.
    pub distinct_subjects: usize,
    /// Number of distinct object values among those triples.
    pub distinct_objects: usize,
}

/// One characteristic set: a predicate combination subjects exhibit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharacteristicSet {
    /// The predicates of the set, sorted by id.
    pub properties: Vec<TermId>,
    /// Number of subjects whose predicate set is exactly `properties`.
    pub subjects: usize,
    /// Total triples of those subjects.
    pub triples: usize,
}

/// An order-independent partial of [`GraphStatistics`] built from one chunk
/// of triples. Merging fragments in any order yields the same totals.
#[derive(Debug, Clone, Default)]
pub struct StatsFragment {
    triples: usize,
    objects: HashSet<TermId>,
    /// Per-predicate (triple count, subject set, object set).
    predicates: HashMap<TermId, (usize, HashSet<TermId>, HashSet<TermId>)>,
    /// Per-class triple counts of `rdf:type` (the store's split type files).
    type_classes: HashMap<TermId, usize>,
    /// Per-subject predicate set and triple count.
    subjects: HashMap<TermId, (BTreeSet<TermId>, usize)>,
}

impl StatsFragment {
    /// Accumulates one chunk of triples. `rdf_type` is the dictionary id of
    /// `rdf:type` in the source graph, if present.
    pub fn from_triples(triples: &[Triple], rdf_type: Option<TermId>) -> Self {
        let mut fragment = Self::default();
        for triple in triples {
            fragment.triples += 1;
            fragment.objects.insert(triple.object);
            let (count, subjects, objects) =
                fragment.predicates.entry(triple.property).or_default();
            *count += 1;
            subjects.insert(triple.subject);
            objects.insert(triple.object);
            if Some(triple.property) == rdf_type {
                *fragment.type_classes.entry(triple.object).or_default() += 1;
            }
            let (properties, count) = fragment.subjects.entry(triple.subject).or_default();
            properties.insert(triple.property);
            *count += 1;
        }
        fragment
    }

    /// Merges `other` into `self` (commutative up to the final counts).
    pub fn absorb(&mut self, other: Self) {
        self.triples += other.triples;
        self.objects.extend(other.objects);
        for (property, (count, subjects, objects)) in other.predicates {
            let entry = self.predicates.entry(property).or_default();
            entry.0 += count;
            entry.1.extend(subjects);
            entry.2.extend(objects);
        }
        for (class, count) in other.type_classes {
            *self.type_classes.entry(class).or_default() += count;
        }
        for (subject, (properties, count)) in other.subjects {
            let entry = self.subjects.entry(subject).or_default();
            entry.0.extend(properties);
            entry.1 += count;
        }
    }
}

/// Catalog-style statistics of a loaded graph, carried on the cluster
/// snapshot and read by the cost model's selectivity estimates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphStatistics {
    triples: usize,
    distinct_subjects: usize,
    distinct_objects: usize,
    rdf_type: Option<TermId>,
    predicates: HashMap<TermId, PredicateStats>,
    type_classes: HashMap<TermId, usize>,
    characteristic_sets: Vec<CharacteristicSet>,
}

impl GraphStatistics {
    /// Computes the statistics of `graph` sequentially (one fragment). The
    /// parallel wave build in `cliquesquare_mapreduce` produces identical
    /// output at any thread count.
    pub fn compute(graph: &Graph) -> Self {
        let rdf_type = graph.lookup(&Term::iri(vocab::RDF_TYPE));
        Self::from_fragments(
            vec![StatsFragment::from_triples(graph.triples(), rdf_type)],
            rdf_type,
        )
    }

    /// Finalizes merged fragments into the statistics catalog. The result
    /// depends only on the multiset of triples the fragments covered, not on
    /// chunking or merge order.
    pub fn from_fragments(fragments: Vec<StatsFragment>, rdf_type: Option<TermId>) -> Self {
        let mut merged = StatsFragment::default();
        for fragment in fragments {
            merged.absorb(fragment);
        }
        let predicates = merged
            .predicates
            .into_iter()
            .map(|(property, (triples, subjects, objects))| {
                (
                    property,
                    PredicateStats {
                        triples,
                        distinct_subjects: subjects.len(),
                        distinct_objects: objects.len(),
                    },
                )
            })
            .collect();
        // Group subjects by their exact predicate combination; BTreeMap
        // keys give a deterministic set order.
        let mut sets: BTreeMap<Vec<TermId>, (usize, usize)> = BTreeMap::new();
        for (properties, triple_count) in merged.subjects.values() {
            let key: Vec<TermId> = properties.iter().copied().collect();
            let entry = sets.entry(key).or_default();
            entry.0 += 1;
            entry.1 += triple_count;
        }
        let characteristic_sets = sets
            .into_iter()
            .map(|(properties, (subjects, triples))| CharacteristicSet {
                properties,
                subjects,
                triples,
            })
            .collect();
        Self {
            triples: merged.triples,
            distinct_subjects: merged.subjects.len(),
            distinct_objects: merged.objects.len(),
            rdf_type,
            predicates,
            type_classes: merged.type_classes,
            characteristic_sets,
        }
    }

    /// Total triples in the graph.
    pub fn triples(&self) -> usize {
        self.triples
    }

    /// Distinct subject values across the graph.
    pub fn distinct_subjects(&self) -> usize {
        self.distinct_subjects
    }

    /// Distinct property values across the graph.
    pub fn distinct_properties(&self) -> usize {
        self.predicates.len()
    }

    /// Distinct object values across the graph.
    pub fn distinct_objects(&self) -> usize {
        self.distinct_objects
    }

    /// The dictionary id of `rdf:type`, if the graph has one.
    pub fn rdf_type(&self) -> Option<TermId> {
        self.rdf_type
    }

    /// Statistics of one predicate (`None` if the graph never uses it).
    pub fn predicate(&self, property: TermId) -> Option<&PredicateStats> {
        self.predicates.get(&property)
    }

    /// Triples carrying `rdf:type` with the given class object.
    pub fn type_class_triples(&self, class: TermId) -> usize {
        self.type_classes.get(&class).copied().unwrap_or(0)
    }

    /// The characteristic sets (distinct per-subject predicate
    /// combinations), in deterministic predicate-list order.
    pub fn characteristic_sets(&self) -> &[CharacteristicSet] {
        &self.characteristic_sets
    }

    /// Exact cardinality of a property-restricted scan: how many triples a
    /// `MapScan` with the given file restrictions reads, answered from the
    /// catalog without touching the store.
    pub fn scan_cardinality(&self, property: Option<TermId>, type_object: Option<TermId>) -> usize {
        match (property, type_object) {
            (Some(p), Some(class)) if Some(p) == self.rdf_type => self.type_class_triples(class),
            (Some(p), _) => self.predicate(p).map_or(0, |stats| stats.triples),
            (None, _) => self.triples,
        }
    }

    /// Distinct values the given predicate's triples have at `position`:
    /// the denominator of distinct-count join estimation for a scan of that
    /// predicate joined on the variable at `position`. The property
    /// position of a constant-property scan has exactly one value.
    pub fn distinct_at(&self, property: TermId, position: TriplePosition) -> usize {
        match position {
            TriplePosition::Subject => self.predicate(property).map_or(0, |s| s.distinct_subjects),
            TriplePosition::Property => usize::from(self.predicates.contains_key(&property)),
            TriplePosition::Object => self.predicate(property).map_or(0, |s| s.distinct_objects),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lubm::{LubmGenerator, LubmScale};

    fn graph() -> Graph {
        LubmGenerator::new(LubmScale::tiny()).generate()
    }

    #[test]
    fn totals_match_graph_stats() {
        let g = graph();
        let stats = GraphStatistics::compute(&g);
        let graph_stats = g.stats();
        assert_eq!(stats.triples(), graph_stats.triples);
        assert_eq!(stats.distinct_subjects(), graph_stats.distinct_subjects);
        assert_eq!(stats.distinct_properties(), graph_stats.distinct_properties);
        assert_eq!(stats.distinct_objects(), graph_stats.distinct_objects);
    }

    #[test]
    fn per_predicate_counts_match_the_index() {
        let g = graph();
        let stats = GraphStatistics::compute(&g);
        for (property, expected) in g.property_cardinalities() {
            let per_predicate = stats.predicate(property).expect("predicate present");
            assert_eq!(per_predicate.triples, expected, "property {property:?}");
            assert!(per_predicate.distinct_subjects <= expected);
            assert!(per_predicate.distinct_objects <= expected);
            assert!(per_predicate.distinct_subjects >= 1);
            assert_eq!(stats.scan_cardinality(Some(property), None), expected);
        }
        assert_eq!(stats.scan_cardinality(None, None), g.len());
        assert_eq!(stats.scan_cardinality(Some(TermId(9_999_999)), None), 0);
    }

    #[test]
    fn type_classes_match_pattern_matching() {
        let g = graph();
        let stats = GraphStatistics::compute(&g);
        let rdf_type = stats.rdf_type().expect("LUBM has rdf:type");
        let mut total = 0;
        for set in stats.characteristic_sets() {
            assert!(set.subjects > 0);
            assert!(set.triples >= set.properties.len() * set.subjects);
            total += set.subjects;
        }
        assert_eq!(total, stats.distinct_subjects());
        // Every class count equals the graph's own pattern match.
        let grad = g
            .lookup(&Term::iri(vocab::ub("GraduateStudent")))
            .expect("class exists");
        assert_eq!(
            stats.scan_cardinality(Some(rdf_type), Some(grad)),
            g.match_pattern(None, Some(rdf_type), Some(grad)).count()
        );
    }

    #[test]
    fn chunked_fragments_merge_to_the_sequential_result() {
        let g = graph();
        let rdf_type = g.lookup(&Term::iri(vocab::RDF_TYPE));
        let sequential = GraphStatistics::compute(&g);
        for chunks in [2, 3, 7] {
            let chunk_size = g.len().div_ceil(chunks).max(1);
            let fragments: Vec<StatsFragment> = g
                .triples()
                .chunks(chunk_size)
                .map(|chunk| StatsFragment::from_triples(chunk, rdf_type))
                .collect();
            let chunked = GraphStatistics::from_fragments(fragments, rdf_type);
            assert_eq!(chunked, sequential, "chunks={chunks}");
        }
    }

    #[test]
    fn empty_graph_statistics_are_empty() {
        let stats = GraphStatistics::compute(&Graph::new());
        assert_eq!(stats.triples(), 0);
        assert_eq!(stats.distinct_subjects(), 0);
        assert!(stats.characteristic_sets().is_empty());
        assert_eq!(stats.scan_cardinality(None, None), 0);
    }

    #[test]
    fn distinct_at_reports_positional_denominators() {
        let mut g = Graph::new();
        // Two subjects share one object through p; one subject has q.
        g.insert_terms(Term::iri("s1"), Term::iri("p"), Term::iri("o"));
        g.insert_terms(Term::iri("s2"), Term::iri("p"), Term::iri("o"));
        g.insert_terms(Term::iri("s1"), Term::iri("q"), Term::iri("o2"));
        let stats = GraphStatistics::compute(&g);
        let p = g.lookup(&Term::iri("p")).unwrap();
        let q = g.lookup(&Term::iri("q")).unwrap();
        assert_eq!(stats.distinct_at(p, TriplePosition::Subject), 2);
        assert_eq!(stats.distinct_at(p, TriplePosition::Object), 1);
        assert_eq!(stats.distinct_at(p, TriplePosition::Property), 1);
        assert_eq!(stats.distinct_at(q, TriplePosition::Subject), 1);
        assert_eq!(stats.distinct_at(TermId(77), TriplePosition::Subject), 0);
        assert_eq!(stats.characteristic_sets().len(), 2);
    }
}
