//! Dictionary-encoded RDF triples.

use crate::term::TermId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dictionary-encoded RDF triple `(subject, property, object)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Triple {
    /// The subject term id.
    pub subject: TermId,
    /// The property (predicate) term id.
    pub property: TermId,
    /// The object term id.
    pub object: TermId,
}

impl Triple {
    /// Creates a triple from its three component ids.
    pub fn new(subject: TermId, property: TermId, object: TermId) -> Self {
        Self {
            subject,
            property,
            object,
        }
    }

    /// Returns the component of the triple at `position`.
    #[inline]
    pub fn get(&self, position: TriplePosition) -> TermId {
        match position {
            TriplePosition::Subject => self.subject,
            TriplePosition::Property => self.property,
            TriplePosition::Object => self.object,
        }
    }

    /// Returns the triple's components as a `[subject, property, object]` array.
    pub fn as_array(&self) -> [TermId; 3] {
        [self.subject, self.property, self.object]
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} {} {})", self.subject, self.property, self.object)
    }
}

/// One of the three positions of a triple.
///
/// The partitioner of Section 5.1 replicates every triple three times, once
/// per position, so that any first-level join (s-s, s-o, p-o, …) can be
/// evaluated without communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TriplePosition {
    /// The subject position.
    Subject,
    /// The property (predicate) position.
    Property,
    /// The object position.
    Object,
}

impl TriplePosition {
    /// All three positions, in `s, p, o` order.
    pub const ALL: [TriplePosition; 3] = [
        TriplePosition::Subject,
        TriplePosition::Property,
        TriplePosition::Object,
    ];

    /// A short lowercase name (`"s"`, `"p"`, `"o"`).
    pub fn short_name(&self) -> &'static str {
        match self {
            TriplePosition::Subject => "s",
            TriplePosition::Property => "p",
            TriplePosition::Object => "o",
        }
    }
}

impl fmt::Display for TriplePosition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(TermId(s), TermId(p), TermId(o))
    }

    #[test]
    fn get_by_position() {
        let tr = t(1, 2, 3);
        assert_eq!(tr.get(TriplePosition::Subject), TermId(1));
        assert_eq!(tr.get(TriplePosition::Property), TermId(2));
        assert_eq!(tr.get(TriplePosition::Object), TermId(3));
        assert_eq!(tr.as_array(), [TermId(1), TermId(2), TermId(3)]);
    }

    #[test]
    fn ordering_is_lexicographic_on_spo() {
        let mut v = vec![t(2, 0, 0), t(1, 5, 5), t(1, 2, 9), t(1, 2, 3)];
        v.sort();
        assert_eq!(v, vec![t(1, 2, 3), t(1, 2, 9), t(1, 5, 5), t(2, 0, 0)]);
    }

    #[test]
    fn position_names() {
        let names: Vec<_> = TriplePosition::ALL.iter().map(|p| p.short_name()).collect();
        assert_eq!(names, vec!["s", "p", "o"]);
        assert_eq!(TriplePosition::Object.to_string(), "o");
    }

    #[test]
    fn display() {
        assert_eq!(t(1, 2, 3).to_string(), "(#1 #2 #3)");
    }
}
