//! Sharded bulk-load primitives: chunk splitting, per-shard dictionary
//! encoding, and the order-preserving merge pass.
//!
//! Loading a graph sequentially funnels every triple through one
//! [`Dictionary`], which serializes the whole ingest path. The bulk loader
//! (see `cliquesquare_mapreduce::load`) instead splits the input into
//! chunks, encodes each chunk against its own *shard* dictionary on a
//! worker thread, and then merges the shards. The merge assigns final dense
//! [`TermId`]s in **global first-occurrence order** — the exact order the
//! sequential path would have produced — so a parallel load is bit-identical
//! to a sequential one at any thread or chunk count:
//!
//! * sequentially, a term's id reflects its first occurrence in the
//!   concatenated input stream;
//! * a term's first occurrence lies in the first chunk containing it, and a
//!   shard dictionary's local id order *is* first-occurrence order within
//!   its chunk;
//! * therefore walking the shards in chunk order, and each shard's terms in
//!   local id order, visits all terms in global first-occurrence order.
//!
//! [`merge_dictionaries`] implements exactly that walk and hands back one
//! remap table per shard; [`remap_triples`] rewrites a shard's local-id
//! triples to final ids (independently per shard, so it parallelizes too).
//! These functions are deliberately free of any threading so this crate
//! stays dependency-light; the task-wave orchestration lives in
//! `cliquesquare_mapreduce::load`.

use crate::dictionary::{term_hash, Dictionary};
use crate::ntriples::{self, ParseError};
use crate::term::{Term, TermId};
use crate::triple::Triple;

/// One line-aligned chunk of a larger N-Triples document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NtriplesChunk<'a> {
    /// The chunk's text (whole lines; chunks concatenate back to the input).
    pub text: &'a str,
    /// 1-based line number of the chunk's first line within the document,
    /// so parse errors report global line numbers.
    pub first_line: usize,
}

/// Splits an N-Triples document into at most `chunks` line-aligned pieces of
/// roughly equal byte size.
///
/// Chunk boundaries always fall *after* a newline, so no line is ever split
/// and the concatenation of all chunk texts is exactly `text`. Fewer chunks
/// are returned when the document is too small to split further.
pub fn split_ntriples(text: &str, chunks: usize) -> Vec<NtriplesChunk<'_>> {
    let chunks = chunks.max(1);
    if chunks == 1 || text.len() <= chunks {
        return if text.is_empty() {
            Vec::new()
        } else {
            vec![NtriplesChunk {
                text,
                first_line: 1,
            }]
        };
    }
    let target = text.len().div_ceil(chunks);
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    let mut line = 1;
    while start < text.len() {
        let tentative = (start + target).min(text.len());
        let end = if tentative >= text.len() {
            text.len()
        } else {
            match bytes[tentative..].iter().position(|&b| b == b'\n') {
                Some(newline) => tentative + newline + 1,
                None => text.len(),
            }
        };
        let chunk = &text[start..end];
        out.push(NtriplesChunk {
            text: chunk,
            first_line: line,
        });
        line += chunk.bytes().filter(|&b| b == b'\n').count();
        start = end;
    }
    out
}

/// Parses one chunk produced by [`split_ntriples`] into term triples,
/// reporting errors with document-global line numbers.
pub fn parse_chunk(chunk: NtriplesChunk<'_>) -> Result<Vec<(Term, Term, Term)>, ParseError> {
    ntriples::parse_from(chunk.text, chunk.first_line)
}

/// Like [`parse_chunk`], but appends into a caller-supplied buffer. The
/// streaming bulk loader keeps one recycled buffer per in-flight chunk, so
/// parsing a document of `c` chunks allocates `O(workers)` triple buffers
/// instead of `c`. On error the buffer may hold a partial prefix; the caller
/// clears it before recycling.
pub fn parse_chunk_into(
    chunk: NtriplesChunk<'_>,
    out: &mut Vec<(Term, Term, Term)>,
) -> Result<(), ParseError> {
    ntriples::parse_from_into(chunk.text, chunk.first_line, out)
}

/// One chunk's triples, encoded against a shard-local dictionary.
///
/// The triple ids are *shard-local*: meaningful only relative to
/// `dictionary` until [`merge_dictionaries`] + [`remap_triples`] rewrite
/// them to final global ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EncodedShard {
    /// The shard's private dictionary (local first-occurrence id order).
    pub dictionary: Dictionary,
    /// The chunk's triples under shard-local ids, in input order.
    pub triples: Vec<Triple>,
}

/// Encodes one chunk of term triples against a fresh shard dictionary.
/// This is the per-worker step of the parallel encode wave.
pub fn encode_shard(terms: Vec<(Term, Term, Term)>) -> EncodedShard {
    let mut terms = terms;
    encode_shard_from(&mut terms)
}

/// Like [`encode_shard`], but drains a caller-supplied buffer so its
/// capacity survives for the next chunk. Pairs with [`parse_chunk_into`] in
/// the streaming loader's fused parse→encode task.
pub fn encode_shard_from(terms: &mut Vec<(Term, Term, Term)>) -> EncodedShard {
    let mut dictionary = Dictionary::new();
    let mut triples = Vec::with_capacity(terms.len());
    for (s, p, o) in terms.drain(..) {
        let triple = Triple::new(
            dictionary.encode(s),
            dictionary.encode(p),
            dictionary.encode(o),
        );
        triples.push(triple);
    }
    EncodedShard {
        dictionary,
        triples,
    }
}

/// Merges shard dictionaries into one global dictionary, assigning final
/// dense ids in global first-occurrence order (the sequential order — see
/// the module docs), and returns one remap table per shard:
/// `remaps[shard][local_id.index()]` is the final [`TermId`].
///
/// The global index is sized once up front (the summed shard sizes bound
/// the distinct-term count), so the merge never rehashes mid-way.
pub fn merge_dictionaries(shards: Vec<Dictionary>) -> (Dictionary, Vec<Vec<TermId>>) {
    let upper_bound: usize = shards.iter().map(Dictionary::len).sum();
    let mut global = Dictionary::with_capacity(upper_bound);
    let remaps = shards
        .into_iter()
        .map(|shard| {
            shard
                .into_terms()
                .into_iter()
                .map(|term| global.encode(term))
                .collect()
        })
        .collect();
    (global, remaps)
}

/// Sentinel marking a shard-local id whose term first occurred in an
/// earlier shard: [`assign_final_ids`] leaves these slots unassigned and
/// [`resolve_shard_remap`] patches them from the first occurrence's shard.
pub const MERGE_UNASSIGNED: TermId = TermId(u32::MAX);

/// Hashes every term of a shard dictionary, in local-id order. One hash
/// wave runs per shard; the hashes drive partition routing, per-partition
/// dedup probing, *and* the final index build, so each term's text is
/// hashed exactly once across the whole merge.
pub fn shard_term_hashes(shard: &Dictionary) -> Vec<u64> {
    shard.terms().iter().map(term_hash).collect()
}

/// One partition's slice of the merge plan: which shard-local terms are
/// global first occurrences, and where each repeat occurrence first
/// appeared.
///
/// Because all occurrences of a term share a [`term_hash`], they land in
/// the same partition, so "first occurrence within this partition's scan"
/// equals "global first occurrence" — partitions are independent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergePartition {
    /// Per shard: strictly ascending local ids whose term first occurs at
    /// that position (walking shards in order, each shard in local order).
    pub new_locals: Vec<Vec<u32>>,
    /// Per shard: `(local, first_shard, first_local)` for every repeat
    /// occurrence, pointing at the term's global first occurrence.
    pub duplicates: Vec<Vec<(u32, u32, u32)>>,
}

/// Scans all shards for the terms hashing into `partition` (of
/// `partitions`) and splits them into first occurrences and duplicates.
/// Partitions are disjoint, so one such scan per partition can run as its
/// own task on the parallel runtime.
///
/// The dedup set is open-addressing keyed by the precomputed hashes and
/// sized once from an exact occurrence count, so the scan re-hashes no
/// strings and never rehashes the table.
pub fn partition_merge_plan(
    shards: &[Dictionary],
    hashes: &[Vec<u64>],
    partitions: usize,
    partition: usize,
) -> MergePartition {
    debug_assert_eq!(shards.len(), hashes.len());
    let modulus = partitions.max(1) as u64;
    let target = partition as u64;
    let occurrences: usize = hashes
        .iter()
        .map(|shard| shard.iter().filter(|&&h| h % modulus == target).count())
        .sum();
    let capacity = (occurrences * 8 / 7 + 1).next_power_of_two();
    let mask = capacity - 1;
    // Slots hold 1-based indexes into `entries`; an entry records the hash
    // and first occurrence `(shard, local)` of one distinct term.
    let mut slots = vec![0u32; capacity];
    let mut entries: Vec<(u64, u32, u32)> = Vec::with_capacity(occurrences);
    let mut new_locals = vec![Vec::new(); shards.len()];
    let mut duplicates: Vec<Vec<(u32, u32, u32)>> = vec![Vec::new(); shards.len()];
    for (s, shard) in shards.iter().enumerate() {
        let terms = shard.terms();
        for (l, &hash) in hashes[s].iter().enumerate() {
            if hash % modulus != target {
                continue;
            }
            let mut slot = (hash as usize) & mask;
            loop {
                match slots[slot] {
                    0 => {
                        entries.push((hash, s as u32, l as u32));
                        slots[slot] = entries.len() as u32;
                        new_locals[s].push(l as u32);
                        break;
                    }
                    stored => {
                        let (entry_hash, fs, fl) = entries[(stored - 1) as usize];
                        if entry_hash == hash
                            && shards[fs as usize].terms()[fl as usize] == terms[l]
                        {
                            duplicates[s].push((l as u32, fs, fl));
                            break;
                        }
                    }
                }
                slot = (slot + 1) & mask;
            }
        }
    }
    MergePartition {
        new_locals,
        duplicates,
    }
}

/// Prefix-sums the per-shard first-occurrence counts across all partition
/// plans: returns each shard's final-id base and the distinct-term total.
///
/// Sequentially, the new terms of shard `s` receive the contiguous id block
/// `[base, base + new)` in ascending local order (a term's global
/// first-occurrence rank is the number of distinct terms first occurring at
/// a lexicographically smaller `(shard, local)` position), which is exactly
/// how [`assign_final_ids`] hands ids out — so the partitioned merge is
/// bit-identical to [`merge_dictionaries`].
pub fn merge_bases(plans: &[MergePartition], shard_count: usize) -> (Vec<u32>, usize) {
    let mut bases = Vec::with_capacity(shard_count);
    let mut total = 0usize;
    for s in 0..shard_count {
        bases.push(u32::try_from(total).expect("dictionary overflow"));
        total += plans.iter().map(|p| p.new_locals[s].len()).sum::<usize>();
    }
    (bases, total)
}

/// Assigns final ids to one shard's first-occurrence terms: ascending local
/// ids get consecutive ids from `base`. Duplicate slots stay
/// [`MERGE_UNASSIGNED`] until [`resolve_shard_remap`]. Runs independently
/// per shard.
pub fn assign_final_ids(
    shard: usize,
    shard_len: usize,
    plans: &[MergePartition],
    base: u32,
) -> Vec<TermId> {
    let mut is_new = vec![false; shard_len];
    for plan in plans {
        for &l in &plan.new_locals[shard] {
            is_new[l as usize] = true;
        }
    }
    let mut finals = vec![MERGE_UNASSIGNED; shard_len];
    let mut next = base;
    for (l, &fresh) in is_new.iter().enumerate() {
        if fresh {
            finals[l] = TermId(next);
            next += 1;
        }
    }
    finals
}

/// Completes one shard's remap table by patching every duplicate slot with
/// the id assigned at the term's first occurrence. Safe to run as soon as
/// *all* shards' [`assign_final_ids`] are done (first occurrences are
/// always "new" entries, so the referenced slots are already assigned).
/// Runs independently per shard.
pub fn resolve_shard_remap(
    shard: usize,
    finals: &[Vec<TermId>],
    plans: &[MergePartition],
) -> Vec<TermId> {
    let mut remap = finals[shard].clone();
    for plan in plans {
        for &(l, fs, fl) in &plan.duplicates[shard] {
            let id = finals[fs as usize][fl as usize];
            debug_assert_ne!(id, MERGE_UNASSIGNED, "duplicate points at a duplicate");
            remap[l as usize] = id;
        }
    }
    debug_assert!(remap.iter().all(|&id| id != MERGE_UNASSIGNED));
    remap
}

/// Moves every first-occurrence term (and its precomputed hash) into the
/// id-ordered global table. Walking shards in order and locals in ascending
/// order visits final ids `0, 1, 2, …` exactly once, so this is a single
/// sequential move with no positional writes.
pub fn merged_term_table(
    shards: Vec<Dictionary>,
    hashes: &[Vec<u64>],
    finals: &[Vec<TermId>],
    distinct: usize,
) -> (Vec<Term>, Vec<u64>) {
    let mut terms = Vec::with_capacity(distinct);
    let mut term_hashes = Vec::with_capacity(distinct);
    for (s, shard) in shards.into_iter().enumerate() {
        for (l, term) in shard.into_terms().into_iter().enumerate() {
            let id = finals[s][l];
            if id != MERGE_UNASSIGNED {
                debug_assert_eq!(id.index(), terms.len(), "ids not visited densely");
                terms.push(term);
                term_hashes.push(hashes[s][l]);
            }
        }
    }
    (terms, term_hashes)
}

/// The partitioned merge, phase by phase, run sequentially: the reference
/// orchestration of [`shard_term_hashes`] → [`partition_merge_plan`] →
/// [`merge_bases`] → [`assign_final_ids`] → [`resolve_shard_remap`] →
/// [`merged_term_table`]. Bit-identical to [`merge_dictionaries`] for any
/// partition count (differential-tested, including by proptest); the
/// parallel task-wave orchestration of the same phases lives in
/// `cliquesquare_mapreduce::load`.
pub fn merge_dictionaries_partitioned(
    shards: Vec<Dictionary>,
    partitions: usize,
) -> (Dictionary, Vec<Vec<TermId>>) {
    let hashes: Vec<Vec<u64>> = shards.iter().map(shard_term_hashes).collect();
    let plans: Vec<MergePartition> = (0..partitions.max(1))
        .map(|p| partition_merge_plan(&shards, &hashes, partitions, p))
        .collect();
    let (bases, distinct) = merge_bases(&plans, shards.len());
    let finals: Vec<Vec<TermId>> = shards
        .iter()
        .enumerate()
        .map(|(s, shard)| assign_final_ids(s, shard.len(), &plans, bases[s]))
        .collect();
    let remaps: Vec<Vec<TermId>> = (0..shards.len())
        .map(|s| resolve_shard_remap(s, &finals, &plans))
        .collect();
    let (terms, term_hashes) = merged_term_table(shards, &hashes, &finals, distinct);
    let dictionary = Dictionary::from_id_ordered_terms_with_hashes(terms, &term_hashes);
    (dictionary, remaps)
}

/// Rewrites a shard's local-id triples to final global ids through its
/// remap table from [`merge_dictionaries`]. Runs independently per shard.
pub fn remap_triples(triples: &[Triple], remap: &[TermId]) -> Vec<Triple> {
    triples
        .iter()
        .map(|t| {
            Triple::new(
                remap[t.subject.index()],
                remap[t.property.index()],
                remap[t.object.index()],
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(text: impl Into<String>) -> Term {
        Term::iri(text)
    }

    #[test]
    fn split_preserves_text_and_lines() {
        let text: String = (0..40)
            .map(|i| format!("<http://example.org/s{i}> <p> <o{}> .\n", i % 5))
            .collect();
        for chunks in [1, 2, 3, 7, 100] {
            let split = split_ntriples(&text, chunks);
            assert!(split.len() <= chunks.max(1));
            let rejoined: String = split.iter().map(|c| c.text).collect();
            assert_eq!(rejoined, text, "chunks={chunks}");
            // Every chunk starts where the previous left off, line-wise.
            let mut expected_line = 1;
            for chunk in &split {
                assert_eq!(chunk.first_line, expected_line, "chunks={chunks}");
                assert!(chunk.text.ends_with('\n') || chunk.text.is_empty());
                expected_line += chunk.text.bytes().filter(|&b| b == b'\n').count();
            }
        }
    }

    #[test]
    fn split_handles_empty_and_unterminated_input() {
        assert!(split_ntriples("", 4).is_empty());
        let no_newline = "<a> <p> <b> .";
        let split = split_ntriples(no_newline, 4);
        let rejoined: String = split.iter().map(|c| c.text).collect();
        assert_eq!(rejoined, no_newline);
    }

    #[test]
    fn chunk_parse_errors_report_global_lines() {
        let text = "<a> <p> <b> .\n<a> <p> <c> .\nbroken line\n<a> <p> <d> .\n";
        let split = split_ntriples(text, 4);
        let error = split
            .iter()
            .filter_map(|&c| parse_chunk(c).err())
            .next()
            .expect("one chunk fails");
        assert_eq!(error.line, 3);
    }

    #[test]
    fn merge_matches_sequential_encoding_order() {
        // Terms repeat across chunk boundaries on purpose.
        let stream: Vec<Term> = ["a", "b", "a", "c", "b", "d", "e", "c", "f", "a"]
            .iter()
            .map(|t| iri(*t))
            .collect();
        let mut sequential = Dictionary::new();
        let sequential_ids: Vec<TermId> = stream
            .iter()
            .map(|t| sequential.encode(t.clone()))
            .collect();

        for split_at in [1, 3, 5, 9] {
            let (left, right) = stream.split_at(split_at);
            let shard = |terms: &[Term]| {
                let mut d = Dictionary::new();
                let ids: Vec<TermId> = terms.iter().map(|t| d.encode(t.clone())).collect();
                (d, ids)
            };
            let (d0, ids0) = shard(left);
            let (d1, ids1) = shard(right);
            let (global, remaps) = merge_dictionaries(vec![d0, d1]);
            assert_eq!(global, sequential, "split_at={split_at}");
            let merged_ids: Vec<TermId> = ids0
                .iter()
                .map(|id| remaps[0][id.index()])
                .chain(ids1.iter().map(|id| remaps[1][id.index()]))
                .collect();
            assert_eq!(merged_ids, sequential_ids, "split_at={split_at}");
        }
    }

    #[test]
    fn encode_and_remap_round_trip() {
        let terms = vec![
            (iri("s1"), iri("p"), iri("o1")),
            (iri("s2"), iri("p"), Term::literal("x")),
            (iri("s1"), iri("q"), iri("s2")),
        ];
        let shard = encode_shard(terms.clone());
        assert_eq!(shard.triples.len(), 3);
        assert_eq!(shard.dictionary.len(), 6);
        let (global, remaps) = merge_dictionaries(vec![shard.dictionary.clone()]);
        let remapped = remap_triples(&shard.triples, &remaps[0]);
        // A single shard merges onto itself: ids unchanged.
        assert_eq!(global, shard.dictionary);
        assert_eq!(remapped, shard.triples);
        for ((s, p, o), triple) in terms.iter().zip(&remapped) {
            assert_eq!(global.decode(triple.subject), Some(s));
            assert_eq!(global.decode(triple.property), Some(p));
            assert_eq!(global.decode(triple.object), Some(o));
        }
    }

    #[test]
    fn empty_shards_merge_cleanly() {
        let (global, remaps) = merge_dictionaries(vec![Dictionary::new(), Dictionary::new()]);
        assert!(global.is_empty());
        assert_eq!(remaps, vec![Vec::<TermId>::new(), Vec::new()]);
        assert!(remap_triples(&[], &[]).is_empty());
    }

    /// Builds shard dictionaries from slices of one term stream, the way
    /// the encode wave would.
    fn shards_of(stream: &[Term], cuts: &[usize]) -> Vec<Dictionary> {
        let mut shards = Vec::new();
        let mut start = 0;
        for &cut in cuts.iter().chain(std::iter::once(&stream.len())) {
            let mut d = Dictionary::new();
            for term in &stream[start..cut] {
                d.encode(term.clone());
            }
            shards.push(d);
            start = cut;
        }
        shards
    }

    #[test]
    fn partitioned_merge_is_bit_identical_to_sequential() {
        let stream: Vec<Term> = ["a", "b", "a", "c", "b", "d", "e", "c", "f", "a", "g", "e"]
            .iter()
            .map(|t| iri(*t))
            .chain((0..50).map(|i| Term::literal(format!("v{}", i % 17))))
            .collect();
        for cuts in [vec![], vec![4], vec![3, 7], vec![2, 5, 9, 30]] {
            let shards = shards_of(&stream, &cuts);
            let (expected_dict, expected_remaps) = merge_dictionaries(shards.clone());
            for partitions in [1, 2, 3, 7, 64] {
                let (dict, remaps) = merge_dictionaries_partitioned(shards.clone(), partitions);
                assert_eq!(dict, expected_dict, "cuts={cuts:?} partitions={partitions}");
                assert_eq!(
                    remaps, expected_remaps,
                    "cuts={cuts:?} partitions={partitions}"
                );
                // The rebuilt index answers lookups, not just equality.
                for (id, term) in expected_dict.iter() {
                    assert_eq!(dict.lookup(term), Some(id));
                }
            }
        }
    }

    #[test]
    fn partitioned_merge_handles_empty_and_trivial_shards() {
        let (dict, remaps) =
            merge_dictionaries_partitioned(vec![Dictionary::new(), Dictionary::new()], 4);
        assert!(dict.is_empty());
        assert_eq!(remaps, vec![Vec::<TermId>::new(), Vec::new()]);

        let mut only = Dictionary::new();
        only.encode(iri("x"));
        only.encode(iri("y"));
        let (dict, remaps) = merge_dictionaries_partitioned(vec![only.clone()], 8);
        assert_eq!(dict, only);
        assert_eq!(remaps, vec![vec![TermId(0), TermId(1)]]);
    }

    #[test]
    fn partition_plans_cover_every_local_id_exactly_once() {
        let stream: Vec<Term> = (0..40).map(|i| iri(format!("t{}", i % 13))).collect();
        let shards = shards_of(&stream, &[11, 25]);
        let hashes: Vec<Vec<u64>> = shards.iter().map(shard_term_hashes).collect();
        let partitions = 5;
        let plans: Vec<MergePartition> = (0..partitions)
            .map(|p| partition_merge_plan(&shards, &hashes, partitions, p))
            .collect();
        for (s, shard) in shards.iter().enumerate() {
            let mut seen = vec![0u32; shard.len()];
            for plan in &plans {
                assert!(plan.new_locals[s].windows(2).all(|w| w[0] < w[1]));
                for &l in &plan.new_locals[s] {
                    seen[l as usize] += 1;
                }
                for &(l, fs, fl) in &plan.duplicates[s] {
                    seen[l as usize] += 1;
                    // Duplicates point at a strictly earlier occurrence of
                    // an equal term.
                    assert!((fs as usize, fl as usize) < (s, l as usize));
                    assert_eq!(
                        shards[fs as usize].terms()[fl as usize],
                        shard.terms()[l as usize]
                    );
                }
            }
            assert!(seen.iter().all(|&n| n == 1), "shard {s}: {seen:?}");
        }
    }

    #[test]
    fn encode_shard_from_recycles_the_buffer() {
        let mut buffer = vec![
            (iri("s"), iri("p"), iri("o")),
            (iri("s"), iri("p"), Term::literal("l")),
        ];
        let capacity = buffer.capacity();
        let shard = encode_shard_from(&mut buffer);
        assert!(buffer.is_empty());
        assert_eq!(buffer.capacity(), capacity);
        assert_eq!(shard.triples.len(), 2);
        assert_eq!(
            shard,
            encode_shard(vec![
                (iri("s"), iri("p"), iri("o")),
                (iri("s"), iri("p"), Term::literal("l")),
            ])
        );
    }
}
