//! Sharded bulk-load primitives: chunk splitting, per-shard dictionary
//! encoding, and the order-preserving merge pass.
//!
//! Loading a graph sequentially funnels every triple through one
//! [`Dictionary`], which serializes the whole ingest path. The bulk loader
//! (see `cliquesquare_mapreduce::load`) instead splits the input into
//! chunks, encodes each chunk against its own *shard* dictionary on a
//! worker thread, and then merges the shards. The merge assigns final dense
//! [`TermId`]s in **global first-occurrence order** — the exact order the
//! sequential path would have produced — so a parallel load is bit-identical
//! to a sequential one at any thread or chunk count:
//!
//! * sequentially, a term's id reflects its first occurrence in the
//!   concatenated input stream;
//! * a term's first occurrence lies in the first chunk containing it, and a
//!   shard dictionary's local id order *is* first-occurrence order within
//!   its chunk;
//! * therefore walking the shards in chunk order, and each shard's terms in
//!   local id order, visits all terms in global first-occurrence order.
//!
//! [`merge_dictionaries`] implements exactly that walk and hands back one
//! remap table per shard; [`remap_triples`] rewrites a shard's local-id
//! triples to final ids (independently per shard, so it parallelizes too).
//! These functions are deliberately free of any threading so this crate
//! stays dependency-light; the task-wave orchestration lives in
//! `cliquesquare_mapreduce::load`.

use crate::dictionary::Dictionary;
use crate::ntriples::{self, ParseError};
use crate::term::{Term, TermId};
use crate::triple::Triple;

/// One line-aligned chunk of a larger N-Triples document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NtriplesChunk<'a> {
    /// The chunk's text (whole lines; chunks concatenate back to the input).
    pub text: &'a str,
    /// 1-based line number of the chunk's first line within the document,
    /// so parse errors report global line numbers.
    pub first_line: usize,
}

/// Splits an N-Triples document into at most `chunks` line-aligned pieces of
/// roughly equal byte size.
///
/// Chunk boundaries always fall *after* a newline, so no line is ever split
/// and the concatenation of all chunk texts is exactly `text`. Fewer chunks
/// are returned when the document is too small to split further.
pub fn split_ntriples(text: &str, chunks: usize) -> Vec<NtriplesChunk<'_>> {
    let chunks = chunks.max(1);
    if chunks == 1 || text.len() <= chunks {
        return if text.is_empty() {
            Vec::new()
        } else {
            vec![NtriplesChunk {
                text,
                first_line: 1,
            }]
        };
    }
    let target = text.len().div_ceil(chunks);
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    let mut line = 1;
    while start < text.len() {
        let tentative = (start + target).min(text.len());
        let end = if tentative >= text.len() {
            text.len()
        } else {
            match bytes[tentative..].iter().position(|&b| b == b'\n') {
                Some(newline) => tentative + newline + 1,
                None => text.len(),
            }
        };
        let chunk = &text[start..end];
        out.push(NtriplesChunk {
            text: chunk,
            first_line: line,
        });
        line += chunk.bytes().filter(|&b| b == b'\n').count();
        start = end;
    }
    out
}

/// Parses one chunk produced by [`split_ntriples`] into term triples,
/// reporting errors with document-global line numbers.
pub fn parse_chunk(chunk: NtriplesChunk<'_>) -> Result<Vec<(Term, Term, Term)>, ParseError> {
    ntriples::parse_from(chunk.text, chunk.first_line)
}

/// One chunk's triples, encoded against a shard-local dictionary.
///
/// The triple ids are *shard-local*: meaningful only relative to
/// `dictionary` until [`merge_dictionaries`] + [`remap_triples`] rewrite
/// them to final global ids.
#[derive(Debug, Clone, Default)]
pub struct EncodedShard {
    /// The shard's private dictionary (local first-occurrence id order).
    pub dictionary: Dictionary,
    /// The chunk's triples under shard-local ids, in input order.
    pub triples: Vec<Triple>,
}

/// Encodes one chunk of term triples against a fresh shard dictionary.
/// This is the per-worker step of the parallel encode wave.
pub fn encode_shard(terms: Vec<(Term, Term, Term)>) -> EncodedShard {
    let mut dictionary = Dictionary::new();
    let mut triples = Vec::with_capacity(terms.len());
    for (s, p, o) in terms {
        let triple = Triple::new(
            dictionary.encode(s),
            dictionary.encode(p),
            dictionary.encode(o),
        );
        triples.push(triple);
    }
    EncodedShard {
        dictionary,
        triples,
    }
}

/// Merges shard dictionaries into one global dictionary, assigning final
/// dense ids in global first-occurrence order (the sequential order — see
/// the module docs), and returns one remap table per shard:
/// `remaps[shard][local_id.index()]` is the final [`TermId`].
///
/// The global index is sized once up front (the summed shard sizes bound
/// the distinct-term count), so the merge never rehashes mid-way.
pub fn merge_dictionaries(shards: Vec<Dictionary>) -> (Dictionary, Vec<Vec<TermId>>) {
    let upper_bound: usize = shards.iter().map(Dictionary::len).sum();
    let mut global = Dictionary::with_capacity(upper_bound);
    let remaps = shards
        .into_iter()
        .map(|shard| {
            shard
                .into_terms()
                .into_iter()
                .map(|term| global.encode(term))
                .collect()
        })
        .collect();
    (global, remaps)
}

/// Rewrites a shard's local-id triples to final global ids through its
/// remap table from [`merge_dictionaries`]. Runs independently per shard.
pub fn remap_triples(triples: &[Triple], remap: &[TermId]) -> Vec<Triple> {
    triples
        .iter()
        .map(|t| {
            Triple::new(
                remap[t.subject.index()],
                remap[t.property.index()],
                remap[t.object.index()],
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(text: impl Into<String>) -> Term {
        Term::iri(text)
    }

    #[test]
    fn split_preserves_text_and_lines() {
        let text: String = (0..40)
            .map(|i| format!("<http://example.org/s{i}> <p> <o{}> .\n", i % 5))
            .collect();
        for chunks in [1, 2, 3, 7, 100] {
            let split = split_ntriples(&text, chunks);
            assert!(split.len() <= chunks.max(1));
            let rejoined: String = split.iter().map(|c| c.text).collect();
            assert_eq!(rejoined, text, "chunks={chunks}");
            // Every chunk starts where the previous left off, line-wise.
            let mut expected_line = 1;
            for chunk in &split {
                assert_eq!(chunk.first_line, expected_line, "chunks={chunks}");
                assert!(chunk.text.ends_with('\n') || chunk.text.is_empty());
                expected_line += chunk.text.bytes().filter(|&b| b == b'\n').count();
            }
        }
    }

    #[test]
    fn split_handles_empty_and_unterminated_input() {
        assert!(split_ntriples("", 4).is_empty());
        let no_newline = "<a> <p> <b> .";
        let split = split_ntriples(no_newline, 4);
        let rejoined: String = split.iter().map(|c| c.text).collect();
        assert_eq!(rejoined, no_newline);
    }

    #[test]
    fn chunk_parse_errors_report_global_lines() {
        let text = "<a> <p> <b> .\n<a> <p> <c> .\nbroken line\n<a> <p> <d> .\n";
        let split = split_ntriples(text, 4);
        let error = split
            .iter()
            .filter_map(|&c| parse_chunk(c).err())
            .next()
            .expect("one chunk fails");
        assert_eq!(error.line, 3);
    }

    #[test]
    fn merge_matches_sequential_encoding_order() {
        // Terms repeat across chunk boundaries on purpose.
        let stream: Vec<Term> = ["a", "b", "a", "c", "b", "d", "e", "c", "f", "a"]
            .iter()
            .map(|t| iri(*t))
            .collect();
        let mut sequential = Dictionary::new();
        let sequential_ids: Vec<TermId> = stream
            .iter()
            .map(|t| sequential.encode(t.clone()))
            .collect();

        for split_at in [1, 3, 5, 9] {
            let (left, right) = stream.split_at(split_at);
            let shard = |terms: &[Term]| {
                let mut d = Dictionary::new();
                let ids: Vec<TermId> = terms.iter().map(|t| d.encode(t.clone())).collect();
                (d, ids)
            };
            let (d0, ids0) = shard(left);
            let (d1, ids1) = shard(right);
            let (global, remaps) = merge_dictionaries(vec![d0, d1]);
            assert_eq!(global, sequential, "split_at={split_at}");
            let merged_ids: Vec<TermId> = ids0
                .iter()
                .map(|id| remaps[0][id.index()])
                .chain(ids1.iter().map(|id| remaps[1][id.index()]))
                .collect();
            assert_eq!(merged_ids, sequential_ids, "split_at={split_at}");
        }
    }

    #[test]
    fn encode_and_remap_round_trip() {
        let terms = vec![
            (iri("s1"), iri("p"), iri("o1")),
            (iri("s2"), iri("p"), Term::literal("x")),
            (iri("s1"), iri("q"), iri("s2")),
        ];
        let shard = encode_shard(terms.clone());
        assert_eq!(shard.triples.len(), 3);
        assert_eq!(shard.dictionary.len(), 6);
        let (global, remaps) = merge_dictionaries(vec![shard.dictionary.clone()]);
        let remapped = remap_triples(&shard.triples, &remaps[0]);
        // A single shard merges onto itself: ids unchanged.
        assert_eq!(global, shard.dictionary);
        assert_eq!(remapped, shard.triples);
        for ((s, p, o), triple) in terms.iter().zip(&remapped) {
            assert_eq!(global.decode(triple.subject), Some(s));
            assert_eq!(global.decode(triple.property), Some(p));
            assert_eq!(global.decode(triple.object), Some(o));
        }
    }

    #[test]
    fn empty_shards_merge_cleanly() {
        let (global, remaps) = merge_dictionaries(vec![Dictionary::new(), Dictionary::new()]);
        assert!(global.is_empty());
        assert_eq!(remaps, vec![Vec::<TermId>::new(), Vec::new()]);
        assert!(remap_triples(&[], &[]).is_empty());
    }
}
