//! RDF data model and in-memory storage substrate for the CliqueSquare
//! reproduction.
//!
//! The crate provides:
//!
//! * [`Term`] / [`TermId`] — RDF terms (IRIs and literals) and their
//!   dictionary-encoded identifiers,
//! * [`Dictionary`] — a bidirectional string dictionary used to encode terms
//!   into compact integer identifiers,
//! * [`Triple`] — a dictionary-encoded RDF triple,
//! * [`Graph`] — an indexed, in-memory triple store with per-position and
//!   per-property access paths,
//! * [`ntriples`] — a minimal N-Triples style reader/writer,
//! * [`lubm`] — a deterministic LUBM-like synthetic data generator standing
//!   in for the LUBM10k dataset used in the paper's evaluation,
//! * [`sp2b`] — a deterministic SP²Bench/DBLP-like generator with power-law
//!   author/journal skew and long citation chains,
//! * [`stats`] — catalog statistics (per-predicate counts and distincts,
//!   characteristic sets) backing the engine's selectivity estimates,
//! * [`load`] — sharded bulk-load primitives (chunk splitting, per-shard
//!   dictionary encoding, order-preserving merge) whose parallel
//!   orchestration lives in `cliquesquare_mapreduce::load`.
//!
//! # Example
//!
//! ```
//! use cliquesquare_rdf::{Graph, Term};
//!
//! let mut graph = Graph::new();
//! graph.insert_terms(
//!     Term::iri("http://example.org/alice"),
//!     Term::iri("http://example.org/knows"),
//!     Term::iri("http://example.org/bob"),
//! );
//! assert_eq!(graph.len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dictionary;
pub mod graph;
pub mod load;
pub mod lubm;
pub mod ntriples;
pub mod sp2b;
pub mod stats;
pub mod term;
pub mod triple;

pub use dictionary::Dictionary;
pub use graph::{Graph, GraphStats};
pub use lubm::{LubmGenerator, LubmScale};
pub use sp2b::{Sp2bGenerator, Sp2bScale};
pub use stats::{CharacteristicSet, GraphStatistics, PredicateStats, StatsFragment};
pub use term::{Term, TermId};
pub use triple::{Triple, TriplePosition};
