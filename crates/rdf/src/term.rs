//! RDF terms and their dictionary-encoded identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dictionary-encoded identifier for an RDF term.
///
/// Identifiers are dense, starting at zero, and are only meaningful relative
/// to the [`Dictionary`](crate::Dictionary) that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TermId(pub u32);

impl TermId {
    /// Returns the identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An RDF term: either an IRI (URI reference) or a literal constant.
///
/// Blank nodes are treated as IRIs with a `_:` prefix, matching the paper's
/// remark that all results carry over to blank nodes unchanged.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Term {
    /// An IRI such as `http://example.org/person/1`.
    Iri(String),
    /// A literal constant such as `"University3"`.
    Literal(String),
}

impl Term {
    /// Creates an IRI term.
    pub fn iri(value: impl Into<String>) -> Self {
        Term::Iri(value.into())
    }

    /// Creates a literal term.
    pub fn literal(value: impl Into<String>) -> Self {
        Term::Literal(value.into())
    }

    /// Returns `true` if the term is an IRI.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// Returns `true` if the term is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    /// Returns the lexical value of the term (IRI text or literal text).
    pub fn value(&self) -> &str {
        match self {
            Term::Iri(v) | Term::Literal(v) => v,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(v) => write!(f, "<{v}>"),
            Term::Literal(v) => write!(f, "\"{v}\""),
        }
    }
}

/// Well-known IRIs used throughout the LUBM workload and the partitioner.
pub mod vocab {
    /// The `rdf:type` property IRI, split by object value in the partitioner.
    pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    /// Namespace prefix of the LUBM university benchmark ontology.
    pub const UB: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#";

    /// Expands a `ub:` prefixed name into a full IRI.
    pub fn ub(local: &str) -> String {
        format!("{UB}{local}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_and_literal_constructors() {
        let i = Term::iri("http://x.org/a");
        let l = Term::literal("C1");
        assert!(i.is_iri());
        assert!(!i.is_literal());
        assert!(l.is_literal());
        assert!(!l.is_iri());
        assert_eq!(i.value(), "http://x.org/a");
        assert_eq!(l.value(), "C1");
    }

    #[test]
    fn display_formats() {
        assert_eq!(Term::iri("a").to_string(), "<a>");
        assert_eq!(Term::literal("b").to_string(), "\"b\"");
        assert_eq!(TermId(7).to_string(), "#7");
    }

    #[test]
    fn term_ordering_is_total() {
        let mut terms = vec![
            Term::literal("z"),
            Term::iri("a"),
            Term::iri("b"),
            Term::literal("a"),
        ];
        terms.sort();
        assert_eq!(
            terms,
            vec![
                Term::iri("a"),
                Term::iri("b"),
                Term::literal("a"),
                Term::literal("z"),
            ]
        );
    }

    #[test]
    fn vocab_expansion() {
        assert_eq!(
            vocab::ub("worksFor"),
            "http://swat.cse.lehigh.edu/onto/univ-bench.owl#worksFor"
        );
        assert!(vocab::RDF_TYPE.ends_with("#type"));
    }

    #[test]
    fn term_id_index() {
        assert_eq!(TermId(42).index(), 42);
    }
}
