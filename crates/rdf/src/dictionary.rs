//! Bidirectional dictionary encoding of RDF terms.

use crate::term::{Term, TermId};
use serde::{Deserialize, Serialize};

/// Initial capacity of the hash index (slots, always a power of two).
const INITIAL_INDEX_CAPACITY: usize = 16;

/// A bidirectional dictionary mapping [`Term`]s to dense [`TermId`]s.
///
/// Dictionary encoding is the standard technique used by RDF stores (and by
/// the CliqueSquare prototype) to replace long IRI/literal strings with
/// compact integers before join processing. Identifiers are assigned in
/// insertion order starting from zero.
///
/// Every term's text is stored **once**, in the id-ordered `terms` table;
/// the reverse direction is an open-addressing hash index whose slots hold
/// only term ids (id-keyed probing: a probe compares the query term against
/// `terms[id]`). The historical `HashMap<Term, TermId>` design stored every
/// string twice, doubling the dictionary's memory footprint — see
/// [`Dictionary::heap_bytes`] and the memory regression test.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Dictionary {
    terms: Vec<Term>,
    /// Open-addressing (linear probing) index: each slot stores `id + 1`,
    /// `0` meaning empty. The capacity is a power of two.
    index: Vec<u32>,
}

/// A stable 64-bit hash of a term (FNV-1a over a kind tag plus the text),
/// independent of the process and platform.
fn term_hash(term: &Term) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let tag: u8 = if term.is_iri() { 1 } else { 2 };
    hash ^= u64::from(tag);
    hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    for &byte in term.value().as_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the number of distinct terms stored in the dictionary.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if the dictionary contains no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The slot `term` hashes to, or the empty slot where it would be
    /// inserted. The index is never full (load factor is kept below 7/8).
    fn probe(&self, term: &Term) -> usize {
        debug_assert!(self.index.len().is_power_of_two());
        let mask = self.index.len() - 1;
        let mut slot = (term_hash(term) as usize) & mask;
        loop {
            match self.index[slot] {
                0 => return slot,
                stored => {
                    let id = TermId(stored - 1);
                    if self.terms[id.index()] == *term {
                        return slot;
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Doubles the index and re-inserts every id (terms are untouched).
    fn grow_index(&mut self) {
        let capacity = (self.index.len() * 2).max(INITIAL_INDEX_CAPACITY);
        self.index = vec![0; capacity];
        let mask = capacity - 1;
        for (position, term) in self.terms.iter().enumerate() {
            let mut slot = (term_hash(term) as usize) & mask;
            while self.index[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            self.index[slot] = position as u32 + 1;
        }
    }

    /// Encodes `term`, inserting it if it was not present, and returns its id.
    pub fn encode(&mut self, term: Term) -> TermId {
        if self.index.is_empty() || (self.terms.len() + 1) * 8 > self.index.len() * 7 {
            self.grow_index();
        }
        let slot = self.probe(&term);
        if self.index[slot] != 0 {
            return TermId(self.index[slot] - 1);
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("dictionary overflow"));
        self.index[slot] = id.0 + 1;
        self.terms.push(term);
        id
    }

    /// Looks up the id of `term` without inserting it.
    pub fn lookup(&self, term: &Term) -> Option<TermId> {
        if self.index.is_empty() {
            return None;
        }
        match self.index[self.probe(term)] {
            0 => None,
            stored => Some(TermId(stored - 1)),
        }
    }

    /// Decodes an id back into its term. Returns `None` for unknown ids.
    pub fn decode(&self, id: TermId) -> Option<&Term> {
        self.terms.get(id.index())
    }

    /// Iterates over all `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t))
    }

    /// Estimated heap footprint in bytes: the term table (one `Term` slot
    /// plus the text bytes per term, stored once) plus the 4-byte id slots
    /// of the hash index. String capacity is approximated by its length.
    pub fn heap_bytes(&self) -> usize {
        let term_slots = self.terms.capacity() * std::mem::size_of::<Term>();
        let text: usize = self.terms.iter().map(|t| t.value().len()).sum();
        let index = self.index.capacity() * std::mem::size_of::<u32>();
        term_slots + text + index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.encode(Term::iri("a"));
        let b = d.encode(Term::iri("b"));
        let a2 = d.encode(Term::iri("a"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn decode_round_trips() {
        let mut d = Dictionary::new();
        let terms = [
            Term::iri("http://x/1"),
            Term::literal("hello"),
            Term::iri("http://x/2"),
        ];
        let ids: Vec<_> = terms.iter().cloned().map(|t| d.encode(t)).collect();
        for (t, id) in terms.iter().zip(&ids) {
            assert_eq!(d.decode(*id), Some(t));
            assert_eq!(d.lookup(t), Some(*id));
        }
        assert_eq!(d.decode(TermId(99)), None);
    }

    #[test]
    fn ids_are_dense_in_insertion_order() {
        let mut d = Dictionary::new();
        for i in 0..100u32 {
            let id = d.encode(Term::iri(format!("t{i}")));
            assert_eq!(id, TermId(i));
        }
        let collected: Vec<_> = d.iter().map(|(id, _)| id.0).collect();
        assert_eq!(collected, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn iri_and_literal_with_same_text_are_distinct() {
        let mut d = Dictionary::new();
        let i = d.encode(Term::iri("v"));
        let l = d.encode(Term::literal("v"));
        assert_ne!(i, l);
    }

    #[test]
    fn empty_dictionary() {
        let d = Dictionary::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.lookup(&Term::iri("x")), None);
    }

    #[test]
    fn survives_many_growth_cycles() {
        let mut d = Dictionary::new();
        let ids: Vec<TermId> = (0..10_000u32)
            .map(|i| d.encode(Term::iri(format!("http://example.org/resource/{i}"))))
            .collect();
        assert_eq!(d.len(), 10_000);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(
                d.lookup(&Term::iri(format!("http://example.org/resource/{i}"))),
                Some(*id)
            );
        }
        // Re-encoding never mints a new id.
        assert_eq!(
            d.encode(Term::iri("http://example.org/resource/42")),
            ids[42]
        );
        assert_eq!(d.len(), 10_000);
    }

    /// Memory-footprint regression test: the term text must be stored once.
    ///
    /// The historical layout (`Vec<Term>` + `HashMap<Term, TermId>`) owned
    /// every string twice, so its footprint was ≥ 2× the text bytes before
    /// any hash-table overhead. The id-keyed probing index keeps the
    /// footprint below 1.5× the text bytes for realistically sized IRIs.
    #[test]
    fn terms_are_stored_once() {
        let mut d = Dictionary::new();
        let mut text_bytes = 0usize;
        for i in 0..4096u32 {
            let iri = format!(
                "http://swat.cse.lehigh.edu/onto/univ-bench.owl#Department{i}/University{i}.edu/GraduateStudent{i}"
            );
            text_bytes += iri.len();
            d.encode(Term::iri(iri));
        }
        let heap = d.heap_bytes();
        assert!(heap > text_bytes, "footprint must include the text itself");
        assert!(
            heap < text_bytes + text_bytes / 2,
            "dictionary stores term text more than once: {heap} bytes of heap \
             for {text_bytes} bytes of text"
        );
    }
}
