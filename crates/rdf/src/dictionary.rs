//! Bidirectional dictionary encoding of RDF terms.

use crate::term::{Term, TermId};
use serde::{Deserialize, Serialize};

/// Initial capacity of the hash index (slots, always a power of two).
const INITIAL_INDEX_CAPACITY: usize = 16;

/// A bidirectional dictionary mapping [`Term`]s to dense [`TermId`]s.
///
/// Dictionary encoding is the standard technique used by RDF stores (and by
/// the CliqueSquare prototype) to replace long IRI/literal strings with
/// compact integers before join processing. Identifiers are assigned in
/// insertion order starting from zero.
///
/// Every term's text is stored **once**, in the id-ordered `terms` table;
/// the reverse direction is an open-addressing hash index whose slots hold
/// only term ids (id-keyed probing: a probe compares the query term against
/// `terms[id]`). The historical `HashMap<Term, TermId>` design stored every
/// string twice, doubling the dictionary's memory footprint — see
/// [`Dictionary::heap_bytes`] and the memory regression test.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Dictionary {
    terms: Vec<Term>,
    /// Open-addressing (linear probing) index: each slot stores `id + 1`,
    /// `0` meaning empty. The capacity is a power of two.
    index: Vec<u32>,
}

/// Two dictionaries are equal when they assign the same ids to the same
/// terms, i.e. their id-ordered term tables are equal. The hash index is an
/// acceleration structure whose slot layout depends on the growth history
/// (a bulk-loaded dictionary pre-sized with [`Dictionary::with_capacity`]
/// and an organically grown one can index the same mapping differently), so
/// it does not participate in equality.
impl PartialEq for Dictionary {
    fn eq(&self, other: &Self) -> bool {
        self.terms == other.terms
    }
}

impl Eq for Dictionary {}

/// A stable 64-bit hash of a term (FNV-1a over a kind tag plus the text),
/// independent of the process and platform.
///
/// Public because the partitioned dictionary merge
/// ([`crate::load::partition_merge_plan`]) hash-partitions the term space
/// with the *same* function the index probes with, so per-partition
/// deduplication and final index construction agree on every term.
pub fn term_hash(term: &Term) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let tag: u8 = if term.is_iri() { 1 } else { 2 };
    hash ^= u64::from(tag);
    hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    for &byte in term.value().as_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a dictionary pre-sized for `capacity` distinct terms.
    ///
    /// The open-addressing index is allocated once at a size that keeps the
    /// load factor below 7/8 for `capacity` terms, so a bulk load of up to
    /// that many terms never pays a mid-load rehash (see
    /// [`reserve`](Self::reserve) and the `reserve_avoids_rehashing` test).
    pub fn with_capacity(capacity: usize) -> Self {
        let mut dictionary = Self {
            terms: Vec::with_capacity(capacity),
            index: Vec::new(),
        };
        dictionary.rebuild_index(Self::slots_for(capacity));
        dictionary
    }

    /// Ensures the dictionary can take `additional` more distinct terms
    /// without growing: the term table reserves the extra slots and the hash
    /// index is rebuilt once at the final size (instead of paying a
    /// rehash-per-doubling while the terms stream in).
    pub fn reserve(&mut self, additional: usize) {
        self.terms.reserve(additional);
        let slots = Self::slots_for(self.terms.len() + additional);
        if slots > self.index.len() {
            self.rebuild_index(slots);
        }
    }

    /// The smallest power-of-two slot count keeping `terms` entries below
    /// the 7/8 load-factor ceiling.
    fn slots_for(terms: usize) -> usize {
        let mut slots = INITIAL_INDEX_CAPACITY;
        while (terms + 1) * 8 > slots * 7 {
            slots *= 2;
        }
        slots
    }

    /// Returns the number of distinct terms stored in the dictionary.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if the dictionary contains no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The slot `term` hashes to, or the empty slot where it would be
    /// inserted. The index is never full (load factor is kept below 7/8).
    fn probe(&self, term: &Term) -> usize {
        debug_assert!(self.index.len().is_power_of_two());
        let mask = self.index.len() - 1;
        let mut slot = (term_hash(term) as usize) & mask;
        loop {
            match self.index[slot] {
                0 => return slot,
                stored => {
                    let id = TermId(stored - 1);
                    if self.terms[id.index()] == *term {
                        return slot;
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Doubles the index and re-inserts every id (terms are untouched).
    fn grow_index(&mut self) {
        self.rebuild_index((self.index.len() * 2).max(INITIAL_INDEX_CAPACITY));
    }

    /// Reallocates the index at `capacity` slots (a power of two) and
    /// re-inserts every id (terms are untouched).
    fn rebuild_index(&mut self, capacity: usize) {
        debug_assert!(capacity.is_power_of_two());
        self.index = vec![0; capacity];
        let mask = capacity - 1;
        for (position, term) in self.terms.iter().enumerate() {
            let mut slot = (term_hash(term) as usize) & mask;
            while self.index[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            self.index[slot] = position as u32 + 1;
        }
    }

    /// Encodes `term`, inserting it if it was not present, and returns its id.
    pub fn encode(&mut self, term: Term) -> TermId {
        if self.index.is_empty() || (self.terms.len() + 1) * 8 > self.index.len() * 7 {
            self.grow_index();
        }
        let slot = self.probe(&term);
        if self.index[slot] != 0 {
            return TermId(self.index[slot] - 1);
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("dictionary overflow"));
        self.index[slot] = id.0 + 1;
        self.terms.push(term);
        id
    }

    /// Looks up the id of `term` without inserting it.
    pub fn lookup(&self, term: &Term) -> Option<TermId> {
        if self.index.is_empty() {
            return None;
        }
        match self.index[self.probe(term)] {
            0 => None,
            stored => Some(TermId(stored - 1)),
        }
    }

    /// Decodes an id back into its term. Returns `None` for unknown ids.
    pub fn decode(&self, id: TermId) -> Option<&Term> {
        self.terms.get(id.index())
    }

    /// Iterates over all `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t))
    }

    /// Consumes the dictionary and returns its id-ordered term table
    /// (`table[id]` is the term of `TermId(id)`).
    ///
    /// This is the hand-off used by the bulk loader's merge pass: a shard
    /// dictionary's terms are moved — not cloned — into the global
    /// dictionary (see [`crate::load::merge_dictionaries`]).
    pub fn into_terms(self) -> Vec<Term> {
        self.terms
    }

    /// The id-ordered term table, borrowed: `terms()[id]` is the term of
    /// `TermId(id)`. The partitioned merge scans shard tables by position
    /// without consuming the shards.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Builds a dictionary directly from an id-ordered term table:
    /// `terms[i]` becomes `TermId(i)`. The caller guarantees the terms are
    /// distinct; the index is built once at its final size.
    pub fn from_id_ordered_terms(terms: Vec<Term>) -> Self {
        let mut dictionary = Self {
            terms,
            index: Vec::new(),
        };
        dictionary.rebuild_index(Self::slots_for(dictionary.terms.len()));
        dictionary
    }

    /// Like [`from_id_ordered_terms`](Self::from_id_ordered_terms) but with
    /// the terms' [`term_hash`] values supplied by the caller, so a merge
    /// that already hashed every term once (to partition the term space)
    /// never re-hashes the strings while building the final index.
    pub fn from_id_ordered_terms_with_hashes(terms: Vec<Term>, hashes: &[u64]) -> Self {
        assert_eq!(terms.len(), hashes.len());
        debug_assert!(terms
            .iter()
            .zip(hashes)
            .all(|(term, &hash)| term_hash(term) == hash));
        let capacity = Self::slots_for(terms.len());
        let mask = capacity - 1;
        let mut index = vec![0u32; capacity];
        for (position, &hash) in hashes.iter().enumerate() {
            let mut slot = (hash as usize) & mask;
            while index[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            index[slot] = position as u32 + 1;
        }
        Self { terms, index }
    }

    /// Estimated heap footprint in bytes: the term table (one `Term` slot
    /// plus the text bytes per term, stored once) plus the 4-byte id slots
    /// of the hash index. String capacity is approximated by its length.
    pub fn heap_bytes(&self) -> usize {
        let term_slots = self.terms.capacity() * std::mem::size_of::<Term>();
        let text: usize = self.terms.iter().map(|t| t.value().len()).sum();
        let index = self.index.capacity() * std::mem::size_of::<u32>();
        term_slots + text + index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.encode(Term::iri("a"));
        let b = d.encode(Term::iri("b"));
        let a2 = d.encode(Term::iri("a"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn decode_round_trips() {
        let mut d = Dictionary::new();
        let terms = [
            Term::iri("http://x/1"),
            Term::literal("hello"),
            Term::iri("http://x/2"),
        ];
        let ids: Vec<_> = terms.iter().cloned().map(|t| d.encode(t)).collect();
        for (t, id) in terms.iter().zip(&ids) {
            assert_eq!(d.decode(*id), Some(t));
            assert_eq!(d.lookup(t), Some(*id));
        }
        assert_eq!(d.decode(TermId(99)), None);
    }

    #[test]
    fn ids_are_dense_in_insertion_order() {
        let mut d = Dictionary::new();
        for i in 0..100u32 {
            let id = d.encode(Term::iri(format!("t{i}")));
            assert_eq!(id, TermId(i));
        }
        let collected: Vec<_> = d.iter().map(|(id, _)| id.0).collect();
        assert_eq!(collected, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn iri_and_literal_with_same_text_are_distinct() {
        let mut d = Dictionary::new();
        let i = d.encode(Term::iri("v"));
        let l = d.encode(Term::literal("v"));
        assert_ne!(i, l);
    }

    #[test]
    fn empty_dictionary() {
        let d = Dictionary::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.lookup(&Term::iri("x")), None);
    }

    #[test]
    fn survives_many_growth_cycles() {
        let mut d = Dictionary::new();
        let ids: Vec<TermId> = (0..10_000u32)
            .map(|i| d.encode(Term::iri(format!("http://example.org/resource/{i}"))))
            .collect();
        assert_eq!(d.len(), 10_000);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(
                d.lookup(&Term::iri(format!("http://example.org/resource/{i}"))),
                Some(*id)
            );
        }
        // Re-encoding never mints a new id.
        assert_eq!(
            d.encode(Term::iri("http://example.org/resource/42")),
            ids[42]
        );
        assert_eq!(d.len(), 10_000);
    }

    /// Bulk loads size the index once: after `with_capacity(n)` (or a
    /// matching `reserve`), encoding `n` terms never reallocates the index,
    /// so the open-addressing table is built exactly once instead of once
    /// per doubling.
    #[test]
    fn reserve_avoids_rehashing() {
        let n = 10_000;
        let mut presized = Dictionary::with_capacity(n);
        let slots_before = presized.index.len();
        for i in 0..n {
            presized.encode(Term::iri(format!("http://example.org/{i}")));
        }
        assert_eq!(presized.index.len(), slots_before, "with_capacity rehashed");

        let mut reserved = Dictionary::new();
        for i in 0..100 {
            reserved.encode(Term::iri(format!("http://example.org/{i}")));
        }
        reserved.reserve(n - reserved.len());
        let slots_before = reserved.index.len();
        for i in 0..n {
            reserved.encode(Term::iri(format!("http://example.org/{i}")));
        }
        assert_eq!(reserved.index.len(), slots_before, "reserve rehashed");

        // Same mapping as an organically grown dictionary.
        let mut grown = Dictionary::new();
        for i in 0..n {
            grown.encode(Term::iri(format!("http://example.org/{i}")));
        }
        assert_eq!(presized, grown);
        assert_eq!(reserved, grown);
    }

    #[test]
    fn with_capacity_zero_is_usable() {
        let mut d = Dictionary::with_capacity(0);
        assert_eq!(d.encode(Term::iri("a")), TermId(0));
        assert_eq!(d.lookup(&Term::iri("a")), Some(TermId(0)));
    }

    #[test]
    fn into_terms_returns_id_ordered_table() {
        let mut d = Dictionary::new();
        d.encode(Term::iri("a"));
        d.encode(Term::literal("b"));
        d.encode(Term::iri("a"));
        assert_eq!(d.into_terms(), vec![Term::iri("a"), Term::literal("b")]);
    }

    /// Equality is on the id → term mapping, not the index layout.
    #[test]
    fn equality_ignores_index_capacity() {
        let mut organic = Dictionary::new();
        let mut presized = Dictionary::with_capacity(4096);
        for i in 0..100 {
            organic.encode(Term::iri(format!("t{i}")));
            presized.encode(Term::iri(format!("t{i}")));
        }
        assert_ne!(organic.index.len(), presized.index.len());
        assert_eq!(organic, presized);
        presized.encode(Term::iri("extra"));
        assert_ne!(organic, presized);
    }

    /// An id-ordered table round-trips through the bulk constructors with
    /// the same mapping (and a working index) as organic insertion.
    #[test]
    fn from_id_ordered_terms_matches_organic_growth() {
        let mut organic = Dictionary::new();
        for i in 0..1000u32 {
            organic.encode(Term::iri(format!("http://example.org/{}", i % 700)));
            organic.encode(Term::literal(format!("lit{}", i % 300)));
        }
        let table = organic.clone().into_terms();
        let hashes: Vec<u64> = table.iter().map(term_hash).collect();

        let rebuilt = Dictionary::from_id_ordered_terms(table.clone());
        let hashed = Dictionary::from_id_ordered_terms_with_hashes(table.clone(), &hashes);
        assert_eq!(rebuilt, organic);
        assert_eq!(hashed, organic);
        for (i, term) in table.iter().enumerate() {
            assert_eq!(rebuilt.lookup(term), Some(TermId(i as u32)));
            assert_eq!(hashed.lookup(term), Some(TermId(i as u32)));
        }
        assert_eq!(hashed.lookup(&Term::iri("absent")), None);
    }

    /// Memory-footprint regression test: the term text must be stored once.
    ///
    /// The historical layout (`Vec<Term>` + `HashMap<Term, TermId>`) owned
    /// every string twice, so its footprint was ≥ 2× the text bytes before
    /// any hash-table overhead. The id-keyed probing index keeps the
    /// footprint below 1.5× the text bytes for realistically sized IRIs.
    #[test]
    fn terms_are_stored_once() {
        let mut d = Dictionary::new();
        let mut text_bytes = 0usize;
        for i in 0..4096u32 {
            let iri = format!(
                "http://swat.cse.lehigh.edu/onto/univ-bench.owl#Department{i}/University{i}.edu/GraduateStudent{i}"
            );
            text_bytes += iri.len();
            d.encode(Term::iri(iri));
        }
        let heap = d.heap_bytes();
        assert!(heap > text_bytes, "footprint must include the text itself");
        assert!(
            heap < text_bytes + text_bytes / 2,
            "dictionary stores term text more than once: {heap} bytes of heap \
             for {text_bytes} bytes of text"
        );
    }
}
