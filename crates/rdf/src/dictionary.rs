//! Bidirectional dictionary encoding of RDF terms.

use crate::term::{Term, TermId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A bidirectional dictionary mapping [`Term`]s to dense [`TermId`]s.
///
/// Dictionary encoding is the standard technique used by RDF stores (and by
/// the CliqueSquare prototype) to replace long IRI/literal strings with
/// compact integers before join processing. Identifiers are assigned in
/// insertion order starting from zero.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Dictionary {
    terms: Vec<Term>,
    ids: HashMap<Term, TermId>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the number of distinct terms stored in the dictionary.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if the dictionary contains no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Encodes `term`, inserting it if it was not present, and returns its id.
    pub fn encode(&mut self, term: Term) -> TermId {
        if let Some(&id) = self.ids.get(&term) {
            return id;
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("dictionary overflow"));
        self.ids.insert(term.clone(), id);
        self.terms.push(term);
        id
    }

    /// Looks up the id of `term` without inserting it.
    pub fn lookup(&self, term: &Term) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// Decodes an id back into its term. Returns `None` for unknown ids.
    pub fn decode(&self, id: TermId) -> Option<&Term> {
        self.terms.get(id.index())
    }

    /// Iterates over all `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.encode(Term::iri("a"));
        let b = d.encode(Term::iri("b"));
        let a2 = d.encode(Term::iri("a"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn decode_round_trips() {
        let mut d = Dictionary::new();
        let terms = [
            Term::iri("http://x/1"),
            Term::literal("hello"),
            Term::iri("http://x/2"),
        ];
        let ids: Vec<_> = terms.iter().cloned().map(|t| d.encode(t)).collect();
        for (t, id) in terms.iter().zip(&ids) {
            assert_eq!(d.decode(*id), Some(t));
            assert_eq!(d.lookup(t), Some(*id));
        }
        assert_eq!(d.decode(TermId(99)), None);
    }

    #[test]
    fn ids_are_dense_in_insertion_order() {
        let mut d = Dictionary::new();
        for i in 0..100u32 {
            let id = d.encode(Term::iri(format!("t{i}")));
            assert_eq!(id, TermId(i));
        }
        let collected: Vec<_> = d.iter().map(|(id, _)| id.0).collect();
        assert_eq!(collected, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn iri_and_literal_with_same_text_are_distinct() {
        let mut d = Dictionary::new();
        let i = d.encode(Term::iri("v"));
        let l = d.encode(Term::literal("v"));
        assert_ne!(i, l);
    }

    #[test]
    fn empty_dictionary() {
        let d = Dictionary::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.lookup(&Term::iri("x")), None);
    }
}
