//! Deterministic SP²Bench-like synthetic data generator.
//!
//! SP²Bench (Schmidt et al., ICDE 2009) models the DBLP bibliography:
//! unlike the star-shaped LUBM universities, its structure is dominated by
//! **power-law skew** (a few prolific authors and journals account for most
//! publications) and **long citation chains** (articles citing recent
//! articles citing recent articles …). Those are exactly the distributions
//! that stress shuffle skew handling and chain-shaped join plans, so this
//! generator complements [`crate::lubm`] as the second bulk-load and query
//! workload.
//!
//! The generator follows the same parallelization contract as the LUBM one:
//! data is produced in fixed-size **units** (batches of authors, then
//! batches of articles), each unit drawing from its own splitmix-seeded RNG
//! stream, so any subset of units can be generated on any worker and the
//! concatenation over `unit = 0..units()` reproduces
//! [`Sp2bGenerator::generate`] bit for bit (see
//! `cliquesquare_mapreduce::load::BulkLoader::load_sp2b`).
//!
//! Skew is injected by sampling author/journal indexes from a cubic
//! power-law transform of a uniform draw (index 0 is the most prolific);
//! citation targets are sampled with a strong recency bias (most references
//! go a handful of articles back), which strings consecutive articles into
//! long `dcterms:references` chains.

use crate::graph::Graph;
use crate::term::{vocab as core_vocab, Term};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// IRI constants of the SP²Bench/DBLP-flavoured vocabulary.
pub mod vocab {
    /// The `bench:` namespace of SP²Bench document classes.
    pub const BENCH: &str = "http://localhost/vocabulary/bench/";
    /// Dublin Core elements (`dc:`).
    pub const DC: &str = "http://purl.org/dc/elements/1.1/";
    /// Dublin Core terms (`dcterms:`).
    pub const DCTERMS: &str = "http://purl.org/dc/terms/";
    /// The SWRC ontology (`swrc:`).
    pub const SWRC: &str = "http://swrc.ontoware.org/ontology#";
    /// Friend-of-a-friend (`foaf:`).
    pub const FOAF: &str = "http://xmlns.com/foaf/0.1/";
}

/// Scale parameters of the SP²Bench-like generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sp2bScale {
    /// Number of articles.
    pub articles: usize,
    /// Size of the global author pool articles draw from (with power-law
    /// skew: author 0 is the most prolific).
    pub authors: usize,
    /// Number of journals articles are published in (power-law skewed).
    pub journals: usize,
    /// Authors or articles per generation unit (the parallel batch size).
    pub unit_size: usize,
    /// Maximum `dcterms:references` citations per article.
    pub max_references: usize,
    /// Random seed controlling all probabilistic choices.
    pub seed: u64,
}

impl Default for Sp2bScale {
    fn default() -> Self {
        Self {
            articles: 2000,
            authors: 500,
            journals: 40,
            unit_size: 100,
            max_references: 8,
            seed: 0xd61b_5eed,
        }
    }
}

impl Sp2bScale {
    /// A small scale suitable for unit tests (a couple thousand triples).
    pub fn tiny() -> Self {
        Self {
            articles: 200,
            authors: 60,
            journals: 10,
            unit_size: 50,
            max_references: 4,
            seed: 11,
        }
    }

    /// The default scale resized to `articles` articles; the author pool
    /// and journal count grow sublinearly, deepening the skew at scale.
    pub fn with_articles(articles: usize) -> Self {
        Self {
            articles,
            authors: (articles / 4).max(50),
            journals: (articles / 50).max(8),
            ..Self::default()
        }
    }

    /// A rough upper bound on the number of triples the scale generates.
    pub fn estimated_triples(&self) -> usize {
        // Two triples per author; per article: type, title, issued, journal,
        // pages, one or two creators, and up to max_references citations
        // (half on average).
        self.authors * 2 + self.articles * (7 + self.max_references.div_ceil(2))
    }
}

/// Deterministic SP²Bench-like data generator.
#[derive(Debug, Clone)]
pub struct Sp2bGenerator {
    scale: Sp2bScale,
}

impl Sp2bGenerator {
    /// Creates a generator with the given scale.
    pub fn new(scale: Sp2bScale) -> Self {
        Self { scale }
    }

    /// Returns the generator's scale.
    pub fn scale(&self) -> &Sp2bScale {
        &self.scale
    }

    /// The number of generation units: author batches first, then article
    /// batches, each covering `unit_size` entities.
    pub fn units(&self) -> usize {
        self.author_units() + self.scale.articles.div_ceil(self.scale.unit_size.max(1))
    }

    fn author_units(&self) -> usize {
        self.scale.authors.div_ceil(self.scale.unit_size.max(1))
    }

    /// Generates the dataset into a fresh [`Graph`].
    pub fn generate(&self) -> Graph {
        let mut graph = Graph::new();
        self.generate_into(&mut graph);
        graph
    }

    /// Generates the dataset into an existing graph.
    pub fn generate_into(&self, graph: &mut Graph) {
        for unit in 0..self.units() {
            for (s, p, o) in self.unit_triples(unit) {
                graph.insert_terms(s, p, o);
            }
        }
    }

    /// Generates all triples of one unit, in deterministic emission order.
    pub fn unit_triples(&self, unit: usize) -> Vec<(Term, Term, Term)> {
        let mut out = Vec::new();
        self.unit_triples_into(unit, &mut out);
        out
    }

    /// The RNG seed of unit `u`: a splitmix64-style mix of the scale seed
    /// and the unit number, so every unit draws from an independent,
    /// platform-stable stream.
    fn unit_seed(&self, unit: usize) -> u64 {
        let mut z = self
            .scale
            .seed
            .wrapping_add((unit as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Like [`unit_triples`](Self::unit_triples), but appends into a
    /// caller-supplied buffer (the streaming loader's recycled-buffer
    /// entry point).
    pub fn unit_triples_into(&self, unit: usize, out: &mut Vec<(Term, Term, Term)>) {
        let s = &self.scale;
        let unit_size = s.unit_size.max(1);
        let author_units = self.author_units();
        if unit < author_units {
            let start = unit * unit_size;
            let end = ((unit + 1) * unit_size).min(s.authors);
            for a in start..end {
                let person = author_iri(a);
                out.push((
                    person.clone(),
                    Term::iri(core_vocab::RDF_TYPE),
                    Term::iri(format!("{}Person", vocab::FOAF)),
                ));
                out.push((
                    person,
                    Term::iri(format!("{}name", vocab::FOAF)),
                    Term::literal(format!("Author {a}")),
                ));
            }
            return;
        }

        let mut rng = StdRng::seed_from_u64(self.unit_seed(unit));
        let batch = unit - author_units;
        let start = batch * unit_size;
        let end = ((batch + 1) * unit_size).min(s.articles);

        let rdf_type = Term::iri(core_vocab::RDF_TYPE);
        let c_article = Term::iri(format!("{}Article", vocab::BENCH));
        let p_title = Term::iri(format!("{}title", vocab::DC));
        let p_creator = Term::iri(format!("{}creator", vocab::DC));
        let p_issued = Term::iri(format!("{}issued", vocab::DCTERMS));
        let p_references = Term::iri(format!("{}references", vocab::DCTERMS));
        let p_journal = Term::iri(format!("{}journal", vocab::SWRC));
        let p_pages = Term::iri(format!("{}pages", vocab::SWRC));

        for i in start..end {
            let article = article_iri(i);
            out.push((article.clone(), rdf_type.clone(), c_article.clone()));
            out.push((
                article.clone(),
                p_title.clone(),
                Term::literal(format!("Article {i}")),
            ));
            // Publication years drift forward with the article index, so a
            // citation to a nearby earlier article is a citation to a
            // recent year — the DBLP recency pattern.
            let year = 1950 + i * 60 / s.articles.max(1);
            out.push((
                article.clone(),
                p_issued.clone(),
                Term::literal(format!("{year}")),
            ));
            out.push((
                article.clone(),
                p_journal.clone(),
                journal_iri(power_law(&mut rng, s.journals)),
            ));
            out.push((
                article.clone(),
                p_pages.clone(),
                Term::literal(format!("{}", 1 + rng.gen_range(0..40))),
            ));
            // One or two creators from the skewed author pool; the second
            // is offset from the first so it is always distinct.
            let first = power_law(&mut rng, s.authors);
            out.push((article.clone(), p_creator.clone(), author_iri(first)));
            if s.authors > 1 && rng.gen_bool(0.5) {
                let offset = 1 + power_law(&mut rng, s.authors - 1);
                let second = (first + offset) % s.authors;
                out.push((article.clone(), p_creator.clone(), author_iri(second)));
            }
            // Recency-biased citations: most references reach only a few
            // articles back, chaining consecutive articles together.
            let references = rng.gen_range(0..s.max_references.min(i) + 1);
            let mut cited: Vec<usize> = Vec::with_capacity(references);
            for _ in 0..references {
                let gap = 1 + (unit_float(&mut rng).powi(4) * 16.0) as usize;
                if gap > i {
                    continue;
                }
                let target = i - gap;
                if !cited.contains(&target) {
                    cited.push(target);
                    out.push((article.clone(), p_references.clone(), article_iri(target)));
                }
            }
        }
    }
}

fn article_iri(i: usize) -> Term {
    Term::iri(format!("http://dblp.example.org/article/{i}"))
}

fn author_iri(a: usize) -> Term {
    Term::iri(format!("http://dblp.example.org/person/{a}"))
}

fn journal_iri(j: usize) -> Term {
    Term::iri(format!("http://dblp.example.org/journal/{j}"))
}

/// A uniform draw in `[0, 1)` built from the RNG's raw 64-bit output (the
/// vendored `rand` has no float sampling).
fn unit_float(rng: &mut StdRng) -> f64 {
    (rng.gen::<u64>() >> 11) as f64 / (1u64 << 53) as f64
}

/// A power-law-skewed index in `[0, n)`: the cubic transform concentrates
/// mass near zero, so low indexes (prolific authors, major journals) are
/// drawn far more often than the tail.
fn power_law(rng: &mut StdRng, n: usize) -> usize {
    let u = unit_float(rng);
    ((n as f64 * u * u * u) as usize).min(n.saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let g1 = Sp2bGenerator::new(Sp2bScale::tiny()).generate();
        let g2 = Sp2bGenerator::new(Sp2bScale::tiny()).generate();
        assert_eq!(g1.triples(), g2.triples());
        assert!(!g1.is_empty());
    }

    #[test]
    fn unit_chunks_concatenate_to_generate() {
        let generator = Sp2bGenerator::new(Sp2bScale::tiny());
        let mut chunked = Graph::new();
        let mut buffer = Vec::new();
        for unit in 0..generator.units() {
            generator.unit_triples_into(unit, &mut buffer);
            for (s, p, o) in buffer.drain(..) {
                chunked.insert_terms(s, p, o);
            }
        }
        assert_eq!(chunked, generator.generate());
    }

    #[test]
    fn different_seeds_differ() {
        let mut scale = Sp2bScale::tiny();
        let g1 = Sp2bGenerator::new(scale).generate();
        scale.seed += 1;
        let g2 = Sp2bGenerator::new(scale).generate();
        assert_ne!(g1.triples(), g2.triples());
    }

    #[test]
    fn scale_estimate_is_close() {
        let scale = Sp2bScale::default();
        let actual = Sp2bGenerator::new(scale).generate().len();
        let estimate = scale.estimated_triples();
        assert!(
            actual <= estimate && actual * 2 >= estimate,
            "estimate {estimate} too far from actual {actual}"
        );
    }

    /// The author distribution must be genuinely skewed: the most prolific
    /// author's `dc:creator` in-degree dwarfs the mean.
    #[test]
    fn author_distribution_is_power_law_skewed() {
        let g = Sp2bGenerator::new(Sp2bScale::default()).generate();
        let p_creator = g
            .lookup(&Term::iri(format!("{}creator", vocab::DC)))
            .expect("creator property present");
        let mut counts = std::collections::HashMap::new();
        for triple in g.match_pattern(None, Some(p_creator), None) {
            *counts.entry(triple.object).or_insert(0usize) += 1;
        }
        let total: usize = counts.values().sum();
        let max = *counts.values().max().unwrap();
        let mean = total / counts.len().max(1);
        assert!(
            max >= mean * 4,
            "no skew: max in-degree {max} vs mean {mean}"
        );
    }

    /// Citations must chain: some article references an article that itself
    /// references another (the shape SP²Bench chain queries walk).
    #[test]
    fn citations_form_chains() {
        let g = Sp2bGenerator::new(Sp2bScale::tiny()).generate();
        let p_references = g
            .lookup(&Term::iri(format!("{}references", vocab::DCTERMS)))
            .expect("references property present");
        let sources: std::collections::HashSet<_> = g
            .match_pattern(None, Some(p_references), None)
            .map(|t| t.subject)
            .collect();
        let chained = g
            .match_pattern(None, Some(p_references), None)
            .filter(|t| sources.contains(&t.object))
            .count();
        assert!(chained > 10, "only {chained} two-hop citation links");
    }

    #[test]
    fn larger_scale_generates_more_triples() {
        let small = Sp2bGenerator::new(Sp2bScale::with_articles(200)).generate();
        let big = Sp2bGenerator::new(Sp2bScale::with_articles(1000)).generate();
        assert!(big.len() > 2 * small.len());
    }
}
