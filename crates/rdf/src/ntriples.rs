//! Minimal N-Triples style reader and writer.
//!
//! The format supported is a pragmatic subset of N-Triples sufficient for the
//! benchmark workloads: one triple per line, `<iri>` for IRIs, `"text"` for
//! literals, terminated by an optional ` .`, `#`-prefixed comment lines and
//! blank lines are ignored.

use crate::graph::Graph;
use crate::term::Term;
use std::fmt;

/// An error raised while parsing an N-Triples line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human readable description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a single term token (`<iri>` or `"literal"`).
fn parse_term(token: &str, line: usize) -> Result<Term, ParseError> {
    if let Some(inner) = token.strip_prefix('<').and_then(|t| t.strip_suffix('>')) {
        Ok(Term::iri(inner))
    } else if let Some(inner) = token.strip_prefix('"').and_then(|t| t.strip_suffix('"')) {
        Ok(Term::literal(inner))
    } else {
        Err(ParseError {
            line,
            message: format!("cannot parse term token {token:?}"),
        })
    }
}

/// Splits an N-Triples line into its three term tokens.
fn tokenize(line: &str, line_no: usize) -> Result<Option<[String; 3]>, ParseError> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let trimmed = trimmed.strip_suffix('.').unwrap_or(trimmed).trim_end();

    let mut tokens = Vec::with_capacity(3);
    let mut rest = trimmed;
    while !rest.is_empty() {
        rest = rest.trim_start();
        if rest.is_empty() {
            break;
        }
        let (token, remaining) = if rest.starts_with('<') {
            match rest.find('>') {
                Some(pos) => (&rest[..=pos], &rest[pos + 1..]),
                None => {
                    return Err(ParseError {
                        line: line_no,
                        message: "unterminated IRI".to_string(),
                    })
                }
            }
        } else if let Some(tail) = rest.strip_prefix('"') {
            match tail.find('"') {
                Some(pos) => (&rest[..pos + 2], &rest[pos + 2..]),
                None => {
                    return Err(ParseError {
                        line: line_no,
                        message: "unterminated literal".to_string(),
                    })
                }
            }
        } else {
            let pos = rest.find(char::is_whitespace).unwrap_or(rest.len());
            (&rest[..pos], &rest[pos..])
        };
        tokens.push(token.to_string());
        rest = remaining;
    }

    if tokens.len() != 3 {
        return Err(ParseError {
            line: line_no,
            message: format!("expected 3 terms, found {}", tokens.len()),
        });
    }
    Ok(Some([tokens.remove(0), tokens.remove(0), tokens.remove(0)]))
}

/// Parses N-Triples text into a list of term triples.
pub fn parse(text: &str) -> Result<Vec<(Term, Term, Term)>, ParseError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if let Some([s, p, o]) = tokenize(line, line_no)? {
            out.push((
                parse_term(&s, line_no)?,
                parse_term(&p, line_no)?,
                parse_term(&o, line_no)?,
            ));
        }
    }
    Ok(out)
}

/// Parses N-Triples text directly into a [`Graph`].
pub fn parse_into_graph(text: &str) -> Result<Graph, ParseError> {
    let mut graph = Graph::new();
    for (s, p, o) in parse(text)? {
        graph.insert_terms(s, p, o);
    }
    Ok(graph)
}

/// Serializes a graph back to N-Triples text (one line per triple).
pub fn serialize(graph: &Graph) -> String {
    let mut out = String::new();
    for triple in graph.triples() {
        let s = graph.decode(triple.subject).expect("dangling subject id");
        let p = graph.decode(triple.property).expect("dangling property id");
        let o = graph.decode(triple.object).expect("dangling object id");
        out.push_str(&format!("{s} {p} {o} .\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_triples() {
        let text = "<a> <p> <b> .\n<a> <q> \"C1\" .\n";
        let triples = parse(text).unwrap();
        assert_eq!(triples.len(), 2);
        assert_eq!(triples[0].0, Term::iri("a"));
        assert_eq!(triples[1].2, Term::literal("C1"));
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# header\n\n<a> <p> <b>\n   \n# trailing\n";
        assert_eq!(parse(text).unwrap().len(), 1);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("<a> <p>").is_err());
        assert!(parse("<a> <p> <b> <c>").is_err());
        assert!(parse("<a <p> <b>").is_err());
        assert!(parse("<a> <p> \"unterminated").is_err());
        let err = parse("plain tokens here").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn literal_with_spaces() {
        let triples = parse("<a> <name> \"University 3\" .").unwrap();
        assert_eq!(triples[0].2, Term::literal("University 3"));
    }

    #[test]
    fn round_trip_through_graph() {
        let text = "<s1> <p1> <o1> .\n<s1> <p2> \"lit\" .\n<s2> <p1> <s1> .\n";
        let graph = parse_into_graph(text).unwrap();
        assert_eq!(graph.len(), 3);
        let serialized = serialize(&graph);
        let reparsed = parse_into_graph(&serialized).unwrap();
        assert_eq!(reparsed.len(), graph.len());
        assert_eq!(serialize(&reparsed), serialized);
    }
}
