//! Minimal N-Triples style reader and writer.
//!
//! The format supported is a pragmatic subset of N-Triples sufficient for the
//! benchmark workloads: one triple per line, `<iri>` for IRIs, `"text"` for
//! literals, terminated by an optional ` .`, `#`-prefixed comment lines and
//! blank lines are ignored. Literals support the N-Triples string escapes
//! `\"`, `\\`, `\n`, `\r`, `\t` and `\uXXXX`, and the writer emits them, so
//! any graph round-trips through [`serialize`] / [`parse`] losslessly.

use crate::graph::Graph;
use crate::term::Term;
use std::fmt;

/// An error raised while parsing an N-Triples line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human readable description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl ParseError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }
}

/// Decodes the N-Triples string escapes inside a literal's raw text
/// (the content between the quotes, escapes still encoded).
fn unescape_literal(raw: &str, line: usize) -> Result<String, ParseError> {
    if !raw.contains('\\') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return Err(ParseError::new(
                        line,
                        format!("truncated \\u escape \\u{hex}"),
                    ));
                }
                if !hex.chars().all(|h| h.is_ascii_hexdigit()) {
                    return Err(ParseError::new(
                        line,
                        format!("invalid hex digit in \\u escape \\u{hex}"),
                    ));
                }
                let code = u32::from_str_radix(&hex, 16).expect("validated hex");
                match char::from_u32(code) {
                    Some(decoded) => out.push(decoded),
                    None => {
                        return Err(ParseError::new(
                            line,
                            format!("\\u{hex} is not a Unicode scalar value"),
                        ))
                    }
                }
            }
            Some(other) => {
                return Err(ParseError::new(
                    line,
                    format!("unknown escape sequence \\{other} in literal"),
                ))
            }
            None => return Err(ParseError::new(line, "trailing backslash in literal")),
        }
    }
    Ok(out)
}

/// Encodes a literal's text with the N-Triples string escapes, so the
/// output of [`serialize`] always re-parses (`"` and `\` are escaped, and
/// control characters cannot terminate or break a line).
fn escape_literal(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04X}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats one term as an N-Triples token (the writer-side counterpart of
/// [`parse`], escaping literal text).
fn format_term(term: &Term) -> String {
    match term {
        Term::Iri(v) => format!("<{v}>"),
        Term::Literal(v) => format!("\"{}\"", escape_literal(v)),
    }
}

/// Parses a single term token (`<iri>` or `"literal"`).
fn parse_term(token: &str, line: usize) -> Result<Term, ParseError> {
    if let Some(inner) = token.strip_prefix('<').and_then(|t| t.strip_suffix('>')) {
        Ok(Term::iri(inner))
    } else if let Some(inner) = token.strip_prefix('"').and_then(|t| t.strip_suffix('"')) {
        Ok(Term::literal(unescape_literal(inner, line)?))
    } else {
        Err(ParseError::new(
            line,
            format!("cannot parse term token {token:?}"),
        ))
    }
}

/// The byte length of a quoted literal token at the start of `rest`
/// (including both quotes), honouring backslash escapes. `None` when the
/// literal never closes — including a trailing `\` right before the end.
fn literal_token_len(rest: &str) -> Option<usize> {
    debug_assert!(rest.starts_with('"'));
    let mut escaped = false;
    for (offset, c) in rest.char_indices().skip(1) {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' => escaped = true,
            '"' => return Some(offset + 1),
            _ => {}
        }
    }
    None
}

/// Splits an N-Triples line into its three term tokens.
fn tokenize(line: &str, line_no: usize) -> Result<Option<[String; 3]>, ParseError> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let trimmed = trimmed.strip_suffix('.').unwrap_or(trimmed).trim_end();

    let mut tokens = Vec::with_capacity(3);
    let mut rest = trimmed;
    while !rest.is_empty() {
        rest = rest.trim_start();
        if rest.is_empty() {
            break;
        }
        let (token, remaining) = if rest.starts_with('<') {
            match rest.find('>') {
                Some(pos) => (&rest[..=pos], &rest[pos + 1..]),
                None => return Err(ParseError::new(line_no, "unterminated IRI")),
            }
        } else if rest.starts_with('"') {
            match literal_token_len(rest) {
                Some(len) => (&rest[..len], &rest[len..]),
                None => return Err(ParseError::new(line_no, "unterminated literal")),
            }
        } else {
            let pos = rest.find(char::is_whitespace).unwrap_or(rest.len());
            (&rest[..pos], &rest[pos..])
        };
        tokens.push(token.to_string());
        rest = remaining;
    }

    if tokens.len() != 3 {
        return Err(ParseError::new(
            line_no,
            format!("expected 3 terms, found {}", tokens.len()),
        ));
    }
    Ok(Some([tokens.remove(0), tokens.remove(0), tokens.remove(0)]))
}

/// Parses N-Triples text into a list of term triples.
pub fn parse(text: &str) -> Result<Vec<(Term, Term, Term)>, ParseError> {
    parse_from(text, 1)
}

/// Parses N-Triples text whose first line is line `first_line` of a larger
/// document. This is the chunked-load entry point: the bulk loader splits a
/// document at line boundaries (see [`crate::load::split_ntriples`]) and
/// parses each chunk on its own worker, and errors still report the global
/// line number of the offending line.
pub fn parse_from(text: &str, first_line: usize) -> Result<Vec<(Term, Term, Term)>, ParseError> {
    let mut out = Vec::new();
    parse_from_into(text, first_line, &mut out)?;
    Ok(out)
}

/// Like [`parse_from`], but appends into a caller-supplied buffer so the
/// streaming bulk loader can recycle one triple buffer per worker across
/// chunk waves instead of allocating a fresh `Vec` per chunk. On error the
/// buffer holds the triples parsed before the failing line.
pub fn parse_from_into(
    text: &str,
    first_line: usize,
    out: &mut Vec<(Term, Term, Term)>,
) -> Result<(), ParseError> {
    for (i, line) in text.lines().enumerate() {
        let line_no = first_line + i;
        if let Some([s, p, o]) = tokenize(line, line_no)? {
            out.push((
                parse_term(&s, line_no)?,
                parse_term(&p, line_no)?,
                parse_term(&o, line_no)?,
            ));
        }
    }
    Ok(())
}

/// Parses N-Triples text directly into a [`Graph`].
pub fn parse_into_graph(text: &str) -> Result<Graph, ParseError> {
    let mut graph = Graph::new();
    for (s, p, o) in parse(text)? {
        graph.insert_terms(s, p, o);
    }
    Ok(graph)
}

/// Serializes a graph back to N-Triples text (one line per triple, literal
/// text escaped so the output always re-parses).
pub fn serialize(graph: &Graph) -> String {
    let mut out = String::new();
    for triple in graph.triples() {
        let s = graph.decode(triple.subject).expect("dangling subject id");
        let p = graph.decode(triple.property).expect("dangling property id");
        let o = graph.decode(triple.object).expect("dangling object id");
        out.push_str(&format!(
            "{} {} {} .\n",
            format_term(s),
            format_term(p),
            format_term(o)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_triples() {
        let text = "<a> <p> <b> .\n<a> <q> \"C1\" .\n";
        let triples = parse(text).unwrap();
        assert_eq!(triples.len(), 2);
        assert_eq!(triples[0].0, Term::iri("a"));
        assert_eq!(triples[1].2, Term::literal("C1"));
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# header\n\n<a> <p> <b>\n   \n# trailing\n";
        assert_eq!(parse(text).unwrap().len(), 1);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("<a> <p>").is_err());
        assert!(parse("<a> <p> <b> <c>").is_err());
        assert!(parse("<a <p> <b>").is_err());
        assert!(parse("<a> <p> \"unterminated").is_err());
        let err = parse("plain tokens here").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn literal_with_spaces() {
        let triples = parse("<a> <name> \"University 3\" .").unwrap();
        assert_eq!(triples[0].2, Term::literal("University 3"));
    }

    #[test]
    fn round_trip_through_graph() {
        let text = "<s1> <p1> <o1> .\n<s1> <p2> \"lit\" .\n<s2> <p1> <s1> .\n";
        let graph = parse_into_graph(text).unwrap();
        assert_eq!(graph.len(), 3);
        let serialized = serialize(&graph);
        let reparsed = parse_into_graph(&serialized).unwrap();
        assert_eq!(reparsed.len(), graph.len());
        assert_eq!(serialize(&reparsed), serialized);
    }

    #[test]
    fn literal_escapes_decode() {
        let triples = parse(r#"<a> <p> "say \"hi\"\n\tdone\\" ."#).unwrap();
        assert_eq!(triples[0].2, Term::literal("say \"hi\"\n\tdone\\"));
    }

    #[test]
    fn unicode_escapes_decode() {
        let triples = parse(r#"<a> <p> "caf\u00E9 \u0041" ."#).unwrap();
        assert_eq!(triples[0].2, Term::literal("café A"));
    }

    #[test]
    fn escaped_quote_does_not_terminate_literal() {
        // The \" must not close the literal early and swallow the rest.
        let triples = parse(r#"<a> <p> "x\"y z" ."#).unwrap();
        assert_eq!(triples[0].2, Term::literal("x\"y z"));
    }

    #[test]
    fn invalid_escapes_are_rejected_with_line_numbers() {
        let err = parse("<a> <p> <b> .\n<a> <p> \"bad\\q\" .").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown escape"), "{}", err.message);

        let err = parse(r#"<a> <p> "trunc\u00G1" ."#).unwrap_err();
        assert!(err.message.contains("\\u"), "{}", err.message);

        let err = parse(r#"<a> <p> "surrogate\uD800" ."#).unwrap_err();
        assert!(err.message.contains("scalar"), "{}", err.message);
    }

    #[test]
    fn unterminated_literals_are_clear_errors() {
        for text in [
            "<a> <p> \"never closed",
            "<a> <p> \"closed by escape\\\"",
            "<a> <p> \"trailing backslash\\",
        ] {
            let err = parse(text).unwrap_err();
            assert!(
                err.message.contains("unterminated literal"),
                "{text:?}: {}",
                err.message
            );
        }
    }

    #[test]
    fn writer_escapes_round_trip() {
        let mut graph = Graph::new();
        graph.insert_terms(
            Term::iri("s"),
            Term::iri("p"),
            Term::literal("line1\nline2\t\"quoted\" back\\slash \u{1} café"),
        );
        let text = serialize(&graph);
        let reparsed = parse(&text).unwrap();
        assert_eq!(
            reparsed[0].2,
            Term::literal("line1\nline2\t\"quoted\" back\\slash \u{1} café")
        );
        // Control characters never appear raw in the serialized text.
        assert!(!text.contains('\u{1}'));
        assert_eq!(text.lines().count(), 1);
    }

    #[test]
    fn parse_from_offsets_line_numbers() {
        let err = parse_from("<a> <p> <b> .\n<a> <p>", 100).unwrap_err();
        assert_eq!(err.line, 101);
        assert_eq!(parse_from("<a> <p> <b> .", 50).unwrap().len(), 1);
    }
}
